// hipcloud_lint — in-tree determinism and idiom linter (hipcheck).
//
// The simulator's whole value proposition is bit-identical replay: the
// same seed must produce the same packet trace, the same schedule, the
// same Fig. 2 numbers, on any machine at any thread count. The bug
// classes that silently break that promise (or that already bit us in
// past PRs) are narrow and mechanical, so they are checked mechanically:
//
//   wall-clock      std::chrono::*_clock / time(nullptr) / std::rand /
//                   std::random_device outside sim:: — real time leaking
//                   into simulated time makes runs irreproducible.
//   unordered-iter  range-for over a std::unordered_{map,set} declared in
//                   the same file — hash-table iteration order is
//                   implementation-defined, so anything it feeds
//                   (scheduling, wire output, aggregation) diverges
//                   across platforms.
//   raw-alloc       raw new/delete on the packet path (src/net, src/hip,
//                   src/apps) — the pooled zero-copy datapath exists so
//                   per-packet heap traffic stays off the hot loop.
//   self-capture    a shared_ptr invoking a member and capturing itself
//                   by value in the callback (`x->on_foo([x]{...})`) —
//                   the reference cycle that leaked connections in the
//                   event-engine rework.
//   eager-log       raw sim::Log::write() call sites — the message
//                   argument is built even when the level filter drops
//                   it; HIPCLOUD_LOG evaluates it lazily.
//
// Escape hatch: `// hipcheck:allow(<rule>): <justification>` on the
// offending line or the line above suppresses exactly one finding of
// that rule. The justification is mandatory and an allow that suppresses
// nothing is itself an error, so pragmas cannot rot.
//
// Self-test mode (`--self-test <dir>`) lints fixture files in which every
// expected finding is annotated `// hipcheck:expect(<rule>)`; the run
// fails on any mismatch in either direction. The fixtures double as the
// linter's regression suite and as documentation of each rule.
//
// The checker is token-based, not AST-based: the lexer strips comments,
// string/char literals and raw strings, keeps line numbers, and folds
// `::` into one token. That is deliberately simple — rules are phrased
// as short token patterns, and the allow pragma covers the (rare) false
// positives a real parser would avoid.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Token {
  std::string text;
  int line;
};

struct Finding {
  std::string file;  // path as reported (relative to root)
  int line;
  std::string rule;
  std::string msg;
};

struct AllowPragma {
  int line;
  std::string rule;
  bool used = false;
};

struct ExpectPragma {
  int line;
  std::string rule;
  bool matched = false;
};

// --------------------------------------------------------------------------
// Lexer

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto at = [&](std::size_t k) -> char { return k < n ? src[k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && at(i + 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && at(i + 1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, end + close.size());
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        ++j;
      }
      out.push_back({src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Numbers (pp-number, loosely).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      out.push_back({src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // `::` folded into one token so rule patterns and the range-for
    // colon-scan can tell scope resolution from a plain colon.
    if (c == ':' && at(i + 1) == ':') {
      out.push_back({"::", line});
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      out.push_back({"->", line});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), line});
    ++i;
  }
  return out;
}

// --------------------------------------------------------------------------
// Pragmas (scanned on raw lines, since the lexer strips comments)

void scan_pragmas(const std::string& src, std::vector<AllowPragma>& allows,
                  std::vector<ExpectPragma>& expects,
                  std::vector<Finding>& errors, const std::string& path) {
  std::istringstream in(src);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    for (const char* kind : {"allow", "expect"}) {
      const std::string marker = std::string("hipcheck:") + kind + "(";
      const std::size_t at = raw.find(marker);
      if (at == std::string::npos) continue;
      const std::size_t open = at + marker.size();
      const std::size_t close = raw.find(')', open);
      if (close == std::string::npos) {
        errors.push_back({path, line, "bad-pragma",
                          "unterminated hipcheck pragma"});
        continue;
      }
      const std::string rule = raw.substr(open, close - open);
      // flow-* pragmas belong to hipcloud_flow (tools/flow); skip them so
      // both analyzers can annotate the same file.
      if (rule.rfind("flow-", 0) == 0) continue;
      if (kind == std::string("expect")) {
        expects.push_back({line, rule});
        continue;
      }
      // allow(<rule>): <justification> — the justification is mandatory;
      // an allow nobody can audit later is worse than no allow.
      std::size_t p = close + 1;
      bool justified = false;
      if (p < raw.size() && raw[p] == ':') {
        ++p;
        while (p < raw.size()) {
          if (!std::isspace(static_cast<unsigned char>(raw[p]))) {
            justified = true;
            break;
          }
          ++p;
        }
      }
      if (!justified) {
        errors.push_back(
            {path, line, "bad-pragma",
             "hipcheck:allow(" + rule +
                 ") needs a justification: `// hipcheck:allow(" + rule +
                 "): why this is safe`"});
        continue;
      }
      allows.push_back({line, rule});
    }
  }
}

// --------------------------------------------------------------------------
// Rules

bool under(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

const std::string& tok(const std::vector<Token>& t, std::size_t i) {
  static const std::string empty;
  return i < t.size() ? t[i].text : empty;
}

void rule_wall_clock(const std::string& path, const std::vector<Token>& t,
                     std::vector<Finding>& out) {
  // The sim:: layer owns virtual time and the seeded DRBG; everything
  // else must get time from the event loop and entropy from sim::Rng.
  // One carve-out inside sim/: the shard seam (src/sim/shard.*) runs on
  // real worker threads, where a wall-clock or entropy read is exactly
  // the cross-thread determinism leak this rule exists to catch — the
  // exemption does not extend to it.
  if (under(path, "src/sim/") && !under(path, "src/sim/shard.")) return;
  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (kClocks.count(s) != 0) {
      out.push_back({path, t[i].line, "wall-clock",
                     "std::chrono::" + s +
                         " reads real time; use the event loop's virtual "
                         "now()"});
    } else if (s == "random_device") {
      out.push_back({path, t[i].line, "wall-clock",
                     "std::random_device is non-deterministic; seed "
                     "sim::Rng / HmacDrbg instead"});
    } else if (s == "rand" && tok(t, i - 1) == "::" &&
               tok(t, i - 2) == "std") {
      out.push_back({path, t[i].line, "wall-clock",
                     "std::rand is a hidden global RNG; use the world's "
                     "seeded generator"});
    } else if (s == "time" && tok(t, i + 1) == "(" &&
               (tok(t, i + 2) == "nullptr" || tok(t, i + 2) == "NULL" ||
                tok(t, i + 2) == "0")) {
      out.push_back({path, t[i].line, "wall-clock",
                     "time(nullptr) reads the wall clock; use the event "
                     "loop's virtual now()"});
    }
  }
}

void rule_unordered_iter(const std::string& path, const std::vector<Token>& t,
                         std::vector<Finding>& out) {
  // Pass 1: names declared (in this file) with an unordered container
  // type. Pass 2: range-for statements whose range expression mentions
  // one of those names.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "unordered_map" && t[i].text != "unordered_set") {
      continue;
    }
    std::size_t j = i + 1;
    if (tok(t, j) != "<") continue;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">" && --depth == 0) break;
    }
    ++j;  // past '>'
    // Optional reference/pointer declarators, then the variable name.
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    const std::string& name = tok(t, j);
    if (!name.empty() &&
        (std::isalpha(static_cast<unsigned char>(name[0])) ||
         name[0] == '_')) {
      unordered_names.insert(name);
    }
  }
  if (unordered_names.empty()) return;

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || tok(t, i + 1) != "(") continue;
    // Find the matching ')' and the first top-level ':' inside it.
    int depth = 0;
    std::size_t colon = 0, end = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") {
        if (--depth == 0) {
          end = j;
          break;
        }
      }
      if (s == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon == 0 || end == 0) continue;  // classic for / malformed
    for (std::size_t j = colon + 1; j < end; ++j) {
      if (unordered_names.count(t[j].text) != 0) {
        out.push_back(
            {path, t[j].line, "unordered-iter",
             "range-for over std::unordered_* `" + t[j].text +
                 "`: iteration order is implementation-defined and "
                 "breaks cross-platform determinism"});
        break;
      }
    }
  }
}

void rule_raw_alloc(const std::string& path, const std::vector<Token>& t,
                    std::vector<Finding>& out, bool force) {
  // Packet-path directories only: the pooled buffer arena and
  // make_unique/shared own all allocation there.
  if (!force && !under(path, "src/net/") && !under(path, "src/hip/") &&
      !under(path, "src/apps/")) {
    return;
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "new") {
      out.push_back({path, t[i].line, "raw-alloc",
                     "raw `new` on the packet path; use make_unique/"
                     "make_shared or the BufferPool"});
    } else if (s == "delete") {
      // `= delete` declarations and operator delete are not allocation.
      if (tok(t, i - 1) == "=" || tok(t, i - 1) == "operator") continue;
      out.push_back({path, t[i].line, "raw-alloc",
                     "raw `delete` on the packet path; owning types "
                     "should manage lifetime"});
    }
  }
}

void rule_self_capture(const std::string& path, const std::vector<Token>& t,
                       std::vector<Finding>& out) {
  // x->method([x]{...}) or x->method([a, x]{...}): the callback keeps its
  // own owner alive — the shared_ptr cycle that leaked TcpConnections.
  // By-reference capture ([&x]) takes no ownership and is not flagged.
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (t[i + 1].text != "->" || tok(t, i + 3) != "(" ||
        tok(t, i + 4) != "[") {
      continue;
    }
    const std::string& obj = t[i].text;
    if (obj.empty() || !(std::isalpha(static_cast<unsigned char>(obj[0])) ||
                         obj[0] == '_')) {
      continue;
    }
    for (std::size_t j = i + 5; j < t.size() && t[j].text != "]"; ++j) {
      // Only a plain-copy capture item (`[x]`, `[a, x]`) copies the
      // shared_ptr and closes the cycle. `[&x]` takes no ownership,
      // and in init-captures (`[p = x.get()]`,
      // `[w = std::weak_ptr<T>(x)]`) `x` is not a direct list item.
      const std::string& prev = tok(t, j - 1);
      const std::string& next = tok(t, j + 1);
      if (t[j].text == obj && (prev == "[" || prev == ",") &&
          (next == "," || next == "]")) {
        out.push_back(
            {path, t[j].line, "self-capture",
             "`" + obj + "` captures itself by value in a callback it "
             "installs on itself — shared_ptr reference cycle (leak)"});
        break;
      }
    }
  }
}

void rule_eager_log(const std::string& path, const std::vector<Token>& t,
                    std::vector<Finding>& out) {
  // Log::write builds its std::string argument before the level check.
  // Only the sink itself (and the HIPCLOUD_LOG macro wrapping it) may
  // call it directly.
  if (under(path, "src/sim/log.")) return;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text == "Log" && t[i + 1].text == "::" &&
        t[i + 2].text == "write") {
      out.push_back({path, t[i].line, "eager-log",
                     "raw sim::Log::write() builds the message eagerly; "
                     "use HIPCLOUD_LOG (lazy format)"});
    }
  }
}

// --------------------------------------------------------------------------
// Driver

struct FileResult {
  std::vector<Finding> findings;       // post-suppression
  std::vector<Finding> pragma_errors;  // bad-pragma / unused-allow
  std::vector<ExpectPragma> expects;
};

FileResult lint_file(const fs::path& fspath, const std::string& rel,
                     bool self_test) {
  FileResult r;
  std::ifstream in(fspath, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string src = ss.str();

  std::vector<AllowPragma> allows;
  scan_pragmas(src, allows, r.expects, r.pragma_errors, rel);

  const std::vector<Token> tokens = lex(src);
  std::vector<Finding> raw;
  rule_wall_clock(rel, tokens, raw);
  rule_unordered_iter(rel, tokens, raw);
  rule_raw_alloc(rel, tokens, raw, /*force=*/self_test);
  rule_self_capture(rel, tokens, raw);
  rule_eager_log(rel, tokens, raw);
  std::stable_sort(raw.begin(), raw.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });

  // Each allow suppresses exactly one finding of its rule, on the same
  // line or the line directly below the pragma.
  for (const Finding& f : raw) {
    bool suppressed = false;
    for (AllowPragma& a : allows) {
      if (!a.used && a.rule == f.rule &&
          (a.line == f.line || a.line + 1 == f.line)) {
        a.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) r.findings.push_back(f);
  }
  for (const AllowPragma& a : allows) {
    if (!a.used) {
      r.pragma_errors.push_back(
          {rel, a.line, "unused-allow",
           "hipcheck:allow(" + a.rule +
               ") suppresses nothing — remove it or fix the rule name"});
    }
  }
  return r;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

void print_finding(const Finding& f) {
  std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
               f.rule.c_str(), f.msg.c_str());
}

int run_tree(const fs::path& root, const std::vector<std::string>& dirs) {
  int files = 0, bad = 0;
  for (const std::string& d : dirs) {
    const fs::path base = root / d;
    if (!fs::exists(base)) continue;
    std::vector<fs::path> paths;
    for (const auto& ent : fs::recursive_directory_iterator(base)) {
      if (ent.is_regular_file() && lintable(ent.path())) {
        paths.push_back(ent.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      ++files;
      const std::string rel = fs::relative(p, root).generic_string();
      const FileResult r = lint_file(p, rel, /*self_test=*/false);
      for (const Finding& f : r.findings) print_finding(f);
      for (const Finding& f : r.pragma_errors) print_finding(f);
      bad += static_cast<int>(r.findings.size() + r.pragma_errors.size());
    }
  }
  std::fprintf(stderr, "hipcloud_lint: %d files, %d finding%s\n", files, bad,
               bad == 1 ? "" : "s");
  return bad == 0 ? 0 : 1;
}

int run_self_test(const fs::path& dir) {
  int checked = 0, failures = 0;
  std::vector<fs::path> paths;
  for (const auto& ent : fs::recursive_directory_iterator(dir)) {
    if (ent.is_regular_file() && lintable(ent.path())) {
      paths.push_back(ent.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    ++checked;
    // Relative to the fixture root, so fixtures in subdirectories can
    // impersonate tree paths and exercise path-scoped rules (e.g.
    // fixtures/src/sim/shard.cpp tests the sim/ wall-clock carve-out).
    // Top-level fixtures keep their bare filename as before.
    const std::string rel = fs::relative(p, dir).generic_string();
    FileResult r = lint_file(p, rel, /*self_test=*/true);

    // Every finding (and pragma error) must be annotated with an expect
    // on its line or the line above; every expect must fire.
    std::vector<Finding> all = r.findings;
    all.insert(all.end(), r.pragma_errors.begin(), r.pragma_errors.end());
    for (const Finding& f : all) {
      bool matched = false;
      for (ExpectPragma& e : r.expects) {
        if (!e.matched && e.rule == f.rule &&
            (e.line == f.line || e.line + 1 == f.line)) {
          e.matched = true;
          matched = true;
          break;
        }
      }
      if (!matched) {
        ++failures;
        std::fprintf(stderr, "self-test: unexpected finding:\n  ");
        print_finding(f);
      }
    }
    for (const ExpectPragma& e : r.expects) {
      if (!e.matched) {
        ++failures;
        std::fprintf(stderr,
                     "self-test: %s:%d: expected [%s] to fire here, it "
                     "did not\n",
                     rel.c_str(), e.line, e.rule.c_str());
      }
    }
  }
  std::fprintf(stderr, "hipcloud_lint self-test: %d fixtures, %d failure%s\n",
               checked, failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path self_test_dir;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: hipcloud_lint [--root DIR] [dirs...]\n"
                   "       hipcloud_lint --self-test FIXTURE_DIR\n");
      return 0;
    } else {
      dirs.push_back(arg);
    }
  }
  if (!self_test_dir.empty()) return run_self_test(self_test_dir);
  if (dirs.empty()) dirs = {"src", "bench", "tests"};
  return run_tree(root, dirs);
}
