// Fixture: every wall-clock pattern the linter must catch. Real time
// leaking into the simulator makes seeded runs irreproducible.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long fixture_wall_clock() {
  // hipcheck:expect(wall-clock)
  auto a = std::chrono::steady_clock::now();
  // hipcheck:expect(wall-clock)
  auto b = std::chrono::system_clock::now();
  // hipcheck:expect(wall-clock)
  auto c = std::chrono::high_resolution_clock::now();
  // hipcheck:expect(wall-clock)
  std::random_device rd;
  // hipcheck:expect(wall-clock)
  int r = std::rand();
  // hipcheck:expect(wall-clock)
  long t = time(nullptr);
  return a.time_since_epoch().count() + b.time_since_epoch().count() +
         c.time_since_epoch().count() + rd() + r + t;
}
