// Fixture: a shared_ptr installing a callback on itself that captures
// itself by value — the reference cycle that leaks the object. Capture
// by reference takes no ownership and is not flagged.
#include <functional>
#include <memory>

struct FixtureConn {
  void on_data(std::function<void()> fn) { cb = std::move(fn); }
  std::function<void()> cb;
  int bytes = 0;
};

void fixture_self_capture() {
  auto conn = std::make_shared<FixtureConn>();
  // hipcheck:expect(self-capture)
  conn->on_data([conn] { conn->bytes++; });
  auto conn2 = std::make_shared<FixtureConn>();
  conn2->on_data([&conn2] { conn2->bytes++; });  // by-ref: no cycle, ok
  // hipcheck:allow(self-capture): fixture for the allow path; cycle broken in reset
  conn2->on_data([conn2] { conn2->bytes--; });
}
