// Fixture: raw new/delete on the packet path bypasses the buffer pool.
// `= delete` declarations and operator delete must NOT be flagged.
struct FixturePacket {
  FixturePacket() = default;
  FixturePacket(const FixturePacket&) = delete;
  FixturePacket& operator=(const FixturePacket&) = delete;
  int payload = 0;
};

int fixture_raw_alloc() {
  // hipcheck:expect(raw-alloc)
  FixturePacket* p = new FixturePacket();
  int v = p->payload;
  // hipcheck:expect(raw-alloc)
  delete p;
  return v;
}
