// Fixture: raw Log::write builds its message string even when the level
// filter immediately discards it; HIPCLOUD_LOG wraps the call in an
// enabled() check so the formatting is lazy.
#include <string>

namespace sim {
enum class LogLevel { kInfo };
struct Log {
  static void write(LogLevel, long, const char*, const std::string&) {}
};
}  // namespace sim

void fixture_eager_log(long now, const std::string& peer) {
  // hipcheck:expect(eager-log)
  sim::Log::write(sim::LogLevel::kInfo, now, "hip", "contacting " + peer);
}
