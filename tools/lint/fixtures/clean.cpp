// Fixture: idiomatic code that must produce zero findings — smart
// pointers, ordered containers, lazy logging via a macro, and virtual
// time threaded in as a parameter.
#include <map>
#include <memory>
#include <string>
#include <vector>

struct FixtureFlow {
  long virtual_now = 0;
  std::map<std::string, int> ordered;
};

int fixture_clean(long now) {
  auto flow = std::make_unique<FixtureFlow>();
  flow->virtual_now = now;
  std::vector<int> timeline;
  for (const auto& kv : flow->ordered) timeline.push_back(kv.second);
  int sum = 0;
  for (int v : timeline) sum += v;
  return sum;
}
