// Fixture: iterating a hash table feeds implementation-defined order
// into whatever consumes the loop — scheduling, wire output, stats.
#include <string>
#include <unordered_map>
#include <unordered_set>

int fixture_unordered_iter() {
  std::unordered_map<std::string, int> table;
  std::unordered_set<int> members;
  int sum = 0;
  // hipcheck:expect(unordered-iter)
  for (const auto& kv : table) sum += kv.second;
  // hipcheck:expect(unordered-iter)
  for (int v : members) sum += v;
  // An allowed iteration (order-insensitive aggregation) is fine:
  // hipcheck:allow(unordered-iter): sum is commutative, order cannot leak
  for (const auto& kv : table) sum -= kv.second;
  return sum;
}
