// Fixture: an allow pragma with a justification suppresses exactly one
// wall-clock finding — and only one, so a second hit on the next line
// still fires.
#include <chrono>

long fixture_wall_clock_allowed() {
  // hipcheck:allow(wall-clock): benchmark harness measures real elapsed time
  auto t0 = std::chrono::steady_clock::now();
  // hipcheck:expect(wall-clock)
  auto t1 = std::chrono::steady_clock::now();
  return (t1 - t0).count();
}
