// Fixture: pragma hygiene. An allow that suppresses nothing is an error
// (it would rot silently), and an allow without a justification is an
// error (nobody can audit it later).

// hipcheck:expect(unused-allow)
// hipcheck:allow(raw-alloc): nothing below actually allocates
int fixture_nothing_to_suppress() { return 0; }

// hipcheck:expect(bad-pragma)
// hipcheck:allow(wall-clock)
int fixture_missing_justification() { return 1; }
