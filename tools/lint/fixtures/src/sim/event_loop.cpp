// Fixture impersonating a core src/sim/ file: the sim:: layer owns
// virtual time, so the wall-clock rule stays silent here (no expects) —
// this is the carve-out boundary's other side, paired with shard.cpp.
#include <chrono>

long fixture_sim_core_clock() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
