// Fixture impersonating src/sim/shard.cpp: the shard seam runs on real
// worker threads, so the sim/ wall-clock exemption must NOT cover it —
// a clock or entropy read inside the shard loop leaks host scheduling
// straight into the world hash.
#include <chrono>
#include <random>

long fixture_shard_seam() {
  // hipcheck:expect(wall-clock)
  auto epoch_start = std::chrono::steady_clock::now();
  // hipcheck:expect(wall-clock)
  std::random_device seed;
  return epoch_start.time_since_epoch().count() + seed();
}
