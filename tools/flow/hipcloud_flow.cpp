// hipcloud_flow — flow-aware static analyzer for the hipcloud tree.
//
// Where PR 4's hipcloud_lint matches token patterns inside single files,
// this tool preprocesses whole translation units (include resolution,
// object-like macro expansion, include graph) and runs five structural
// analyses over them: the layering DAG, secret-taint to log/JSON sinks,
// pooled-Buffer lifetime across EventLoop suspension points, hot-path
// allocation, and exception flow out of event callbacks. See
// analysis.hpp for the rule catalogue and DESIGN.md §5f for the policy.
//
//   hipcloud_flow --root DIR [--compdb FILE] [--jobs N] [dirs...]
//   hipcloud_flow --self-test FIXTURE_DIR
//
// Tree mode walks `dirs` (default: src bench examples tests) for .cpp
// TUs — or takes the TU list from a CMake-exported compile_commands.json
// — analyzes them in parallel (CMAKE_BUILD_PARALLEL_LEVEL-style worker
// count), dedupes findings globally (a header seen from forty TUs
// reports once), applies in-source `hipcheck:allow(<rule>)` pragmas and
// the justified baseline file, and prints what survives sorted by
// (file, line, rule) — byte-identical output at any job count.
//
// Suppression discipline (same as hipcheck):
//   * `// hipcheck:allow(flow-x): why` on the finding's line or the line
//     above suppresses exactly one finding; an allow that suppresses
//     nothing is itself an error.
//   * tools/flow/baseline.flow carries pre-existing debt as
//     `<rule> <file> <count> : <justification>` quotas; a quota that is
//     no longer fully consumed is an error, so the baseline only ratchets
//     down.
//   * `// hipcheck:hot` above a function definition puts it (and its
//     same-TU callees, transitively) in the hot-path allocation set.
//
// Self-test mode mirrors the linter's: every fixture annotates expected
// findings with `// hipcheck:expect(<rule>)`; the run fails on any
// mismatch in either direction. Fixture subdirectories containing a
// `src/` are analyzed as miniature trees (layer rules live), everything
// else file-by-file.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis.hpp"
#include "callgraph.hpp"
#include "ownership.hpp"
#include "taint.hpp"
#include "tu.hpp"

namespace hipflow {
namespace {

namespace fs = std::filesystem;

// --------------------------------------------------------------------------
// Pragmas (allow / expect / hot), scanned on raw lines per physical file.

struct AllowPragma {
  std::string file;
  int line;
  std::string rule;
  bool used = false;
};

struct ExpectPragma {
  std::string file;
  int line;
  std::string rule;
  bool matched = false;
};

struct PragmaIndex {
  std::vector<AllowPragma> allows;
  std::vector<ExpectPragma> expects;
  std::vector<Finding> errors;  // bad-pragma
  std::map<std::string, std::vector<int>> hot_lines;  // rel path -> lines
  OwnershipMarks marks;  // hipcheck:shard_owned/shard_shared/seam/entry
  std::set<std::string> scanned;
};

/// The declared name on a `hipcheck:shard_owned` / `shard_shared` line:
/// the identifier just before the first of `;` `=` `{` `[` in the code
/// part (before any `//`). Empty when the line declares nothing — the
/// mark then applies to the next declaration line.
std::string declarator_name(const std::string& raw) {
  std::string code = raw.substr(0, raw.find("//"));
  const std::size_t stop = code.find_first_of(";={[");
  if (stop == std::string::npos) return "";
  std::size_t e = stop;
  // Walk back over trailing attribute macros — `Type name MACRO(args);`
  // is how thread-safety annotations (HIPCLOUD_GUARDED_BY etc.) attach —
  // so the declared name is extracted, not the macro or its argument.
  for (;;) {
    while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1]))) --e;
    if (e == 0 || code[e - 1] != ')') break;
    int depth = 0;
    std::size_t p = e;
    while (p > 0) {
      --p;
      if (code[p] == ')') ++depth;
      else if (code[p] == '(' && --depth == 0) break;
    }
    if (depth != 0) return "";
    e = p;
    while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1]))) --e;
    std::size_t m = e;
    while (m > 0 && (std::isalnum(static_cast<unsigned char>(code[m - 1])) ||
                     code[m - 1] == '_')) {
      --m;
    }
    if (m == e) return "";  // bare `(...)` — a call or init, not a macro
    e = m;
  }
  while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1]))) --e;
  std::size_t b = e;
  while (b > 0 && (std::isalnum(static_cast<unsigned char>(code[b - 1])) ||
                   code[b - 1] == '_')) {
    --b;
  }
  if (b == e) return "";
  const std::string nm = code.substr(b, e - b);
  if (std::isdigit(static_cast<unsigned char>(nm[0]))) return "";
  return nm;
}

void scan_file_pragmas(const std::string& rel, const std::string& src,
                       PragmaIndex& px) {
  if (!px.scanned.insert(rel).second) return;
  std::vector<std::string> lines;
  {
    std::istringstream in(src);
    std::string raw;
    while (std::getline(in, raw)) lines.push_back(raw);
  }
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& raw = lines[li];
    const int line = static_cast<int>(li) + 1;
    if (raw.find("hipcheck:hot") != std::string::npos) {
      px.hot_lines[rel].push_back(line);
    }
    // Ownership marks. seam/entry apply to the function definition within
    // 3 lines below (same convention as hipcheck:hot); owned/shared carry
    // the declared name from their own line or the next two.
    if (raw.find("hipcheck:seam") != std::string::npos) {
      px.marks.lines[rel].emplace_back(line, OwnMark::kSeam);
    }
    if (raw.find("hipcheck:shard_entry") != std::string::npos) {
      px.marks.lines[rel].emplace_back(line, OwnMark::kEntry);
    }
    if (raw.find("hipcheck:wire_input") != std::string::npos) {
      px.marks.lines[rel].emplace_back(line, OwnMark::kWire);
    }
    for (const auto& [marker, kind] :
         {std::pair<const char*, OwnMark>{"hipcheck:shard_owned",
                                          OwnMark::kOwned},
          std::pair<const char*, OwnMark>{"hipcheck:shard_shared",
                                          OwnMark::kShared}}) {
      if (raw.find(marker) == std::string::npos) continue;
      px.marks.lines[rel].emplace_back(line, kind);
      std::string nm;
      for (std::size_t look = li; look < lines.size() && look < li + 3;
           ++look) {
        nm = declarator_name(lines[look]);
        if (!nm.empty()) break;
      }
      if (nm.empty()) {
        px.errors.push_back(
            {rel, line, "bad-pragma",
             std::string(marker) +
                 " must sit on (or just above) a declaration — no "
                 "declared name found"});
        continue;
      }
      if (kind == OwnMark::kOwned) px.marks.owned_names.insert(nm);
      else px.marks.shared_names.insert(nm);
    }
    for (const char* kind : {"allow", "expect"}) {
      const std::string marker = std::string("hipcheck:") + kind + "(";
      const std::size_t at = raw.find(marker);
      if (at == std::string::npos) continue;
      const std::size_t open = at + marker.size();
      const std::size_t close = raw.find(')', open);
      if (close == std::string::npos) {
        px.errors.push_back(
            {rel, line, "bad-pragma", "unterminated hipcheck pragma"});
        continue;
      }
      const std::string rule = raw.substr(open, close - open);
      // Rules without the flow- prefix belong to hipcloud_lint; ignore
      // them so both tools can annotate the same file.
      if (rule.rfind("flow-", 0) != 0) continue;
      if (kind == std::string("expect")) {
        px.expects.push_back({rel, line, rule});
        continue;
      }
      std::size_t p = close + 1;
      bool justified = false;
      if (p < raw.size() && raw[p] == ':') {
        ++p;
        while (p < raw.size()) {
          if (!std::isspace(static_cast<unsigned char>(raw[p]))) {
            justified = true;
            break;
          }
          ++p;
        }
      }
      if (!justified) {
        px.errors.push_back(
            {rel, line, "bad-pragma",
             "hipcheck:allow(" + rule +
                 ") needs a justification: `// hipcheck:allow(" + rule +
                 "): why this is safe`"});
        continue;
      }
      px.allows.push_back({rel, line, rule});
    }
  }
}

// --------------------------------------------------------------------------
// Baseline file: `<rule> <file> <count> : <justification>` per line.

struct BaselineEntry {
  std::string rule;
  std::string file;
  int quota = 0;
  int used = 0;
  int line = 0;
};

bool load_baseline(const std::string& path, std::vector<BaselineEntry>& out,
                   std::vector<Finding>& errors) {
  std::string src;
  if (!read_file(path, src)) return false;
  std::istringstream in(src);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::size_t b = raw.find_first_not_of(" \t");
    if (b == std::string::npos || raw[b] == '#') continue;
    std::istringstream ls(raw);
    BaselineEntry e;
    std::string colon;
    ls >> e.rule >> e.file >> e.quota >> colon;
    std::string why;
    std::getline(ls, why);
    const bool well_formed = !ls.fail() && colon == ":" && e.quota > 0 &&
                             why.find_first_not_of(" \t") !=
                                 std::string::npos;
    if (!well_formed) {
      errors.push_back({path, line, "bad-baseline",
                        "expected `<rule> <file> <count> : <why>`"});
      continue;
    }
    e.line = line;
    out.push_back(e);
  }
  return true;
}

// --------------------------------------------------------------------------
// TU discovery

bool is_tu(const fs::path& p) { return p.extension() == ".cpp"; }
bool is_header(const fs::path& p) {
  return p.extension() == ".hpp" || p.extension() == ".h";
}

std::vector<std::string> walk_tus(const std::string& root,
                                  const std::vector<std::string>& dirs) {
  std::vector<std::string> tus;
  for (const std::string& d : dirs) {
    const fs::path base = fs::path(root) / d;
    std::error_code ec;
    if (!fs::exists(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (it->is_regular_file() && (is_tu(it->path()) ||
                                    is_header(it->path()))) {
        // Headers are collected too: any header no TU pulls in is
        // analyzed standalone at the end so orphan headers cannot dodge
        // the hygiene/layering rules.
        tus.push_back(it->path().string());
      }
    }
  }
  std::sort(tus.begin(), tus.end());
  return tus;
}

/// Minimal compile_commands.json reader: extracts every `"file": "..."`
/// value. The format is CMake-generated, so fields are simple strings
/// with standard JSON escapes.
std::vector<std::string> compdb_tus(const std::string& path) {
  std::vector<std::string> tus;
  std::string src;
  if (!read_file(path, src)) return tus;
  const std::string key = "\"file\"";
  std::size_t at = 0;
  while ((at = src.find(key, at)) != std::string::npos) {
    std::size_t q = src.find('"', src.find(':', at + key.size()));
    if (q == std::string::npos) break;
    std::string val;
    for (std::size_t i = q + 1; i < src.size() && src[i] != '"'; ++i) {
      if (src[i] == '\\' && i + 1 < src.size()) ++i;
      val += src[i];
    }
    if (val.size() > 4 && val.rfind(".cpp") == val.size() - 4) {
      tus.push_back(val);
    }
    at = q + 1;
  }
  std::sort(tus.begin(), tus.end());
  tus.erase(std::unique(tus.begin(), tus.end()), tus.end());
  return tus;
}

int parse_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("CMAKE_BUILD_PARALLEL_LEVEL")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// --------------------------------------------------------------------------
// Analysis pipeline shared by tree and self-test modes.

struct RunResult {
  std::vector<Finding> findings;  // deduped, sorted, pre-suppression
  PragmaIndex pragmas;
  CallGraph cg;  // linked whole-program graph (for --dump-callgraph)
  WireTaint taint;  // resolved wire-taint map (for --dump-wire)
};

RunResult analyze_paths(const std::string& root,
                        const std::vector<std::string>& include_dirs,
                        const std::vector<std::string>& tus, int jobs,
                        bool all_paths) {
  FileTable files;
  Preprocessor pp(root, include_dirs, &files);

  // Pass 1 (serial, cheap): scan raw pragmas of every physical file we
  // can reach — TU list plus anything they include. Hot markers must be
  // known before analysis, so preprocess include closure discovery and
  // pragma scanning happen here; token analysis is the parallel part.
  RunResult rr;
  std::vector<TranslationUnit> units(tus.size());
  std::mutex mu;
  std::size_t next = 0;
  auto worker = [&] {
    for (;;) {
      std::size_t idx;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (next >= tus.size()) return;
        idx = next++;
      }
      units[idx] = pp.preprocess(tus[idx]);
    }
  };
  {
    std::vector<std::thread> pool;
    const int n = std::max(1, std::min<int>(jobs, static_cast<int>(tus.size())));
    pool.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  // Pragma scan over the union of physical files (deterministic order).
  std::set<std::string> physical;
  for (const TranslationUnit& tu : units) {
    for (FileId f : tu.files) physical.insert(files.path(f));
  }
  for (const std::string& rel : physical) {
    std::string src;
    const fs::path abs = fs::path(rel).is_absolute()
                             ? fs::path(rel)
                             : fs::path(root) / rel;
    if (read_file(abs.string(), src)) scan_file_pragmas(rel, src, rr.pragmas);
  }

  // Pass 2: analyses + call-graph extraction (parallel over TUs, merged
  // under the lock). Summaries land in a TU-indexed vector, so worker
  // scheduling cannot change what the serial link phase sees.
  AnalysisOptions opts;
  opts.all_paths = all_paths;
  opts.hot_marks = &rr.pragmas.hot_lines;
  opts.marks = &rr.pragmas.marks;
  std::vector<Finding> all;
  std::vector<TuSummary> summaries(units.size());
  next = 0;
  auto analyzer = [&] {
    std::vector<Finding> local;
    for (;;) {
      std::size_t idx;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (next >= units.size()) break;
        idx = next++;
      }
      analyze_tu(units[idx], files, opts, local);
      summaries[idx] = extract_tu_summary(units[idx], files,
                                          rr.pragmas.marks);
    }
    std::lock_guard<std::mutex> lock(mu);
    all.insert(all.end(), local.begin(), local.end());
  };
  {
    std::vector<std::thread> pool;
    const int n = std::max(1, std::min<int>(jobs, static_cast<int>(units.size())));
    pool.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pool.emplace_back(analyzer);
    for (std::thread& th : pool) th.join();
  }

  // Phase 2 (serial): link the graph, run the interprocedural rules.
  rr.cg = link_call_graph(summaries);
  analyze_ownership(rr.cg, all_paths, all);
  rr.taint = analyze_wire(units, files, rr.pragmas.marks, all_paths, all);

  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  rr.findings = std::move(all);
  return rr;
}

/// Apply in-source allows; returns surviving findings + unused-allow and
/// bad-pragma errors appended.
std::vector<Finding> apply_allows(const std::vector<Finding>& findings,
                                  PragmaIndex& px) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    bool suppressed = false;
    for (AllowPragma& a : px.allows) {
      if (!a.used && a.rule == f.rule && a.file == f.file &&
          (a.line == f.line || a.line + 1 == f.line)) {
        a.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(f);
  }
  for (const AllowPragma& a : px.allows) {
    if (!a.used) {
      out.push_back({a.file, a.line, "unused-allow",
                     "hipcheck:allow(" + a.rule +
                         ") suppresses nothing — remove it or fix the "
                         "rule name"});
    }
  }
  out.insert(out.end(), px.errors.begin(), px.errors.end());
  std::sort(out.begin(), out.end());
  return out;
}

void print_finding(const Finding& f) {
  std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
               f.rule.c_str(), f.msg.c_str());
}

// --------------------------------------------------------------------------
// Tree mode

int run_tree(const std::string& root, const std::vector<std::string>& dirs,
             const std::string& compdb, const std::string& baseline_path,
             int jobs, bool dump_cg, bool dump_wire) {
  std::vector<std::string> tus;
  if (!compdb.empty()) {
    tus = compdb_tus(compdb);
    // The compdb lists build TUs; keep only sources under root and the
    // requested dirs, then add orphan headers from the walk.
    std::vector<std::string> kept;
    for (const std::string& f : tus) {
      const std::string rel = relativize(root, f);
      for (const std::string& d : dirs) {
        if (rel.rfind(d + "/", 0) == 0) {
          kept.push_back(f);
          break;
        }
      }
    }
    tus = std::move(kept);
  }
  std::vector<std::string> walked = walk_tus(root, dirs);
  if (tus.empty()) {
    for (const std::string& f : walked) {
      if (f.size() > 4 && f.rfind(".cpp") == f.size() - 4) tus.push_back(f);
    }
  }

  // First analysis round over the .cpp TUs, then a second tiny round for
  // headers nothing included (they still deserve hygiene/layer checks).
  RunResult rr = analyze_paths(root, {root + "/src", root}, tus, jobs,
                               /*all_paths=*/false);
  if (dump_cg) {
    // Machine-diffable dump of the linked graph; byte-identical at any
    // job count (pinned by the flow_callgraph_determinism test).
    dump_callgraph(rr.cg, stdout);
    return 0;
  }
  if (dump_wire) {
    // Machine-diffable dump of the resolved wire-taint map; pinned by
    // the same determinism test as the call graph.
    dump_wire_taint(rr.taint, stdout);
    return 0;
  }
  std::set<std::string> seen(rr.pragmas.scanned);
  std::vector<std::string> orphan_headers;
  for (const std::string& f : walked) {
    if (f.size() > 4 && f.rfind(".cpp") == f.size() - 4) continue;
    if (seen.count(relativize(root, f)) == 0) orphan_headers.push_back(f);
  }
  if (!orphan_headers.empty()) {
    RunResult extra = analyze_paths(root, {root + "/src", root},
                                    orphan_headers, jobs, false);
    rr.findings.insert(rr.findings.end(), extra.findings.begin(),
                       extra.findings.end());
    rr.pragmas.allows.insert(rr.pragmas.allows.end(),
                             extra.pragmas.allows.begin(),
                             extra.pragmas.allows.end());
    rr.pragmas.errors.insert(rr.pragmas.errors.end(),
                             extra.pragmas.errors.begin(),
                             extra.pragmas.errors.end());
    std::sort(rr.findings.begin(), rr.findings.end());
    rr.findings.erase(std::unique(rr.findings.begin(), rr.findings.end()),
                      rr.findings.end());
  }

  std::vector<Finding> remaining = apply_allows(rr.findings, rr.pragmas);

  // Baseline quotas.
  std::vector<BaselineEntry> baseline;
  std::vector<Finding> berrors;
  if (!baseline_path.empty()) {
    load_baseline(baseline_path, baseline, berrors);
  }
  std::vector<Finding> report;
  for (const Finding& f : remaining) {
    bool absorbed = false;
    for (BaselineEntry& e : baseline) {
      if (e.rule == f.rule && e.file == f.file && e.used < e.quota) {
        ++e.used;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) report.push_back(f);
  }
  for (const BaselineEntry& e : baseline) {
    if (e.used < e.quota) {
      report.push_back(
          {relativize(root, baseline_path), e.line, "unused-baseline",
           "baseline grants " + std::to_string(e.quota) + " x " + e.rule +
               " in " + e.file + " but only " + std::to_string(e.used) +
               " fired — ratchet the quota down"});
    }
  }
  report.insert(report.end(), berrors.begin(), berrors.end());
  std::sort(report.begin(), report.end());

  for (const Finding& f : report) print_finding(f);
  std::fprintf(stderr, "hipcloud_flow: %zu TUs, %zu finding%s\n", tus.size(),
               report.size(), report.size() == 1 ? "" : "s");
  return report.empty() ? 0 : 1;
}

// --------------------------------------------------------------------------
// Self-test mode

int run_self_test(const std::string& fixture_root, int jobs) {
  int failures = 0;
  std::vector<fs::path> subdirs;
  for (const auto& ent : fs::directory_iterator(fixture_root)) {
    if (ent.is_directory()) subdirs.push_back(ent.path());
  }
  std::sort(subdirs.begin(), subdirs.end());

  for (const fs::path& sub : subdirs) {
    const bool mini_tree = fs::exists(sub / "src");
    std::vector<std::string> tus;
    std::vector<std::string> incs;
    std::string root = sub.string();
    if (mini_tree) {
      tus = walk_tus(root, {"src"});
      std::vector<std::string> cpps;
      for (const std::string& f : tus) {
        if (f.size() > 4 && f.rfind(".cpp") == f.size() - 4) {
          cpps.push_back(f);
        }
      }
      tus = std::move(cpps);
      incs = {root + "/src", root};
    } else {
      for (const auto& ent : fs::directory_iterator(sub)) {
        if (ent.is_regular_file() && is_tu(ent.path())) {
          tus.push_back(ent.path().string());
        }
      }
      std::sort(tus.begin(), tus.end());
      incs = {root};
    }
    if (tus.empty()) continue;

    RunResult rr = analyze_paths(root, incs, tus, jobs, /*all_paths=*/true);
    const std::vector<Finding> remaining =
        apply_allows(rr.findings, rr.pragmas);

    std::vector<ExpectPragma>& expects = rr.pragmas.expects;
    for (const Finding& f : remaining) {
      bool matched = false;
      for (ExpectPragma& e : expects) {
        if (!e.matched && e.rule == f.rule && e.file == f.file &&
            (e.line == f.line || e.line + 1 == f.line)) {
          e.matched = true;
          matched = true;
          break;
        }
      }
      if (!matched) {
        ++failures;
        std::fprintf(stderr, "self-test(%s): unexpected finding:\n  ",
                     sub.filename().string().c_str());
        print_finding(f);
      }
    }
    for (const ExpectPragma& e : expects) {
      if (!e.matched) {
        ++failures;
        std::fprintf(stderr,
                     "self-test(%s): %s:%d: expected [%s] to fire here, "
                     "it did not\n",
                     sub.filename().string().c_str(), e.file.c_str(), e.line,
                     e.rule.c_str());
      }
    }
  }
  std::fprintf(stderr, "hipcloud_flow self-test: %zu fixture dirs, %d "
                       "failure%s\n",
               subdirs.size(), failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hipflow

int main(int argc, char** argv) {
  std::string root = hipflow::fs::current_path().string();
  std::string compdb, self_test, baseline;
  bool baseline_set = false;
  bool dump_cg = false;
  bool dump_wire = false;
  int jobs = 0;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--dump-callgraph") {
      dump_cg = true;
    } else if (arg == "--dump-wire") {
      dump_wire = true;
    } else if (arg == "--compdb" && i + 1 < argc) {
      compdb = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
      baseline_set = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test = argv[++i];
    } else if (arg == "--help") {
      std::fprintf(
          stderr,
          "usage: hipcloud_flow [--root DIR] [--compdb FILE] [--jobs N]\n"
          "                     [--baseline FILE] [--dump-callgraph]\n"
          "                     [--dump-wire] [dirs...]\n"
          "       hipcloud_flow --self-test FIXTURE_DIR\n");
      return 0;
    } else {
      dirs.push_back(arg);
    }
  }
  jobs = hipflow::parse_jobs(jobs);
  if (!self_test.empty()) return hipflow::run_self_test(self_test, jobs);
  if (dirs.empty()) dirs = {"src", "bench", "examples", "tests"};
  if (!baseline_set) {
    const auto def = hipflow::fs::path(root) / "tools" / "flow" /
                     "baseline.flow";
    std::error_code ec;
    if (hipflow::fs::exists(def, ec)) baseline = def.string();
  }
  return hipflow::run_tree(root, dirs, compdb, baseline, jobs, dump_cg,
                           dump_wire);
}
