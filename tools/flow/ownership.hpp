// hipcloud_flow shard-ownership analyses (interprocedural).
//
// The sharded PDES runtime (PRs 7-8) rests on a convention the compiler
// never sees: shard-confined state is only touched from its owning
// shard's event callbacks, and cross-shard effects flow only through the
// sanctioned seams. These rules check that convention over the linked
// whole-program call graph (callgraph.hpp):
//
//   flow-shard-seam     a crossing primitive (ShardCoordinator::post,
//                       EventLoop::schedule_cross) called from a function
//                       not marked `hipcheck:seam` — cross-shard effects
//                       must go through a sanctioned seam
//   flow-shard-global   a mutable global/static reachable from shard-side
//                       entry points: a function-local `static` declared
//                       in a shard-reachable function, or a namespace-
//                       scope mutable static written by one (const,
//                       constexpr, atomic, thread_local and mutex-family
//                       declarations are exempt)
//   flow-shard-capture  a pooled crypto::Buffer (or one of its window
//                       pointers) passed to a callee that parks that
//                       argument position on an event loop — the
//                       interprocedural generalization of PR 5's
//                       flow-buffer-lifetime: the escape can be any
//                       number of calls deep, across TUs
//
// Two sibling rules (flow-shard-owned, flow-shard-shared) are intra-TU
// and live in analysis.cpp; they share the annotation vocabulary
// (OwnershipMarks) scanned by the driver.
#pragma once

#include <vector>

#include "analysis.hpp"
#include "callgraph.hpp"

namespace hipflow {

/// Run the interprocedural shard-ownership rules over the linked graph.
/// In tree mode (`all_paths == false`) findings are scoped to src/ files
/// — tests and benches drive the coordinator directly on purpose. The
/// driver dedupes and sorts findings globally, same as analyze_tu.
void analyze_ownership(const CallGraph& cg, bool all_paths,
                       std::vector<Finding>& out);

}  // namespace hipflow
