// Fixture: the shard-thread seam. A cross-shard post is a suspension
// point executed later on ANOTHER shard's thread, so a pooled-buffer
// pointer captured into the posted callback outlives both this frame
// and the pool's thread — the exact hazard CrossLinkHalf avoids by
// staging an unpooled copy before coord.post().
#include <cstdint>
#include <utility>

struct Buffer {
  std::uint8_t* data();
  std::uint8_t* prepend(unsigned n);
  unsigned size() const;
};

struct Pool {
  Buffer make(unsigned n, unsigned headroom, unsigned tailroom);
};

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

void consume(Buffer b);

void cross_shard_escape(Pool& pool, ShardCoordinator& coord) {
  Buffer wire = pool.make(256, 32, 16);
  std::uint8_t* payload = wire.data();
  // hipcheck:expect(flow-buffer-lifetime)
  coord.post(0, 1, 100, [payload] { payload[0] = 0; });
  consume(std::move(wire));
}
