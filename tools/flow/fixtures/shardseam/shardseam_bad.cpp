// Fixture: the shard-thread seam. A cross-shard post is a suspension
// point executed later on ANOTHER shard's thread, so a pooled-buffer
// pointer captured into the posted callback outlives both this frame
// and the pool's thread — the exact hazard CrossLinkHalf avoids by
// staging an unpooled copy before coord.post().
#include <cstdint>
#include <utility>

struct Buffer {
  std::uint8_t* data();
  std::uint8_t* prepend(unsigned n);
  unsigned size() const;
};

struct Pool {
  Buffer make(unsigned n, unsigned headroom, unsigned tailroom);
};

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

struct EventLoop {
  template <typename F>
  void schedule_cross(long when, std::uint32_t src_shard,
                      std::uint64_t post_idx, F f);
};

void consume(Buffer b);

void cross_shard_escape(Pool& pool, ShardCoordinator& coord) {
  Buffer wire = pool.make(256, 32, 16);
  std::uint8_t* payload = wire.data();
  // hipcheck:expect(flow-buffer-lifetime)
  coord.post(0, 1, 100, [payload] { payload[0] = 0; });  // hipcheck:expect(flow-shard-seam)
  consume(std::move(wire));
}

// The destination-side twin: schedule_cross is the seam's landing API
// (slicing-invariant seq derived from (src_shard, post_idx)), and it
// parks the callback just like post() does — a pooled window pointer
// captured here dangles by the time the destination shard fires it.
void cross_seq_escape(Pool& pool, EventLoop& dst_loop) {
  Buffer wire = pool.make(256, 32, 16);
  std::uint8_t* window = wire.prepend(8);
  // hipcheck:expect(flow-buffer-lifetime)
  dst_loop.schedule_cross(100, 0, 7, [window] { window[0] = 0; });  // hipcheck:expect(flow-shard-seam)
  consume(std::move(wire));
}
