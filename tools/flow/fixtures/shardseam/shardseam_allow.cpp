// Fixture: the legal way across the shard seam — the callback owns its
// bytes (captured by value / moved), so nothing pooled or frame-local
// crosses to the destination shard's thread. No findings expected.
#include <cstdint>
#include <utility>

struct Buffer {
  Buffer() = default;
  Buffer(Buffer&&) noexcept;
  std::uint8_t* data();
  unsigned size() const;
};

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

Buffer stage_unpooled_copy(const Buffer& pooled);

void cross_shard_staged(ShardCoordinator& coord, const Buffer& pooled) {
  Buffer staged = stage_unpooled_copy(pooled);
  coord.post(0, 1, 100, [owned = std::move(staged)]() mutable {
    owned.data()[0] = 0;
  });
}
