// Fixture: the legal way across the shard seam — the callback owns its
// bytes (captured by value / moved), so nothing pooled or frame-local
// crosses to the destination shard's thread. No findings expected.
#include <cstdint>
#include <utility>

struct Buffer {
  Buffer() = default;
  Buffer(Buffer&&) noexcept;
  std::uint8_t* data();
  unsigned size() const;
};

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
  void register_pair_lookahead(unsigned src, unsigned dst, long lookahead);
  void set_registered_pairs_only(bool on);
};

struct EventLoop {
  template <typename F>
  void schedule_cross(long when, std::uint32_t src_shard,
                      std::uint64_t post_idx, F f);
};

Buffer stage_unpooled_copy(const Buffer& pooled);

// hipcheck:seam — sanctioned crossing: the staged copy owns its bytes.
void cross_shard_staged(ShardCoordinator& coord, const Buffer& pooled) {
  Buffer staged = stage_unpooled_copy(pooled);
  coord.post(0, 1, 100, [owned = std::move(staged)]() mutable {
    owned.data()[0] = 0;
  });
}

// Per-pair lookahead registration path: the seam declares its latency
// bound up front (connect_cross), the coordinator switches to
// registered-pairs-only, and the later cross post carries owned bytes.
// The registration itself parks nothing — no findings expected.
// hipcheck:seam — sanctioned crossing on the registered pair.
void cross_shard_registered(ShardCoordinator& coord, EventLoop& dst_loop,
                            const Buffer& pooled) {
  coord.register_pair_lookahead(0, 1, 200);
  coord.set_registered_pairs_only(true);
  Buffer staged = stage_unpooled_copy(pooled);
  dst_loop.schedule_cross(300, 0, 7, [owned = std::move(staged)]() mutable {
    owned.data()[0] = 0;
  });
}
