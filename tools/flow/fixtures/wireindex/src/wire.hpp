// Wire-taint fixture: shared surface between the entry TU (recv.cpp,
// which carries the hipcheck:wire_input mark) and the parser TU
// (parse.cpp, which never mentions the mark). The finding only exists if
// taint crosses the TU boundary through the linked call graph — this is
// the cross-TU propagation proof for flow-wire-*.
#pragma once
#include <cstdint>

struct BytesView {
  unsigned size() const;
  bool empty() const;
  std::uint8_t operator[](unsigned i) const;
};

std::uint8_t parse_record(BytesView wire);
std::uint8_t parse_guarded(BytesView wire);
