// Wire-taint fixture, TU 1: the network entry point. The mark seeds the
// byte-span parameter; both forwarding calls taint position 0 of the
// parsers defined in the other TU. No finding fires here — the bug
// lives where the bytes are indexed, not where they arrive.
#include "wire.hpp"

// hipcheck:wire_input
void on_datagram(BytesView data) {
  parse_record(data);
  parse_guarded(data);
}
