// Wire-taint fixture, TU 2: the parsers. Neither function is marked —
// their taint arrives interprocedurally from recv.cpp's entry point.
// `parse_record` indexes the tainted span with no dominating size
// check; `parse_guarded` is the annotated negative (the check at the
// top dominates every later index).
#include "wire.hpp"

std::uint8_t parse_record(BytesView wire) {
  // hipcheck:expect(flow-wire-index)
  return wire[0];
}

std::uint8_t parse_guarded(BytesView wire) {
  if (wire.size() < 2) return 0;
  return wire[1];
}
