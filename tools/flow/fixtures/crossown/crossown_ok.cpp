// Fixture: the legal side of flow-shard-owned. Ownership transfer by
// value / init-capture is exactly how CrossLinkHalf crosses the seam:
// the callback owns its bytes, nothing aliases the sending shard.
#include <cstdint>
#include <utility>
#include <vector>

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

struct Node {
  void deliver(int v);
};

// hipcheck:seam
void cross_value_transfer(ShardCoordinator& coord, Node* to) {
  std::vector<int> staged;
  staged.push_back(7);
  // `to` is the destination shard's node: a pointer *into the receiving
  // shard* crosses legally. `owned` is an init-capture move — transfer.
  coord.post(0, 1, 10, [to, owned = std::move(staged)]() mutable {
    to->deliver(static_cast<int>(owned.size()));
  });
}

// hipcheck:seam
void cross_plain_copy(ShardCoordinator& coord, int seq) {
  // Plain value captures of unmarked locals are copies — no aliasing.
  coord.post(0, 1, 10, [seq] { return seq + 1; });
}

// hipcheck:seam
void cross_audited_alias(ShardCoordinator& coord) {
  long probe = 0;
  // Single-shot diagnostic: the caller joins the epoch barrier before
  // hipcheck:allow(flow-shard-owned): barrier joins before the read-back
  coord.post(0, 1, 10, [&probe] { probe = 1; });
}

// Declarator extraction must see through trailing attribute macros (the
// thread-safety annotation shape): the marked name below is `slot_`, not
// the macro or its mutex argument. A failure here surfaces as bad-pragma.
#define FIXTURE_GUARDED_BY(mu)

struct FailureFunnel {
  int mu_ = 0;
  long slot_ FIXTURE_GUARDED_BY(mu_) = 0;  // hipcheck:shard_shared

  // hipcheck:seam
  void reset() { slot_ = 0; }
};
