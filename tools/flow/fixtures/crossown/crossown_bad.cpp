// Fixture: flow-shard-owned — a lambda crossing the shard seam smuggles
// the sending shard's state across threads. Every case here aliases
// state the source shard keeps mutating: `this`, by-reference captures,
// or names carrying the shard_owned annotation. The functions are
// seam-marked on purpose: even a sanctioned seam must not leak
// ownership.
#include <cstdint>
#include <vector>

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

struct EventLoop {
  template <typename F>
  void schedule_cross(long when, std::uint32_t src_shard,
                      std::uint64_t post_idx, F f);
};

struct RackState {
  std::vector<int> inflight_;  // hipcheck:shard_owned
  ShardCoordinator* coord_ = nullptr;

  // hipcheck:seam
  void cross_this() {
    // hipcheck:expect(flow-shard-owned)
    coord_->post(0, 1, 10, [this] { inflight_.push_back(1); });
  }

  // hipcheck:seam
  void cross_default_ref(EventLoop& dst_loop) {
    // hipcheck:expect(flow-shard-owned)
    dst_loop.schedule_cross(10, 0, 1, [&] { return 0; });
  }

  // hipcheck:seam
  void cross_default_value(ShardCoordinator& coord) {
    // The default value capture implicitly copies `this`, so the member
    // use below aliases this rack's shard-owned vector on the receiver.
    // hipcheck:expect(flow-shard-owned)
    coord.post(0, 1, 10, [=] { return inflight_.size(); });
  }
};

// hipcheck:seam
void cross_byref_local(ShardCoordinator& coord) {
  int pending = 0;
  // hipcheck:expect(flow-shard-owned)
  coord.post(0, 1, 10, [&pending] { pending = 1; });
}

// hipcheck:seam
void cross_owned_copy(ShardCoordinator& coord) {
  std::vector<int> rack_queue;  // hipcheck:shard_owned
  // hipcheck:expect(flow-shard-owned)
  coord.post(0, 1, 10, [rack_queue] { return rack_queue.empty(); });
}
