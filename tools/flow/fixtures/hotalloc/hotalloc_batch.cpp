// Fixture: batch/lane hot paths. The multi-buffer ICV scheduler pattern
// (sha_mb.cpp / esp.cpp protect_batch) must stay allocation-free per
// batch — heap-staging lane pointers or formatting per job is a finding;
// the real shape (fixed-size lane arrays, chunked batches) is clean.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

void lanes_compress(std::uint32_t (*states)[8],
                    const std::uint8_t* const* blocks, std::size_t nlanes);
void emit(const char* s);

// hipcheck:hot
void compute_batch_heap(const std::uint8_t* const* msgs, std::size_t njobs) {
  std::vector<const std::uint8_t*> ptrs;
  for (std::size_t i = 0; i < njobs; ++i) {
    // hipcheck:expect(flow-hot-alloc) — growable staging per batch
    ptrs.push_back(msgs[i]);
  }
  std::uint32_t states[8][8];
  lanes_compress(states, ptrs.data(), ptrs.size());
  // hipcheck:expect(flow-hot-alloc) — per-batch format temporary
  emit(std::to_string(njobs).c_str());
}

// hipcheck:hot — the accepted shape: lanes live in fixed stack arrays and
// oversized batches are chunked, so no call allocates.
void compute_batch_stack(const std::uint8_t* const* msgs, std::size_t njobs) {
  std::uint32_t states[8][8];
  const std::uint8_t* ptrs[8];
  std::size_t at = 0;
  while (at < njobs) {
    std::size_t n = njobs - at < 8 ? njobs - at : 8;
    for (std::size_t l = 0; l < n; ++l) ptrs[l] = msgs[at + l];
    lanes_compress(states, ptrs, n);
    at += n;
  }
}
