// Fixture: suppressed negatives — reserve() satisfies the growth rule
// without a pragma, the slow-path string is justified, and lazy log
// macro arguments are exempt by design.
#include <string>
#include <vector>

void emit(const std::string& s);

// hipcheck:hot
void per_packet_clean(int seq) {
  std::vector<int> staging;
  staging.reserve(4);
  staging.push_back(seq);  // reserved above: no finding

  HIPCLOUD_LOG(0, 0, "fx", std::to_string(seq));  // lazy macro arg: exempt

  // hipcheck:allow(flow-hot-alloc): fixture — error slow path, once per conn
  emit(std::to_string(seq));
}
