// Fixture: hot-path allocation true positives, including hotness
// propagating from the marked entry point to a same-TU callee.
#include <functional>
#include <string>
#include <vector>

void emit(const std::string& s);

void format_helper(int seq) {
  // hipcheck:expect(flow-hot-alloc) — hot via the caller below
  emit(std::to_string(seq));
}

// hipcheck:hot
void per_packet(int seq, std::vector<unsigned char>& out) {
  // hipcheck:expect(flow-hot-alloc)
  std::function<void()> cb = [] {};
  cb();

  std::vector<int> staging;
  // hipcheck:expect(flow-hot-alloc)
  staging.push_back(seq);

  format_helper(seq);
}
