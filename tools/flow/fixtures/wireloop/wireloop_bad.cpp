// Wire-taint fixture: a loop bounded by an attacker-chosen count whose
// body never advances the compared values and never escapes — a crafted
// message with count > 0 spins the event loop forever.
struct BytesView {
  unsigned size() const;
  unsigned char operator[](unsigned i) const;
};

unsigned read_u16(BytesView b, unsigned at);
void emit(unsigned v);

// hipcheck:wire_input
void parse_chunks(BytesView wire) {
  unsigned count = read_u16(wire, 0);
  unsigned i = 0;
  // hipcheck:expect(flow-wire-loop)
  while (i < count) {
    emit(i);
  }
}
