// Wire-taint fixture: the two terminating shapes. The indexed for-loop
// makes visible progress on the compared induction variable; the Reader
// loop's cursor is bounds-proven and advances every iteration — no
// findings expected.
struct BytesView {
  unsigned size() const;
  unsigned char operator[](unsigned i) const;
};

struct Reader {
  explicit Reader(BytesView d);
  unsigned remaining() const;
  unsigned u8();
};

unsigned read_u16(BytesView b, unsigned at);
void emit(unsigned v);

// hipcheck:wire_input
void parse_chunks_counted(BytesView wire) {
  unsigned count = read_u16(wire, 0);
  for (unsigned i = 0; i < count; ++i) {
    emit(i);
  }
}

// hipcheck:wire_input
void parse_chunks_stream(BytesView wire) {
  Reader r(wire);
  while (r.remaining() > 0) {
    emit(r.u8());
  }
}
