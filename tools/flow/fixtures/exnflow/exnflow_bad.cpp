// Fixture: exception-flow true positive — a callback posted to the
// EventLoop throws something other than sim::CheckFailure with no
// handler in the callback.
#include <stdexcept>

struct Loop {
  template <typename F>
  void schedule(long delay, F f);
};

struct CheckFailure {};

void exn_bugs(Loop& loop, int mode) {
  loop.schedule(5, [mode] {
    // hipcheck:expect(flow-exn)
    if (mode == 1) throw std::runtime_error("boom");
  });

  // CheckFailure is the sanctioned escape: no finding.
  loop.schedule(5, [mode] {
    if (mode == 2) throw CheckFailure{};
  });

  // A handled throw is no finding either.
  loop.schedule(5, [mode] {
    try {
      if (mode == 3) throw std::runtime_error("handled");
    } catch (const std::runtime_error&) {
    }
  });
}
