// Fixture: suppressed negative for the exception-flow analysis.
#include <stdexcept>

struct Loop {
  template <typename F>
  void schedule(long delay, F f);
};

void exn_justified(Loop& loop, int mode) {
  loop.schedule(5, [mode] {
    // hipcheck:allow(flow-exn): fixture — harness catches at the loop edge
    if (mode == 1) throw std::runtime_error("boom");
  });
}
