// Fixture: pooled-Buffer lifetime true positives — a use after the
// block moved away, and a headroom pointer smuggled into a callback
// that fires after this frame (and the pooled block) is gone.
#include <cstdint>
#include <utility>

struct Buffer {
  std::uint8_t* data();
  std::uint8_t* prepend(unsigned n);
  unsigned size() const;
};

struct Pool {
  Buffer make(unsigned n, unsigned headroom, unsigned tailroom);
};

struct Loop {
  template <typename F>
  void schedule(long delay, F f);
};

void consume(Buffer b);

void lifetime_bugs(Pool& pool, Loop& loop) {
  Buffer buf = pool.make(64, 16, 16);
  consume(std::move(buf));
  // hipcheck:expect(flow-buffer-lifetime)
  const unsigned n = buf.size();
  (void)n;

  Buffer wire = pool.make(64, 16, 16);
  std::uint8_t* hdr = wire.prepend(8);
  // hipcheck:expect(flow-buffer-lifetime)
  loop.schedule(5, [hdr] { hdr[0] = 0; });
  consume(std::move(wire));
}
