// Fixture: suppressed negatives for the buffer-lifetime analysis.
#include <cstdint>
#include <utility>

struct Buffer {
  std::uint8_t* data();
  bool empty() const;
};

struct Pool {
  Buffer make(unsigned n, unsigned headroom, unsigned tailroom);
};

void consume(Buffer b);

void deliberate_moved_from_check(Pool& pool) {
  Buffer buf = pool.make(64, 0, 0);
  consume(std::move(buf));
  // hipcheck:allow(flow-buffer-lifetime): fixture — asserting moved-from state
  const bool gone = buf.empty();
  (void)gone;
}
