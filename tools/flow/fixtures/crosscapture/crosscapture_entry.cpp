// Fixture: flow-shard-capture, entry TU. `send_frame` draws a pooled
// Buffer, takes a window pointer, and hands it to `relay_frame` —
// defined in crosscapture_relay.cpp — which forwards it to `park_frame`,
// which parks it on another shard's loop. The escape is two calls deep
// and crosses a TU boundary: only the linked call graph can see it.
#include <cstdint>
#include <utility>

struct Buffer {
  Buffer(Buffer&&) noexcept;
  std::uint8_t* data();
  std::uint8_t* prepend(unsigned n);
  unsigned size() const;
};

struct Pool {
  Buffer make(unsigned n, unsigned headroom, unsigned tailroom);
};

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

void relay_frame(ShardCoordinator& coord, std::uint8_t* frame);
void consume(Buffer b);

void send_frame(Pool& pool, ShardCoordinator& coord) {
  Buffer wire = pool.make(256, 32, 16);
  std::uint8_t* head = wire.data();
  // hipcheck:expect(flow-shard-capture)
  relay_frame(coord, head);
  consume(std::move(wire));
}
