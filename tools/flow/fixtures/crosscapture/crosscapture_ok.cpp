// Fixture: flow-shard-capture negatives. Passing owned bytes by value
// down the chain is legal ownership transfer — only alias parameters
// (pointers/references) can leak the pooled block. The audited direct
// case shows the allow-pragma escape hatch.
#include <cstdint>
#include <utility>

struct Buffer {
  Buffer(Buffer&&) noexcept;
  std::uint8_t* data();
  unsigned size() const;
};

struct Pool {
  Buffer make(unsigned n, unsigned headroom, unsigned tailroom);
};

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

Buffer stage_unpooled_copy(const Buffer& pooled);
void drain(Buffer b);

// hipcheck:seam
void relay_owned(ShardCoordinator& coord, Buffer owned) {
  // `owned` is a by-value parameter: this frame owns the bytes, and the
  // init-capture moves them into the callback. Nothing pooled escapes.
  coord.post(0, 1, 60, [p = std::move(owned)]() mutable { p.data()[0] = 0; });
}

void send_staged(Pool& pool, ShardCoordinator& coord) {
  Buffer wire = pool.make(128, 32, 16);
  Buffer staged = stage_unpooled_copy(wire);
  relay_owned(coord, std::move(staged));
  drain(std::move(wire));
}

// hipcheck:seam
void audit_raw(ShardCoordinator& coord, std::uint8_t* scratch) {
  // hipcheck:allow(flow-shard-owned): scratch points into the epoch
  coord.post(0, 1, 70, [&scratch] { scratch[0] = 0; });
}
