// Fixture: flow-shard-capture, relay TU. `relay_frame` forwards its
// pointer argument to `park_frame`, whose cross-shard post captures it.
// The link phase closes parameter escapes over forwards, so the finding
// fires back at send_frame's call site in crosscapture_entry.cpp.
#include <cstdint>

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

void park_frame(ShardCoordinator& coord, std::uint8_t* frame);

void relay_frame(ShardCoordinator& coord, std::uint8_t* frame) {
  park_frame(coord, frame);
}

// hipcheck:seam
void park_frame(ShardCoordinator& coord, std::uint8_t* frame) {
  // A copied pointer still aliases the pooled block — parking it is what
  // makes the whole chain an escape.
  coord.post(0, 1, 50, [frame] { frame[0] = 0; });
}
