// Wire-taint fixture: the validated twin. The claimed length is clamped
// against a protocol ceiling before it sizes anything — no findings
// expected.
#include <vector>

struct BytesView {
  unsigned size() const;
  unsigned char operator[](unsigned i) const;
};

unsigned read_u16(BytesView b, unsigned at);

// hipcheck:wire_input
void parse_frame_checked(BytesView wire) {
  unsigned len = read_u16(wire, 0);
  if (len > 4096) return;
  std::vector<unsigned char> out;
  out.resize(len);
}
