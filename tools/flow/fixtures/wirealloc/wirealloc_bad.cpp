// Wire-taint fixture: allocation sized straight from a wire field. A
// 2-byte length can demand any buffer the encoding allows before a
// single byte of payload is validated — the classic amplification bug.
#include <vector>

struct BytesView {
  unsigned size() const;
  unsigned char operator[](unsigned i) const;
};

unsigned read_u16(BytesView b, unsigned at);

// hipcheck:wire_input
void parse_frame(BytesView wire) {
  unsigned len = read_u16(wire, 0);
  std::vector<unsigned char> out;
  // hipcheck:expect(flow-wire-alloc)
  out.resize(len);
}
