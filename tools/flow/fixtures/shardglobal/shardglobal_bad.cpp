// Fixture: flow-shard-global — mutable globals/statics reachable from
// shard-side entry points. Once callbacks run on per-shard worker
// threads, a plain static is a data race: every shard's worker executes
// the callback chain concurrently.

struct EventLoop {
  template <typename F>
  void schedule(long when, F f);
};

void count_event();
void tally_delivery();

// Parking a callback roots everything it calls: count_event (and its
// callees) run shard-side.
void arm_counter(EventLoop& loop) {
  loop.schedule(10, [] { count_event(); });
}

// hipcheck:expect(flow-shard-global)
static long g_total_events = 0;

void count_event() {
  // hipcheck:expect(flow-shard-global)
  static long calls = 0;
  ++calls;
  g_total_events += 1;
  tally_delivery();
}

// Two calls deep from the scheduled callback — reachability is
// transitive over the linked call graph.
void tally_delivery() {
  // hipcheck:expect(flow-shard-global)
  static int last_delta = 0;
  last_delta = 1;
}

// hipcheck:shard_entry
void on_rack_drain() {
  // Explicitly marked entry point: reachable without any scheduling
  // call in this fixture.
  // hipcheck:expect(flow-shard-global)
  static unsigned drains = 0;
  drains++;
}
