// Fixture: flow-shard-global negatives. Immutable, atomic, thread-local
// and mutex-family statics are exempt; mutable statics in functions no
// shard-side entry point reaches are fine; and a justified allow-pragma
// covers the audited exception.
#include <atomic>
#include <mutex>

struct EventLoop {
  template <typename F>
  void schedule(long when, F f);
};

void sample_clock();

void arm_sampler(EventLoop& loop) {
  loop.schedule(10, [] { sample_clock(); });
}

// Exempt by declaration: const / constexpr / atomic / thread_local /
// mutex-family statics are either immutable or synchronized.
static const int g_version = 3;
static constexpr unsigned g_lanes = 8;
static std::atomic<long> g_samples{0};
static std::mutex g_clock_mu;
static thread_local int g_worker_id = -1;

// hipcheck:allow(flow-shard-global): epoch-published snapshot, written
static long g_clock_skew = 0;

void sample_clock() {
  static const char* const kPhase = "steady";  // const: exempt
  g_samples.fetch_add(1);
  g_worker_id = 0;
  (void)kPhase;
  (void)g_version;
  (void)g_lanes;
  g_clock_skew = 1;
}

// Never scheduled, never marked: a mutable static here stays
// single-threaded tooling code.
void offline_report() {
  static int runs = 0;
  runs++;
}
