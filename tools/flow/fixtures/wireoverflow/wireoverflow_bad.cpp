// Wire-taint fixture: the wrap-prone bounds guard. `off + len` are both
// attacker-chosen 16-bit fields widened to unsigned; their sum can wrap
// and the `> size()` comparison then passes for values that read far
// past the buffer. Both operand orders of the comparison are covered.
struct BytesView {
  unsigned size() const;
  unsigned char operator[](unsigned i) const;
};

unsigned read_u16(BytesView b, unsigned at);
void consume(BytesView b, unsigned off, unsigned len);

// hipcheck:wire_input
void parse_tlv(BytesView wire) {
  unsigned off = read_u16(wire, 0);
  unsigned len = read_u16(wire, 2);
  // hipcheck:expect(flow-wire-overflow)
  if (off + len > wire.size()) return;
  consume(wire, off, len);
}

// hipcheck:wire_input
void parse_tlv_reversed(BytesView wire) {
  unsigned off = read_u16(wire, 0);
  unsigned len = read_u16(wire, 2);
  // hipcheck:expect(flow-wire-overflow)
  if (wire.size() < off + len) return;
  consume(wire, off, len);
}
