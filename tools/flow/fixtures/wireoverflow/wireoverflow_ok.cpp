// Wire-taint fixture: the wrap-free spelling of the same guard. With
// `off` already bounded by the first comparison, `size() - off` cannot
// underflow and `len` is compared against the true remaining space — no
// findings expected.
struct BytesView {
  unsigned size() const;
  unsigned char operator[](unsigned i) const;
};

unsigned read_u16(BytesView b, unsigned at);
void consume(BytesView b, unsigned off, unsigned len);

// hipcheck:wire_input
void parse_tlv_safe(BytesView wire) {
  unsigned off = read_u16(wire, 0);
  unsigned len = read_u16(wire, 2);
  if (off > wire.size()) return;
  if (len > wire.size() - off) return;
  consume(wire, off, len);
}
