// Fixture: secret-taint true positives. `session_key` is seeded by its
// byte-buffer declaration + name; `expanded` is tainted by assignment
// propagation from `dh_secret`; `packet_icv` is MAC-shaped material.
#include <cstring>
#include <vector>

using Bytes = std::vector<unsigned char>;

Bytes kdf(const Bytes& in);
const char* to_hex(const Bytes& b);

struct Log {
  static void write(int lvl, long now, const char* tag, const char* msg);
};

void leak_everything(const Bytes& dh_secret, const Bytes& packet_icv,
                     const unsigned char* wire) {
  Bytes session_key = kdf(dh_secret);
  // hipcheck:expect(flow-taint)
  Log::write(0, 0, "hip", to_hex(session_key));

  Bytes expanded;
  expanded = kdf(dh_secret);
  // hipcheck:expect(flow-taint)
  HIPCLOUD_LOG(0, 0, "hip", to_hex(expanded));

  // hipcheck:expect(flow-ct-compare)
  if (std::memcmp(packet_icv.data(), wire, 12) == 0) return;

  // hipcheck:expect(flow-ct-compare)
  const bool same = session_key == expanded;
  (void)same;
}
