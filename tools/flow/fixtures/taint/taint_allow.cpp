// Fixture: the suppressed negatives — every sink is justified, so the
// file must come out clean (and the self-test fails if an allow rots).
#include <cstring>
#include <vector>

using Bytes = std::vector<unsigned char>;

Bytes kdf(const Bytes& in);
const char* to_hex(const Bytes& b);

struct Log {
  static void write(int lvl, long now, const char* tag, const char* msg);
};

void justified(const Bytes& dh_secret, const Bytes& packet_icv,
               const unsigned char* wire) {
  Bytes session_key = kdf(dh_secret);
  // hipcheck:allow(flow-taint): fixture — pretend this is a redacted dump
  Log::write(0, 0, "hip", to_hex(session_key));

  // hipcheck:allow(flow-ct-compare): fixture — length-0 compare, no oracle
  if (std::memcmp(packet_icv.data(), wire, 0) == 0) return;
}
