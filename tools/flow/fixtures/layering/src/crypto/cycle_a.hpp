// Fixture: one half of a textual include cycle. `#pragma once` hides it
// from the compiler; the analyzer still reports the back edge.
#pragma once

#include "crypto/cycle_b.hpp"

namespace fx {
inline int cycle_a() { return 1; }
}  // namespace fx
