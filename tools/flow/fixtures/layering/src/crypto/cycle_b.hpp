// Fixture: the back edge of the include cycle lives here.
#pragma once

// hipcheck:expect(flow-include-cycle)
#include "crypto/cycle_a.hpp"

namespace fx {
inline int cycle_b() { return 2; }
}  // namespace fx
