// Fixture TU pulling the cyclic headers in.
#include "crypto/cycle_a.hpp"

namespace fx {
int use_cycle() { return cycle_a() + cycle_b(); }
}  // namespace fx
