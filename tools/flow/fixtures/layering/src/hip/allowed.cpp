// Fixture: the suppressed negative — a justified allow silences exactly
// one layering finding, and the self-test fails if the allow goes unused.
// hipcheck:allow(flow-layering): fixture exercising the pragma discipline
#include "core/x.hpp"

namespace fx {
int hip_uses_core_with_permission() { return CoreX{}.v; }
}  // namespace fx
