// Fixture: the sim layer is the bottom of the DAG — it may not include
// anything above itself.
// hipcheck:expect(flow-layering)
#include "net/thing.hpp"

namespace fx {
int sim_peeks_at_net() { return Thing{}.id; }
}  // namespace fx
