// Fixture: a core-layer header (top of the DAG).
#pragma once

namespace fx {
struct CoreX {
  int v = 0;
};
}  // namespace fx
