// hipcheck:expect(flow-header-hygiene) — no #pragma once / #ifndef guard.
namespace fx {
struct Unguarded {
  int x = 0;
};
}  // namespace fx
