// Fixture TU: pulls in the unguarded header (net -> net is a legal edge;
// the hygiene finding is reported against the header itself) and commits
// a relative-include sin of its own.
#include "net/unguarded.hpp"

// hipcheck:expect(flow-header-hygiene)
#include "thing.hpp"

namespace fx {
int use_unguarded() { return Unguarded{}.x + Thing{}.id; }
}  // namespace fx
