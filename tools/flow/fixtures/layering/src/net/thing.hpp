// Fixture: a well-behaved net-layer header.
#pragma once

namespace fx {
struct Thing {
  int id = 0;
};
}  // namespace fx
