// Callgraph fixture, TU 2: the shard-side chain. `encode_frame` is only
// rooted through TU 1's scheduled lambda; `on_frame_entry` is rooted by
// its explicit mark; the atomic static is exempt from flow-shard-global.
#include <atomic>

#include "pipeline.hpp"

static std::atomic<long> g_frames{0};

void encode_frame() {
  g_frames.fetch_add(1);
  emit_stats();
}

void emit_stats() {
  g_frames.load();
}

// hipcheck:shard_entry
void on_frame_entry() {
  encode_frame();
}
