// Callgraph fixture, TU 1: the scheduling side. `arm_pipeline` roots
// `encode_frame` (defined in the other TU); `forward_frame` forwards its
// pointer argument into `park_audit`, whose escape closes back over the
// forward edge at link time.
#include "pipeline.hpp"

void forward_frame(ShardCoordinator& coord, std::uint8_t* frame);

void arm_pipeline(EventLoop& loop) {
  loop.schedule(5, [] { encode_frame(); });
}

// hipcheck:seam
void park_audit(ShardCoordinator& coord, std::uint8_t* frame) {
  coord.post(0, 1, 20, [frame] { frame[0] = 0; });
}

void forward_frame(ShardCoordinator& coord, std::uint8_t* frame) {
  park_audit(coord, frame);
}
