// Callgraph fixture: shared surface between the two TUs. The fixture is
// deliberately clean (no findings) — it exists to pin the linked graph:
// tools/flow/fixtures/callgraph/expected_callgraph.txt is diffed against
// `hipcloud_flow --dump-callgraph` output at -j 1/2/8.
#pragma once
#include <cstdint>

struct EventLoop {
  template <typename F>
  void schedule(long when, F f);
};

struct ShardCoordinator {
  template <typename F>
  void post(unsigned src, unsigned dst, long when, F f);
};

void ingest_frame(ShardCoordinator& coord, std::uint8_t* frame);
void encode_frame();
void emit_stats();
