#include "tu.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hipflow {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string relativize(const std::string& root, const std::string& abs) {
  std::error_code ec;
  const fs::path rel = fs::relative(abs, root, ec);
  if (ec || rel.empty() || rel.generic_string().rfind("..", 0) == 0) {
    return fs::path(abs).generic_string();
  }
  return rel.generic_string();
}

FileId FileTable::intern(const std::string& rel_path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(rel_path);
  if (it != ids_.end()) return it->second;
  const FileId id = static_cast<FileId>(paths_.size());
  paths_.push_back(rel_path);
  ids_.emplace(rel_path, id);
  return id;
}

namespace {

// Object-like macro: name -> replacement tokens (lexed once, at the
// definition site). Function-like macros are left unexpanded — analyses
// treat their names as ordinary calls, which is what the taint and
// exception rules want for HIPCLOUD_LOG / CHECK anyway.
struct Macro {
  std::vector<Token> body;
  bool function_like = false;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Join backslash-continued directive lines, returning the number of raw
// lines consumed.
std::size_t read_directive(const std::vector<std::string>& lines,
                           std::size_t i, std::string& out) {
  out = lines[i];
  std::size_t used = 1;
  while (!out.empty() && out.back() == '\\' && i + used < lines.size()) {
    out.pop_back();
    out += lines[i + used];
    ++used;
  }
  return used;
}

}  // namespace

struct Preprocessor::TuState {
  TranslationUnit tu;
  std::set<std::string> included_once;     // rel paths already inlined
  std::vector<std::string> include_stack;  // rel paths, for cycle report
  std::map<std::string, Macro> macros;
  int if0_depth = 0;  // nesting inside an `#if 0` dead region
};

void Preprocessor::process_file(const std::string& abs, const std::string& rel,
                                TuState& st) const {
  std::string src;
  if (!read_file(abs, src)) return;
  const FileId fid = files_->intern(rel);
  st.tu.files.push_back(fid);

  std::vector<std::string> lines;
  {
    std::istringstream in(src);
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }

  const bool is_header = rel.size() > 4 && (rel.rfind(".hpp") == rel.size() - 4 ||
                                            rel.rfind(".h") == rel.size() - 2);
  bool guarded = false;
  bool saw_tokens = false;

  // Non-directive text is batched into chunks and lexed with the line of
  // the chunk start, so token line numbers stay exact.
  std::string chunk;
  int chunk_line = 1;
  auto flush = [&] {
    if (chunk.empty()) return;
    std::vector<Token> toks = lex(chunk, fid, chunk_line);
    // Object-like macro expansion, one level deep per site (enough for
    // constant aliases; recursive schemes are not used in this tree).
    for (Token& t : toks) {
      auto it = st.macros.find(t.text);
      if (it == st.macros.end() || it->second.function_like ||
          it->second.body.size() != 1) {
        st.tu.tokens.push_back(std::move(t));
        continue;
      }
      Token rep = it->second.body.front();
      rep.file = t.file;
      rep.line = t.line;
      st.tu.tokens.push_back(std::move(rep));
    }
    chunk.clear();
  };

  for (std::size_t i = 0; i < lines.size();) {
    const std::string& raw = lines[i];
    std::size_t ws = 0;
    while (ws < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[ws]))) {
      ++ws;
    }
    const bool directive = ws < raw.size() && raw[ws] == '#';
    if (!directive) {
      if (st.if0_depth == 0) {
        if (chunk.empty()) chunk_line = static_cast<int>(i + 1);
        chunk += raw;
        chunk += '\n';
        if (!trim(raw).empty()) saw_tokens = true;
      }
      ++i;
      continue;
    }

    std::string dir;
    const std::size_t used = read_directive(lines, i, dir);
    const int dline = static_cast<int>(i + 1);
    i += used;
    flush();

    std::istringstream ds(trim(dir).substr(1));  // past '#'
    std::string kw;
    ds >> kw;

    if (st.if0_depth > 0) {
      // Inside a dead `#if 0` region only the nesting structure matters.
      if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
        ++st.if0_depth;
      } else if (kw == "endif") {
        --st.if0_depth;
      } else if (kw == "else" || kw == "elif") {
        if (st.if0_depth == 1) st.if0_depth = 0;  // live again
      }
      continue;
    }

    if (kw == "pragma") {
      std::string what;
      ds >> what;
      if (what == "once") guarded = true;
      continue;
    }
    if (kw == "ifndef") {
      // Classic include guard: #ifndef FOO as the first directive before
      // any real tokens counts as guarded.
      if (is_header && !saw_tokens) guarded = true;
      continue;
    }
    if (kw == "if") {
      std::string cond;
      std::getline(ds, cond);
      if (trim(cond) == "0") st.if0_depth = 1;
      continue;
    }
    if (kw == "define") {
      std::string rest;
      std::getline(ds, rest);
      rest = trim(rest);
      std::size_t p = 0;
      while (p < rest.size() &&
             (std::isalnum(static_cast<unsigned char>(rest[p])) ||
              rest[p] == '_')) {
        ++p;
      }
      if (p == 0) continue;
      Macro m;
      m.function_like = p < rest.size() && rest[p] == '(';
      if (!m.function_like) {
        m.body = lex(rest.substr(p), fid, dline);
      }
      st.macros[rest.substr(0, p)] = std::move(m);
      continue;
    }
    if (kw == "undef") {
      std::string nm;
      ds >> nm;
      st.macros.erase(nm);
      continue;
    }
    if (kw != "include") continue;  // ifdef/else/elif/endif/error/...

    std::string rest;
    std::getline(ds, rest);
    rest = trim(rest);
    if (rest.size() < 2) continue;
    const bool angled = rest[0] == '<';
    const char closer = angled ? '>' : '"';
    const std::size_t close = rest.find(closer, 1);
    if (close == std::string::npos) continue;
    const std::string target = rest.substr(1, close - 1);

    IncludeEdge edge{fid, target, "", dline, angled};
    std::string hit_abs, hit_rel;
    if (!angled) {
      // Standard quote-include order: the including file's own directory
      // first, then the configured include dirs. Relative hits still get
      // flagged by header hygiene — but only if they resolve in-project.
      std::vector<std::string> search;
      search.push_back(fs::path(abs).parent_path().string());
      search.insert(search.end(), include_dirs_.begin(), include_dirs_.end());
      for (const std::string& dirp : search) {
        const fs::path cand = fs::path(dirp) / target;
        std::error_code ec;
        if (fs::is_regular_file(cand, ec)) {
          hit_abs = cand.string();
          hit_rel = relativize(root_, hit_abs);
          break;
        }
      }
    }
    edge.resolved = hit_rel;
    st.tu.includes.push_back(edge);
    if (hit_abs.empty()) continue;

    // Cycle: the header is already on the include stack.
    bool on_stack = false;
    for (const std::string& s : st.include_stack) {
      if (s == hit_rel) {
        on_stack = true;
        break;
      }
    }
    if (on_stack) {
      std::string text;
      bool in_cycle = false;
      for (const std::string& s : st.include_stack) {
        if (s == hit_rel) in_cycle = true;
        if (in_cycle) {
          text += s;
          text += " -> ";
        }
      }
      text += hit_rel;
      st.tu.cycles.push_back({fid, dline, text});
      continue;
    }
    if (st.included_once.count(hit_rel) != 0) continue;
    st.included_once.insert(hit_rel);
    st.include_stack.push_back(hit_rel);
    process_file(hit_abs, hit_rel, st);
    st.include_stack.pop_back();
  }
  flush();

  if (is_header && !guarded && rel.rfind("src/", 0) == 0) {
    st.tu.unguarded_headers.push_back(fid);
  }
}

TranslationUnit Preprocessor::preprocess(const std::string& abs_path) const {
  TuState st;
  const std::string rel = relativize(root_, abs_path);
  st.tu.main_file = files_->intern(rel);
  st.included_once.insert(rel);
  st.include_stack.push_back(rel);
  process_file(abs_path, rel, st);
  return std::move(st.tu);
}

}  // namespace hipflow
