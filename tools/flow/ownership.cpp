#include "ownership.hpp"

namespace hipflow {

namespace {

bool in_scope(const std::string& file, bool all_paths) {
  return all_paths || file.rfind("src/", 0) == 0;
}

std::string with_path(const CallGraph& cg, const std::string& fn) {
  const std::string p = cg.path_to(fn);
  if (p.empty()) return "`" + fn + "`";
  return "`" + fn + "` (shard path " + p + ")";
}

}  // namespace

void analyze_ownership(const CallGraph& cg, bool all_paths,
                       std::vector<Finding>& out) {
  for (const auto& [name, n] : cg.nodes) {
    // flow-shard-seam: crossing primitives only from seam functions.
    if (!n.seam) {
      for (const auto& cc : n.cross_calls) {
        if (!in_scope(cc.file, all_paths)) continue;
        out.push_back(
            {cc.file, cc.line, "flow-shard-seam",
             "`" + cc.callee + "` crosses shards from " +
                 with_path(cg, name) +
                 ", which is not marked hipcheck:seam — cross-shard "
                 "effects must flow through a sanctioned seam "
                 "(CrossLinkHalf, the coordinator drain)"});
      }
    }

    // flow-shard-global (block-scope half): a mutable function-local
    // static in shard-reachable code is shared by every worker thread
    // that runs the callback.
    if (cg.shard_reachable.count(name) != 0) {
      for (const StaticDecl& sd : n.statics) {
        if (!in_scope(sd.file, all_paths)) continue;
        out.push_back(
            {sd.file, sd.line, "flow-shard-global",
             "mutable function-local static `" + sd.name + "` in " +
                 with_path(cg, name) +
                 " — shard workers race on it; make it const, atomic or "
                 "thread_local"});
      }
    }

    // flow-shard-capture: pooled buffer handed to a callee that parks
    // that argument position on an event loop (any depth, cross-TU).
    for (const auto& pa : n.pooled_args) {
      if (!in_scope(pa.file, all_paths)) continue;
      auto it = cg.nodes.find(pa.callee);
      if (it == cg.nodes.end()) continue;
      if (it->second.escaping_params.count(pa.arg_pos) == 0) continue;
      out.push_back(
          {pa.file, pa.line, "flow-shard-capture",
           "`" + pa.arg_name + "` (pooled buffer window) passed to `" +
               pa.callee + "`, which parks argument " +
               std::to_string(pa.arg_pos) +
               " on an event loop — the pooled block is recycled before "
               "the callback fires (escape closes through the call "
               "graph)"});
    }
  }

  // flow-shard-global (namespace-scope half): a mutable static written
  // by any shard-reachable function. Reported at the declaration so the
  // finding (and its allow-pragma) lives next to the variable.
  for (const auto& [gname, g] : cg.globals) {
    if (!in_scope(g.file, all_paths)) continue;
    for (const auto& [fname, n] : cg.nodes) {
      if (cg.shard_reachable.count(fname) == 0) continue;
      if (n.writes.count(gname) == 0) continue;
      out.push_back(
          {g.file, g.line, "flow-shard-global",
           "mutable static `" + gname + "` written by shard-reachable " +
               with_path(cg, fname) +
               " — unsynchronized cross-shard write; make it atomic, "
               "guard it, or confine it to one shard"});
    }
  }
}

}  // namespace hipflow
