// hipcloud_flow token model — the PR 4 hipcheck tokenizer, extended with
// file attribution so tokens survive preprocessing. A translation unit's
// token stream interleaves tokens from the .cpp and from every project
// header it pulls in; each token remembers the physical file and line it
// came from, which is where findings (and their hipcheck:allow pragmas)
// are reported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hipflow {

/// Index into the analyzer's file table (paths are interned once so a
/// token costs one int, not one std::string copy of the path).
using FileId = std::uint32_t;

struct Token {
  std::string text;
  FileId file = 0;
  int line = 0;
};

/// Lex one physical file's source into tokens. Comments, string/char
/// literals and raw strings are stripped (their line counts preserved);
/// `::` and `->` fold into single tokens so rule patterns can tell scope
/// resolution from a plain colon. Preprocessor directive lines are NOT
/// lexed here — the preprocessor consumes them line-wise first and only
/// hands non-directive text to the lexer.
std::vector<Token> lex(const std::string& src, FileId file, int first_line);

}  // namespace hipflow
