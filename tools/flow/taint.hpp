// hipcloud_flow untrusted-input taint & bounds analysis (flow-wire-*).
//
// The third interprocedural analysis family, alongside the per-TU rules
// (analysis.hpp) and the shard-ownership rules (ownership.hpp). Network
// entry points are annotated `// hipcheck:wire_input` above their
// definition; their byte-span parameters (Bytes, BytesView, Buffer,
// span) and Packet parameters (whose `.payload` carries raw datagram
// bytes) are the taint sources. Taint propagates through the cross-TU
// graph at call sites: passing a tainted byte span (or a tainted Packet)
// at argument position k taints position k of every same-named
// definition whose own parameter k is byte-typed — the name-keyed merge
// over-approximates exactly like the call graph does, and the byte-type
// gate keeps `Ipv4Addr::parse(std::string_view)` from inheriting
// `HipMessage::parse(BytesView)`'s taint.
//
// The blessed sanitization sink is `hipcloud::wire::Reader`
// (src/net/wire_reader.hpp): every value produced by a Reader, and every
// local assigned from one, is bounds-proven and therefore clean. `.size()`
// and `.empty()` results on tainted buffers are likewise clean — they
// describe the real buffer, not attacker-claimed lengths.
//
// Rule catalogue (DESIGN.md §5k):
//   flow-wire-index     tainted buffer indexed/sliced without a
//                       dominating `.size()`/`.empty()` check (or a
//                       tainted offset/length used to slice it)
//   flow-wire-overflow  wrap-prone guard `off + len > buf.size()` with
//                       tainted wide operands — the sum wraps for
//                       attacker-chosen values; `len > size - off` does
//                       not
//   flow-wire-alloc     allocation (resize/reserve) sized by a tainted
//                       value before any comparison validates it
//   flow-wire-loop      loop whose bound is tainted and whose body makes
//                       no visible progress (no ++/+=/--/-=, no break or
//                       return, no Reader advance) — a crafted message
//                       spins it forever
#pragma once

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis.hpp"
#include "callgraph.hpp"
#include "tu.hpp"

namespace hipflow {

/// The resolved interprocedural taint map: function name (last
/// component, same key as the call graph) -> parameter positions that
/// receive raw wire bytes on some path from a hipcheck:wire_input entry.
/// Positions are interpreted per definition: a byte-typed parameter at
/// that position is a tainted span, a Packet parameter a tainted
/// carrier, anything else ignores the entry.
struct WireTaint {
  std::map<std::string, std::set<int>> fns;
};

/// Resolve the taint map over all TUs (serial, unit order — byte-
/// identical at any extraction parallelism) and run the flow-wire-*
/// rules over every tainted definition. Findings outside src/ are
/// dropped unless `all_paths` (self-test fixtures) is set.
WireTaint analyze_wire(const std::vector<TranslationUnit>& units,
                       const FileTable& files, const OwnershipMarks& marks,
                       bool all_paths, std::vector<Finding>& out);

/// Line-oriented dump of the taint map for the determinism test:
/// `wire <fn> <pos>[,<pos>...]` per tainted function, sorted by name.
void dump_wire_taint(const WireTaint& taint, std::FILE* out);

}  // namespace hipflow
