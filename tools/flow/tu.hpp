// hipcloud_flow translation-unit model.
//
// The preprocessor is the part PR 4's linter deliberately lacked: it
// resolves `#include "..."` against the project include directories,
// inlines each project header once per TU (tracking the include stack, so
// textual include cycles are caught even though `#pragma once` would mask
// them at compile time), records every include edge with its source
// location, and keeps a table of object-like `#define`s which it expands
// (depth-limited) in the token stream. System includes (`<...>`) and
// unresolvable quotes are recorded as edges but not descended into.
//
// Conditional compilation is handled permissively: `#if 0` blocks are
// skipped, every other branch contributes tokens. For analysis purposes
// seeing both sides of an `#ifdef` is strictly more conservative than
// picking one.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "token.hpp"

namespace hipflow {

/// One `#include` directive as seen in a physical file.
struct IncludeEdge {
  FileId from;
  std::string target;    // include text as written ("sim/log.hpp", "vector")
  std::string resolved;  // root-relative path if resolved in-project, else ""
  int line = 0;
  bool angled = false;   // <...> include
};

/// Process-wide interning table of physical files (root-relative paths).
/// Shared by all worker threads; lookups after the parallel phase are
/// lock-free reads.
class FileTable {
 public:
  FileId intern(const std::string& rel_path);
  const std::string& path(FileId id) const { return paths_[id]; }
  std::size_t size() const { return paths_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> paths_;
  std::map<std::string, FileId> ids_;
};

/// A fully preprocessed translation unit.
struct TranslationUnit {
  FileId main_file = 0;
  std::vector<Token> tokens;                 // post-include, post-expansion
  std::vector<IncludeEdge> includes;         // every edge seen in this TU
  std::vector<FileId> files;                 // physical files contributing
  // Include cycles found while descending (reported once per TU; the
  // driver dedupes globally). Each entry is (file, line, cycle text).
  struct Cycle {
    FileId file;
    int line;
    std::string text;
  };
  std::vector<Cycle> cycles;
  // src/ headers inlined into this TU that have neither `#pragma once`
  // nor an `#ifndef` guard as their first directive.
  std::vector<FileId> unguarded_headers;
};

/// Preprocessor configuration + driver. One instance is shared across
/// worker threads; per-TU state lives on the stack of preprocess().
class Preprocessor {
 public:
  Preprocessor(std::string root, std::vector<std::string> include_dirs,
               FileTable* files)
      : root_(std::move(root)),
        include_dirs_(std::move(include_dirs)),
        files_(files) {}

  /// Preprocess the TU rooted at `abs_path` (absolute or root-relative).
  TranslationUnit preprocess(const std::string& abs_path) const;

  const std::string& root() const { return root_; }

 private:
  struct TuState;
  void process_file(const std::string& abs, const std::string& rel,
                    TuState& st) const;

  std::string root_;
  std::vector<std::string> include_dirs_;
  FileTable* files_;
};

/// Read a whole file; returns false if unreadable.
bool read_file(const std::string& path, std::string& out);

/// Root-relative form of `abs` (generic slashes); `abs` unchanged if it
/// is not under root.
std::string relativize(const std::string& root, const std::string& abs);

}  // namespace hipflow
