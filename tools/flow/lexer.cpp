#include "token.hpp"

#include <algorithm>
#include <cctype>

namespace hipflow {

std::vector<Token> lex(const std::string& src, FileId file, int first_line) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = first_line;

  auto at = [&](std::size_t k) -> char { return k < n ? src[k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && at(i + 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && at(i + 1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, end + close.size());
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        ++j;
      }
      out.push_back({src.substr(i, j - i), file, line});
      i = j;
      continue;
    }
    // Numbers (pp-number, loosely).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      out.push_back({src.substr(i, j - i), file, line});
      i = j;
      continue;
    }
    if (c == ':' && at(i + 1) == ':') {
      out.push_back({"::", file, line});
      i += 2;
      continue;
    }
    if (c == '-' && at(i + 1) == '>') {
      out.push_back({"->", file, line});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), file, line});
    ++i;
  }
  return out;
}

}  // namespace hipflow
