// hipcloud_flow analyses.
//
// Five flow-aware checks over preprocessed translation units. Rule names
// all carry the `flow-` prefix so `hipcheck:allow(...)` pragmas can never
// collide with the PR 4 token linter's rules:
//
//   flow-layering        include edge violates the layer DAG
//                        sim < crypto < net < {hip,tls} < apps < cloud < core
//   flow-include-cycle   textual include cycle (masked at compile time by
//                        `#pragma once`, still a layering smell)
//   flow-header-hygiene  src/ header without a guard, .cpp included as a
//                        header, or a project include that is not
//                        layer-qualified ("sim/log.hpp", never "log.hpp")
//   flow-taint           a key/secret-derived value reaches a logging or
//                        JSON/printf sink (intraprocedural, name+type
//                        seeded, assignment-propagated)
//   flow-ct-compare      key or MAC/ICV material compared with memcmp or
//                        ==/!= instead of crypto::ct_equal
//   flow-buffer-lifetime pooled crypto::Buffer used after std::move, or a
//                        headroom pointer (data()/prepend()/append())
//                        captured by a callback that outlives the frame
//                        (EventLoop suspension point)
//   flow-hot-alloc       implicit heap traffic (std::function, string
//                        temporaries, unreserved vector growth) in a
//                        function marked `hipcheck:hot` or reachable from
//                        one within the TU
//   flow-exn             a callback handed to EventLoop::schedule/
//                        schedule_at/post can leak an exception other
//                        than sim::CheckFailure
//   flow-shard-owned     a lambda crossing the shard seam captures
//                        `this`, by-reference state, or a
//                        hipcheck:shard_owned name (intra-TU half of the
//                        shard-ownership family; see ownership.hpp)
//   flow-shard-shared    a write to hipcheck:shard_shared state outside
//                        a hipcheck:seam function
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tu.hpp"

namespace hipflow {

struct OwnershipMarks;  // callgraph.hpp

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string msg;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.msg < b.msg;
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.msg == b.msg;
  }
};

struct AnalysisOptions {
  // In tree mode the taint/ct-compare family is scoped to src/ (tests
  // legitimately compare derived keys with EXPECT_EQ); self-test mode
  // turns every rule on for every fixture path.
  bool all_paths = false;
  // Lines (per physical file) carrying a `hipcheck:hot` marker; a
  // function whose name line is within 3 lines below a marker is hot.
  const std::map<std::string, std::vector<int>>* hot_marks = nullptr;
  // Shard-ownership annotations (hipcheck:shard_owned / shard_shared /
  // seam / shard_entry), scanned by the driver alongside the hot marks.
  // Drives the intra-TU flow-shard-owned / flow-shard-shared rules; the
  // interprocedural rules get the same marks through extract_tu_summary.
  const OwnershipMarks* marks = nullptr;
};

/// Run every analysis over one TU. Findings are appended unsorted and
/// undeduplicated; the driver dedupes globally (headers appear in many
/// TUs) and sorts for deterministic output.
void analyze_tu(const TranslationUnit& tu, const FileTable& files,
                const AnalysisOptions& opts, std::vector<Finding>& out);

}  // namespace hipflow
