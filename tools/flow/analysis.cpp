#include "analysis.hpp"

#include <algorithm>
#include <cctype>

#include "callgraph.hpp"

namespace hipflow {

namespace {

// Token helpers (tok/is_ident/match_paren/match_brace/name_parts/
// has_part) and the function-span scanner now live in callgraph.hpp so
// the whole-program extractor and these per-TU rules agree on them.

// Secret-name vocabularies. `kStrongSecret` parts taint an identifier on
// sight (member fields like `master_`, `dh_secret`); the wider
// `kByteSecret` set additionally taints identifiers only when they are
// declared with a byte-buffer type in the scanned function, which keeps
// string/database "key" variables out.
const std::set<std::string>& strong_secret_parts() {
  static const std::set<std::string> s = {"keymat", "secret", "kij", "ikm",
                                          "master"};
  return s;
}
const std::set<std::string>& byte_secret_parts() {
  static const std::set<std::string> s = {"keymat", "secret", "kij",  "ikm",
                                          "master", "key",    "keys"};
  return s;
}
// MAC/ICV-shaped names: not secrets, but comparing them with memcmp/==
// leaks a timing oracle, so they join the ct-compare rule.
const std::set<std::string>& mac_parts() {
  static const std::set<std::string> s = {"mac", "icv", "hmac", "digest"};
  return s;
}
// Keymat's fields are key material wherever they surface.
const std::set<std::string>& keymat_members() {
  static const std::set<std::string> s = {"hip_hmac_out", "hip_hmac_in",
                                          "esp_enc_out",  "esp_auth_out",
                                          "esp_enc_in",   "esp_auth_in"};
  return s;
}

bool byte_type_at(const std::vector<Token>& t, std::size_t i) {
  const std::string& s = t[i].text;
  return s == "Bytes" || s == "BytesView" || s == "Buffer";
}

// Token ranges whose contents are exempt from hot-path accounting:
// lazily-evaluated (HIPCLOUD_LOG) or debug-build-only macro arguments.
const std::set<std::string>& lazy_macro_names() {
  static const std::set<std::string> s = {"HIPCLOUD_LOG", "DCHECK", "AUDIT",
                                          "HIPCLOUD_CHECK_MSG", "CHECK"};
  return s;
}

std::vector<std::pair<std::size_t, std::size_t>> lazy_ranges(
    const std::vector<Token>& t, std::size_t b, std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = b; i < e; ++i) {
    if (lazy_macro_names().count(t[i].text) != 0 && tok(t, i + 1) == "(") {
      out.emplace_back(i + 1, match_paren(t, i + 1));
    }
  }
  return out;
}

bool in_ranges(const std::vector<std::pair<std::size_t, std::size_t>>& rs,
               std::size_t i) {
  for (const auto& r : rs) {
    if (i >= r.first && i <= r.second) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Function extraction — shared FnSpan scanner from callgraph.hpp.

void mark_hot(const std::vector<Token>& t, const FileTable& files,
              const AnalysisOptions& opts, std::vector<FnSpan>& fns) {
  if (opts.hot_marks != nullptr) {
    for (FnSpan& f : fns) {
      const Token& nt = t[f.name_idx];
      auto it = opts.hot_marks->find(files.path(nt.file));
      if (it == opts.hot_marks->end()) continue;
      for (int ml : it->second) {
        if (ml <= nt.line && nt.line - ml <= 3) {
          f.hot = true;
          break;
        }
      }
    }
  }
  // Propagate hotness to same-TU callees by name, to a fixpoint: the
  // packet path is hot transitively, not just at its entry points.
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::string> hot_names;
    for (const FnSpan& f : fns) {
      if (f.hot) {
        const auto lazy = lazy_ranges(t, f.body_open, f.body_close);
        for (std::size_t j = f.body_open; j < f.body_close; ++j) {
          if (tok(t, j + 1) == "(" && is_ident(t[j].text) &&
              !in_ranges(lazy, j)) {
            hot_names.insert(t[j].text);
          }
        }
      }
    }
    for (FnSpan& f : fns) {
      if (!f.hot && hot_names.count(f.name) != 0) {
        f.hot = true;
        changed = true;
      }
    }
  }
}

// --------------------------------------------------------------------------
// 1. Layering DAG + header hygiene

const std::map<std::string, std::set<std::string>>& layer_allowed() {
  // What each src/ layer may include. The DAG grows monotonically:
  // sim < crypto < net < {hip, tls} < apps < cloud < core. `apps` sits
  // below cloud/core on purpose — the paper's claim is that legacy
  // applications ride the secure substrate unmodified, so application
  // code must not see HIP, cloud wiring, or the testbed.
  static const std::map<std::string, std::set<std::string>> m = {
      {"sim", {"sim"}},
      {"crypto", {"crypto", "sim"}},
      {"net", {"net", "crypto", "sim"}},
      {"hip", {"hip", "net", "crypto", "sim"}},
      {"tls", {"tls", "net", "crypto", "sim"}},
      {"apps", {"apps", "tls", "net", "crypto", "sim"}},
      {"cloud", {"cloud", "apps", "hip", "tls", "net", "crypto", "sim"}},
      {"core",
       {"core", "cloud", "apps", "hip", "tls", "net", "crypto", "sim"}},
  };
  return m;
}

std::string layer_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

void analyze_layering(const TranslationUnit& tu, const FileTable& files,
                      std::vector<Finding>& out) {
  for (const IncludeEdge& e : tu.includes) {
    const std::string& from = files.path(e.from);
    if (e.target.size() > 4 &&
        e.target.rfind(".cpp") == e.target.size() - 4) {
      out.push_back({from, e.line, "flow-header-hygiene",
                     "`" + e.target +
                         "` — including a .cpp compiles its definitions "
                         "into every includer; extract a header"});
      continue;
    }
    const std::string from_layer = layer_of(from);
    if (from_layer.empty()) continue;  // bench/tests/tools see everything
    if (e.angled) continue;            // system headers are layer-free
    const std::size_t slash = e.target.find('/');
    const std::string to_layer =
        slash == std::string::npos ? "" : e.target.substr(0, slash);
    if (layer_allowed().count(to_layer) == 0) {
      if (!e.resolved.empty()) {
        out.push_back({from, e.line, "flow-header-hygiene",
                       "project include `" + e.target +
                           "` must be layer-qualified (\"" + from_layer +
                           "/...\"), not relative"});
      }
      continue;  // non-project quote include (third-party), skip
    }
    const std::set<std::string>& allowed = layer_allowed().at(from_layer);
    if (allowed.count(to_layer) == 0) {
      out.push_back({from, e.line, "flow-layering",
                     "layer `" + from_layer + "` must not include `" +
                         e.target + "` (layer `" + to_layer +
                         "` is above it in the DAG sim < crypto < net < "
                         "hip/tls < apps < cloud < core)"});
    }
  }
  for (const TranslationUnit::Cycle& c : tu.cycles) {
    out.push_back({files.path(c.file), c.line, "flow-include-cycle",
                   "include cycle: " + c.text});
  }
  for (FileId f : tu.unguarded_headers) {
    out.push_back({files.path(f), 1, "flow-header-hygiene",
                   "header lacks `#pragma once` (or an #ifndef guard)"});
  }
}

// --------------------------------------------------------------------------
// 2. Secret taint + constant-time comparison

struct TaintState {
  std::set<std::string> tainted;  // identifiers holding key material
};

bool tainted_occurrence(const std::vector<Token>& t, std::size_t i,
                        const TaintState& st) {
  const std::string& s = t[i].text;
  if (!is_ident(s)) return false;
  if (st.tainted.count(s) != 0) return true;
  if (has_part(s, strong_secret_parts())) return true;
  // Keymat member access: `.esp_enc_out` etc.
  if (keymat_members().count(s) != 0 &&
      (tok(t, i - 1) == "." || tok(t, i - 1) == "->")) {
    return true;
  }
  return false;
}

bool range_tainted(const std::vector<Token>& t, std::size_t b, std::size_t e,
                   const TaintState& st) {
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (tainted_occurrence(t, i, st)) return true;
  }
  return false;
}

bool mac_like(const std::string& id) { return has_part(id, mac_parts()); }

void analyze_taint(const std::vector<Token>& t, const FileTable& files,
                   const FnSpan& fn, const AnalysisOptions& opts,
                   std::vector<Finding>& out) {
  if (!opts.all_paths) {
    // Sink scope: src/ only. Tests compare derived keys with EXPECT_EQ
    // and print diagnostics on failure — that is the test harness's job.
    const std::string& fpath = files.path(t[fn.name_idx].file);
    if (fpath.rfind("src/", 0) != 0) return;
  }
  TaintState st;

  // Seed: parameters and locals declared with a byte-buffer type whose
  // name says key material. One forward pass then propagates through
  // assignment (`x = <tainted expr>` taints x).
  const std::size_t scan_b = fn.args_open;
  const std::size_t scan_e = fn.body_close;
  for (std::size_t i = scan_b; i + 1 < scan_e; ++i) {
    if (!byte_type_at(t, i)) continue;
    std::size_t j = i + 1;
    while (tok(t, j) == "&" || tok(t, j) == "*" || tok(t, j) == "const") ++j;
    const std::string& nm = tok(t, j);
    if (is_ident(nm) && has_part(nm, byte_secret_parts())) {
      st.tainted.insert(nm);
    }
  }
  for (std::size_t i = fn.body_open; i < fn.body_close; ++i) {
    if (tok(t, i + 1) != "=" || !is_ident(t[i].text)) continue;
    if (tok(t, i + 2) == "=") continue;  // ==
    // RHS until ';'
    std::size_t e = i + 2;
    while (e < fn.body_close && t[e].text != ";") ++e;
    if (range_tainted(t, i + 2, e, st)) st.tainted.insert(t[i].text);
  }

  auto flag_sink = [&](std::size_t at, const std::string& what) {
    out.push_back({files.path(t[at].file), t[at].line, "flow-taint",
                   what + " receives key material — secrets must never "
                          "reach logs, console or bench JSON"});
  };

  for (std::size_t i = fn.body_open; i < fn.body_close; ++i) {
    const std::string& s = t[i].text;
    // Logging sinks. HIPCLOUD_LOG is lazy but the secret still lands in
    // the log once the level is raised; laziness is no defence.
    if ((s == "HIPCLOUD_LOG" && tok(t, i + 1) == "(") ||
        (s == "Log" && tok(t, i + 1) == "::" && tok(t, i + 2) == "write")) {
      const std::size_t open = s == "HIPCLOUD_LOG" ? i + 1 : i + 3;
      if (tok(t, open) == "(") {
        const std::size_t close = match_paren(t, open);
        if (range_tainted(t, open + 1, close, st)) {
          flag_sink(i, s == "HIPCLOUD_LOG" ? "HIPCLOUD_LOG" : "sim::Log");
        }
      }
      continue;
    }
    // printf family and JSON emitters.
    static const std::set<std::string> kPrintf = {"printf", "fprintf",
                                                  "snprintf", "sprintf"};
    const bool jsonish =
        is_ident(s) && s.find("json") != std::string::npos;
    if ((kPrintf.count(s) != 0 || jsonish) && tok(t, i + 1) == "(") {
      const std::size_t close = match_paren(t, i + 1);
      if (range_tainted(t, i + 2, close, st)) {
        flag_sink(i, jsonish ? "JSON emitter `" + s + "`" : s + "()");
      }
      continue;
    }
    // ostream << tainted (the lexer splits `<<` into two tokens; a
    // template argument list never doubles the `<`).
    if (s == "<" && tok(t, i + 1) == "<") {
      if ((i > 0 && tainted_occurrence(t, i - 1, st)) ||
          tainted_occurrence(t, i + 2, st)) {
        flag_sink(i, "stream output");
      }
      ++i;  // don't rescan the second '<'
      continue;
    }
    // Non-constant-time comparisons of secrets or MAC/ICV values.
    if (s == "memcmp" && tok(t, i + 1) == "(") {
      const std::size_t close = match_paren(t, i + 1);
      bool hit = range_tainted(t, i + 2, close, st);
      for (std::size_t j = i + 2; !hit && j < close; ++j) {
        if (is_ident(t[j].text) && mac_like(t[j].text)) hit = true;
      }
      if (hit) {
        out.push_back({files.path(t[i].file), t[i].line, "flow-ct-compare",
                       "memcmp on key/MAC material leaks a timing oracle; "
                       "use crypto::ct_equal"});
      }
      continue;
    }
    if ((s == "=" && tok(t, i + 1) == "=") ||
        (s == "!" && tok(t, i + 1) == "=")) {
      // Null/bool/size-literal checks carry no secret content; only a
      // compare where the *other* side is also a value expression can
      // leak a byte-by-byte timing oracle.
      static const std::set<std::string> kInert = {"nullptr", "NULL", "true",
                                                   "false", "nullopt"};
      const std::string& left = tok(t, i - 1);
      const std::string& right = tok(t, i + 2);
      if (kInert.count(left) != 0 || kInert.count(right) != 0 ||
          (!right.empty() &&
           std::isdigit(static_cast<unsigned char>(right[0])))) {
        continue;
      }
      const bool lhs = i > 0 && is_ident(left) &&
                       (tainted_occurrence(t, i - 1, st) ||
                        mac_like(left));
      const bool rhs = is_ident(right) &&
                       (tainted_occurrence(t, i + 2, st) ||
                        mac_like(right));
      if (lhs || rhs) {
        out.push_back({files.path(t[i].file), t[i].line, "flow-ct-compare",
                       "==/!= on key/MAC material leaks a timing oracle; "
                       "use crypto::ct_equal"});
      }
    }
  }
}

// --------------------------------------------------------------------------
// 3. Pooled-Buffer lifetime

// Suspension points (suspension_calls() in callgraph.hpp): calls that
// park a callback on the EventLoop. The frame (and every pooled Buffer
// local in it) is gone when the callback later fires.

void analyze_buffer_lifetime(const std::vector<Token>& t,
                             const FileTable& files, const FnSpan& fn,
                             std::vector<Finding>& out) {
  // Buffer locals declared by value in this body.
  std::set<std::string> buffers;
  for (std::size_t i = fn.body_open; i + 1 < fn.body_close; ++i) {
    if (t[i].text != "Buffer") continue;
    if (tok(t, i - 1) == "class" || tok(t, i - 1) == "struct") continue;
    std::size_t j = i + 1;
    if (tok(t, j) == "&" || tok(t, j) == "*") continue;  // no ownership
    if (is_ident(tok(t, j)) && tok(t, j + 1) != "(") {
      buffers.insert(tok(t, j));
    }
  }
  // Headroom pointers drawn from a tracked buffer.
  std::set<std::string> window_ptrs;
  static const std::set<std::string> kWindowFns = {"data", "prepend",
                                                   "append"};
  for (std::size_t i = fn.body_open; i + 4 < fn.body_close; ++i) {
    // p = buf.data( / buf.prepend( / buf.append(
    if (t[i + 1].text != "=" || !is_ident(t[i].text)) continue;
    const std::string& owner = tok(t, i + 2);
    if (buffers.count(owner) == 0) continue;
    if (tok(t, i + 3) != ".") continue;
    if (kWindowFns.count(tok(t, i + 4)) != 0 && tok(t, i + 5) == "(") {
      window_ptrs.insert(t[i].text);
    }
  }

  // (a) use-after-move.
  for (std::size_t i = fn.body_open; i + 3 < fn.body_close; ++i) {
    const bool qualified = t[i].text == "std" && tok(t, i + 1) == "::" &&
                           tok(t, i + 2) == "move" && tok(t, i + 3) == "(";
    if (!qualified) continue;
    const std::string& victim = tok(t, i + 4);
    if (buffers.count(victim) == 0 || tok(t, i + 5) != ")") continue;
    for (std::size_t j = i + 6; j < fn.body_close; ++j) {
      if (t[j].text != victim) continue;
      if (tok(t, j + 1) == "=" && tok(t, j + 2) != "=") break;  // reassigned
      out.push_back(
          {files.path(t[j].file), t[j].line, "flow-buffer-lifetime",
           "`" + victim + "` used after std::move released its pooled "
           "block — the window pointers now belong to someone else"});
      break;
    }
  }

  // (b) buffer locals / window pointers escaping into a scheduled
  // callback. The callback fires after this frame returns, when the
  // pooled block has been recycled.
  if (buffers.empty() && window_ptrs.empty()) return;
  for (std::size_t i = fn.body_open; i + 1 < fn.body_close; ++i) {
    if (suspension_calls().count(t[i].text) == 0 || tok(t, i + 1) != "(") {
      continue;
    }
    if (tok(t, i - 1) != "." && tok(t, i - 1) != "->" &&
        tok(t, i - 1) != "::") {
      continue;
    }
    const std::size_t close = match_paren(t, i + 1);
    // Lambdas inside the argument list.
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].text != "[") continue;
      std::size_t cap_end = j;
      while (cap_end < close && t[cap_end].text != "]") ++cap_end;
      bool default_cap = false;
      std::set<std::string> captured;
      for (std::size_t k = j + 1; k < cap_end; ++k) {
        const std::string& c = t[k].text;
        if (c == "&" || c == "=") default_cap = default_cap || tok(t, k + 1) == "]" || tok(t, k + 1) == ",";
        if (is_ident(c)) captured.insert(c);
      }
      // Lambda body range (if this bracket really starts a lambda).
      std::size_t lb = cap_end + 1;
      if (tok(t, lb) == "(") lb = match_paren(t, lb) + 1;
      while (lb < close && is_ident(tok(t, lb))) ++lb;  // mutable/noexcept
      if (tok(t, lb) != "{") continue;
      const std::size_t le = match_brace(t, lb);
      auto flag = [&](const std::string& nm, std::size_t at) {
        out.push_back(
            {files.path(t[at].file), t[at].line, "flow-buffer-lifetime",
             "`" + nm + "` (pooled buffer window) escapes into a callback "
             "scheduled on the EventLoop — the block is recycled before "
             "the callback fires"});
      };
      for (const std::string& nm : window_ptrs) {
        if (captured.count(nm) != 0) {
          flag(nm, j);
          continue;
        }
        if (default_cap) {
          for (std::size_t k = lb; k < le; ++k) {
            if (t[k].text == nm) {
              flag(nm, k);
              break;
            }
          }
        }
      }
      for (const std::string& nm : buffers) {
        // Capturing the Buffer by value moves/copies it into the
        // callback — that is safe ownership transfer. Only by-reference
        // capture of a frame-local buffer is flagged.
        bool by_ref = false;
        for (std::size_t k = j + 1; k < cap_end; ++k) {
          if (t[k].text == nm && tok(t, k - 1) == "&") by_ref = true;
        }
        if (by_ref) flag(nm, j);
      }
      j = le < close ? le : j;
    }
  }
}

// --------------------------------------------------------------------------
// 4. Hot-path allocation

void analyze_hot_alloc(const std::vector<Token>& t, const FileTable& files,
                       const FnSpan& fn, std::vector<Finding>& out) {
  if (!fn.hot) return;
  const auto exempt = lazy_ranges(t, fn.body_open, fn.body_close);
  auto exempted = [&](std::size_t i) { return in_ranges(exempt, i); };

  // Vector-ish locals and whether they were reserve()d.
  std::set<std::string> growable, reserved;
  for (std::size_t i = fn.body_open; i + 1 < fn.body_close; ++i) {
    if (t[i].text == "vector" || t[i].text == "Bytes") {
      std::size_t j = i + 1;
      if (t[i].text == "vector" && tok(t, j) == "<") {
        int d = 0;
        for (; j < fn.body_close; ++j) {
          if (t[j].text == "<") ++d;
          if (t[j].text == ">" && --d == 0) break;
        }
        ++j;
      }
      while (tok(t, j) == "&" || tok(t, j) == "*") ++j;
      if (is_ident(tok(t, j)) && tok(t, j + 1) != "(") {
        growable.insert(tok(t, j));
      }
    }
    if (tok(t, i + 1) == "." && tok(t, i + 2) == "reserve") {
      reserved.insert(t[i].text);
    }
  }

  auto flag = [&](std::size_t at, const std::string& msg) {
    out.push_back({files.path(t[at].file), t[at].line, "flow-hot-alloc",
                   msg + " (function is on the packet path / marked "
                         "hipcheck:hot)"});
  };
  for (std::size_t i = fn.body_open; i < fn.body_close; ++i) {
    if (exempted(i)) continue;
    const std::string& s = t[i].text;
    if (s == "function" && tok(t, i - 1) == "::" &&
        tok(t, i - 2) == "std") {
      flag(i, "std::function heap-allocates over-SBO captures; use "
              "sim::InlineFn");
      continue;
    }
    if (s == "to_string" && tok(t, i + 1) == "(") {
      flag(i, "std::to_string builds a heap string per call");
      continue;
    }
    if ((s == "ostringstream" || s == "stringstream") ) {
      flag(i, "stringstream allocates per construction");
      continue;
    }
    if (s == "string" && tok(t, i - 1) == "::" && tok(t, i - 2) == "std" &&
        tok(t, i + 1) == "(") {
      flag(i, "std::string temporary allocates");
      continue;
    }
    if ((s == "push_back" || s == "emplace_back") &&
        tok(t, i - 1) == "." && tok(t, i + 1) == "(") {
      const std::string& owner = tok(t, i - 2);
      if (growable.count(owner) != 0 && reserved.count(owner) == 0) {
        flag(i, "`" + owner + "`." + s + "() may grow without reserve()");
      }
    }
  }
}

// --------------------------------------------------------------------------
// 5. Exception flow out of EventLoop callbacks

void analyze_exception_flow(const std::vector<Token>& t,
                            const FileTable& files, const FnSpan& fn,
                            std::vector<Finding>& out) {
  for (std::size_t i = fn.body_open; i + 1 < fn.body_close; ++i) {
    if (suspension_calls().count(t[i].text) == 0 || tok(t, i + 1) != "(") {
      continue;
    }
    if (tok(t, i - 1) != "." && tok(t, i - 1) != "->" &&
        tok(t, i - 1) != "::") {
      continue;
    }
    const std::size_t close = match_paren(t, i + 1);
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].text != "[") continue;
      std::size_t cap_end = j;
      while (cap_end < close && t[cap_end].text != "]") ++cap_end;
      std::size_t lb = cap_end + 1;
      if (tok(t, lb) == "(") lb = match_paren(t, lb) + 1;
      while (lb < close && is_ident(tok(t, lb))) ++lb;
      if (tok(t, lb) != "{") continue;
      const std::size_t le = match_brace(t, lb);
      // A catch anywhere in the callback body is taken as handling; the
      // pragma covers the (rare) partially-covered case honestly.
      bool has_catch = false;
      for (std::size_t k = lb; k < le; ++k) {
        if (t[k].text == "catch") {
          has_catch = true;
          break;
        }
      }
      if (!has_catch) {
        for (std::size_t k = lb; k < le; ++k) {
          if (t[k].text != "throw") continue;
          bool check_failure = false;
          for (std::size_t m = k + 1; m < k + 6 && m < le; ++m) {
            if (t[m].text == "CheckFailure") check_failure = true;
          }
          if (check_failure) continue;
          out.push_back(
              {files.path(t[k].file), t[k].line, "flow-exn",
               "throw inside an EventLoop callback — only "
               "sim::CheckFailure may escape the event engine; handle "
               "or convert the error"});
        }
      }
      j = le < close ? le : j;
    }
  }
}

// --------------------------------------------------------------------------
// 6. Shard ownership, intra-TU half (the interprocedural half lives in
//    ownership.cpp over the linked call graph).

/// flow-shard-owned: a lambda crossing the shard seam (handed to
/// ShardCoordinator::post / EventLoop::schedule_cross) must not smuggle
/// the sending shard's state across threads. Value captures and
/// init-captures are legal ownership transfer (the CrossLinkHalf staged
/// copy); `this`, by-reference captures, and any use of a
/// hipcheck:shard_owned-marked name (or a `member_`-shaped name under a
/// default capture) are not — the callback runs on the receiving shard's
/// worker while the sender keeps mutating that state.
void analyze_shard_owned(const std::vector<Token>& t, const FileTable& files,
                         const FnSpan& fn, const AnalysisOptions& opts,
                         std::vector<Finding>& out) {
  if (opts.marks == nullptr) return;
  if (!opts.all_paths) {
    const std::string& fpath = files.path(t[fn.name_idx].file);
    if (fpath.rfind("src/", 0) != 0) return;
  }
  const std::set<std::string>& owned = opts.marks->owned_names;
  for (std::size_t i = fn.body_open; i + 1 < fn.body_close; ++i) {
    if (!is_ident(t[i].text) || !is_cross_seam_call(t, i)) continue;
    const std::size_t close = match_paren(t, i + 1);
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].text != "[") continue;
      std::size_t cap_end = j;
      while (cap_end < close && t[cap_end].text != "]") ++cap_end;
      std::size_t lb = cap_end + 1;
      if (tok(t, lb) == "(") lb = match_paren(t, lb) + 1;
      while (lb < close && is_ident(tok(t, lb))) ++lb;
      if (tok(t, lb) != "{") continue;
      const std::size_t le = match_brace(t, lb);

      auto flag = [&](std::size_t at, const std::string& msg) {
        out.push_back({files.path(t[at].file), t[at].line,
                       "flow-shard-owned", msg});
      };
      bool default_cap = false;
      bool in_init = false;
      for (std::size_t k = j + 1; k < cap_end; ++k) {
        const std::string& c = t[k].text;
        if (c == ",") {
          in_init = false;
          continue;
        }
        if (c == "=") {
          if (tok(t, k + 1) == "]" || tok(t, k + 1) == "," || k == j + 1) {
            default_cap = true;
          } else {
            in_init = true;  // init-capture: value/move transfer, legal
          }
          continue;
        }
        if (c == "this") {
          flag(k, "`this` captured into a cross-shard callback — the "
                  "receiving worker would alias the sending shard's "
                  "object; stage a copy instead");
          continue;
        }
        if (c == "&") {
          const std::string& nx = tok(t, k + 1);
          if (nx == "]" || nx == ",") {
            flag(k, "default by-reference capture crosses the shard seam "
                    "— the frame and its shard-owned state stay on the "
                    "sending side; capture by value");
          } else if (is_ident(nx) && !in_init) {
            flag(k, "`" + nx + "` captured by reference into a "
                                "cross-shard callback; capture by value "
                                "or stage a copy");
            ++k;
          }
          continue;
        }
        if (is_ident(c) && !in_init && owned.count(c) != 0) {
          flag(k, "`" + c + "` is hipcheck:shard_owned — copying it "
                            "across the seam aliases shard-confined "
                            "state; send a staged value instead");
        }
      }
      // Body uses of owned-marked or member-shaped names only reach the
      // other shard when something captured the enclosing object.
      if (default_cap) {
        for (std::size_t k = lb; k < le; ++k) {
          const std::string& s = t[k].text;
          if (!is_ident(s)) continue;
          const bool member_shaped = s.size() > 1 && s.back() == '_';
          if (owned.count(s) != 0 || member_shaped) {
            flag(k, "`" + s + "` (" +
                        (owned.count(s) != 0 ? "hipcheck:shard_owned"
                                             : "member field") +
                        ") used under a default capture in a cross-shard "
                        "callback — the receiving worker races the "
                        "owning shard");
            break;  // one finding per lambda is enough signal
          }
        }
      }
      j = le < close ? le : j;
    }
  }
}

/// flow-shard-shared: state marked hipcheck:shard_shared is published
/// across threads by design (atomics, mutex- or barrier-protected), but
/// its *writers* must be sanctioned — only hipcheck:seam functions may
/// mutate it, so every write site is auditable.
void analyze_shard_shared(const std::vector<Token>& t, const FileTable& files,
                          const FnSpan& fn, const AnalysisOptions& opts,
                          std::vector<Finding>& out) {
  if (opts.marks == nullptr || opts.marks->shared_names.empty()) return;
  const std::string& fpath = files.path(t[fn.name_idx].file);
  if (!opts.all_paths && fpath.rfind("src/", 0) != 0) return;
  if (opts.marks->fn_marked(fpath, t[fn.name_idx].line, OwnMark::kSeam)) {
    return;
  }
  for (std::size_t i = fn.body_open; i < fn.body_close; ++i) {
    if (!is_ident(t[i].text)) continue;
    if (opts.marks->shared_names.count(t[i].text) == 0) continue;
    if (!is_write(t, i)) continue;
    out.push_back(
        {files.path(t[i].file), t[i].line, "flow-shard-shared",
         "`" + t[i].text + "` is hipcheck:shard_shared but `" + fn.name +
             "` is not a hipcheck:seam — writes to shared shard state "
             "are only sanctioned inside seam functions"});
  }
}

}  // namespace

void analyze_tu(const TranslationUnit& tu, const FileTable& files,
                const AnalysisOptions& opts, std::vector<Finding>& out) {
  analyze_layering(tu, files, out);

  std::vector<FnSpan> fns = find_fn_spans(tu.tokens);
  mark_hot(tu.tokens, files, opts, fns);
  for (const FnSpan& fn : fns) {
    analyze_taint(tu.tokens, files, fn, opts, out);
    analyze_buffer_lifetime(tu.tokens, files, fn, out);
    analyze_hot_alloc(tu.tokens, files, fn, out);
    analyze_exception_flow(tu.tokens, files, fn, out);
    analyze_shard_owned(tu.tokens, files, fn, opts, out);
    analyze_shard_shared(tu.tokens, files, fn, opts, out);
  }
}

}  // namespace hipflow
