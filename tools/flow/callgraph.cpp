#include "callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <deque>

namespace hipflow {

// --------------------------------------------------------------------------
// Shared token utilities (moved here from analysis.cpp so the extractor
// and the per-TU rules agree on what a function is).

const std::string& tok(const std::vector<Token>& t, std::size_t i) {
  static const std::string empty;
  return i < t.size() ? t[i].text : empty;
}

bool is_ident(const std::string& s) {
  return !s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) ||
                        s[0] == '_');
}

std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].text == "(") ++depth;
    if (t[j].text == ")" && --depth == 0) return j;
  }
  return t.size();
}

std::size_t match_brace(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].text == "{") ++depth;
    if (t[j].text == "}" && --depth == 0) return j;
  }
  return t.size();
}

std::vector<std::string> name_parts(const std::string& id) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : id) {
    if (c == '_') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

bool has_part(const std::string& id, const std::set<std::string>& wanted) {
  for (const std::string& p : name_parts(id)) {
    if (wanted.count(p) != 0) return true;
  }
  return false;
}

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> s = {
      "if",     "for",     "while",  "switch",        "catch",  "return",
      "sizeof", "alignas", "new",    "static_assert", "delete", "else",
      "do",     "decltype", "alignof"};
  return s;
}

}  // namespace

std::vector<FnSpan> find_fn_spans(const std::vector<Token>& t) {
  std::vector<FnSpan> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i + 1].text != "(" || !is_ident(t[i].text)) continue;
    if (control_keywords().count(t[i].text) != 0) continue;
    const std::size_t close = match_paren(t, i + 1);
    if (close >= t.size()) continue;
    // Walk past trailing qualifiers / ctor init list to the body brace.
    std::size_t j = close + 1;
    int pdepth = 0;
    bool is_def = false;
    for (; j < t.size(); ++j) {
      const std::string& s = t[j].text;
      if (s == "(") ++pdepth;
      else if (s == ")") --pdepth;
      else if (pdepth == 0) {
        if (s == "{") {
          is_def = true;
          break;
        }
        if (s == ";" || s == "}" || s == "=") break;
        if (s == ",") break;
      }
    }
    if (!is_def) continue;
    const std::size_t body_close = match_brace(t, j);
    if (body_close >= t.size()) continue;
    out.push_back({t[i].text, i, i + 1, j, body_close, false});
  }
  return out;
}

const std::set<std::string>& suspension_calls() {
  static const std::set<std::string> s = {"schedule", "schedule_at", "post",
                                          "defer", "schedule_cross"};
  return s;
}

bool is_cross_seam_call(const std::vector<Token>& t, std::size_t i) {
  if (tok(t, i + 1) != "(") return false;
  const std::string& s = t[i].text;
  if (s != "schedule_cross" && s != "post") return false;
  const std::string& prev = tok(t, i - 1);
  if (prev != "." && prev != "->") return false;
  if (s == "schedule_cross") return true;
  // `post` is a generic name; only claim it when the receiver chain names
  // a coordinator (`coord.post`, `coord_.post`, `coordinator().post`).
  static const std::set<std::string> kCoord = {"coord", "coordinator"};
  for (std::size_t back = 2; back <= 5 && back <= i; ++back) {
    const std::string& r = t[i - back].text;
    if (is_ident(r) && has_part(r, kCoord)) return true;
    if (r == ";" || r == "{" || r == "}") break;
  }
  return false;
}

bool OwnershipMarks::fn_marked(const std::string& file, int name_line,
                               OwnMark kind) const {
  auto it = lines.find(file);
  if (it == lines.end()) return false;
  for (const auto& [ml, mk] : it->second) {
    if (mk == kind && ml <= name_line && name_line - ml <= 3) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Phase 1: extraction.

namespace {

/// Type-ish tokens that make a `static` declaration safe to share across
/// shard threads (or not shared at all).
bool static_exempt_token(const std::string& s) {
  static const std::set<std::string> kExempt = {
      "const",        "constexpr",       "constinit",
      "thread_local", "atomic",          "atomic_flag",
      "mutex",        "shared_mutex",    "recursive_mutex",
      "timed_mutex",  "once_flag",       "condition_variable",
      "barrier",      "latch",           "atomic_bool",
      "atomic_int",   "atomic_uint64_t", "atomic_size_t"};
  return kExempt.count(s) != 0;
}

/// Scan a `static` keyword at `i`; fills `out` when it declares a
/// mutable variable. Returns the index to resume scanning from.
std::size_t scan_static_decl(const std::vector<Token>& t, std::size_t i,
                             const FileTable& files, bool block_scope,
                             std::vector<StaticDecl>& out) {
  std::size_t j = i + 1;
  std::string last_ident;
  bool exempt = false;
  for (; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == ";" || s == "=" || s == "{") break;
    if (s == "(") {
      // Function declaration/definition (or constructor-style init of a
      // typed name — rare at static scope in this tree); either way the
      // name before '(' is a function, not shared data.
      exempt = true;
      break;
    }
    if (static_exempt_token(s)) exempt = true;
    if (is_ident(s)) last_ident = s;
    if (j - i > 24) break;  // declarators are short; bail on weirdness
  }
  if (!exempt && !last_ident.empty()) {
    out.push_back({last_ident, files.path(t[i].file), t[i].line,
                   block_scope});
  }
  return j;
}

}  // namespace

bool is_write(const std::vector<Token>& t, std::size_t i) {
  const std::string& n1 = tok(t, i + 1);
  const std::string& n2 = tok(t, i + 2);
  if (n1 == "=" && n2 != "=" && tok(t, i - 1) != "=" &&
      tok(t, i - 1) != "!" && tok(t, i - 1) != "<" && tok(t, i - 1) != ">") {
    return true;
  }
  static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                  "|", "&", "^", "%"};
  if (kCompound.count(n1) != 0 && n2 == "=") return true;
  if ((n1 == "+" && n2 == "+") || (n1 == "-" && n2 == "-")) return true;
  if ((tok(t, i - 1) == "+" && tok(t, i - 2) == "+") ||
      (tok(t, i - 1) == "-" && tok(t, i - 2) == "-")) {
    return true;
  }
  if (n1 == ".") {
    static const std::set<std::string> kAtomicMut = {
        "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
        "fetch_or", "fetch_xor", "push_back", "emplace_back", "clear",
        "insert", "erase", "resize", "assign"};
    if (kAtomicMut.count(n2) != 0 && tok(t, i + 3) == "(") return true;
  }
  return false;
}

namespace {

struct ParamInfo {
  std::vector<std::string> names;
  std::vector<bool> alias;  // reference or pointer parameter
};

ParamInfo parse_params(const std::vector<Token>& t, std::size_t args_open,
                       std::size_t args_close) {
  ParamInfo pi;
  std::size_t seg_b = args_open + 1;
  int paren = 0, angle = 0, brace = 0;
  auto close_segment = [&](std::size_t seg_e) {
    if (seg_e <= seg_b) return;
    std::string name;
    bool alias = false;
    bool past_default = false;
    for (std::size_t k = seg_b; k < seg_e; ++k) {
      const std::string& s = t[k].text;
      if (s == "=") past_default = true;  // default argument: name is left
      if (past_default) continue;
      if (s == "&" || s == "*") alias = true;
      if (is_ident(s)) name = s;
    }
    if (!name.empty() && name != "void") {
      pi.names.push_back(name);
      pi.alias.push_back(alias);
    }
  };
  for (std::size_t k = args_open + 1; k < args_close; ++k) {
    const std::string& s = t[k].text;
    if (s == "(") ++paren;
    else if (s == ")") --paren;
    else if (s == "{") ++brace;
    else if (s == "}") --brace;
    else if (s == "<" && is_ident(tok(t, k - 1))) ++angle;
    else if (s == ">" && angle > 0) --angle;
    else if (s == "," && paren == 0 && angle == 0 && brace == 0) {
      close_segment(k);
      seg_b = k + 1;
    }
  }
  close_segment(args_close);
  return pi;
}

/// One lambda inside a suspension call's argument list.
struct LambdaSite {
  std::size_t cap_open;   // '['
  std::size_t cap_close;  // ']'
  std::size_t body_open;  // '{'
  std::size_t body_close;
  bool default_ref = false;  // [&...]
  bool default_val = false;  // [=...]
  std::set<std::string> by_ref;    // &name captures
  std::set<std::string> by_value;  // plain name captures + init-capture RHS
                                   // identifiers (copied pointers still
                                   // alias the pointee)
  bool captures_this = false;
};

/// Parse the lambda starting at '[' (`j`); returns false if `j` does not
/// actually start a lambda (array subscript, attribute).
bool parse_lambda(const std::vector<Token>& t, std::size_t j,
                  std::size_t limit, LambdaSite& out) {
  std::size_t cap_end = j;
  while (cap_end < limit && t[cap_end].text != "]") ++cap_end;
  if (cap_end >= limit) return false;
  std::size_t lb = cap_end + 1;
  if (tok(t, lb) == "(") lb = match_paren(t, lb) + 1;
  while (lb < limit && is_ident(tok(t, lb))) ++lb;  // mutable / noexcept
  if (tok(t, lb) == "-" && tok(t, lb + 1) == ">") {  // trailing return
    lb += 2;
    while (lb < limit && tok(t, lb) != "{") ++lb;
  }
  if (tok(t, lb) != "{") return false;
  out.cap_open = j;
  out.cap_close = cap_end;
  out.body_open = lb;
  out.body_close = match_brace(t, lb);
  bool in_init = false;  // past an '=' inside one capture item
  for (std::size_t k = j + 1; k < cap_end; ++k) {
    const std::string& s = t[k].text;
    if (s == ",") {
      in_init = false;
      continue;
    }
    if (s == "=") {
      if (tok(t, k + 1) == "]" || tok(t, k + 1) == ",") {
        out.default_val = true;
      } else if (k == j + 1) {
        out.default_val = true;  // [=, ...]
      } else {
        in_init = true;
      }
      continue;
    }
    if (s == "&") {
      const std::string& nx = tok(t, k + 1);
      if (nx == "]" || nx == ",") {
        out.default_ref = true;
      } else if (is_ident(nx) && !in_init) {
        out.by_ref.insert(nx);
        ++k;
      }
      continue;
    }
    if (s == "this") {
      out.captures_this = true;
      continue;
    }
    if (is_ident(s)) out.by_value.insert(s);
  }
  return true;
}

/// Suspension call at `i` (name token, '(' follows, member-ish receiver)?
bool is_suspension_call(const std::vector<Token>& t, std::size_t i) {
  if (suspension_calls().count(t[i].text) == 0 || tok(t, i + 1) != "(") {
    return false;
  }
  const std::string& prev = tok(t, i - 1);
  return prev == "." || prev == "->" || prev == "::";
}

}  // namespace

TuSummary extract_tu_summary(const TranslationUnit& tu,
                             const FileTable& files,
                             const OwnershipMarks& marks) {
  const std::vector<Token>& t = tu.tokens;
  TuSummary out;
  std::vector<FnSpan> spans = find_fn_spans(t);

  // Namespace-scope mutable statics: `static` tokens outside every
  // function body. (Class-scope static data members land here too; the
  // tree's are all atomic/const, and any new mutable one *should* be
  // flagged.)
  {
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    bodies.reserve(spans.size());
    for (const FnSpan& f : spans) bodies.emplace_back(f.body_open, f.body_close);
    std::sort(bodies.begin(), bodies.end());
    std::size_t bi = 0;
    std::size_t skip_until = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      while (bi < bodies.size() && bodies[bi].second < i) ++bi;
      if (bi < bodies.size() && i >= bodies[bi].first &&
          i <= bodies[bi].second) {
        i = bodies[bi].second;  // jump past this body
        continue;
      }
      if (i < skip_until) continue;
      if (t[i].text == "static") {
        skip_until = scan_static_decl(t, i, files, /*block_scope=*/false,
                                      out.globals);
      }
    }
  }

  for (const FnSpan& fn : spans) {
    FnSummary fs;
    fs.name = fn.name;
    fs.file = files.path(t[fn.name_idx].file);
    fs.line = t[fn.name_idx].line;
    fs.seam = marks.fn_marked(fs.file, fs.line, OwnMark::kSeam);
    fs.entry = marks.fn_marked(fs.file, fs.line, OwnMark::kEntry);

    const std::size_t args_close = match_paren(t, fn.args_open);
    ParamInfo params = parse_params(t, fn.args_open, args_close);
    fs.params = params.names;
    fs.param_alias.assign(params.alias.begin(), params.alias.end());

    // Pooled Buffer locals and window pointers, same definitions as the
    // intra-TU buffer-lifetime rule.
    std::set<std::string> buffers;
    for (std::size_t i = fn.body_open; i + 1 < fn.body_close; ++i) {
      if (t[i].text != "Buffer") continue;
      if (tok(t, i - 1) == "class" || tok(t, i - 1) == "struct") continue;
      std::size_t j = i + 1;
      if (tok(t, j) == "&" || tok(t, j) == "*") continue;
      if (is_ident(tok(t, j)) && tok(t, j + 1) != "(") buffers.insert(tok(t, j));
    }
    std::set<std::string> window_ptrs;
    static const std::set<std::string> kWindowFns = {"data", "prepend",
                                                     "append"};
    for (std::size_t i = fn.body_open; i + 4 < fn.body_close; ++i) {
      if (t[i + 1].text != "=" || !is_ident(t[i].text)) continue;
      const std::string& owner = tok(t, i + 2);
      if (buffers.count(owner) == 0) continue;
      if (tok(t, i + 3) != ".") continue;
      if (kWindowFns.count(tok(t, i + 4)) != 0 && tok(t, i + 5) == "(") {
        window_ptrs.insert(t[i].text);
      }
    }

    std::set<std::string> callees, scheduled, writes;
    std::set<int> escaping;

    auto param_index = [&](const std::string& nm) -> int {
      for (std::size_t p = 0; p < fs.params.size(); ++p) {
        if (fs.params[p] == nm) return static_cast<int>(p);
      }
      return -1;
    };

    for (std::size_t i = fn.body_open; i < fn.body_close; ++i) {
      const std::string& s = t[i].text;
      if (!is_ident(s)) continue;

      // Calls.
      if (tok(t, i + 1) == "(" && control_keywords().count(s) == 0) {
        callees.insert(s);
        if (is_cross_seam_call(t, i)) {
          fs.cross_calls.push_back(
              {s, files.path(t[i].file), t[i].line});
        }
        if (is_suspension_call(t, i)) {
          // Lambdas in the argument list: their callees become shard-side
          // roots, and alias params they capture escape the frame.
          const std::size_t close = match_paren(t, i + 1);
          for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].text != "[") continue;
            LambdaSite lam;
            if (!parse_lambda(t, j, close, lam)) continue;
            for (std::size_t k = lam.body_open; k < lam.body_close; ++k) {
              if (is_ident(t[k].text) && tok(t, k + 1) == "(" &&
                  control_keywords().count(t[k].text) == 0) {
                scheduled.insert(t[k].text);
              }
            }
            for (std::size_t p = 0; p < fs.params.size(); ++p) {
              const std::string& nm = fs.params[p];
              if (!fs.param_alias[p]) continue;
              bool caught = lam.by_ref.count(nm) != 0;
              // A copied pointer still aliases the pointee; a copied
              // reference param deep-copies and is safe.
              if (!caught && lam.by_value.count(nm) != 0) caught = true;
              if (!caught && (lam.default_ref || lam.default_val)) {
                for (std::size_t k = lam.body_open; k < lam.body_close;
                     ++k) {
                  if (t[k].text == nm) {
                    caught = true;
                    break;
                  }
                }
              }
              if (caught) escaping.insert(static_cast<int>(p));
            }
            j = lam.body_close < close ? lam.body_close : j;
          }
        }

        // Argument scan: forwarded alias params and pooled buffers.
        if (suspension_calls().count(s) == 0) {
          const std::size_t close = match_paren(t, i + 1);
          int pos = 0;
          std::size_t seg_b = i + 2;
          int depth = 0;
          auto scan_arg = [&](std::size_t b, std::size_t e) {
            if (e <= b) return;
            // The argument's "payload" identifiers, ignoring wrappers
            // (std::move, &, window-fn projections).
            static const std::set<std::string> kWrap = {
                "std", "move", "data", "prepend", "append"};
            std::string payload;
            int others = 0;
            for (std::size_t k = b; k < e; ++k) {
              if (!is_ident(t[k].text)) continue;
              if (kWrap.count(t[k].text) != 0) continue;
              if (payload.empty()) payload = t[k].text;
              else ++others;
            }
            if (payload.empty() || others > 0) return;
            const int pidx = param_index(payload);
            if (pidx >= 0 && fs.param_alias[static_cast<std::size_t>(pidx)]) {
              fs.forwards.push_back({s, pos, pidx});
            }
            if (buffers.count(payload) != 0 ||
                window_ptrs.count(payload) != 0) {
              fs.pooled_args.push_back({s, pos, payload,
                                        files.path(t[b].file), t[b].line});
            }
          };
          for (std::size_t k = i + 2; k < close; ++k) {
            const std::string& a = t[k].text;
            if (a == "(" || a == "{" || a == "[") ++depth;
            else if (a == ")" || a == "}" || a == "]") --depth;
            else if (a == "," && depth == 0) {
              scan_arg(seg_b, k);
              seg_b = k + 1;
              ++pos;
            }
          }
          scan_arg(seg_b, close);
        }
      }

      // Writes.
      if (is_write(t, i)) writes.insert(s);

      // Mutable block-scope statics.
      if (s == "static") {
        scan_static_decl(t, i, files, /*block_scope=*/true, fs.statics);
      }
    }

    fs.callees.assign(callees.begin(), callees.end());
    fs.scheduled_callees.assign(scheduled.begin(), scheduled.end());
    fs.writes.assign(writes.begin(), writes.end());
    fs.escaping_params.assign(escaping.begin(), escaping.end());
    out.fns.push_back(std::move(fs));
  }
  return out;
}

// --------------------------------------------------------------------------
// Phase 2: linking.

CallGraph link_call_graph(const std::vector<TuSummary>& tus) {
  CallGraph cg;
  std::set<std::string> scheduled_roots;

  for (const TuSummary& tu : tus) {
    for (const StaticDecl& g : tu.globals) {
      auto it = cg.globals.find(g.name);
      if (it == cg.globals.end()) cg.globals.emplace(g.name, g);
    }
    for (const FnSummary& fs : tu.fns) {
      CallGraph::Node& n = cg.nodes[fs.name];
      if (n.name.empty()) {
        n.name = fs.name;
        n.file = fs.file;
        n.line = fs.line;
      }
      n.seam = n.seam || fs.seam;
      n.entry = n.entry || fs.entry;
      n.callees.insert(fs.callees.begin(), fs.callees.end());
      n.writes.insert(fs.writes.begin(), fs.writes.end());
      // Call-site lists dedupe by (file, line): the same header-defined
      // function body is extracted once per including TU.
      auto add_sites = [](auto& dst, const auto& src) {
        for (const auto& e : src) {
          bool dup = false;
          for (const auto& d : dst) {
            if (d.file == e.file && d.line == e.line) {
              dup = true;
              break;
            }
          }
          if (!dup) dst.push_back(e);
        }
      };
      add_sites(n.cross_calls, fs.cross_calls);
      add_sites(n.pooled_args, fs.pooled_args);
      add_sites(n.statics, fs.statics);
      for (const FnSummary::Forward& f : fs.forwards) {
        bool dup = false;
        for (const FnSummary::Forward& d : n.forwards) {
          if (d.callee == f.callee && d.arg_pos == f.arg_pos &&
              d.param_idx == f.param_idx) {
            dup = true;
            break;
          }
        }
        if (!dup) n.forwards.push_back(f);
      }
      for (int p : fs.escaping_params) n.escaping_params.insert(p);
      for (const std::string& r : fs.scheduled_callees) {
        scheduled_roots.insert(r);
      }
    }
  }

  // Close parameter escapes over forwards: if F forwards param p to a
  // position of C that escapes, p escapes too. Monotone over a finite
  // lattice; iterate to the fixed point (map order, so deterministic).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, n] : cg.nodes) {
      for (const FnSummary::Forward& f : n.forwards) {
        auto it = cg.nodes.find(f.callee);
        if (it == cg.nodes.end()) continue;
        if (it->second.escaping_params.count(f.arg_pos) == 0) continue;
        if (n.escaping_params.insert(f.param_idx).second) changed = true;
      }
    }
  }

  // Roots: callbacks parked on loops, Link::schedule_delivery overrides,
  // explicit entry marks. Only defined functions matter for reachability.
  for (const auto& [name, n] : cg.nodes) {
    if (name == "schedule_delivery" || n.entry ||
        scheduled_roots.count(name) != 0) {
      cg.roots.insert(name);
    }
  }

  // BFS in sorted-root order; parent_ remembers the tree for path_to.
  std::deque<std::string> queue(cg.roots.begin(), cg.roots.end());
  cg.shard_reachable = cg.roots;
  while (!queue.empty()) {
    const std::string cur = queue.front();
    queue.pop_front();
    const CallGraph::Node& n = cg.nodes.at(cur);
    for (const std::string& callee : n.callees) {
      auto it = cg.nodes.find(callee);
      if (it == cg.nodes.end()) continue;
      if (!cg.shard_reachable.insert(callee).second) continue;
      cg.parent_[callee] = cur;
      queue.push_back(callee);
    }
  }
  return cg;
}

std::string CallGraph::path_to(const std::string& to) const {
  std::vector<std::string> chain;
  std::string cur = to;
  while (true) {
    auto it = parent_.find(cur);
    if (it == parent_.end()) break;
    chain.push_back(it->second);
    cur = it->second;
    if (chain.size() > 32) break;  // cycles cannot happen in a BFS tree
  }
  std::string out;
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    out += *rit;
    out += " -> ";
  }
  if (!out.empty()) out += to;
  return out;
}

void dump_callgraph(const CallGraph& cg, std::FILE* out) {
  for (const auto& [name, n] : cg.nodes) {
    std::fprintf(out, "fn %s %s:%d", name.c_str(), n.file.c_str(), n.line);
    if (n.seam) std::fprintf(out, " seam");
    if (n.entry) std::fprintf(out, " entry");
    if (cg.roots.count(name) != 0) std::fprintf(out, " root");
    if (cg.shard_reachable.count(name) != 0) std::fprintf(out, " reach");
    if (!n.escaping_params.empty()) {
      std::fprintf(out, " escapes=");
      bool first = true;
      for (int p : n.escaping_params) {
        std::fprintf(out, "%s%d", first ? "" : ",", p);
        first = false;
      }
    }
    std::fprintf(out, " ->");
    for (const std::string& c : n.callees) {
      if (cg.nodes.count(c) != 0) std::fprintf(out, " %s", c.c_str());
    }
    std::fprintf(out, "\n");
  }
  for (const auto& [name, g] : cg.globals) {
    std::fprintf(out, "global %s %s:%d\n", name.c_str(), g.file.c_str(),
                 g.line);
  }
}

}  // namespace hipflow
