// hipcloud_flow whole-program call graph.
//
// PR 5's analyses were strictly per-TU: a rule could see one preprocessed
// token stream at a time. The shard-ownership analyses (ownership.hpp)
// need to reason about *paths* — "this callback reaches a mutable global
// three calls away", "this helper parks its pointer argument on another
// shard's loop" — across all 119+ TUs of the tree. This header is the
// two-phase machinery that makes that possible while keeping the
// parallel-over-TUs / byte-identical-output contract:
//
//   phase 1 (parallel, per TU)   extract_tu_summary() distills each
//                                preprocessed TU into a TuSummary:
//                                function definitions, their callees,
//                                crossing-primitive call sites, mutable
//                                globals/statics, identifier writes, and
//                                parameter-escape facts. Summaries land
//                                in a vector indexed by TU, so worker
//                                scheduling cannot reorder anything.
//   phase 2 (serial, merged)     link_call_graph() folds the summaries —
//                                in TU order — into one name-keyed graph.
//                                Linking is by function name: overloads
//                                and same-named methods merge into one
//                                node, a deliberate over-approximation
//                                (a path that exists for *any* overload
//                                is assumed for all), which errs toward
//                                reporting, never toward missing a path.
//
// The graph also owns the shared token utilities (tok/match_paren/...)
// and the function-span scanner that analysis.cpp's per-TU rules use, so
// both layers see the same definition of "a function".
#pragma once

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tu.hpp"

namespace hipflow {

// --------------------------------------------------------------------------
// Shared token utilities (used by analysis.cpp and the extractor).

/// Token text at `i`, or "" past the end — bounds-safe lookahead.
const std::string& tok(const std::vector<Token>& t, std::size_t i);

bool is_ident(const std::string& s);

/// Index of the ')' matching the '(' at `open`; tokens.size() if
/// unbalanced.
std::size_t match_paren(const std::vector<Token>& t, std::size_t open);
std::size_t match_brace(const std::vector<Token>& t, std::size_t open);

/// Lowercased '_'-separated parts of an identifier.
std::vector<std::string> name_parts(const std::string& id);
bool has_part(const std::string& id, const std::set<std::string>& wanted);

/// A function definition's token span.
struct FnSpan {
  std::string name;        // last name component ("protect_packet")
  std::size_t name_idx;    // token index of the name
  std::size_t args_open;   // '(' of the parameter list
  std::size_t body_open;   // '{'
  std::size_t body_close;  // matching '}'
  bool hot = false;        // filled in by analysis.cpp's hot marking
};

/// Every function definition in the token stream (nested class methods
/// included; lambdas are part of their enclosing function's span).
std::vector<FnSpan> find_fn_spans(const std::vector<Token>& t);

/// Calls that park a callback on an event loop: the callback outlives
/// the calling frame, and for the cross-seam subset it also changes
/// threads.
const std::set<std::string>& suspension_calls();

/// True when the call at `i` (identifier followed by '(') is a
/// cross-seam crossing primitive: `schedule_cross` on any receiver, or
/// `post` on a receiver whose name contains the part "coord"/
/// "coordinator" (ShardCoordinator::post — `post` alone is too generic
/// a name to claim globally).
bool is_cross_seam_call(const std::vector<Token>& t, std::size_t i);

/// True when the identifier occurrence at `i` is written: plain or
/// compound assignment, ++/--, an atomic mutation method
/// (.store/.fetch_*/.exchange) or a container mutator (.push_back etc).
bool is_write(const std::vector<Token>& t, std::size_t i);

// --------------------------------------------------------------------------
// Ownership annotation marks (scanned from raw source lines by the
// driver, alongside hipcheck:hot).

enum class OwnMark {
  kOwned,   // hipcheck:shard_owned — confined to the owning shard
  kShared,  // hipcheck:shard_shared — cross-thread by design (atomics,
            // mutex- or barrier-published state); writes only in seams
  kSeam,    // hipcheck:seam — sanctioned crossing function
  kEntry,   // hipcheck:shard_entry — explicit shard-side entry point
  kWire,    // hipcheck:wire_input — network entry point; byte-span and
            // Packet parameters carry untrusted wire bytes (taint.hpp)
};

struct OwnershipMarks {
  /// file -> sorted (line, mark) pairs. A kSeam/kEntry mark applies to a
  /// function whose name line is within 3 lines below it; kOwned/kShared
  /// marks carry their declarator name in `owned_names`/`shared_names`
  /// (extracted by the driver from the declaration line's raw text).
  std::map<std::string, std::vector<std::pair<int, OwnMark>>> lines;
  std::set<std::string> owned_names;
  std::set<std::string> shared_names;

  bool fn_marked(const std::string& file, int name_line, OwnMark kind) const;
};

// --------------------------------------------------------------------------
// Phase 1: per-TU summaries.

/// A mutable namespace-scope or block-scope `static` declaration (const,
/// constexpr, atomic, mutex-family and thread_local declarations are
/// filtered out at extraction).
struct StaticDecl {
  std::string name;
  std::string file;
  int line = 0;
  bool block_scope = false;  // declared inside a function body
};

struct FnSummary {
  std::string name;
  std::string file;  // definition site
  int line = 0;
  bool seam = false;
  bool entry = false;
  /// Callee names invoked anywhere in the body (sorted, unique).
  std::vector<std::string> callees;
  /// Callee names invoked from inside lambda bodies handed to suspension
  /// calls — these run later as event callbacks, so they are shard-side
  /// roots for the reachability analysis.
  std::vector<std::string> scheduled_callees;
  /// Crossing-primitive call sites (ShardCoordinator::post /
  /// EventLoop::schedule_cross) in this body.
  struct CrossCall {
    std::string callee;  // "post" or "schedule_cross"
    std::string file;
    int line = 0;
  };
  std::vector<CrossCall> cross_calls;
  /// Mutable block-scope statics declared in this body.
  std::vector<StaticDecl> statics;
  /// Identifiers this body writes (assignment, compound assignment,
  /// ++/--, .store()/.fetch_*()); intersected with global names at link
  /// time.
  std::vector<std::string> writes;
  /// Parameter names in declaration order; alias[i] is true when the
  /// parameter is a reference or pointer (only alias parameters can leak
  /// caller-owned memory).
  std::vector<std::string> params;
  std::vector<bool> param_alias;
  /// Alias parameters captured by a lambda handed to a suspension call
  /// directly in this body (indices into params).
  std::vector<int> escaping_params;
  /// Alias parameters forwarded to a callee: if the callee's `arg_pos`
  /// parameter escapes, so does ours — the link phase closes this.
  struct Forward {
    std::string callee;
    int arg_pos = 0;
    int param_idx = 0;
  };
  std::vector<Forward> forwards;
  /// Call sites passing a pooled Buffer local (or one of its window
  /// pointers) as an argument — the interprocedural escape check fires
  /// here when the callee parks that argument position.
  struct PooledArg {
    std::string callee;
    int arg_pos = 0;
    std::string arg_name;
    std::string file;
    int line = 0;
  };
  std::vector<PooledArg> pooled_args;
};

struct TuSummary {
  std::vector<FnSummary> fns;
  std::vector<StaticDecl> globals;  // namespace-scope mutable statics
};

TuSummary extract_tu_summary(const TranslationUnit& tu,
                             const FileTable& files,
                             const OwnershipMarks& marks);

// --------------------------------------------------------------------------
// Phase 2: the linked graph.

class CallGraph {
 public:
  struct Node {
    std::string name;
    std::string file;  // first definition site in TU order
    int line = 0;
    bool seam = false;
    bool entry = false;
    std::set<std::string> callees;
    std::vector<FnSummary::CrossCall> cross_calls;
    std::vector<StaticDecl> statics;
    std::set<std::string> writes;
    std::vector<FnSummary::Forward> forwards;
    std::vector<FnSummary::PooledArg> pooled_args;
    std::set<int> escaping_params;  // closed over forwards at link time
  };

  /// Nodes keyed by function name; globals keyed by variable name. Both
  /// std::map so iteration order never depends on job count.
  std::map<std::string, Node> nodes;
  std::map<std::string, StaticDecl> globals;

  /// Functions reachable from shard-side entry points: scheduled
  /// callbacks, Link::schedule_delivery overrides, and explicit
  /// hipcheck:shard_entry marks. BFS over name-linked callees.
  std::set<std::string> shard_reachable;
  /// The subset of shard_reachable roots (for path reporting).
  std::set<std::string> roots;

  /// A call path root -> ... -> `to` (function names joined with " -> ")
  /// for diagnostics; "" if `to` is itself a root.
  std::string path_to(const std::string& to) const;

 private:
  friend CallGraph link_call_graph(const std::vector<TuSummary>& tus);
  std::map<std::string, std::string> parent_;  // BFS tree for path_to
};

/// Merge per-TU summaries (in vector order — the driver's sorted TU
/// order) into one graph, close parameter escapes over forwards, and
/// compute shard reachability. Deterministic for any extraction
/// parallelism.
CallGraph link_call_graph(const std::vector<TuSummary>& tus);

/// Human-readable, line-oriented dump: one `fn` line per node (sorted)
/// with flags and sorted callees, then `global` lines. Byte-identical at
/// any job count — pinned by the flow_callgraph_determinism test.
void dump_callgraph(const CallGraph& cg, std::FILE* out);

}  // namespace hipflow
