#include "taint.hpp"

#include <algorithm>

namespace hipflow {

namespace {

bool in_scope(const std::string& file, bool all_paths) {
  return all_paths || file.rfind("src/", 0) == 0;
}

const std::set<std::string>& control_kw() {
  static const std::set<std::string> s = {
      "if",     "for",     "while",  "switch",        "catch",  "return",
      "sizeof", "alignas", "new",    "static_assert", "delete", "else",
      "do",     "decltype", "alignof"};
  return s;
}

/// Type tokens that mark a parameter as carrying raw wire bytes.
bool byte_type_token(const std::string& s) {
  static const std::set<std::string> k = {"Bytes", "BytesView", "Buffer",
                                          "span"};
  return k.count(s) != 0;
}

/// Tokens on an expression's RHS that make the result a byte *view*
/// (still a buffer) rather than a scalar derived from buffer contents.
bool view_token(const std::string& s) {
  static const std::set<std::string> k = {"view",  "subspan", "BytesView",
                                          "Bytes", "span",    "rest",
                                          "first", "last"};
  return k.count(s) != 0;
}

// --------------------------------------------------------------------------
// Per-definition model.

struct WireParam {
  std::string name;
  bool byte = false;     // Bytes/BytesView/Buffer/span — a raw byte span
  bool carrier = false;  // Packet — wire bytes ride in `.payload`
};

/// Parse the parameter list like callgraph.cpp does, keeping per-segment
/// type facts instead of alias-ness.
std::vector<WireParam> parse_wire_params(const std::vector<Token>& t,
                                         std::size_t args_open,
                                         std::size_t args_close) {
  std::vector<WireParam> out;
  std::size_t seg_b = args_open + 1;
  int paren = 0, angle = 0, brace = 0;
  auto close_segment = [&](std::size_t seg_e) {
    if (seg_e <= seg_b) return;
    WireParam wp;
    bool past_default = false;
    for (std::size_t k = seg_b; k < seg_e; ++k) {
      const std::string& s = t[k].text;
      if (s == "=") past_default = true;
      if (past_default) continue;
      if (byte_type_token(s)) wp.byte = true;
      if (s == "Packet") wp.carrier = true;
      if (is_ident(s)) wp.name = s;
    }
    if (!wp.name.empty() && wp.name != "void") out.push_back(std::move(wp));
  };
  for (std::size_t k = args_open + 1; k < args_close; ++k) {
    const std::string& s = t[k].text;
    if (s == "(") ++paren;
    else if (s == ")") --paren;
    else if (s == "{") ++brace;
    else if (s == "}") --brace;
    else if (s == "<" && is_ident(tok(t, k - 1))) ++angle;
    else if (s == ">" && angle > 0) --angle;
    else if (s == "," && paren == 0 && angle == 0 && brace == 0) {
      close_segment(k);
      seg_b = k + 1;
    }
  }
  close_segment(args_close);
  return out;
}

struct FnDef {
  FnSpan span;
  std::vector<WireParam> params;
  std::string file;  // of the name token
  int line = 0;
  bool marked = false;  // hipcheck:wire_input above the definition
};

/// A dotted access chain ("pkt.payload" = {"pkt","payload"}).
using Chain = std::vector<std::string>;

std::string chain_str(const Chain& c) {
  std::string s;
  for (const std::string& p : c) {
    if (!s.empty()) s += ".";
    s += p;
  }
  return s;
}

/// Token length of chain `c` spelled out at `i` (ident . ident ...), or
/// 0 when it does not match. Rejects suffix matches (`x.pkt.payload`).
std::size_t chain_len(const std::vector<Token>& t, std::size_t i,
                      const Chain& c) {
  if (tok(t, i) != c[0]) return 0;
  const std::string& prev = tok(t, i - 1);
  if (prev == "." || prev == "->") return 0;
  std::size_t k = i;
  for (std::size_t p = 1; p < c.size(); ++p) {
    const std::string& dot = tok(t, k + 1);
    if (dot != "." && dot != "->") return 0;
    if (tok(t, k + 2) != c[p]) return 0;
    k += 2;
  }
  return k - i + 1;
}

/// What a tainted definition knows about its own body.
struct BodyState {
  std::vector<Chain> buffers;      // tainted byte spans (dotted chains)
  std::set<std::string> carriers;  // tainted Packet locals/params
  std::set<std::string> scalars;   // values derived from tainted bytes
  std::set<std::string> readers;   // wire::Reader variables (sanitizers)
};

/// True when the chain occurrence at `i` (length `len`) is a clean use:
/// `.size()` / `.empty()` inspect the real buffer, not its contents.
bool clean_chain_use(const std::vector<Token>& t, std::size_t i,
                     std::size_t len) {
  const std::string& dot = tok(t, i + len);
  if (dot != "." && dot != "->") return false;
  const std::string& m = tok(t, i + len + 1);
  return m == "size" || m == "empty";
}

/// Scan [b, e) for tainted mentions; sets `has_view` when the span also
/// contains a view-producing token (the result stays a buffer).
bool mentions_taint(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    const BodyState& st, bool& has_view) {
  bool tainted = false;
  for (std::size_t k = b; k < e; ++k) {
    if (view_token(t[k].text)) has_view = true;
    if (!is_ident(t[k].text)) continue;
    for (const Chain& c : st.buffers) {
      const std::size_t len = chain_len(t, k, c);
      if (len != 0 && !clean_chain_use(t, k, len)) tainted = true;
    }
    if (tok(t, k - 1) != "." && tok(t, k - 1) != "->" &&
        st.scalars.count(t[k].text) != 0) {
      tainted = true;
    }
  }
  return tainted;
}

bool mentions_reader(const std::vector<Token>& t, std::size_t b,
                     std::size_t e, const BodyState& st) {
  for (std::size_t k = b; k < e; ++k) {
    if (is_ident(t[k].text) && st.readers.count(t[k].text) != 0) return true;
  }
  return false;
}

/// End of the statement starting inside `i` (first `;` at depth 0).
std::size_t stmt_end(const std::vector<Token>& t, std::size_t i,
                     std::size_t limit) {
  int depth = 0;
  for (std::size_t k = i; k < limit; ++k) {
    const std::string& s = t[k].text;
    if (s == "(" || s == "{" || s == "[") ++depth;
    else if (s == ")" || s == "}" || s == "]") --depth;
    else if (s == ";" && depth <= 0) return k;
  }
  return limit;
}

void erase_local(BodyState& st, const std::string& name) {
  st.scalars.erase(name);
  st.buffers.erase(std::remove_if(st.buffers.begin(), st.buffers.end(),
                                  [&](const Chain& c) {
                                    return c.size() == 1 && c[0] == name;
                                  }),
                   st.buffers.end());
}

void add_buffer(BodyState& st, Chain c) {
  for (const Chain& have : st.buffers) {
    if (have == c) return;
  }
  st.buffers.push_back(std::move(c));
}

/// Local dataflow over one definition's body: seed from tainted params,
/// then follow assignments. Reader variables sanitize; `.size()` is
/// clean; view-producing right-hand sides stay buffers, everything else
/// derived from tainted bytes becomes a tainted scalar. Two forward
/// passes reach the fixed point for the straight-line declaration chains
/// this models.
BodyState compute_body_state(const std::vector<Token>& t, const FnDef& def,
                             const std::set<int>& tainted_params) {
  BodyState st;
  for (int p : tainted_params) {
    if (p < 0 || static_cast<std::size_t>(p) >= def.params.size()) continue;
    const WireParam& wp = def.params[static_cast<std::size_t>(p)];
    if (wp.byte) add_buffer(st, {wp.name});
    if (wp.carrier) {
      st.carriers.insert(wp.name);
      add_buffer(st, {wp.name, "payload"});
    }
  }
  if (st.buffers.empty() && st.carriers.empty()) return st;

  const std::size_t b = def.span.body_open, e = def.span.body_close;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = b; i < e; ++i) {
      // `Reader r(...)` / `Reader r{...}` declares a sanitizing cursor.
      if (t[i].text == "Reader" && is_ident(tok(t, i + 1)) &&
          (tok(t, i + 2) == "(" || tok(t, i + 2) == "{")) {
        st.readers.insert(tok(t, i + 1));
        continue;
      }
      // Assignments / compound assignments to a plain local.
      if (!is_ident(t[i].text)) continue;
      const std::string& prev = tok(t, i - 1);
      if (prev == "." || prev == "->") continue;  // member write: not a local
      std::size_t rhs_b = 0;
      if (tok(t, i + 1) == "=" && tok(t, i + 2) != "=" && prev != "=" &&
          prev != "!" && prev != "<" && prev != ">") {
        rhs_b = i + 2;
      } else {
        static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                        "|", "&", "^", "%"};
        if (kCompound.count(tok(t, i + 1)) != 0 && tok(t, i + 2) == "=") {
          rhs_b = i + 3;
        }
      }
      if (rhs_b == 0) continue;
      const std::size_t rhs_e = stmt_end(t, rhs_b, e);
      if (mentions_reader(t, rhs_b, rhs_e, st)) {
        // Reader-derived values are bounds-proven — and overwrite any
        // previous taint the local carried.
        erase_local(st, t[i].text);
        continue;
      }
      bool has_view = false;
      if (mentions_taint(t, rhs_b, rhs_e, st, has_view)) {
        if (has_view) add_buffer(st, {t[i].text});
        else st.scalars.insert(t[i].text);
      }
      i = rhs_e;
    }
  }
  return st;
}

// --------------------------------------------------------------------------
// Interprocedural propagation.

/// Call sites in a tainted body that pass a tainted span / Packet:
/// record (callee name, argument position) pairs into the taint map.
bool propagate_calls(const std::vector<Token>& t, const FnDef& def,
                     const BodyState& st, WireTaint& taint) {
  bool changed = false;
  const std::size_t b = def.span.body_open, e = def.span.body_close;
  for (std::size_t i = b; i < e; ++i) {
    if (!is_ident(t[i].text) || tok(t, i + 1) != "(") continue;
    if (control_kw().count(t[i].text) != 0) continue;
    const std::size_t close = match_paren(t, i + 1);
    if (close >= e) continue;
    int pos = 0;
    std::size_t seg_b = i + 2;
    int depth = 0;
    auto scan_arg = [&](std::size_t ab, std::size_t ae) {
      bool hit = false;
      for (std::size_t k = ab; k < ae && !hit; ++k) {
        if (!is_ident(t[k].text)) continue;
        for (const Chain& c : st.buffers) {
          const std::size_t len = chain_len(t, k, c);
          if (len != 0 && !clean_chain_use(t, k, len)) {
            hit = true;
            break;
          }
        }
        if (!hit && tok(t, k - 1) != "." && tok(t, k - 1) != "->" &&
            st.carriers.count(t[k].text) != 0 && tok(t, k + 1) != ".") {
          hit = true;
        }
      }
      if (hit && taint.fns[t[i].text].insert(pos).second) changed = true;
    };
    for (std::size_t k = i + 2; k < close; ++k) {
      const std::string& a = t[k].text;
      if (a == "(" || a == "{" || a == "[") ++depth;
      else if (a == ")" || a == "}" || a == "]") --depth;
      else if (a == "," && depth == 0) {
        scan_arg(seg_b, k);
        seg_b = k + 1;
        ++pos;
      }
    }
    scan_arg(seg_b, close);
  }
  return changed;
}

// --------------------------------------------------------------------------
// Rules.

/// Comparison-context occurrence of scalar `s` strictly before `before`:
/// adjacent to a relational operator or inside a min/max clamp. This is
/// the "some validation dominates the use" heuristic — like the rest of
/// the analyzer it is flow-insensitive within a body, which is sound
/// enough for the early-exit parser style this tree writes.
bool scalar_guarded(const std::vector<Token>& t, std::size_t body_open,
                    std::size_t before, const std::string& s) {
  for (std::size_t k = body_open; k < before; ++k) {
    if (t[k].text != s) continue;
    const std::string& p = tok(t, k - 1);
    const std::string& n = tok(t, k + 1);
    if (p == "<" || p == ">" || n == "<" || n == ">") return true;
    if ((n == "=" && tok(t, k + 2) == "=") ||
        (p == "=" && (tok(t, k - 2) == "=" || tok(t, k - 2) == "!"))) {
      return true;
    }
    if (tok(t, k - 1) == "(" &&
        (tok(t, k - 2) == "min" || tok(t, k - 2) == "max")) {
      return true;
    }
  }
  return false;
}

/// Positions (token indices) where buffer chain `c` is size-checked.
std::vector<std::size_t> size_check_positions(const std::vector<Token>& t,
                                              std::size_t b, std::size_t e,
                                              const Chain& c) {
  std::vector<std::size_t> out;
  for (std::size_t k = b; k < e; ++k) {
    const std::size_t len = chain_len(t, k, c);
    if (len != 0 && clean_chain_use(t, k, len)) out.push_back(k);
  }
  return out;
}

/// Tainted scalars mentioned in [b, e) (plain idents, not member names).
std::vector<std::string> tainted_scalars_in(const std::vector<Token>& t,
                                            std::size_t b, std::size_t e,
                                            const BodyState& st) {
  std::vector<std::string> out;
  for (std::size_t k = b; k < e; ++k) {
    if (!is_ident(t[k].text)) continue;
    if (tok(t, k - 1) == "." || tok(t, k - 1) == "->") continue;
    if (st.scalars.count(t[k].text) != 0) out.push_back(t[k].text);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void run_rules(const std::vector<Token>& t, const FileTable& files,
               const FnDef& def, const BodyState& st, bool all_paths,
               std::vector<Finding>& out) {
  const std::size_t b = def.span.body_open, e = def.span.body_close;

  auto report = [&](std::size_t at, const std::string& rule,
                    const std::string& msg) {
    const std::string file = files.path(t[at].file);
    if (!in_scope(file, all_paths)) return;
    out.push_back({file, t[at].line, rule, msg});
  };

  // flow-wire-index: tainted buffer indexed or sliced unguarded.
  for (const Chain& c : st.buffers) {
    const std::vector<std::size_t> checks = size_check_positions(t, b, e, c);
    auto checked_before = [&](std::size_t i) {
      for (std::size_t p : checks) {
        if (p < i) return true;
      }
      return false;
    };
    for (std::size_t i = b; i < e; ++i) {
      const std::size_t len = chain_len(t, i, c);
      if (len == 0) continue;
      const std::string cs = chain_str(c);
      if (tok(t, i + len) == "[" && !checked_before(i)) {
        report(i, "flow-wire-index",
               "`" + cs + "` holds wire-tainted bytes (source: `" +
                   def.span.name +
                   "`) and is indexed with no dominating size check — read "
                   "through wire::Reader or guard with `" + cs +
                   ".size()` first");
        continue;
      }
      const std::string& dot = tok(t, i + len);
      const std::string& m = tok(t, i + len + 1);
      if ((dot == "." || dot == "->") && (m == "substr" || m == "subspan") &&
          tok(t, i + len + 2) == "(") {
        const std::size_t ac = match_paren(t, i + len + 2);
        for (const std::string& s :
             tainted_scalars_in(t, i + len + 3, ac, st)) {
          if (scalar_guarded(t, b, i, s)) continue;
          report(i, "flow-wire-index",
                 "`" + cs + "." + m + "(...)` sliced by wire-tainted `" + s +
                     "` with no dominating bounds check — a crafted "
                     "length reads past the buffer; use wire::Reader's "
                     "bytes()/skip()");
          break;
        }
      }
    }
  }

  // flow-wire-overflow: `a + b > buf.size()` (either order) with a
  // tainted operand — the sum wraps for attacker-chosen values.
  for (std::size_t i = b; i + 3 < e; ++i) {
    // Forward form: A + B > ... size ...
    if (is_ident(t[i].text) && tok(t, i + 1) == "+" &&
        is_ident(t[i + 2].text) && tok(t, i - 1) != "." &&
        (tok(t, i + 3) == ">" || tok(t, i + 3) == ">=")) {
      const bool tainted = st.scalars.count(t[i].text) != 0 ||
                           st.scalars.count(t[i + 2].text) != 0;
      bool vs_size = false;
      for (std::size_t k = i + 4; k < std::min(e, i + 12); ++k) {
        if (t[k].text == "size") vs_size = true;
        if (t[k].text == ")" || t[k].text == ";") break;
      }
      if (tainted && vs_size) {
        report(i, "flow-wire-overflow",
               "wrap-prone bounds guard: `" + t[i].text + " + " +
                   t[i + 2].text +
                   " > ...size()` overflows for attacker-chosen values and "
                   "the check passes — compare `" + t[i + 2].text +
                   " > size - " + t[i].text +
                   "` instead, or read through wire::Reader");
      }
    }
    // Reversed form: ... size ( ) < A + B
    if (t[i].text == "size" && tok(t, i - 1) == "." &&
        tok(t, i + 1) == "(" && tok(t, i + 2) == ")" &&
        tok(t, i + 3) == "<") {
      std::size_t j = i + 4;
      if (tok(t, j) == "=") ++j;
      if (is_ident(tok(t, j)) && tok(t, j + 1) == "+" &&
          is_ident(tok(t, j + 2))) {
        if (st.scalars.count(tok(t, j)) != 0 ||
            st.scalars.count(tok(t, j + 2)) != 0) {
          report(j, "flow-wire-overflow",
                 "wrap-prone bounds guard: `...size() < " + tok(t, j) +
                     " + " + tok(t, j + 2) +
                     "` overflows for attacker-chosen values — compare "
                     "against `size - " + tok(t, j) +
                     "` instead, or read through wire::Reader");
        }
      }
    }
  }

  // flow-wire-alloc: resize/reserve sized by a tainted value with no
  // earlier validation.
  for (std::size_t i = b; i < e; ++i) {
    if ((t[i].text != "resize" && t[i].text != "reserve") ||
        tok(t, i - 1) != "." || tok(t, i + 1) != "(") {
      continue;
    }
    const std::size_t ac = match_paren(t, i + 1);
    for (const std::string& s : tainted_scalars_in(t, i + 2, ac, st)) {
      if (scalar_guarded(t, b, i, s)) continue;
      report(i, "flow-wire-alloc",
             "allocation sized by wire-tainted `" + s + "` (`." + t[i].text +
                 "`) before any validation — a 2-byte length field can "
                 "demand a huge buffer; validate or clamp it first");
      break;
    }
  }

  // flow-wire-loop: loop bounded by a tainted value whose body shows no
  // progress and no escape.
  for (std::size_t i = b; i < e; ++i) {
    if ((t[i].text != "while" && t[i].text != "for") || tok(t, i + 1) != "(") {
      continue;
    }
    const std::size_t cond_close = match_paren(t, i + 1);
    if (cond_close >= e) continue;
    const std::vector<std::string> bound =
        tainted_scalars_in(t, i + 2, cond_close, st);
    if (bound.empty()) continue;
    std::size_t body_end;
    if (tok(t, cond_close + 1) == "{") {
      body_end = match_brace(t, cond_close + 1);
    } else {
      body_end = stmt_end(t, cond_close + 1, e);
    }
    if (body_end > e) body_end = e;
    // Idents compared in the condition — progress on any of them (or a
    // Reader advancing, or an escape) means the loop can terminate.
    std::set<std::string> cond_idents;
    for (std::size_t k = i + 2; k < cond_close; ++k) {
      if (is_ident(t[k].text) && control_kw().count(t[k].text) == 0) {
        cond_idents.insert(t[k].text);
      }
    }
    bool progress = false;
    for (std::size_t k = i + 1; k <= body_end && !progress; ++k) {
      const std::string& s = t[k].text;
      if (s == "break" || s == "return" || s == "throw" || s == "goto") {
        progress = true;
      }
      if (is_ident(s) && st.readers.count(s) != 0) progress = true;
      if (cond_idents.count(s) != 0) {
        const std::string& n1 = tok(t, k + 1);
        const std::string& n2 = tok(t, k + 2);
        const std::string& p1 = tok(t, k - 1);
        const std::string& p2 = tok(t, k - 2);
        if ((n1 == "+" && n2 == "+") || (n1 == "-" && n2 == "-") ||
            (p1 == "+" && p2 == "+") || (p1 == "-" && p2 == "-") ||
            ((n1 == "+" || n1 == "-") && n2 == "=") ||
            (n1 == "=" && n2 != "=")) {
          progress = true;
        }
      }
    }
    if (!progress) {
      report(i, "flow-wire-loop",
             "loop bounded by wire-tainted `" + bound[0] +
                 "` makes no visible progress (no ++/+=/assignment on the "
                 "compared values, no break/return, no Reader advance) — a "
                 "crafted message spins it forever; cap the bound or "
                 "advance through wire::Reader");
    }
  }
}

}  // namespace

// --------------------------------------------------------------------------
// Driver.

WireTaint analyze_wire(const std::vector<TranslationUnit>& units,
                       const FileTable& files, const OwnershipMarks& marks,
                       bool all_paths, std::vector<Finding>& out) {
  // Collect every function definition once, with its wire-relevant
  // parameter facts. Unit order is the driver's sorted TU order, so the
  // whole resolution is deterministic at any --jobs.
  std::vector<std::vector<FnDef>> defs(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::vector<Token>& t = units[u].tokens;
    for (const FnSpan& fn : find_fn_spans(t)) {
      FnDef d;
      d.span = fn;
      d.file = files.path(t[fn.name_idx].file);
      d.line = t[fn.name_idx].line;
      d.params =
          parse_wire_params(t, fn.args_open, match_paren(t, fn.args_open));
      d.marked = marks.fn_marked(d.file, d.line, OwnMark::kWire);
      defs[u].push_back(std::move(d));
    }
  }

  // Seed: every byte-span / Packet parameter of a marked definition.
  WireTaint taint;
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (const FnDef& d : defs[u]) {
      if (!d.marked) continue;
      for (std::size_t p = 0; p < d.params.size(); ++p) {
        if (d.params[p].byte || d.params[p].carrier) {
          taint.fns[d.span.name].insert(static_cast<int>(p));
        }
      }
    }
  }

  // Fixpoint: tainted definitions taint the argument positions they pass
  // tainted spans/Packets into. Positions are interpreted lazily — a
  // definition only *uses* an entry when its own parameter there is
  // byte-typed — so over-approximate entries on unrelated same-named
  // functions are inert.
  auto tainted_positions = [&](const FnDef& d) {
    std::set<int> pos;
    auto it = taint.fns.find(d.span.name);
    if (it != taint.fns.end()) pos = it->second;
    if (d.marked) {
      for (std::size_t p = 0; p < d.params.size(); ++p) {
        if (d.params[p].byte || d.params[p].carrier) {
          pos.insert(static_cast<int>(p));
        }
      }
    }
    return pos;
  };
  for (int round = 0; round < 16; ++round) {
    bool changed = false;
    for (std::size_t u = 0; u < units.size(); ++u) {
      const std::vector<Token>& t = units[u].tokens;
      for (const FnDef& d : defs[u]) {
        const std::set<int> pos = tainted_positions(d);
        if (pos.empty()) continue;
        const BodyState st = compute_body_state(t, d, pos);
        if (st.buffers.empty() && st.carriers.empty()) continue;
        if (propagate_calls(t, d, st, taint)) changed = true;
      }
    }
    if (!changed) break;
  }

  // Rules over every tainted definition. Header-defined functions are
  // seen once per including TU; identical findings collapse in the
  // driver's global sort+unique.
  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::vector<Token>& t = units[u].tokens;
    for (const FnDef& d : defs[u]) {
      const std::set<int> pos = tainted_positions(d);
      if (pos.empty()) continue;
      const BodyState st = compute_body_state(t, d, pos);
      if (st.buffers.empty() && st.carriers.empty()) continue;
      run_rules(t, files, d, st, all_paths, out);
    }
  }
  return taint;
}

void dump_wire_taint(const WireTaint& taint, std::FILE* out) {
  for (const auto& [name, positions] : taint.fns) {
    std::fprintf(out, "wire %s ", name.c_str());
    bool first = true;
    for (int p : positions) {
      std::fprintf(out, "%s%d", first ? "" : ",", p);
      first = false;
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace hipflow
