#!/usr/bin/env bash
# Pins the cross-TU summaries: `hipcloud_flow --dump-callgraph` over the
# callgraph fixture mini-tree, and `--dump-wire` over the wireindex
# fixture mini-tree, must be byte-identical to the checked-in goldens at
# every job count — worker scheduling must not be observable in either
# the linked graph or the resolved taint map.
set -u

FLOW="$1"         # path to the hipcloud_flow binary
FIXTURE="$2"      # tools/flow/fixtures/callgraph
GOLDEN="$3"       # expected_callgraph.txt
WIRE_FIXTURE="$4" # tools/flow/fixtures/wireindex
WIRE_GOLDEN="$5"  # expected_taint.txt

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

rc=0
for j in 1 2 8; do
  if ! "$FLOW" --root "$FIXTURE" --dump-callgraph --jobs "$j" src \
      > "$tmp/dump.$j" 2> "$tmp/err.$j"; then
    echo "FAIL: hipcloud_flow --dump-callgraph --jobs $j exited non-zero"
    cat "$tmp/err.$j"
    rc=1
  fi
  if ! diff -u "$GOLDEN" "$tmp/dump.$j" > "$tmp/diff.$j"; then
    echo "FAIL: callgraph dump at --jobs $j differs from golden:"
    cat "$tmp/diff.$j"
    rc=1
  fi
  if ! "$FLOW" --root "$WIRE_FIXTURE" --dump-wire --jobs "$j" src \
      > "$tmp/wire.$j" 2> "$tmp/werr.$j"; then
    echo "FAIL: hipcloud_flow --dump-wire --jobs $j exited non-zero"
    cat "$tmp/werr.$j"
    rc=1
  fi
  if ! diff -u "$WIRE_GOLDEN" "$tmp/wire.$j" > "$tmp/wdiff.$j"; then
    echo "FAIL: wire-taint dump at --jobs $j differs from golden:"
    cat "$tmp/wdiff.$j"
    rc=1
  fi
done

# Belt and braces: the per-jobs dumps must also agree with each other.
if ! cmp -s "$tmp/dump.1" "$tmp/dump.2" || ! cmp -s "$tmp/dump.1" "$tmp/dump.8"; then
  echo "FAIL: callgraph dumps differ across job counts"
  rc=1
fi
if ! cmp -s "$tmp/wire.1" "$tmp/wire.2" || ! cmp -s "$tmp/wire.1" "$tmp/wire.8"; then
  echo "FAIL: wire-taint dumps differ across job counts"
  rc=1
fi

if [ "$rc" -eq 0 ]; then
  echo "callgraph + wire-taint determinism: OK (jobs 1/2/8 byte-identical)"
fi
exit "$rc"
