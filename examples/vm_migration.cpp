// Live VM migration with HIP mobility (paper §IV-C): a client talks to a
// service VM by its HIT while the cloud migrates the VM to another
// physical host — and a different subnet. The VM's IP address changes;
// its identity (and therefore the client's connection state) survives,
// re-homed by a single UPDATE handshake.

#include <cstdio>

#include "cloud/cloud.hpp"
#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "net/udp.hpp"

using namespace hipcloud;

namespace {
hip::HostIdentity make_identity(const char* name) {
  crypto::HmacDrbg drbg(41, std::string("migration-example:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}
}  // namespace

int main() {
  net::Network net(43);
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  auto* host0 = ec2.add_host();
  auto* host1 = ec2.add_host();
  auto* service = ec2.launch("service", cloud::InstanceType::small(), "acme",
                             host0);
  auto* client = ec2.launch("client", cloud::InstanceType::small(), "acme",
                            host0);

  hip::HipDaemon hip_service(service->node(), make_identity("service"));
  hip::HipDaemon hip_client(client->node(), make_identity("client"));
  hip_service.add_peer(hip_client.hit(), net::IpAddr(client->private_ip()));
  hip_client.add_peer(hip_service.hit(), net::IpAddr(service->private_ip()));

  std::printf("service VM: %s on host%d, HIT %s\n",
              service->private_ip().to_string().c_str(),
              service->host()->index(),
              hip_service.hit().to_string().c_str());

  // A counter service addressed by HIT.
  net::UdpStack us(service->node()), uc(client->node());
  std::uint64_t served = 0;
  us.bind(7, [&](const net::Endpoint& from, const net::IpAddr&,
                 crypto::Bytes) {
    ++served;
    us.send(7, from, crypto::to_bytes(std::to_string(served)));
  });

  std::uint64_t replies = 0;
  uc.bind(9, [&](const net::Endpoint&, const net::IpAddr&, crypto::Bytes) {
    ++replies;
  });
  // Steady 50 req/s probe stream for 10 s.
  for (int i = 0; i < 500; ++i) {
    net.loop().schedule(i * sim::from_millis(20), [&] {
      uc.send(9, net::Endpoint{net::IpAddr(hip_service.hit()), 7},
              crypto::Bytes(32, 0x42));
    });
  }

  // Migrate at t=3s to the other host (different subnet -> new IP).
  net.loop().schedule(3 * sim::kSecond, [&] {
    std::printf("[t=3s] migrating service VM to host1...\n");
    ec2.migrate(service, host1,
                [&](const cloud::Cloud::MigrationReport& report) {
                  std::printf(
                      "[t=%.2fs] migration complete: new IP %s, "
                      "%.0f MB copied, downtime %.0f ms\n",
                      sim::to_seconds(net.loop().now()),
                      report.new_ip.to_string().c_str(),
                      static_cast<double>(report.bytes_copied) / 1e6,
                      sim::to_millis(report.downtime));
                  // HIP mobility: one UPDATE re-homes every association.
                  hip_service.move_to(net::IpAddr(report.new_ip));
                });
  });

  net.loop().run();

  std::printf("\nprobes sent 500, replies received %llu (loss %.1f%%)\n",
              static_cast<unsigned long long>(replies),
              (500.0 - static_cast<double>(replies)) / 5.0);
  std::printf("service VM now at %s on host%d — same HIT, same ESP "
              "association, no client-side reconfiguration\n",
              service->private_ip().to_string().c_str(),
              service->host()->index());
  std::printf("UPDATE handshakes processed by client: %llu\n",
              static_cast<unsigned long long>(
                  hip_client.stats().updates_processed));
  const bool success = replies > 450 && service->host() == host1;
  std::printf("vm_migration %s\n", success ? "OK" : "FAILED");
  return success ? 0 : 1;
}
