// "Power user" access (paper §IV-D): a cloud administrator working from a
// NATted home network reaches a VM inside the cloud directly over
// HIP-over-Teredo — no VPN, no port forwarding, no proxy. The admin's
// workstation qualifies with a public Teredo server, then runs the HIP
// Base Exchange through the tunnel and talks to the VM's management
// service over the resulting ESP association.

#include <cstdio>

#include "cloud/cloud.hpp"
#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "net/nat.hpp"
#include "net/teredo.hpp"

using namespace hipcloud;

namespace {
hip::HostIdentity make_identity(const char* name) {
  crypto::HmacDrbg drbg(31, std::string("poweruser:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}
}  // namespace

int main() {
  net::Network net(37);

  // The cloud with one managed VM.
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  ec2.add_host();
  auto* vm = ec2.launch("prod-vm", cloud::InstanceType::small(), "acme");

  // Public internet + Teredo server.
  auto* inet = net.add_node("internet");
  inet->set_forwarding(true);
  ec2.attach_external(inet, ec2.profile().gateway_link);
  auto* teredo_srv = net.add_node("teredo-server");
  const auto tl = net.connect(teredo_srv, inet,
                              {100e6, sim::from_millis(2),
                               sim::from_millis(100), 0.0, 1500});
  teredo_srv->add_address(tl.iface_a, net::Ipv4Addr(83, 1, 1, 1));
  inet->add_address(tl.iface_b, net::Ipv4Addr(83, 1, 1, 254));
  teredo_srv->set_default_route(tl.iface_a);
  inet->add_route(net::IpAddr(net::Ipv4Addr(83, 1, 1, 1)), 32, tl.iface_b);

  // The admin's home network: workstation behind a consumer NAT.
  auto* home_nat = net.add_node("home-router");
  auto* admin = net.add_node("admin-laptop", 4e9);
  const auto hl = net.connect(admin, home_nat,
                              {50e6, sim::from_millis(1),
                               sim::from_millis(100), 0.0, 1500});
  const auto ul = net.connect(home_nat, inet,
                              {20e6, sim::from_millis(8),
                               sim::from_millis(100), 0.0, 1500});
  admin->add_address(hl.iface_a, net::Ipv4Addr(192, 168, 1, 100));
  home_nat->add_address(hl.iface_b, net::Ipv4Addr(192, 168, 1, 1));
  home_nat->add_address(ul.iface_a, net::Ipv4Addr(84, 20, 30, 41));
  inet->add_address(ul.iface_b, net::Ipv4Addr(84, 20, 30, 254));
  admin->set_default_route(hl.iface_a);
  home_nat->add_route(net::IpAddr(net::Ipv4Addr(192, 168, 1, 0)), 24,
                      hl.iface_b);
  home_nat->set_default_route(ul.iface_a);
  // NAT pool address routed at the home router.
  net::Nat nat(home_nat, hl.iface_b, ul.iface_a,
               net::Ipv4Addr(84, 20, 30, 40));
  inet->add_route(net::IpAddr(net::Ipv4Addr(84, 20, 30, 40)), 32,
                  ul.iface_b);
  inet->add_route(net::IpAddr(net::Ipv4Addr(84, 20, 30, 41)), 32,
                  ul.iface_b);

  // HIP daemons first (shim order), then Teredo clients.
  hip::HipDaemon hip_admin(admin, make_identity("admin"));
  hip::HipDaemon hip_vm(vm->node(), make_identity("vm"));
  // Management plane is locked to the admin's HIT — topology-independent
  // access control.
  hip_vm.set_default_accept(false);
  hip_vm.allow(hip_admin.hit());

  net::UdpStack u_admin(admin), u_vm(vm->node()), u_srv(teredo_srv);
  net::TeredoServer server(teredo_srv, &u_srv);
  const net::Endpoint srv_ep{net::IpAddr(net::Ipv4Addr(83, 1, 1, 1)),
                             net::kTeredoPort};
  net::TeredoClient t_admin(admin, &u_admin, srv_ep);
  net::TeredoClient t_vm(vm->node(), &u_vm, srv_ep);

  t_admin.qualify([](const net::Ipv6Addr& addr) {
    std::printf("admin Teredo address : %s\n", addr.to_string().c_str());
  });
  t_vm.qualify([](const net::Ipv6Addr& addr) {
    std::printf("VM Teredo address    : %s\n", addr.to_string().c_str());
  });
  net.loop().run();
  if (!t_admin.qualified() || !t_vm.qualified()) {
    std::printf("Teredo qualification failed\n");
    return 1;
  }
  // The NAT mapping learned during qualification is visible in the
  // admin's Teredo address — inspect it:
  const auto mapped = net::teredo_mapped_endpoint(t_admin.address());
  std::printf("NAT mapping embedded in admin's address: %s\n",
              mapped.to_string().c_str());

  // HIP over Teredo locators.
  hip_admin.add_peer(hip_vm.hit(), net::IpAddr(t_vm.address()));
  hip_vm.add_peer(hip_admin.hit(), net::IpAddr(t_admin.address()));

  // A toy management service on the VM, reachable only via HIP.
  u_vm.bind(22, [&](const net::Endpoint& from, const net::IpAddr&,
                    crypto::Bytes) {
    u_vm.send(22, from, crypto::to_bytes("uptime: 42 days, load 0.03"));
  });

  bool got_reply = false;
  u_admin.bind(9000, [&](const net::Endpoint&, const net::IpAddr&,
                         crypto::Bytes data) {
    std::printf("management reply     : %.*s\n",
                static_cast<int>(data.size()),
                data.empty() ? "" : reinterpret_cast<const char*>(data.data()));
    got_reply = true;
  });
  hip_admin.on_established([&](const net::Ipv6Addr&, sim::Duration rtt) {
    std::printf("BEX over Teredo through the NAT completed in %.2f ms\n",
                sim::to_millis(rtt));
  });
  u_admin.send(9000, net::Endpoint{net::IpAddr(hip_vm.hit()), 22},
               crypto::to_bytes("status"));
  net.loop().run();

  std::printf("power_user_teredo %s\n", got_reply ? "OK" : "FAILED");
  return got_reply ? 0 : 1;
}
