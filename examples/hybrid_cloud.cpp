// Hybrid cloud (paper §IV-A): a company runs its web tier in a private
// OpenNebula cloud but keeps the database on-premises... inverted here to
// the paper's canonical case: the web tier bursts into a public EC2-like
// cloud while the shared database stays in the private cloud. HIP
// authenticates and protects the inter-cloud traffic; a HIP-aware
// firewall at the private gateway admits only the authorized public VMs.

#include <cstdio>

#include "apps/database.hpp"
#include "cloud/cloud.hpp"
#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "hip/firewall.hpp"

using namespace hipcloud;

namespace {
hip::HostIdentity make_identity(const char* name) {
  crypto::HmacDrbg drbg(23, std::string("hybrid-example:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}
}  // namespace

int main() {
  net::Network net(29);

  // Two clouds joined across a WAN.
  cloud::Cloud priv(net, cloud::ProviderProfile::opennebula(), 1);
  cloud::Cloud pub(net, cloud::ProviderProfile::ec2(), 2);
  priv.add_host();
  pub.add_host();
  pub.add_host();

  auto* wan = net.add_node("wan");
  wan->set_forwarding(true);
  net::LinkConfig wan_link{200e6, sim::from_millis(12), sim::from_millis(200),
                           0.0, 1500};
  priv.attach_external(wan, wan_link);
  pub.attach_external(wan, wan_link);

  // The database stays private; two web workers burst into EC2.
  auto* db_vm = priv.launch("db", cloud::InstanceType::large(), "acme");
  auto* web1 = pub.launch("web1", cloud::InstanceType::small(), "acme");
  auto* web2 = pub.launch("web2", cloud::InstanceType::small(), "acme");
  // A competing tenant shares the public cloud.
  auto* rival = pub.launch("rival", cloud::InstanceType::small(), "rival");

  hip::HipDaemon hd(db_vm->node(), make_identity("db"));
  hip::HipDaemon h1(web1->node(), make_identity("web1"));
  hip::HipDaemon h2(web2->node(), make_identity("web2"));
  hip::HipDaemon hr(rival->node(), make_identity("rival"));

  // hosts.allow on the database: only the company's own web workers.
  hd.set_default_accept(false);
  hd.allow(h1.hit());
  hd.allow(h2.hit());

  // A HIP-aware firewall at the private cloud's gateway passes only the
  // authorized HIT pairs and their negotiated ESP flows.
  hip::HipFirewall firewall(priv.gateway(), /*default_accept=*/false);
  firewall.allow_pair(hd.hit(), h1.hit());
  firewall.allow_pair(hd.hit(), h2.hit());

  hd.add_peer(h1.hit(), net::IpAddr(web1->private_ip()));
  hd.add_peer(h2.hit(), net::IpAddr(web2->private_ip()));
  h1.add_peer(hd.hit(), net::IpAddr(db_vm->private_ip()));
  h2.add_peer(hd.hit(), net::IpAddr(db_vm->private_ip()));
  hr.add_peer(hd.hit(), net::IpAddr(db_vm->private_ip()));

  net::TcpStack td(db_vm->node()), t1(web1->node()), t2(web2->node()),
      tr(rival->node());
  apps::DatabaseServer db(db_vm->node(), &td, 3306);
  for (int i = 0; i < 100; ++i) db.load_row("customers", i, 512);

  // Authorized workers query across clouds by HIT.
  int ok1 = 0, ok2 = 0;
  apps::DbClient c1(web1->node(), &t1,
                    net::Endpoint{net::IpAddr(hd.hit()), 3306});
  apps::DbClient c2(web2->node(), &t2,
                    net::Endpoint{net::IpAddr(hd.hit()), 3306});
  for (int i = 0; i < 10; ++i) {
    c1.query("GET customers " + std::to_string(i),
             [&](std::optional<apps::DbResult> result, sim::Duration) {
               if (result && result->ok && !result->rows.empty()) ++ok1;
             });
    c2.query("GET customers " + std::to_string(i + 10),
             [&](std::optional<apps::DbResult> result, sim::Duration) {
               if (result && result->ok && !result->rows.empty()) ++ok2;
             });
  }
  // The rival tries the same — both over HIP (denied by ACL + firewall)
  // and with a plain TCP connection (dropped by the firewall).
  int rival_ok = 0;
  apps::DbClient cr_hip(rival->node(), &tr,
                        net::Endpoint{net::IpAddr(hd.hit()), 3306});
  cr_hip.query("GET customers 0",
               [&](std::optional<apps::DbResult> result, sim::Duration) {
                 if (result && result->ok) ++rival_ok;
               });
  apps::DbClient cr_plain(rival->node(), &tr,
                          net::Endpoint{net::IpAddr(db_vm->private_ip()),
                                        3306});
  cr_plain.query("GET customers 0",
                 [&](std::optional<apps::DbResult> result, sim::Duration) {
                   if (result && result->ok) ++rival_ok;
                 });

  net.loop().run(60 * sim::kSecond);

  std::printf("Hybrid cloud demo results:\n");
  std::printf("  web1 (authorized, EC2)  : %d/10 queries answered\n", ok1);
  std::printf("  web2 (authorized, EC2)  : %d/10 queries answered\n", ok2);
  std::printf("  rival tenant            : %d queries answered (HIP denied "
              "by ACL, plain TCP dropped by HIP firewall)\n",
              rival_ok);
  std::printf("  firewall: %llu packets passed, %llu dropped, %zu ESP flows "
              "learned\n",
              static_cast<unsigned long long>(firewall.passed()),
              static_cast<unsigned long long>(firewall.dropped()),
              firewall.learned_spis());
  const bool success = ok1 == 10 && ok2 == 10 && rival_ok == 0;
  std::printf("hybrid_cloud %s\n", success ? "OK" : "FAILED");
  return success ? 0 : 1;
}
