// The paper's Figure 1 architecture end-to-end: consumers reach a
// reverse HTTP proxy / load balancer over plain HTTP; the proxy
// terminates HIP and balances across three web-server VMs which share a
// database VM — all intra-cloud traffic protected by BEET-ESP tunnels.
// Demonstrates the end-to-middle deployment: the client never speaks HIP.

#include <cstdio>

#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace hipcloud;

int main() {
  core::TestbedConfig cfg;
  cfg.deployment.mode = core::SecurityMode::kHip;
  cfg.deployment.web_servers = 3;
  core::Testbed bed(cfg);

  std::printf("Deployed the Figure 1 architecture in an EC2-like cloud:\n");
  std::printf("  load balancer : %s (outside the cloud)\n",
              bed.service().frontend().to_string().c_str());
  for (std::size_t i = 0; i < 3; ++i) {
    auto* vm = bed.service().web_vms()[i];
    std::printf("  web%zu          : %s  HIT %s (%s)\n", i,
                vm->private_ip().to_string().c_str(),
                bed.service().web_hip(i)->hit().to_string().c_str(),
                vm->type().name.c_str());
  }
  std::printf("  db            : %s  HIT %s (%s)\n",
              bed.service().db_vm()->private_ip().to_string().c_str(),
              bed.service().db_hip()->hit().to_string().c_str(),
              bed.service().db_vm()->type().name.c_str());

  std::printf("\nDriving 10 concurrent consumers (plain HTTP) for 15 s of "
              "virtual time...\n");
  const auto report = bed.run_closed_loop(10, 15 * sim::kSecond);

  std::printf("\nResults:\n");
  std::printf("  completed requests : %llu (%.1f req/s)\n",
              static_cast<unsigned long long>(report.completed),
              report.throughput_rps());
  std::printf("  errors             : %llu\n",
              static_cast<unsigned long long>(report.errors));
  std::printf("  latency mean/p95   : %.1f / %.1f ms\n",
              report.latency_ms.mean(), report.latency_ms.percentile(95));

  const auto& dispatched = bed.service().proxy().dispatched();
  std::printf("  round-robin spread : %llu / %llu / %llu\n",
              static_cast<unsigned long long>(dispatched[0]),
              static_cast<unsigned long long>(dispatched[1]),
              static_cast<unsigned long long>(dispatched[2]));
  std::printf("  ESP packets (all daemons, outbound): %llu\n",
              static_cast<unsigned long long>(
                  bed.service().total_esp_packets()));
  std::printf("  DB queries executed: %llu\n",
              static_cast<unsigned long long>(
                  bed.service().database().queries_executed()));
  std::printf("\nEvery byte between the LB, web tier and DB crossed the\n"
              "multi-tenant fabric inside authenticated, encrypted ESP —\n"
              "while the consumers used nothing but HTTP.\n");
  return report.completed > 0 && report.errors == 0 ? 0 : 1;
}
