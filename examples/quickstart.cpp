// Quickstart: two hosts establish a HIP association and exchange data
// over the resulting BEET-ESP tunnel — the minimal end-to-end use of the
// library. Walks through every step with commentary.

#include <cstdio>

#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "net/udp.hpp"
#include "sim/log.hpp"

using namespace hipcloud;

int main() {
  sim::Log::set_level(sim::LogLevel::kInfo);

  // 1. A simulated world: two hosts on one link.
  net::Network net(/*seed=*/42);
  net::Node* alice = net.add_node("alice", 3e9);
  net::Node* bob = net.add_node("bob", 3e9);
  const auto link = net.connect(alice, bob, {});
  alice->add_address(link.iface_a, net::Ipv4Addr(10, 0, 0, 1));
  bob->add_address(link.iface_b, net::Ipv4Addr(10, 0, 0, 2));
  alice->set_default_route(link.iface_a);
  bob->set_default_route(link.iface_b);

  // 2. Host identities: public keys whose hash is the Host Identity Tag.
  crypto::HmacDrbg da(1, "alice"), db(2, "bob");
  auto id_a = hip::HostIdentity::generate(da, hip::HiAlgorithm::kRsa, 1024);
  auto id_b = hip::HostIdentity::generate(db, hip::HiAlgorithm::kRsa, 1024);
  std::printf("alice HIT: %s\n", id_a.hit().to_string().c_str());
  std::printf("bob   HIT: %s\n", id_b.hit().to_string().c_str());

  // 3. HIP daemons — the layer-3.5 shim on each host.
  hip::HipDaemon hip_a(alice, std::move(id_a));
  hip::HipDaemon hip_b(bob, std::move(id_b));

  // 4. Peer knowledge: HIT -> locator (in deployment this comes from DNS
  //    HIP records; here a static "hip hosts" entry).
  hip_a.add_peer(hip_b.hit(), net::IpAddr(net::Ipv4Addr(10, 0, 0, 2)));
  hip_b.add_peer(hip_a.hit(), net::IpAddr(net::Ipv4Addr(10, 0, 0, 1)));

  // 5. Applications just use HITs as addresses. Sending the first packet
  //    triggers the Base Exchange automatically.
  net::UdpStack udp_a(alice), udp_b(bob);
  udp_b.bind(7777, [&](const net::Endpoint& from, const net::IpAddr&,
                       crypto::Bytes data) {
    std::printf("bob received %zu bytes from %s: \"%.*s\"\n", data.size(),
                from.to_string().c_str(), static_cast<int>(data.size()),
                data.empty() ? "" : reinterpret_cast<const char*>(data.data()));
    udp_b.send(7777, from, crypto::to_bytes("hello alice, over ESP"));
  });

  bool replied = false;
  udp_a.bind(5555, [&](const net::Endpoint&, const net::IpAddr&,
                       crypto::Bytes data) {
    std::printf("alice received reply: \"%.*s\"\n",
                static_cast<int>(data.size()),
                data.empty() ? "" : reinterpret_cast<const char*>(data.data()));
    replied = true;
  });

  hip_a.on_established([&](const net::Ipv6Addr& peer, sim::Duration rtt) {
    std::printf("BEX with %s completed in %.2f ms\n",
                peer.to_string().c_str(), sim::to_millis(rtt));
  });

  udp_a.send(5555, net::Endpoint{net::IpAddr(hip_b.hit()), 7777},
             crypto::to_bytes("hello bob, over HIP"));

  // 6. Run the world.
  net.loop().run();

  std::printf("\nESP packets exchanged: %llu out / %llu in (alice)\n",
              static_cast<unsigned long long>(hip_a.stats().esp_packets_out),
              static_cast<unsigned long long>(hip_a.stats().esp_packets_in));
  std::printf("quickstart %s\n", replied ? "OK" : "FAILED");
  return replied ? 0 : 1;
}
