// Ablation A7: end-to-end Base Exchange microbenchmark — real wall-clock
// cost of executing a full BEX (I1/R1/I2/R2 with genuine RSA, DH and
// puzzle computation) through the simulated network, plus ESP data-plane
// protect/unprotect costs.

#include <benchmark/benchmark.h>

#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "hip/esp.hpp"

namespace {

using namespace hipcloud;

hip::HostIdentity make_identity(int i, hip::HiAlgorithm algo) {
  crypto::HmacDrbg drbg(static_cast<std::uint64_t>(i), "bex-bench");
  return hip::HostIdentity::generate(drbg, algo, 1024);
}

void BM_FullBex(benchmark::State& state) {
  const auto algo = state.range(0) == 0 ? hip::HiAlgorithm::kRsa
                                        : hip::HiAlgorithm::kEcdsa;
  // Identities generated once: keygen is not part of a BEX.
  const auto id_a = make_identity(1, algo);
  const auto id_b = make_identity(2, algo);
  for (auto _ : state) {
    net::Network net(5);
    auto* a = net.add_node("a");
    auto* b = net.add_node("b");
    const auto link = net.connect(a, b, {});
    a->add_address(link.iface_a, net::Ipv4Addr(10, 0, 0, 1));
    b->add_address(link.iface_b, net::Ipv4Addr(10, 0, 0, 2));
    a->set_default_route(link.iface_a);
    b->set_default_route(link.iface_b);
    hip::HipConfig cfg;
    cfg.puzzle_difficulty = static_cast<std::uint8_t>(state.range(1));
    hip::HipDaemon ha(a, id_a, cfg), hb(b, id_b, cfg);
    ha.add_peer(hb.hit(), net::IpAddr(net::Ipv4Addr(10, 0, 0, 2)));
    hb.add_peer(ha.hit(), net::IpAddr(net::Ipv4Addr(10, 0, 0, 1)));
    ha.initiate(hb.hit());
    net.loop().run();
    if (ha.state(hb.hit()) != hip::AssocState::kEstablished) {
      state.SkipWithError("BEX failed");
      return;
    }
  }
}
BENCHMARK(BM_FullBex)
    ->ArgsProduct({{0, 1}, {0, 10}})  // {RSA, ECDSA} x {K=0, K=10}
    ->Unit(benchmark::kMillisecond);

void BM_EspProtect(benchmark::State& state) {
  hip::EspSa sa(0x1000, hip::EspSuite::kAes128CtrSha256,
                crypto::Bytes(32, 1), crypto::Bytes(32, 2));
  const crypto::Bytes payload(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.protect(6, hip::EspSa::kModeHit, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EspProtect)->Arg(64)->Arg(1400);

void BM_EspRoundTrip(benchmark::State& state) {
  hip::EspSa tx(0x1000, hip::EspSuite::kAes128CtrSha256,
                crypto::Bytes(32, 1), crypto::Bytes(32, 2));
  hip::EspSa rx(0x1000, hip::EspSuite::kAes128CtrSha256,
                crypto::Bytes(32, 1), crypto::Bytes(32, 2));
  const crypto::Bytes payload(1400, 0xab);
  for (auto _ : state) {
    auto wire = tx.protect(6, hip::EspSa::kModeHit, payload);
    benchmark::DoNotOptimize(rx.unprotect(wire));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_EspRoundTrip);

}  // namespace

BENCHMARK_MAIN();
