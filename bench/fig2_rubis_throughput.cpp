// Reproduces Figure 2 of the paper: RUBiS throughput for the basic, HIP
// and SSL scenarios vs. concurrent clients, in the public (EC2-like)
// cloud.

#include "fig2_common.hpp"

int main() {
  hipcloud::bench::run_fig2(
      hipcloud::cloud::ProviderProfile::ec2(),
      "=== Figure 2: Basic, HIP and SSL throughput comparison in Amazon "
      "(public IaaS) ===",
      "BENCH_fig2.json");
  return 0;
}
