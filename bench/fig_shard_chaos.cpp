// Sharded chaos drill (BENCH_shard_chaos.json).
//
// The RUBiS + reverse-proxy service runs in HIP mode across a 6-rack
// ShardedFabric (proxy rack, four web racks, db rack — every inter-tier
// hop crosses a shard seam under BEET-ESP) while each web VM's guest
// link is taken down for 1.2 s, one after another. The proxy's health
// checks plus dispatch retries must mask every outage: the run passes
// only if the client farms see ZERO errors while every web backend gets
// ejected and revived at least once.
//
// The whole drill is repeated at 1/2/4 worker threads and the world
// hash, request count and ESP packet count are asserted byte-identical —
// fault injection rides the owning shard's event loop, so chaos is as
// deterministic as the rest of the schedule. Exit is non-zero on any
// client-visible error, missed ejection/revival, or cross-worker
// divergence; check.sh --scale runs the full drill as a gate.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "cloud/shard_fabric.hpp"
#include "core/sharded_service.hpp"
#include "net/link.hpp"
#include "sim/time.hpp"

namespace hipcloud::bench {
namespace {

constexpr std::size_t kRacks = 6;  // proxy, 4 web racks, db
constexpr unsigned kWorkerCounts[] = {1, 2, 4};
constexpr sim::Duration kOutage = 1200 * sim::kMillisecond;
constexpr sim::Duration kFlapGap = 2500 * sim::kMillisecond;

struct ChaosRun {
  unsigned workers = 0;
  std::uint64_t hash = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t esp_packets = 0;
  std::uint64_t ejections = 0;
  std::uint64_t revivals = 0;
  std::uint64_t retries = 0;
  bool all_flapped = true;  // every web backend ejected and revived
};

ChaosRun run_chaos(bool quick, unsigned workers) {
  cloud::FabricConfig fcfg;
  fcfg.racks = kRacks;
  fcfg.hosts_per_rack = 1;
  fcfg.vms_per_host = 1;
  cloud::ShardedFabric fabric(fcfg);

  core::ShardedServiceConfig scfg;
  scfg.mode = core::SecurityMode::kHip;
  scfg.dataset.items = 500;
  scfg.dataset.users = 100;
  scfg.dataset.bids = 1000;
  // Only idempotent requests are redispatched after an upstream failure
  // (HAProxy `redispatch` semantics), so the zero-error promise needs a
  // GET-only mix; a POST caught mid-outage is a client-visible 502 by
  // design.
  scfg.dataset.read_only = true;
  scfg.clients_per_rack = 4;
  // Long enough for one staggered outage per web backend plus slack.
  scfg.duration =
      static_cast<sim::Duration>(kRacks - 2) * kFlapGap +
      (quick ? 2 : 5) * sim::kSecond;
  // An aggressive health view so a dead backend is cut fast and the
  // retry path absorbs the requests caught mid-outage.
  scfg.proxy_health.max_failures = 2;
  scfg.proxy_health.upstream_timeout = 500 * sim::kMillisecond;
  scfg.proxy_health.retry_limit = 2;
  scfg.proxy_health.reprobe_interval = sim::kSecond;
  core::ShardedService service(fabric, scfg);

  service.prepare();
  fabric.run(sim::kSecond, workers);  // BEX warm-up window
  service.start_clients();

  // Stagger one guest-link outage per web VM. Each flap is an ordinary
  // event on the shard that owns the VM's rack, so it lands at the same
  // virtual instant regardless of worker count.
  const sim::Time t0 = sim::kSecond;
  for (std::size_t i = 0; i < service.web_count(); ++i) {
    net::Link* link = service.web_vm(i)->guest_link();
    auto& loop = fabric.world().shard(service.web_rack(i)).loop();
    const sim::Time down_at =
        t0 + sim::kSecond + static_cast<sim::Duration>(i) * kFlapGap;
    loop.schedule_at(down_at, [link] { link->set_down(true); });
    loop.schedule_at(down_at + kOutage, [link] { link->set_down(false); });
  }

  fabric.run(t0 + scfg.duration + 3 * sim::kSecond, workers);

  ChaosRun out;
  out.workers = workers;
  out.hash = fabric.world_hash();
  const auto report = service.report();
  out.completed = report.completed;
  out.errors = report.errors;
  out.esp_packets = service.total_esp_packets();
  const auto& proxy = service.proxy();
  out.ejections = proxy.ejections();
  out.revivals = proxy.revivals();
  out.retries = proxy.retries();
  for (std::size_t i = 0; i < service.web_count(); ++i) {
    if (!proxy.healthy(i)) out.all_flapped = false;  // never revived
  }
  if (out.ejections < service.web_count() ||
      out.revivals < service.web_count()) {
    out.all_flapped = false;
  }
  return out;
}

void write_json(const std::vector<ChaosRun>& runs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig_shard_chaos: cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"title\": \"Sharded chaos drill: staggered web guest-link "
               "outages under the HIP RUBiS service, %zu racks\",\n",
               kRacks);
  std::fprintf(f,
               "  \"note\": \"proxy health checks + retries must mask every "
               "outage (zero client-visible errors); identical hash across "
               "worker counts\",\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ChaosRun& r = runs[i];
    std::fprintf(f,
                 "    {\"workers\": %u, \"completed_requests\": %" PRIu64
                 ", \"errors\": %" PRIu64 ", \"esp_packets\": %" PRIu64
                 ", \"ejections\": %" PRIu64 ", \"revivals\": %" PRIu64
                 ", \"proxy_retries\": %" PRIu64
                 ", \"determinism_hash\": \"0x%016" PRIx64 "\"}%s\n",
                 r.workers, r.completed, r.errors, r.esp_packets, r.ejections,
                 r.revivals, r.retries, r.hash,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace hipcloud::bench

int main(int argc, char** argv) {
  using namespace hipcloud::bench;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::uint64_t min_completed = quick ? 150 : 400;
  int failures = 0;
  std::vector<ChaosRun> runs;
  for (const unsigned workers : kWorkerCounts) {
    ChaosRun r = run_chaos(quick, workers);
    std::printf("chaos @ %u workers: %" PRIu64 " requests, %" PRIu64
                " errors, %" PRIu64 " esp pkts, %" PRIu64 " ejections / %" PRIu64
                " revivals, %" PRIu64 " retries, hash 0x%016" PRIx64 "\n",
                r.workers, r.completed, r.errors, r.esp_packets, r.ejections,
                r.revivals, r.retries, r.hash);
    if (r.errors != 0) {
      ++failures;
      std::printf("  FAIL: %" PRIu64 " client-visible errors\n", r.errors);
    }
    if (r.completed < min_completed) {
      ++failures;
      std::printf("  FAIL: only %" PRIu64 " requests (need >= %" PRIu64
                  ")\n",
                  r.completed, min_completed);
    }
    if (!r.all_flapped) {
      ++failures;
      std::printf("  FAIL: not every web backend was ejected and revived\n");
    }
    if (!runs.empty() &&
        (r.hash != runs[0].hash || r.completed != runs[0].completed ||
         r.esp_packets != runs[0].esp_packets)) {
      ++failures;
      std::printf("  FAIL: diverged from the 1-worker run\n");
    }
    runs.push_back(r);
  }

  if (!quick) write_json(runs, "BENCH_shard_chaos.json");

  if (failures != 0) {
    std::printf("FAIL: %d violation%s\n", failures, failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("PASS: every outage masked, zero errors, worker-invariant\n");
  return 0;
}
