// Sharded-simulator scaling curve (BENCH_scale.json).
//
// Three sections:
//
//  1. scale   One fixed 8-rack ShardedFabric world (8 shards, 32 VMs)
//             driven with N cross-rack probe "clients" for N in
//             {1k, 10k, 100k, 1M}, run at 1/2/4/8 worker threads plus an
//             auto-planned run (workers=0: the coordinator clamps the
//             worker count to the work actually on hand, so tiny worlds
//             no longer pay 8 threads' barrier overhead for 1 thread's
//             work). Two speedup numbers come out:
//
//               speedup_wall_vs_1      measured wall-clock ratio; only
//                                      meaningful on a multi-core host
//                                      (host_cpus is recorded).
//               speedup_workspan_vs_1  work/span bound from per-shard
//                                      event counts — the speedup the
//                                      partition admits, independent of
//                                      the host.
//
//             Each run also reports the coordinator's schedule shape:
//             barrier epochs, events per epoch, per-shard strides and
//             wall time lost inside the two barriers.
//
//  2. adaptive_ablation  A heterogeneous 8-rack / 4-pod fabric (fast
//             100 us seams inside a pod, 5 ms seams between pods) with
//             phase-staggered per-rack traffic, run with per-pair
//             adaptive lookahead vs the global-min horizon. The world
//             hash and event count must be byte-identical — only the
//             slicing may change — and the adaptive run must need
//             strictly fewer epochs. The binary fails otherwise.
//
//  3. rubis   The sharded RUBiS + reverse-proxy service (HIP mode, ESP
//             on every proxy->web and web->db hop) at growing
//             closed-loop client farms, run at every worker count: real
//             protocol traffic through the parallel worlds, not probe
//             datagrams.
//
// The determinism hash is asserted byte-identical across every worker
// count at every point — a scaling curve from a world whose behaviour
// drifts with thread count would be meaningless. The binary exits
// non-zero on any violation, so check.sh --scale doubles as a
// large-world determinism gate.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cloud/shard_fabric.hpp"
#include "core/sharded_service.hpp"
#include "net/node.hpp"
#include "sim/time.hpp"

namespace hipcloud::bench {
namespace {

// hipcheck:allow(wall-clock): bench measures real elapsed time; never feeds sim state
using Clock = std::chrono::steady_clock;

constexpr std::size_t kRacks = 8;
constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};

struct RunStats {
  unsigned workers = 0;        // as requested (0 = auto)
  unsigned workers_planned = 0;  // what the coordinator actually used
  double wall_seconds = 0.0;
  std::uint64_t hash = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t payload_bytes_copied = 0;  // cross-shard seam traffic
  std::uint64_t epochs = 0;
  std::uint64_t strides = 0;
  double events_per_epoch = 0.0;
  double barrier_wait_ms = 0.0;
  double workspan_speedup = 1.0;
  std::vector<std::uint64_t> shard_events;
};

void fill_coordinator_stats(cloud::ShardedFabric& fabric, RunStats& s) {
  const auto perf = fabric.merged_perf();
  s.hash = perf.determinism_hash;
  s.events_fired = perf.events_fired;
  s.payload_bytes_copied = perf.payload_bytes_copied;
  s.epochs = perf.shard_epochs;
  s.strides = perf.shard_strides;
  s.events_per_epoch = perf.events_per_epoch();
  s.barrier_wait_ms =
      static_cast<double>(fabric.world().coordinator().barrier_wait_ns()) /
      1e6;
}

/// Build the fixed fabric, pre-schedule `clients` cross-rack UDP probes
/// (round-robin over the 32 VMs, fixed per-VM period, each probe aimed at
/// the same-slot VM of a cycling peer rack) and run to completion on
/// `workers` threads. The schedule is a pure function of `clients`.
RunStats run_scale_point(std::size_t clients, unsigned workers) {
  cloud::FabricConfig cfg;
  cfg.racks = kRacks;
  cfg.hosts_per_rack = 2;
  cfg.vms_per_host = 2;
  cloud::ShardedFabric fabric(cfg);

  std::vector<net::IpAddr> vm_ip;
  std::vector<net::Node*> vm_node;
  std::vector<std::size_t> vm_rack;
  for (std::size_t r = 0; r < kRacks; ++r) {
    for (const auto& vm : fabric.rack_vms(r)) {
      vm_ip.emplace_back(vm->private_ip());
      vm_node.push_back(vm->node());
      vm_rack.push_back(r);
    }
  }
  for (net::Node* n : vm_node) {
    n->register_protocol(net::IpProto::kUdp, [](net::Packet&&) {});
  }

  const std::size_t vm_count = vm_node.size();
  const std::size_t per_rack = cfg.hosts_per_rack * cfg.vms_per_host;
  const sim::Duration period = sim::from_micros(100);
  sim::Time horizon = 0;
  for (std::size_t k = 0; k < clients; ++k) {
    const std::size_t i = k % vm_count;
    const std::size_t r = vm_rack[i];
    const std::size_t slot = i % per_rack;
    // Cycle the peer rack per round so cross-shard pairs all see traffic.
    const std::size_t pr = (r + 1 + (k / vm_count) % (kRacks - 1)) % kRacks;
    const std::size_t peer = pr * per_rack + slot;
    const sim::Time at =
        sim::from_micros(10 + 3 * static_cast<int>(i)) +
        static_cast<sim::Time>(k / vm_count) * period;
    if (at > horizon) horizon = at;
    fabric.world().shard(r).loop().schedule_at(
        at, [&fabric, &vm_ip, &vm_node, i, peer, r] {
          net::Packet pkt;
          pkt.src = vm_ip[i];
          pkt.dst = vm_ip[peer];
          pkt.proto = net::IpProto::kUdp;
          pkt.payload = fabric.world().shard(r).buffer_pool().make(200);
          pkt.stamp_l3_overhead();
          vm_node[i]->send(std::move(pkt));
        });
  }

  const unsigned planned = fabric.world().coordinator().plan_workers(workers);
  const auto t0 = Clock::now();
  fabric.run(horizon + sim::from_millis(10), workers);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RunStats s;
  s.workers = workers;
  s.workers_planned = planned;
  s.wall_seconds = wall;
  fill_coordinator_stats(fabric, s);
  for (std::size_t sh = 0; sh < kRacks; ++sh) {
    s.shard_events.push_back(fabric.world().shard(sh).perf().events_fired);
  }
  // Work/span bound: total events over the busiest worker's events under
  // the coordinator's round-robin shard ownership (shard s -> worker s%w).
  const unsigned span_workers = planned == 0 ? 1 : planned;
  std::vector<std::uint64_t> per_worker(span_workers, 0);
  for (std::size_t sh = 0; sh < s.shard_events.size(); ++sh) {
    per_worker[sh % span_workers] += s.shard_events[sh];
  }
  std::uint64_t span = 0;
  for (const std::uint64_t w : per_worker) span = std::max(span, w);
  s.workspan_speedup =
      span == 0 ? 1.0
                : static_cast<double>(s.events_fired) /
                      static_cast<double>(span);
  return s;
}

// --- adaptive-lookahead ablation --------------------------------------------

/// Heterogeneous fabric: 4 pods of 2 racks; 100 us seams inside a pod,
/// 5 ms between pods. Traffic is phase-staggered so at any instant one
/// rack of each pod is bursting probes at the *other pods* while its pod
/// sibling idles — exactly the shape where a per-pair horizon lets busy
/// shards stride far past the global-min epoch length (bounded only by
/// the slow seams and the idle sibling's distant next-event time).
RunStats run_hetero_point(bool adaptive, unsigned workers,
                          sim::Duration duration) {
  cloud::FabricConfig cfg;
  cfg.racks = kRacks;
  cfg.hosts_per_rack = 1;
  cfg.vms_per_host = 1;
  cfg.racks_per_pod = 2;
  cfg.cross_pod.latency = sim::from_millis(5);
  cloud::ShardedFabric fabric(cfg);
  fabric.world().coordinator().set_adaptive(adaptive);

  std::vector<net::IpAddr> vm_ip;
  std::vector<net::Node*> vm_node;
  for (std::size_t r = 0; r < kRacks; ++r) {
    vm_ip.emplace_back(fabric.rack_vms(r)[0]->private_ip());
    vm_node.push_back(fabric.rack_vms(r)[0]->node());
    vm_node.back()->register_protocol(net::IpProto::kUdp,
                                      [](net::Packet&&) {});
  }

  // Rack r is active during window r (mod kRacks) of a rotating cycle;
  // during its window it probes the same-slot VM of every *other pod*
  // every 250 us. Its pod sibling is idle then, so the sibling's clock
  // can run ahead and the fast intra-pod seam never throttles anyone.
  const sim::Duration window = sim::from_millis(2);
  const sim::Duration probe_gap = sim::from_micros(250);
  for (std::size_t r = 0; r < kRacks; ++r) {
    for (sim::Time cycle = 0; cycle < duration;
         cycle += static_cast<sim::Duration>(kRacks) * window) {
      const sim::Time start =
          cycle + static_cast<sim::Duration>(r) * window;
      for (sim::Time t = start; t < start + window; t += probe_gap) {
        for (std::size_t peer = 0; peer < kRacks; ++peer) {
          if (fabric.pod_of(peer) == fabric.pod_of(r)) continue;
          fabric.world().shard(r).loop().schedule_at(
              t, [&fabric, &vm_ip, &vm_node, r, peer] {
                net::Packet pkt;
                pkt.src = vm_ip[r];
                pkt.dst = vm_ip[peer];
                pkt.proto = net::IpProto::kUdp;
                pkt.payload = fabric.world().shard(r).buffer_pool().make(200);
                pkt.stamp_l3_overhead();
                vm_node[r]->send(std::move(pkt));
              });
        }
      }
    }
  }

  const auto t0 = Clock::now();
  fabric.run(duration + sim::from_millis(20), workers);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RunStats s;
  s.workers = workers;
  s.workers_planned = workers;
  s.wall_seconds = wall;
  fill_coordinator_stats(fabric, s);
  return s;
}

// --- sharded RUBiS section ---------------------------------------------------

struct RubisStats {
  RunStats run;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t esp_packets = 0;
};

/// Real traffic: the RUBiS + reverse-proxy service in HIP mode across a
/// kRacks-rack fabric, `farm_users` closed-loop users per rack farm.
RubisStats run_rubis_point(int farm_users, unsigned workers,
                           sim::Duration duration) {
  cloud::FabricConfig fcfg;
  fcfg.racks = kRacks;
  fcfg.hosts_per_rack = 1;
  fcfg.vms_per_host = 1;
  cloud::ShardedFabric fabric(fcfg);

  core::ShardedServiceConfig scfg;
  scfg.mode = core::SecurityMode::kHip;
  scfg.dataset.items = 500;
  scfg.dataset.users = 100;
  scfg.dataset.bids = 1000;
  scfg.clients_per_rack = farm_users;
  scfg.duration = duration;
  core::ShardedService service(fabric, scfg);
  service.prepare();
  fabric.run(sim::kSecond, workers);  // BEX warm-up window
  service.start_clients();

  const auto t0 = Clock::now();
  fabric.run(sim::kSecond + duration + 3 * sim::kSecond, workers);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RubisStats rs;
  rs.run.workers = workers;
  rs.run.workers_planned = workers;
  rs.run.wall_seconds = wall;
  fill_coordinator_stats(fabric, rs.run);
  const auto report = service.report();
  rs.completed = report.completed;
  rs.errors = report.errors;
  rs.esp_packets = service.total_esp_packets();
  return rs;
}

// --- reporting ---------------------------------------------------------------

struct ScalePoint {
  std::size_t clients = 0;
  std::vector<RunStats> runs;
  bool hash_identical = true;
};

struct RubisPoint {
  int total_clients = 0;
  std::vector<RubisStats> runs;
  bool hash_identical = true;
};

void write_run_json(std::FILE* f, const RunStats& r, double wall1,
                    const char* trailer) {
  std::fprintf(f,
               "        {\"workers\": %u, \"workers_planned\": %u, "
               "\"wall_seconds\": %.4f, \"speedup_wall_vs_1\": %.3f, "
               "\"speedup_workspan_vs_1\": %.3f, \"epochs\": %" PRIu64
               ", \"events_per_epoch\": %.1f, \"shard_strides\": %" PRIu64
               ", \"barrier_wait_ms\": %.2f}%s\n",
               r.workers, r.workers_planned, r.wall_seconds,
               r.wall_seconds > 0 ? wall1 / r.wall_seconds : 0.0,
               r.workspan_speedup, r.epochs, r.events_per_epoch, r.strides,
               r.barrier_wait_ms, trailer);
}

void write_scale_json(const std::vector<ScalePoint>& points,
                      const std::vector<RunStats>& hetero,
                      const std::vector<RubisPoint>& rubis,
                      const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig_scale: cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"title\": \"Sharded world scaling: workers over a "
                  "fixed %zu-shard rack partition\",\n",
               kRacks);
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"shards\": %zu,\n", kRacks);
  std::fprintf(f,
               "  \"note\": \"speedup_wall_vs_1 is measured wall clock and "
               "is bounded by host_cpus; speedup_workspan_vs_1 is the "
               "event-balance bound the partition admits (total events / "
               "busiest worker's events); workers=0 rows are the "
               "auto-planned clamp (workers_planned shows the choice)\",\n");
  std::fprintf(f, "  \"scale\": [\n");
  for (std::size_t p = 0; p < points.size(); ++p) {
    const ScalePoint& pt = points[p];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"clients\": %zu,\n", pt.clients);
    std::fprintf(f, "      \"events_fired\": %" PRIu64 ",\n",
                 pt.runs[0].events_fired);
    std::fprintf(f, "      \"cross_shard_bytes\": %" PRIu64 ",\n",
                 pt.runs[0].payload_bytes_copied);
    std::fprintf(f, "      \"determinism_hash\": \"0x%016" PRIx64 "\",\n",
                 pt.runs[0].hash);
    std::fprintf(f, "      \"hash_identical_across_workers\": %s,\n",
                 pt.hash_identical ? "true" : "false");
    std::fprintf(f, "      \"runs\": [\n");
    for (std::size_t i = 0; i < pt.runs.size(); ++i) {
      write_run_json(f, pt.runs[i], pt.runs[0].wall_seconds,
                     i + 1 < pt.runs.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", p + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"adaptive_ablation\": {\n");
  std::fprintf(f,
               "    \"note\": \"8 racks in 4 pods, 100us intra-pod / 5ms "
               "cross-pod seams, phase-staggered bursts; identical world, "
               "identical hash, only the horizon rule changes\",\n");
  std::fprintf(f, "    \"runs\": [\n");
  for (std::size_t i = 0; i < hetero.size(); ++i) {
    const RunStats& r = hetero[i];
    std::fprintf(f,
                 "      {\"horizon\": \"%s\", \"workers\": %u, "
                 "\"epochs\": %" PRIu64 ", \"events_per_epoch\": %.1f, "
                 "\"shard_strides\": %" PRIu64 ", \"barrier_wait_ms\": %.2f, "
                 "\"determinism_hash\": \"0x%016" PRIx64 "\"}%s\n",
                 i < hetero.size() / 2 ? "per-pair" : "global-min", r.workers,
                 r.epochs, r.events_per_epoch, r.strides, r.barrier_wait_ms,
                 r.hash, i + 1 < hetero.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  },\n");

  std::fprintf(f, "  \"rubis\": [\n");
  for (std::size_t p = 0; p < rubis.size(); ++p) {
    const RubisPoint& pt = rubis[p];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"total_clients\": %d,\n", pt.total_clients);
    std::fprintf(f, "      \"completed_requests\": %" PRIu64 ",\n",
                 pt.runs[0].completed);
    std::fprintf(f, "      \"errors\": %" PRIu64 ",\n", pt.runs[0].errors);
    std::fprintf(f, "      \"esp_packets\": %" PRIu64 ",\n",
                 pt.runs[0].esp_packets);
    std::fprintf(f, "      \"determinism_hash\": \"0x%016" PRIx64 "\",\n",
                 pt.runs[0].run.hash);
    std::fprintf(f, "      \"hash_identical_across_workers\": %s,\n",
                 pt.hash_identical ? "true" : "false");
    std::fprintf(f, "      \"runs\": [\n");
    for (std::size_t i = 0; i < pt.runs.size(); ++i) {
      write_run_json(f, pt.runs[i].run, pt.runs[0].run.wall_seconds,
                     i + 1 < pt.runs.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", p + 1 < rubis.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace hipcloud::bench

int main(int argc, char** argv) {
  using namespace hipcloud::bench;
  namespace sim = hipcloud::sim;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<std::size_t> client_counts =
      quick ? std::vector<std::size_t>{1'000, 10'000}
            : std::vector<std::size_t>{1'000, 10'000, 100'000, 1'000'000};

  std::printf("fig_scale: %zu-shard fabric, workers {1,2,4,8,auto}, "
              "host_cpus=%u\n",
              kRacks, std::thread::hardware_concurrency());

  int failures = 0;

  std::vector<ScalePoint> points;
  for (const std::size_t clients : client_counts) {
    ScalePoint pt;
    pt.clients = clients;
    // Explicit worker counts, then the auto-planned run (workers=0).
    std::vector<unsigned> workers_list(std::begin(kWorkerCounts),
                                       std::end(kWorkerCounts));
    workers_list.push_back(0);
    for (const unsigned workers : workers_list) {
      RunStats s = run_scale_point(clients, workers);
      if (!pt.runs.empty() && (s.hash != pt.runs[0].hash ||
                               s.events_fired != pt.runs[0].events_fired)) {
        pt.hash_identical = false;
        ++failures;
        std::printf("  MISMATCH %zu clients @ %u workers: hash 0x%016" PRIx64
                    " vs 0x%016" PRIx64 "\n",
                    clients, s.workers, s.hash, pt.runs[0].hash);
      }
      std::printf("  %7zu clients @ %u workers (planned %u): %.3fs wall, "
                  "%" PRIu64 " events, %" PRIu64
                  " epochs (%.0f ev/epoch), workspan x%.2f\n",
                  clients, s.workers, s.workers_planned, s.wall_seconds,
                  s.events_fired, s.epochs, s.events_per_epoch,
                  s.workspan_speedup);
      pt.runs.push_back(std::move(s));
    }
    points.push_back(std::move(pt));
  }

  // Adaptive-vs-global-min ablation on the heterogeneous pod fabric.
  std::printf("\nadaptive ablation: 4 pods x 2 racks, staggered bursts\n");
  const sim::Duration hetero_dur = (quick ? 40 : 160) * sim::from_millis(1);
  std::vector<RunStats> hetero;
  for (const bool adaptive : {true, false}) {
    for (const unsigned workers : {1u, 4u}) {
      RunStats s = run_hetero_point(adaptive, workers, hetero_dur);
      std::printf("  %-10s @ %u workers: %" PRIu64 " epochs, %" PRIu64
                  " strides, %.0f ev/epoch, hash 0x%016" PRIx64 "\n",
                  adaptive ? "per-pair" : "global-min", workers, s.epochs,
                  s.strides, s.events_per_epoch, s.hash);
      hetero.push_back(std::move(s));
    }
  }
  // Same world, same behaviour: every run one hash. Fewer epochs with the
  // per-pair horizon: the whole point of the adaptive rule.
  for (const RunStats& s : hetero) {
    if (s.hash != hetero[0].hash || s.events_fired != hetero[0].events_fired) {
      ++failures;
      std::printf("  MISMATCH: ablation changed the world hash\n");
    }
  }
  if (hetero[0].epochs >= hetero[2].epochs) {
    ++failures;
    std::printf("  FAIL: per-pair lookahead did not reduce epochs (%" PRIu64
                " vs %" PRIu64 ")\n",
                hetero[0].epochs, hetero[2].epochs);
  }

  // Sharded RUBiS: real HIP/ESP traffic through the parallel worlds.
  const std::vector<int> farm_sizes =
      quick ? std::vector<int>{2} : std::vector<int>{2, 8, 32};
  const sim::Duration rubis_dur = (quick ? 2 : 4) * sim::kSecond;
  std::printf("\nsharded rubis (HIP): %zu racks, farm sizes per rack\n",
              kRacks);
  std::vector<RubisPoint> rubis;
  for (const int farm : farm_sizes) {
    RubisPoint pt;
    pt.total_clients = farm * static_cast<int>(kRacks);
    for (const unsigned workers : kWorkerCounts) {
      RubisStats rs = run_rubis_point(farm, workers, rubis_dur);
      if (!pt.runs.empty() &&
          (rs.run.hash != pt.runs[0].run.hash ||
           rs.completed != pt.runs[0].completed)) {
        pt.hash_identical = false;
        ++failures;
        std::printf("  MISMATCH %d clients @ %u workers: hash 0x%016" PRIx64
                    " vs 0x%016" PRIx64 "\n",
                    pt.total_clients, rs.run.workers, rs.run.hash,
                    pt.runs[0].run.hash);
      }
      std::printf("  %4d clients @ %u workers: %.3fs wall, %" PRIu64
                  " requests, %" PRIu64 " errors, %" PRIu64
                  " esp pkts, hash 0x%016" PRIx64 "\n",
                  pt.total_clients, rs.run.workers, rs.run.wall_seconds,
                  rs.completed, rs.errors, rs.esp_packets, rs.run.hash);
      pt.runs.push_back(std::move(rs));
    }
    if (pt.runs[0].errors != 0) {
      ++failures;
      std::printf("  FAIL: rubis point had %" PRIu64 " errors\n",
                  pt.runs[0].errors);
    }
    rubis.push_back(std::move(pt));
  }

  // The quick CTest smoke run keeps the JSON artifact from the full run.
  if (!quick) write_scale_json(points, hetero, rubis, "BENCH_scale.json");

  if (failures != 0) {
    std::printf("\nFAIL: %d violation%s\n", failures,
                failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("\nPASS: hash byte-identical across workers at every point, "
              "per-pair horizon needs fewer epochs, rubis error-free\n");
  return 0;
}
