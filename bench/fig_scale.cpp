// Sharded-simulator scaling curve (BENCH_scale.json).
//
// One fixed 8-rack ShardedFabric world (8 shards, 32 VMs) is driven with
// N cross-rack probe "clients" for N in {1k, 10k, 100k, 1M}, and the same
// world is run at 1/2/4/8 worker threads. Two speedup numbers come out:
//
//   speedup_wall_vs_1      measured wall-clock ratio. Only meaningful on
//                          a multi-core host — the JSON records host_cpus
//                          so a 1-core CI box's flat curve reads as what
//                          it is, not as a regression.
//   speedup_workspan_vs_1  work/span bound from the actual per-shard
//                          event counts and the round-robin shard->worker
//                          assignment: total events fired divided by the
//                          busiest worker's share. This is the speedup
//                          the partition itself admits, independent of
//                          how many cores the host happens to have.
//
// The determinism hash is asserted byte-identical across every worker
// count at every scale point — a scaling curve from a world whose
// behaviour drifts with thread count would be meaningless. The binary
// exits non-zero on any hash mismatch, so check.sh --scale doubles as a
// large-world determinism gate.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cloud/shard_fabric.hpp"
#include "net/node.hpp"
#include "sim/time.hpp"

namespace hipcloud::bench {
namespace {

// hipcheck:allow(wall-clock): bench measures real elapsed time; never feeds sim state
using Clock = std::chrono::steady_clock;

constexpr std::size_t kRacks = 8;
constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

struct RunStats {
  unsigned workers = 0;
  double wall_seconds = 0.0;
  std::uint64_t hash = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t payload_bytes_copied = 0;  // cross-shard seam traffic
  double workspan_speedup = 1.0;
  std::vector<std::uint64_t> shard_events;
};

/// Build the fixed fabric, pre-schedule `clients` cross-rack UDP probes
/// (round-robin over the 32 VMs, fixed per-VM period, each probe aimed at
/// the same-slot VM of a cycling peer rack) and run to completion on
/// `workers` threads. The schedule is a pure function of `clients`.
RunStats run_scale_point(std::size_t clients, unsigned workers) {
  cloud::FabricConfig cfg;
  cfg.racks = kRacks;
  cfg.hosts_per_rack = 2;
  cfg.vms_per_host = 2;
  cloud::ShardedFabric fabric(cfg);

  std::vector<net::IpAddr> vm_ip;
  std::vector<net::Node*> vm_node;
  std::vector<std::size_t> vm_rack;
  for (std::size_t r = 0; r < kRacks; ++r) {
    for (const auto& vm : fabric.rack_vms(r)) {
      vm_ip.emplace_back(vm->private_ip());
      vm_node.push_back(vm->node());
      vm_rack.push_back(r);
    }
  }
  for (net::Node* n : vm_node) {
    n->register_protocol(net::IpProto::kUdp, [](net::Packet&&) {});
  }

  const std::size_t vm_count = vm_node.size();
  const std::size_t per_rack = cfg.hosts_per_rack * cfg.vms_per_host;
  const sim::Duration period = sim::from_micros(100);
  sim::Time horizon = 0;
  for (std::size_t k = 0; k < clients; ++k) {
    const std::size_t i = k % vm_count;
    const std::size_t r = vm_rack[i];
    const std::size_t slot = i % per_rack;
    // Cycle the peer rack per round so cross-shard pairs all see traffic.
    const std::size_t pr = (r + 1 + (k / vm_count) % (kRacks - 1)) % kRacks;
    const std::size_t peer = pr * per_rack + slot;
    const sim::Time at =
        sim::from_micros(10 + 3 * static_cast<int>(i)) +
        static_cast<sim::Time>(k / vm_count) * period;
    if (at > horizon) horizon = at;
    fabric.world().shard(r).loop().schedule_at(
        at, [&fabric, &vm_ip, &vm_node, i, peer, r] {
          net::Packet pkt;
          pkt.src = vm_ip[i];
          pkt.dst = vm_ip[peer];
          pkt.proto = net::IpProto::kUdp;
          pkt.payload = fabric.world().shard(r).buffer_pool().make(200);
          pkt.stamp_l3_overhead();
          vm_node[i]->send(std::move(pkt));
        });
  }

  const auto t0 = Clock::now();
  fabric.run(horizon + sim::from_millis(10), workers);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RunStats s;
  s.workers = workers;
  s.wall_seconds = wall;
  const auto perf = fabric.merged_perf();
  s.hash = perf.determinism_hash;
  s.events_fired = perf.events_fired;
  s.payload_bytes_copied = perf.payload_bytes_copied;
  for (std::size_t sh = 0; sh < kRacks; ++sh) {
    s.shard_events.push_back(fabric.world().shard(sh).perf().events_fired);
  }
  // Work/span bound: total events over the busiest worker's events under
  // the coordinator's round-robin shard ownership (shard s -> worker s%w).
  std::vector<std::uint64_t> per_worker(workers, 0);
  for (std::size_t sh = 0; sh < s.shard_events.size(); ++sh) {
    per_worker[sh % workers] += s.shard_events[sh];
  }
  std::uint64_t span = 0;
  for (const std::uint64_t w : per_worker) span = std::max(span, w);
  s.workspan_speedup =
      span == 0 ? 1.0
                : static_cast<double>(s.events_fired) /
                      static_cast<double>(span);
  return s;
}

struct ScalePoint {
  std::size_t clients = 0;
  std::vector<RunStats> runs;
  bool hash_identical = true;
};

void write_scale_json(const std::vector<ScalePoint>& points,
                      const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig_scale: cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"title\": \"Sharded world scaling: workers over a "
                  "fixed %zu-shard rack partition\",\n",
               kRacks);
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"shards\": %zu,\n", kRacks);
  std::fprintf(f,
               "  \"note\": \"speedup_wall_vs_1 is measured wall clock and "
               "is bounded by host_cpus; speedup_workspan_vs_1 is the "
               "event-balance bound the partition admits (total events / "
               "busiest worker's events)\",\n");
  std::fprintf(f, "  \"scale\": [\n");
  for (std::size_t p = 0; p < points.size(); ++p) {
    const ScalePoint& pt = points[p];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"clients\": %zu,\n", pt.clients);
    std::fprintf(f, "      \"events_fired\": %" PRIu64 ",\n",
                 pt.runs[0].events_fired);
    std::fprintf(f, "      \"cross_shard_bytes\": %" PRIu64 ",\n",
                 pt.runs[0].payload_bytes_copied);
    std::fprintf(f, "      \"determinism_hash\": \"0x%016" PRIx64 "\",\n",
                 pt.runs[0].hash);
    std::fprintf(f, "      \"hash_identical_across_workers\": %s,\n",
                 pt.hash_identical ? "true" : "false");
    std::fprintf(f, "      \"runs\": [\n");
    for (std::size_t i = 0; i < pt.runs.size(); ++i) {
      const RunStats& r = pt.runs[i];
      const double wall1 = pt.runs[0].wall_seconds;
      std::fprintf(f,
                   "        {\"workers\": %u, \"wall_seconds\": %.4f, "
                   "\"speedup_wall_vs_1\": %.3f, "
                   "\"speedup_workspan_vs_1\": %.3f}%s\n",
                   r.workers, r.wall_seconds,
                   r.wall_seconds > 0 ? wall1 / r.wall_seconds : 0.0,
                   r.workspan_speedup, i + 1 < pt.runs.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", p + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace hipcloud::bench

int main(int argc, char** argv) {
  using namespace hipcloud::bench;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<std::size_t> client_counts =
      quick ? std::vector<std::size_t>{1'000, 10'000}
            : std::vector<std::size_t>{1'000, 10'000, 100'000, 1'000'000};

  std::printf("fig_scale: %zu-shard fabric, workers {1,2,4,8}, host_cpus=%u\n",
              kRacks, std::thread::hardware_concurrency());

  std::vector<ScalePoint> points;
  int mismatches = 0;
  for (const std::size_t clients : client_counts) {
    ScalePoint pt;
    pt.clients = clients;
    for (const std::size_t workers : kWorkerCounts) {
      RunStats s = run_scale_point(clients, static_cast<unsigned>(workers));
      if (!pt.runs.empty() && (s.hash != pt.runs[0].hash ||
                               s.events_fired != pt.runs[0].events_fired)) {
        pt.hash_identical = false;
        ++mismatches;
        std::printf("  MISMATCH %zu clients @ %u workers: hash 0x%016" PRIx64
                    " vs 0x%016" PRIx64 "\n",
                    clients, s.workers, s.hash, pt.runs[0].hash);
      }
      std::printf("  %7zu clients @ %u workers: %.3fs wall, %" PRIu64
                  " events, workspan x%.2f, hash 0x%016" PRIx64 "\n",
                  clients, s.workers, s.wall_seconds, s.events_fired,
                  s.workspan_speedup, s.hash);
      pt.runs.push_back(std::move(s));
    }
    points.push_back(std::move(pt));
  }

  // The quick CTest smoke run keeps the JSON artifact from the full run.
  if (!quick) write_scale_json(points, "BENCH_scale.json");

  if (mismatches != 0) {
    std::printf("\nFAIL: %d worker-count hash mismatch%s\n", mismatches,
                mismatches == 1 ? "" : "es");
    return 1;
  }
  std::printf("\nPASS: hash byte-identical across workers at every scale\n");
  return 0;
}
