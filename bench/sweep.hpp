#pragma once

// Parallel sweep runner for the experiment grid.
//
// The EventLoop is single-threaded by design: one loop = one simulated
// world, and parallelism belongs one level up. This header is that level
// up — it farms a list of independent jobs (one `(clients, mode)` world
// each) onto a pool of std::thread workers. Determinism is preserved
// because every job builds its own world from its own seed and results
// are stored by job index, so the output is byte-identical to a serial
// run regardless of thread count or scheduling order.
//
// Thread count: min(hardware_concurrency, jobs), overridable with the
// HIPCLOUD_SWEEP_THREADS environment variable (set it to 1 to force the
// serial order for debugging; the numbers do not change either way).

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hipcloud::bench {

inline unsigned sweep_thread_count(std::size_t jobs) {
  if (const char* env = std::getenv("HIPCLOUD_SWEEP_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return jobs < hw ? static_cast<unsigned>(jobs) : hw;
}

/// Run `fn(i)` for every i in [0, jobs) on `threads` workers and return
/// the results in job order. `fn` must be callable concurrently from
/// multiple threads as long as each invocation touches only its own
/// world. The first exception thrown by any job is rethrown on the
/// caller's thread after all workers join.
template <typename Result, typename Fn>
std::vector<Result> sweep(std::size_t jobs, Fn&& fn, unsigned threads = 0) {
  std::vector<Result> results(jobs);
  if (jobs == 0) return results;
  if (threads == 0) threads = sweep_thread_count(jobs);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < jobs; i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace hipcloud::bench
