// Determinism auditor (hipcheck part 3).
//
// Every EventLoop folds each event firing `(when, seq, slot)` into a
// rolling FNV-1a hash (sim::PerfCounters::determinism_hash), so one
// 64-bit word captures the complete firing order of a world. This
// harness replays the same sweep of (clients, mode) worlds under
// different host-side execution conditions and diffs the per-world hash
// streams:
//
//   run A   serial (1 thread)            — the reference order
//   run B   2 worker threads
//   run C   hardware_concurrency threads
//   run D   N threads + perturbed scheduling slack: each job sleeps a
//           deterministic, index-derived amount before building its
//           world, shuffling which worker picks up which job and how
//           the OS interleaves them.
//
// If any world's hash differs between runs, host parallelism is leaking
// into simulated behaviour — exactly the bug class the paper's
// reproducibility claims cannot tolerate — and the auditor prints the
// offending grid point and fails. Per-world wall-clock never enters the
// hash, so the slack injection cannot legitimately change it.
//
// `--quick` shrinks the grid and duration for the CTest registration
// (label `audit`, runs inside tier-1); the full grid is the manual /
// check.sh configuration.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/secure_service.hpp"
#include "core/testbed.hpp"
#include "sweep.hpp"

namespace {

using hipcloud::bench::sweep;
using hipcloud::core::mode_name;

struct WorldPoint {
  int clients;
  hipcloud::core::SecurityMode mode;
};

struct WorldResult {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  double throughput = 0.0;
};

struct RunSpec {
  const char* name;
  unsigned threads;
  bool perturb;
};

std::vector<WorldResult> run_grid(const std::vector<WorldPoint>& grid,
                                  hipcloud::sim::Duration duration,
                                  unsigned threads, bool perturb) {
  return sweep<WorldResult>(
      grid.size(),
      [&](std::size_t i) {
        if (perturb) {
          // Deterministic, index-derived slack (0..1.2 ms in 100 us
          // steps): shuffles job->worker assignment and OS interleaving
          // without touching anything inside the worlds.
          const auto us = ((i * 7919) % 13) * 100;
          std::this_thread::sleep_for(std::chrono::microseconds(us));
        }
        hipcloud::core::TestbedConfig cfg;
        cfg.deployment.mode = grid[i].mode;
        hipcloud::core::Testbed bed(cfg);
        const auto report =
            bed.run_closed_loop(grid[i].clients, duration);
        const auto& perf = bed.network().perf();
        return WorldResult{perf.determinism_hash, perf.events_fired,
                           report.throughput_rps()};
      },
      threads);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<int> client_counts =
      quick ? std::vector<int>{2, 4} : std::vector<int>{2, 6, 10, 20};
  // The closed-loop client's default warmup is 2 s; run past it so the
  // reported throughput covers a real measurement window.
  const hipcloud::sim::Duration duration =
      (quick ? 4 : 10) * hipcloud::sim::kSecond;
  constexpr hipcloud::core::SecurityMode kModes[] = {
      hipcloud::core::SecurityMode::kBasic,
      hipcloud::core::SecurityMode::kHip,
      hipcloud::core::SecurityMode::kSsl};

  std::vector<WorldPoint> grid;
  for (int c : client_counts) {
    for (auto m : kModes) grid.push_back({c, m});
  }

  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) hw = 2;
  const RunSpec runs[] = {
      {"serial", 1, false},
      {"2-thread", 2, false},
      {"N-thread", hw, false},
      {"N-thread+slack", hw, true},
  };

  std::printf(
      "Determinism audit: %zu worlds x %zu runs "
      "(serial / 2 / %u / %u+slack threads), %s grid\n",
      grid.size(), std::size(runs), hw, hw, quick ? "quick" : "full");

  std::vector<std::vector<WorldResult>> results;
  results.reserve(std::size(runs));
  for (const RunSpec& r : runs) {
    results.push_back(run_grid(grid, duration, r.threads, r.perturb));
  }

  int mismatches = 0;
  const auto& ref = results[0];
  for (std::size_t w = 0; w < grid.size(); ++w) {
    bool ok = true;
    for (std::size_t r = 1; r < results.size(); ++r) {
      if (results[r][w].hash != ref[w].hash ||
          results[r][w].events != ref[w].events) {
        ok = false;
        ++mismatches;
        std::printf(
            "  MISMATCH %3d clients/%-5s  %s: hash 0x%016llx (%llu events) "
            "vs serial 0x%016llx (%llu events)\n",
            grid[w].clients, mode_name(grid[w].mode), runs[r].name,
            static_cast<unsigned long long>(results[r][w].hash),
            static_cast<unsigned long long>(results[r][w].events),
            static_cast<unsigned long long>(ref[w].hash),
            static_cast<unsigned long long>(ref[w].events));
      }
    }
    if (ok) {
      std::printf("  ok  %3d clients/%-5s  0x%016llx  (%llu events, %.1f rps)\n",
                  grid[w].clients, mode_name(grid[w].mode),
                  static_cast<unsigned long long>(ref[w].hash),
                  static_cast<unsigned long long>(ref[w].events),
                  ref[w].throughput);
    }
  }

  if (mismatches != 0) {
    std::printf(
        "\nFAIL: %d hash mismatch%s — host scheduling is leaking into "
        "simulated behaviour\n",
        mismatches, mismatches == 1 ? "" : "es");
    return 1;
  }
  std::printf(
      "\nPASS: all %zu worlds hash bit-identically across thread counts "
      "and scheduling slack\n",
      grid.size());
  return 0;
}
