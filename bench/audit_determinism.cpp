// Determinism auditor (hipcheck part 3).
//
// Every EventLoop folds each event firing `(when, seq, slot)` into a
// rolling FNV-1a hash (sim::PerfCounters::determinism_hash), so one
// 64-bit word captures the complete firing order of a world. This
// harness replays the same sweep of (clients, mode) worlds under
// different host-side execution conditions and diffs the per-world hash
// streams:
//
//   run A   serial (1 thread)            — the reference order
//   run B   2 worker threads
//   run C   hardware_concurrency threads
//   run D   N threads + perturbed scheduling slack: each job sleeps a
//           deterministic, index-derived amount before building its
//           world, shuffling which worker picks up which job and how
//           the OS interleaves them.
//
// If any world's hash differs between runs, host parallelism is leaking
// into simulated behaviour — exactly the bug class the paper's
// reproducibility claims cannot tolerate — and the auditor prints the
// offending grid point and fails. Per-world wall-clock never enters the
// hash, so the slack injection cannot legitimately change it.
//
// A second section audits the sharded simulator the same way but along
// the other parallelism axis: one multi-rack ShardedFabric world is run
// at 1/2/4/8 worker threads over its fixed shard partition, and the
// shard-id-order merged world hash must stay byte-identical. This is the
// cross-shard seam (inbox drain order, barrier epochs, lookahead
// boundary deliveries) under real traffic, not the synthetic loops the
// unit tests use.
//
// `--quick` shrinks the grid and duration for the CTest registration
// (label `audit`, runs inside tier-1); the full grid is the manual /
// check.sh configuration.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cloud/shard_fabric.hpp"
#include "core/secure_service.hpp"
#include "core/sharded_service.hpp"
#include "core/testbed.hpp"
#include "sweep.hpp"

namespace {

using hipcloud::bench::sweep;
using hipcloud::core::mode_name;

struct WorldPoint {
  int clients;
  hipcloud::core::SecurityMode mode;
};

struct WorldResult {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  double throughput = 0.0;
};

struct RunSpec {
  const char* name;
  unsigned threads;
  bool perturb;
};

std::vector<WorldResult> run_grid(const std::vector<WorldPoint>& grid,
                                  hipcloud::sim::Duration duration,
                                  unsigned threads, bool perturb) {
  return sweep<WorldResult>(
      grid.size(),
      [&](std::size_t i) {
        if (perturb) {
          // Deterministic, index-derived slack (0..1.2 ms in 100 us
          // steps): shuffles job->worker assignment and OS interleaving
          // without touching anything inside the worlds.
          const auto us = ((i * 7919) % 13) * 100;
          std::this_thread::sleep_for(std::chrono::microseconds(us));
        }
        hipcloud::core::TestbedConfig cfg;
        cfg.deployment.mode = grid[i].mode;
        hipcloud::core::Testbed bed(cfg);
        const auto report =
            bed.run_closed_loop(grid[i].clients, duration);
        const auto& perf = bed.network().perf();
        return WorldResult{perf.determinism_hash, perf.events_fired,
                           report.throughput_rps()};
      },
      threads);
}

struct ShardRunResult {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
};

/// Build a fixed multi-rack sharded fabric, drive periodic cross-rack UDP
/// probe trains from every VM, run to `duration` on `workers` threads and
/// return the merged world hash. The world build is a pure function of
/// (racks, duration); only `workers` varies between runs.
ShardRunResult run_sharded_world(std::size_t racks,
                                 hipcloud::sim::Duration duration,
                                 unsigned workers) {
  namespace cloud = hipcloud::cloud;
  namespace net = hipcloud::net;
  namespace sim = hipcloud::sim;

  cloud::FabricConfig cfg;
  cfg.racks = racks;
  cfg.hosts_per_rack = 2;
  cfg.vms_per_host = 2;
  cloud::ShardedFabric fabric(cfg);

  std::vector<net::IpAddr> vm_ip;
  std::vector<net::Node*> vm_node;
  std::vector<std::size_t> vm_rack;
  for (std::size_t r = 0; r < racks; ++r) {
    for (const auto& vm : fabric.rack_vms(r)) {
      vm_ip.emplace_back(vm->private_ip());
      vm_node.push_back(vm->node());
      vm_rack.push_back(r);
    }
  }
  // Receivers echo nothing (one-way probes keep the event count an exact
  // function of the schedule), but must consume the datagrams so they
  // count as received rather than unhandled.
  for (net::Node* n : vm_node) {
    n->register_protocol(net::IpProto::kUdp, [](net::Packet&&) {});
  }
  // Every VM probes the "same slot" VM in every other rack on a fixed
  // period, phase-staggered by sender index so the inboxes carry a
  // steady interleaving of cross-shard posts.
  const sim::Duration period = sim::from_micros(500);
  const std::size_t per_rack = cfg.hosts_per_rack * cfg.vms_per_host;
  for (std::size_t i = 0; i < vm_node.size(); ++i) {
    const std::size_t r = vm_rack[i];
    const std::size_t slot = i % per_rack;
    for (sim::Time t = sim::from_micros(10 + 13 * static_cast<int>(i));
         t < duration; t += period) {
      for (std::size_t pr = 0; pr < racks; ++pr) {
        if (pr == r) continue;
        const std::size_t peer = pr * per_rack + slot;
        fabric.world().shard(r).loop().schedule_at(t, [&fabric, &vm_ip,
                                                       &vm_node, i, peer, r] {
          net::Packet pkt;
          pkt.src = vm_ip[i];
          pkt.dst = vm_ip[peer];
          pkt.proto = net::IpProto::kUdp;
          pkt.payload = fabric.world().shard(r).buffer_pool().make(200);
          pkt.stamp_l3_overhead();
          vm_node[i]->send(std::move(pkt));
        });
      }
    }
  }
  fabric.run(duration, workers);
  const auto perf = fabric.merged_perf();
  return ShardRunResult{perf.determinism_hash, perf.events_fired};
}

/// The same worker-invariance check over *real* traffic: a sharded RUBiS
/// + reverse-proxy deployment in HIP mode, so closed-loop HTTP requests,
/// BEET-ESP tunnels and the batched-crypto datapath all cross the shard
/// seams. Every request, retransmit and ESP packet must land identically
/// at any worker count.
ShardRunResult run_sharded_rubis(bool quick, unsigned workers) {
  namespace cloud = hipcloud::cloud;
  namespace core = hipcloud::core;
  namespace sim = hipcloud::sim;

  cloud::FabricConfig fcfg;
  fcfg.racks = quick ? 4u : 6u;
  fcfg.hosts_per_rack = 1;
  fcfg.vms_per_host = 1;
  cloud::ShardedFabric fabric(fcfg);

  core::ShardedServiceConfig scfg;
  scfg.mode = core::SecurityMode::kHip;
  scfg.dataset.items = 200;
  scfg.dataset.users = 50;
  scfg.dataset.bids = 400;
  scfg.clients_per_rack = 2;
  scfg.duration = (quick ? 2 : 4) * sim::kSecond;
  core::ShardedService service(fabric, scfg);
  service.prepare();
  fabric.run(sim::kSecond, workers);  // BEX warm-up
  service.start_clients();
  fabric.run((quick ? 5 : 8) * sim::kSecond, workers);
  const auto perf = fabric.merged_perf();
  return ShardRunResult{perf.determinism_hash, perf.events_fired};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<int> client_counts =
      quick ? std::vector<int>{2, 4} : std::vector<int>{2, 6, 10, 20};
  // The closed-loop client's default warmup is 2 s; run past it so the
  // reported throughput covers a real measurement window.
  const hipcloud::sim::Duration duration =
      (quick ? 4 : 10) * hipcloud::sim::kSecond;
  constexpr hipcloud::core::SecurityMode kModes[] = {
      hipcloud::core::SecurityMode::kBasic,
      hipcloud::core::SecurityMode::kHip,
      hipcloud::core::SecurityMode::kSsl};

  std::vector<WorldPoint> grid;
  for (int c : client_counts) {
    for (auto m : kModes) grid.push_back({c, m});
  }

  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) hw = 2;
  const RunSpec runs[] = {
      {"serial", 1, false},
      {"2-thread", 2, false},
      {"N-thread", hw, false},
      {"N-thread+slack", hw, true},
  };

  std::printf(
      "Determinism audit: %zu worlds x %zu runs "
      "(serial / 2 / %u / %u+slack threads), %s grid\n",
      grid.size(), std::size(runs), hw, hw, quick ? "quick" : "full");

  std::vector<std::vector<WorldResult>> results;
  results.reserve(std::size(runs));
  for (const RunSpec& r : runs) {
    results.push_back(run_grid(grid, duration, r.threads, r.perturb));
  }

  int mismatches = 0;
  const auto& ref = results[0];
  for (std::size_t w = 0; w < grid.size(); ++w) {
    bool ok = true;
    for (std::size_t r = 1; r < results.size(); ++r) {
      if (results[r][w].hash != ref[w].hash ||
          results[r][w].events != ref[w].events) {
        ok = false;
        ++mismatches;
        std::printf(
            "  MISMATCH %3d clients/%-5s  %s: hash 0x%016llx (%llu events) "
            "vs serial 0x%016llx (%llu events)\n",
            grid[w].clients, mode_name(grid[w].mode), runs[r].name,
            static_cast<unsigned long long>(results[r][w].hash),
            static_cast<unsigned long long>(results[r][w].events),
            static_cast<unsigned long long>(ref[w].hash),
            static_cast<unsigned long long>(ref[w].events));
      }
    }
    if (ok) {
      std::printf("  ok  %3d clients/%-5s  0x%016llx  (%llu events, %.1f rps)\n",
                  grid[w].clients, mode_name(grid[w].mode),
                  static_cast<unsigned long long>(ref[w].hash),
                  static_cast<unsigned long long>(ref[w].events),
                  ref[w].throughput);
    }
  }

  // --- sharded-simulator section: same world, varying worker threads ---
  const std::size_t racks = quick ? 4u : 8u;
  const hipcloud::sim::Duration shard_duration =
      (quick ? 1 : 4) * hipcloud::sim::kSecond;
  std::printf(
      "\nSharded audit: %zu-rack fabric at 1/2/4/8 workers, %s duration\n",
      racks, quick ? "quick" : "full");
  const ShardRunResult shard_ref = run_sharded_world(racks, shard_duration, 1);
  std::printf("  serial    0x%016llx  (%llu events)\n",
              static_cast<unsigned long long>(shard_ref.hash),
              static_cast<unsigned long long>(shard_ref.events));
  for (const unsigned workers : {2u, 4u, 8u}) {
    const ShardRunResult got = run_sharded_world(racks, shard_duration, workers);
    if (got.hash != shard_ref.hash || got.events != shard_ref.events) {
      ++mismatches;
      std::printf(
          "  MISMATCH %u workers: hash 0x%016llx (%llu events) vs serial "
          "0x%016llx (%llu events)\n",
          workers, static_cast<unsigned long long>(got.hash),
          static_cast<unsigned long long>(got.events),
          static_cast<unsigned long long>(shard_ref.hash),
          static_cast<unsigned long long>(shard_ref.events));
    } else {
      std::printf("  ok %u workers  0x%016llx\n", workers,
                  static_cast<unsigned long long>(got.hash));
    }
  }

  // --- sharded RUBiS section: real HIP/ESP traffic across the seams ---
  std::printf("\nSharded RUBiS audit (HIP mode) at 1/2/4/8 workers\n");
  const ShardRunResult rubis_ref = run_sharded_rubis(quick, 1);
  std::printf("  serial    0x%016llx  (%llu events)\n",
              static_cast<unsigned long long>(rubis_ref.hash),
              static_cast<unsigned long long>(rubis_ref.events));
  for (const unsigned workers : {2u, 4u, 8u}) {
    const ShardRunResult got = run_sharded_rubis(quick, workers);
    if (got.hash != rubis_ref.hash || got.events != rubis_ref.events) {
      ++mismatches;
      std::printf(
          "  MISMATCH %u workers: hash 0x%016llx (%llu events) vs serial "
          "0x%016llx (%llu events)\n",
          workers, static_cast<unsigned long long>(got.hash),
          static_cast<unsigned long long>(got.events),
          static_cast<unsigned long long>(rubis_ref.hash),
          static_cast<unsigned long long>(rubis_ref.events));
    } else {
      std::printf("  ok %u workers  0x%016llx\n", workers,
                  static_cast<unsigned long long>(got.hash));
    }
  }

  if (mismatches != 0) {
    std::printf(
        "\nFAIL: %d hash mismatch%s — host scheduling is leaking into "
        "simulated behaviour\n",
        mismatches, mismatches == 1 ? "" : "es");
    return 1;
  }
  std::printf(
      "\nPASS: all %zu worlds hash bit-identically across thread counts "
      "and scheduling slack, and the sharded world is worker-invariant\n",
      grid.size());
  return 0;
}
