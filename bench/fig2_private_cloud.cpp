// Reproduces the paper's private-cloud cross-check of Figure 2: the same
// experiment on an OpenNebula-like private deployment "in order to
// cross-check the validity of the results". The paper reports the private
// results were "very much aligned" with the EC2 ones; the shape checks
// below verify the same holds here.

#include "fig2_common.hpp"

int main() {
  hipcloud::bench::run_fig2(
      hipcloud::cloud::ProviderProfile::opennebula(),
      "=== Figure 2 cross-check: Basic, HIP and SSL throughput in a "
      "private OpenNebula cloud ===",
      "BENCH_fig2_private.json");
  return 0;
}
