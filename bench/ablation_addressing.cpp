// Ablation A4: isolating the LSI translation penalty the paper blames for
// HIP's deficit against SSL ("experiments were carried out with LSIs
// which incur a bit more performance penalty due to some extra
// translations"). Compares the full RUBiS service with HIP addressing the
// backends by LSI vs by HIT.

#include <cstdio>

#include "core/testbed.hpp"

using namespace hipcloud;

int main() {
  std::printf("=== Ablation A4: HIP addressing mode (LSI vs HIT) ===\n\n");
  std::printf("%8s %14s %14s %18s\n", "clients", "LSI (req/s)",
              "HIT (req/s)", "HIT advantage (%)");
  bool hit_never_slower = true;
  for (const int clients : {10, 30, 50}) {
    double rps[2];
    int i = 0;
    for (const auto addressing :
         {core::HipAddressing::kLsi, core::HipAddressing::kHit}) {
      core::TestbedConfig cfg;
      cfg.deployment.mode = core::SecurityMode::kHip;
      cfg.deployment.hip_addressing = addressing;
      core::Testbed bed(cfg);
      rps[i++] = bed.run_closed_loop(clients, 30 * sim::kSecond)
                     .throughput_rps();
    }
    const double advantage = (rps[1] - rps[0]) / rps[0] * 100.0;
    std::printf("%8d %14.1f %14.1f %18.1f\n", clients, rps[0], rps[1],
                advantage);
    if (rps[1] < rps[0] * 0.99) hit_never_slower = false;
    std::fflush(stdout);
  }
  std::printf("\nShape check:\n"
              "  [%s] HIT addressing is never slower than LSI (the paper's "
              "LSI penalty)\n",
              hit_never_slower ? "PASS" : "FAIL");
  return 0;
}
