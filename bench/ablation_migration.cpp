// Ablation A5: VM live migration with HIP mobility (paper §IV-C: HIP's
// locator agnosticism lets a migrated VM keep its identity; the UPDATE
// handshake re-homes every association without re-keying). Measures the
// migration timeline and the service interruption seen by a client pinned
// to the VM's HIT, versus plain IP where connections to the old address
// die.

#include <cstdio>

#include "cloud/cloud.hpp"
#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "net/udp.hpp"

using namespace hipcloud;

namespace {

hip::HostIdentity make_identity(const char* name) {
  crypto::HmacDrbg drbg(11, std::string("mig:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}

}  // namespace

int main() {
  std::printf("=== Ablation A5: VM live migration with HIP mobility ===\n\n");

  for (const double dirty_rate : {0.05, 0.1, 0.2, 0.4}) {
    net::Network net(13);
    cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
    auto* h0 = ec2.add_host();
    auto* h1 = ec2.add_host();
    auto* server_vm = ec2.launch("svc", cloud::InstanceType::small(), "t", h0);
    auto* client_vm =
        ec2.launch("client", cloud::InstanceType::small(), "t", h0);

    hip::HipDaemon hs(server_vm->node(), make_identity("server"));
    hip::HipDaemon hc(client_vm->node(), make_identity("client"));
    hs.add_peer(hc.hit(), net::IpAddr(client_vm->private_ip()));
    hc.add_peer(hs.hit(), net::IpAddr(server_vm->private_ip()));

    net::UdpStack us(server_vm->node()), uc(client_vm->node());
    // Echo service addressed by HIT — the identity survives migration.
    us.bind(7, [&](const net::Endpoint& from, const net::IpAddr&,
                   crypto::Bytes data) { us.send(7, from, std::move(data)); });

    std::uint64_t sent = 0, received = 0;
    sim::Time last_rx = 0, gap_start = 0;
    sim::Duration max_gap = 0;
    uc.bind(9, [&](const net::Endpoint&, const net::IpAddr&, crypto::Bytes) {
      ++received;
      const sim::Time now = net.loop().now();
      if (last_rx > 0 && now - last_rx > max_gap) {
        max_gap = now - last_rx;
        gap_start = last_rx;
      }
      last_rx = now;
    });
    // 100 req/s probe stream at the server's HIT.
    for (int i = 0; i < 100 * 8; ++i) {
      net.loop().schedule(i * sim::from_millis(10), [&] {
        ++sent;
        uc.send(9, net::Endpoint{net::IpAddr(hs.hit()), 7},
                crypto::Bytes(64, 0x42));
      });
    }

    cloud::Cloud::MigrationReport migration{};
    net.loop().schedule(2 * sim::kSecond, [&] {
      ec2.migrate(server_vm, h1,
                  [&](const cloud::Cloud::MigrationReport& report) {
                    migration = report;
                    // HIP mobility: announce the new locator.
                    hs.move_to(net::IpAddr(report.new_ip));
                  },
                  dirty_rate);
    });
    net.loop().run();

    std::printf("dirty-rate %.2f: pre-copy %6.2f s (%.0f MB copied), "
                "downtime %5.0f ms, probe loss %llu/%llu, "
                "longest service gap %.0f ms\n",
                dirty_rate, sim::to_seconds(migration.total),
                static_cast<double>(migration.bytes_copied) / 1e6,
                sim::to_millis(migration.downtime),
                static_cast<unsigned long long>(sent - received),
                static_cast<unsigned long long>(sent),
                sim::to_millis(max_gap));
    (void)gap_start;
    std::fflush(stdout);
  }

  std::printf("\nInterpretation: connections addressed by HIT survive the\n"
              "migration — after the stop-and-copy the UPDATE handshake\n"
              "re-homes the association to the VM's new locator, so probe\n"
              "loss stays bounded by the downtime window instead of the\n"
              "connection dying with the old IP address.\n");
  return 0;
}
