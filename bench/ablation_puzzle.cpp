// Ablation A1: HIP's computational puzzle as DoS defence (paper §IV-B).
// Sweeps the responder's puzzle difficulty K and reports the initiator's
// BEX completion latency plus the asymmetry between initiator and
// responder work — the property that lets a loaded responder slow
// attackers down cheaply.

#include <cstdio>

#include "core/path_lab.hpp"

using namespace hipcloud;

int main() {
  std::printf("=== Ablation A1: BEX latency vs puzzle difficulty K ===\n\n");
  std::printf("%4s %16s %20s %22s\n", "K", "BEX latency (ms)",
              "initiator hashes", "responder verify hashes");

  double latency_k0 = 0;
  for (const std::uint8_t k : {0, 4, 8, 10, 12, 14, 16, 18, 20}) {
    core::PathLab::Config cfg;
    cfg.hip.puzzle_difficulty = k;
    core::PathLab lab(cfg);

    sim::Duration latency = 0;
    lab.hip1()->on_established(
        [&](const net::Ipv6Addr&, sim::Duration l) { latency = l; });
    lab.establish(core::PathLab::Path::kHit);

    // The initiator brute-forces ~2^K hashes; the responder verifies with
    // exactly one.
    const hip::Puzzle probe{k, 42};
    const auto solution =
        probe.solve(lab.hip1()->hit(), lab.hip2()->hit());
    std::printf("%4d %16.2f %20llu %22d\n", int(k),
                sim::to_millis(latency),
                static_cast<unsigned long long>(solution.attempts), 1);
    if (k == 0) latency_k0 = sim::to_millis(latency);
    std::fflush(stdout);
  }

  std::printf("\nInterpretation: every +2 bits of K roughly quadruples the\n"
              "initiator's work while the responder's stays one hash —\n"
              "BEX latency at K=0 was %.2f ms, so the responder can trade\n"
              "client-side setup latency for DoS resilience.\n",
              latency_k0);

  // Adaptive mode demonstration: difficulty climbs under an I1 flood.
  core::PathLab::Config cfg;
  cfg.hip.puzzle_difficulty = 8;
  cfg.hip.adaptive_puzzle = true;
  cfg.hip.adaptive_threshold_rps = 10;
  core::PathLab lab(cfg);
  lab.establish(core::PathLab::Path::kHit);
  const int baseline = lab.hip2()->current_puzzle_difficulty();
  // Forge an I1 flood from a spoofed HIT (attacker inside the cloud).
  auto& loop = lab.network().loop();
  for (int i = 0; i < 256; ++i) {
    loop.schedule(i * sim::from_millis(2), [&lab] {
      hip::HipMessage i1;
      i1.type = hip::MsgType::kI1;
      i1.sender_hit = net::Ipv6Addr::parse("2001:10::bad");
      i1.receiver_hit = lab.hip2()->hit();
      net::Packet pkt;
      pkt.src = lab.vm1()->private_ip();
      pkt.dst = lab.vm2()->private_ip();
      pkt.proto = net::IpProto::kHip;
      pkt.payload = i1.serialize();
      pkt.stamp_l3_overhead();
      lab.vm2()->node()->deliver(std::move(pkt), 0);
    });
  }
  loop.run(loop.now() + sim::kSecond / 2);
  std::printf("\nAdaptive puzzle: baseline K=%d; under a 500 req/s I1 flood "
              "the responder raises K to %d.\n",
              baseline, int(lab.hip2()->current_puzzle_difficulty()));
  return 0;
}
