// Simulator-core micro-benchmark: event-loop schedule/cancel/fire
// throughput and the packet datapath (raw TCP echo and the Fig. 2 RUBiS
// path). Emits BENCH_sim.json so the perf trajectory of the simulator
// substrate itself — not just the crypto — is tracked run over run.
//
// The binary also counts real heap allocations (global operator new
// override, bench binary only) so "allocations per delivered packet" is a
// measured number, not an estimate.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/testbed.hpp"
#include "net/tcp.hpp"
#include "sim/event_loop.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every operator new in this binary bumps a counter.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

std::uint64_t allocs_now() {
  return g_allocs.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
// The replaced operator new above allocates with std::malloc, so free()
// is the matching deallocator; GCC can't see through the replacement
// and reports a mismatched pair.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace hipcloud::bench {
namespace {

// hipcheck:allow(wall-clock): micro-bench measures real elapsed time; never feeds sim state
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Legacy event loop: the seed implementation (std::priority_queue of
// std::function entries + live/cancelled hash sets), kept here verbatim as
// the live "before" baseline so the speedup claim is re-measurable in
// every future run of this binary.

class LegacyEventLoop {
 public:
  using Callback = std::function<void()>;

  std::uint64_t schedule(std::int64_t delay, Callback cb) {
    if (delay < 0) delay = 0;
    const std::uint64_t id = next_id_++;
    queue_.push(Entry{now_ + delay, next_seq_++, id, std::move(cb)});
    live_ids_.insert(id);
    return id;
  }

  bool cancel(std::uint64_t id) {
    if (id == 0 || live_ids_.erase(id) == 0) return false;
    cancelled_.insert(id);
    return true;
  }

  std::size_t run() {
    std::size_t n = 0;
    while (!queue_.empty()) {
      const Entry& top = queue_.top();
      if (const auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        queue_.pop();
        continue;
      }
      Entry e = std::move(const_cast<Entry&>(top));
      queue_.pop();
      live_ids_.erase(e.id);
      now_ = e.when;
      e.cb();
      ++n;
    }
    cancelled_.clear();
    return n;
  }

 private:
  struct Entry {
    std::int64_t when;
    std::uint64_t seq;
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::int64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> live_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
};

// ---------------------------------------------------------------------------
// Event-loop workloads. Both run the same pattern on the legacy loop and
// on sim::EventLoop: waves of scheduled events where each firing schedules
// a successor (timer churn), plus an RTO-style schedule-then-cancel storm.

struct LoopScore {
  double schedule_fire_mops;  // schedule+fire pairs per second, millions
  double cancel_mops;         // schedule+cancel pairs per second, millions
};

// Captured state sized like the real hot callbacks: the link-delivery
// lambda captures a Packet by value (~112 bytes), timer lambdas capture a
// shared_ptr plus sequencing state. Anything past ~16 bytes already spills
// std::function to the heap, so an honest schedule/fire benchmark must
// carry a realistic capture, not an 8-byte counter reference.
struct CallbackState {
  std::uint64_t* fired;
  std::uint64_t pad[7];  // 64 bytes total, well under a Packet capture
};

template <typename Loop, typename Handle>
LoopScore run_loop_bench(std::size_t events, std::size_t churn) {
  LoopScore score{};
  {
    Loop loop;
    std::uint64_t fired = 0;
    const CallbackState st{&fired, {}};
    const auto t0 = Clock::now();
    constexpr std::size_t kWave = 1024;
    std::size_t scheduled = 0;
    while (scheduled < events) {
      const std::size_t n = std::min(kWave, events - scheduled);
      for (std::size_t i = 0; i < n; ++i) {
        loop.schedule(static_cast<std::int64_t>(i % 7),
                      [st] { ++*st.fired; });
      }
      scheduled += n;
      loop.run();
    }
    score.schedule_fire_mops =
        static_cast<double>(fired) / seconds_since(t0) / 1e6;
  }
  {
    Loop loop;
    std::uint64_t fired = 0;
    const CallbackState st{&fired, {}};
    const auto t0 = Clock::now();
    constexpr std::size_t kWave = 1024;
    std::size_t done = 0;
    std::vector<Handle> handles;
    handles.reserve(kWave);
    while (done < churn) {
      const std::size_t n = std::min(kWave, churn - done);
      handles.clear();
      for (std::size_t i = 0; i < n; ++i) {
        handles.push_back(loop.schedule(100, [st] { ++*st.fired; }));
      }
      // Cancel every scheduled timer, as a TCP ack storm re-arming the
      // RTO would.
      for (auto& h : handles) loop.cancel(h);
      loop.run();
      done += n;
    }
    score.cancel_mops = static_cast<double>(done) / seconds_since(t0) / 1e6;
  }
  return score;
}

// ---------------------------------------------------------------------------
// Packet round-trip: two hosts on a fast LAN link, raw TCP, closed-loop
// 1 KiB request -> 1 KiB response. Allocations and wall time are measured
// over the steady-state run only (world setup excluded).

struct EchoScore {
  std::uint64_t round_trips;
  std::uint64_t packets;     // link-delivered packets, both directions
  double allocs_per_packet;  // heap allocations per delivered packet
  double sim_packets_per_wall_second;
  sim::PerfCounters perf;
};

EchoScore run_tcp_echo(std::uint64_t round_trips) {
  net::Network net(42);
  net::Node* a = net.add_node("a");
  net::Node* b = net.add_node("b");
  net::LinkConfig lan;
  lan.latency = sim::from_micros(100);
  const auto att = net.connect(a, b, lan);
  a->add_address(att.iface_a, net::Ipv4Addr(10, 0, 0, 1));
  b->add_address(att.iface_b, net::Ipv4Addr(10, 0, 0, 2));
  a->set_default_route(att.iface_a);
  b->set_default_route(att.iface_b);

  net::TcpStack tcp_a(a);
  net::TcpStack tcp_b(b);

  const crypto::Bytes blob(1024, 0x42);
  tcp_b.listen(7, [&](std::shared_ptr<net::TcpConnection> conn) {
    auto c = conn.get();
    conn->on_data([c, &blob](crypto::Bytes data) {
      // Echo a fixed 1 KiB response once a full 1 KiB request arrived.
      static thread_local std::uint64_t got = 0;
      got += data.size();
      while (got >= 1024) {
        got -= 1024;
        c->send(blob);
      }
    });
  });

  std::uint64_t remaining = round_trips;
  std::uint64_t received = 0;
  auto conn = tcp_a.connect(net::Endpoint{net::Ipv4Addr(10, 0, 0, 2), 7});
  auto c = conn.get();
  conn->on_connect([c, &blob] { c->send(blob); });
  conn->on_data([&, c](crypto::Bytes data) {
    received += data.size();
    while (received >= 1024) {
      received -= 1024;
      if (--remaining == 0) {
        c->close();
        return;
      }
      c->send(blob);
    }
  });

  const auto t0 = Clock::now();
  const std::uint64_t allocs0 = allocs_now();
  net.loop().run();
  const std::uint64_t allocs1 = allocs_now();
  const double wall = seconds_since(t0);

  EchoScore score{};
  score.round_trips = round_trips;
  score.packets = att.link->delivered_packets();
  score.allocs_per_packet = score.packets
                                ? static_cast<double>(allocs1 - allocs0) /
                                      static_cast<double>(score.packets)
                                : 0.0;
  score.sim_packets_per_wall_second =
      static_cast<double>(score.packets) / wall;
  score.perf = net.loop().perf();
  return score;
}

// ---------------------------------------------------------------------------
// The Fig. 2 RUBiS path: the real testbed (EC2 profile, HIP mode, ESP
// datapath) under a short closed-loop run. This is the exact spine the
// paper reproduction stresses.

struct RubisScore {
  std::uint64_t completed;
  double allocs_per_request;
  double wall_seconds;
  sim::PerfCounters perf;
};

RubisScore run_rubis_hip(int clients, double sim_seconds) {
  core::TestbedConfig cfg;
  cfg.provider = cloud::ProviderProfile::ec2();
  cfg.deployment.mode = core::SecurityMode::kHip;
  core::Testbed bed(cfg);

  const auto t0 = Clock::now();
  const std::uint64_t allocs0 = allocs_now();
  const auto report = bed.run_closed_loop(
      clients, static_cast<sim::Duration>(sim_seconds * sim::kSecond));
  const std::uint64_t allocs1 = allocs_now();

  RubisScore score{};
  score.completed = report.completed;
  score.allocs_per_request =
      report.completed ? static_cast<double>(allocs1 - allocs0) /
                             static_cast<double>(report.completed)
                       : 0.0;
  score.wall_seconds = seconds_since(t0);
  score.perf = bed.network().perf();
  return score;
}

// ---------------------------------------------------------------------------
// BENCH_sim.json. The "seed" constants are the numbers this same binary
// measured on the pre-overhaul tree (std::function event loop, Bytes
// payload pipeline), recorded so the before/after story survives in the
// artifact without needing to rebuild the old code.

constexpr double kSeedTcpAllocsPerPacket = 7.50;
constexpr double kSeedRubisAllocsPerRequest = 1250.6;

void write_sim_json(const LoopScore& legacy, const LoopScore& current,
                    const EchoScore& echo, const RubisScore& rubis,
                    const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"title\": \"Simulator core: event engine and packet "
               "datapath\",\n");
  std::fprintf(f, "  \"event_loop\": {\n");
  std::fprintf(f, "    \"legacy_schedule_fire_mops\": %.2f,\n",
               legacy.schedule_fire_mops);
  std::fprintf(f, "    \"legacy_schedule_cancel_mops\": %.2f,\n",
               legacy.cancel_mops);
  std::fprintf(f, "    \"schedule_fire_mops\": %.2f,\n",
               current.schedule_fire_mops);
  std::fprintf(f, "    \"schedule_cancel_mops\": %.2f,\n", current.cancel_mops);
  std::fprintf(f, "    \"speedup_schedule_fire\": %.2f,\n",
               current.schedule_fire_mops / legacy.schedule_fire_mops);
  std::fprintf(f, "    \"speedup_schedule_cancel\": %.2f\n",
               current.cancel_mops / legacy.cancel_mops);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"tcp_echo\": {\n");
  std::fprintf(f, "    \"round_trips\": %llu,\n",
               static_cast<unsigned long long>(echo.round_trips));
  std::fprintf(f, "    \"packets_delivered\": %llu,\n",
               static_cast<unsigned long long>(echo.packets));
  std::fprintf(f,
               "    \"heap_allocs_per_packet\": {\"before\": %.2f, "
               "\"after\": %.2f},\n",
               kSeedTcpAllocsPerPacket, echo.allocs_per_packet);
  std::fprintf(f, "    \"packets_per_wall_second\": %.0f,\n",
               echo.sim_packets_per_wall_second);
  std::fprintf(f, "    \"sim_perf\": {\n");
  echo.perf.write_json_fields(f, "      ");
  std::fprintf(f, "\n    }\n  },\n");
  std::fprintf(f, "  \"rubis_hip\": {\n");
  std::fprintf(f, "    \"completed_requests\": %llu,\n",
               static_cast<unsigned long long>(rubis.completed));
  std::fprintf(f,
               "    \"heap_allocs_per_request\": {\"before\": %.1f, "
               "\"after\": %.1f},\n",
               kSeedRubisAllocsPerRequest, rubis.allocs_per_request);
  std::fprintf(f, "    \"wall_seconds\": %.2f,\n", rubis.wall_seconds);
  std::fprintf(f, "    \"sim_perf\": {\n");
  rubis.perf.write_json_fields(f, "      ");
  std::fprintf(f, "\n    }\n  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path);
}

}  // namespace
}  // namespace hipcloud::bench

int main(int argc, char** argv) {
  using namespace hipcloud::bench;
  // Smaller iteration counts for CTest smoke runs: micro_sim --quick
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  const std::size_t events = quick ? 200'000 : 2'000'000;
  const std::size_t churn = quick ? 200'000 : 2'000'000;
  const std::uint64_t echos = quick ? 2'000 : 20'000;
  const double rubis_secs = quick ? 2.0 : 8.0;

  std::printf("Simulator-core micro-bench\n==========================\n\n");

  const auto legacy =
      run_loop_bench<LegacyEventLoop, std::uint64_t>(events, churn);
  std::printf("event loop (legacy: priority_queue + hash sets)\n"
              "  schedule+fire: %8.2f M ops/s\n"
              "  schedule+cancel: %6.2f M ops/s\n",
              legacy.schedule_fire_mops, legacy.cancel_mops);

  const auto current =
      run_loop_bench<hipcloud::sim::EventLoop, hipcloud::sim::EventHandle>(
          events, churn);
  std::printf("event loop (sim::EventLoop)\n"
              "  schedule+fire: %8.2f M ops/s  (%.2fx)\n"
              "  schedule+cancel: %6.2f M ops/s  (%.2fx)\n\n",
              current.schedule_fire_mops,
              current.schedule_fire_mops / legacy.schedule_fire_mops,
              current.cancel_mops, current.cancel_mops / legacy.cancel_mops);

  const auto echo = run_tcp_echo(echos);
  std::printf("tcp echo (1 KiB, %llu round trips)\n"
              "  packets delivered: %llu\n"
              "  heap allocs/packet: %.2f\n"
              "  packets/wall-second: %.0f\n\n",
              static_cast<unsigned long long>(echo.round_trips),
              static_cast<unsigned long long>(echo.packets),
              echo.allocs_per_packet, echo.sim_packets_per_wall_second);

  const auto rubis = run_rubis_hip(4, rubis_secs);
  std::printf("rubis-hip closed loop (4 clients, %.0f sim-s)\n"
              "  completed requests: %llu\n"
              "  heap allocs/request: %.1f\n"
              "  pool misses/packet: %.2f (hit rate %.0f%%)\n"
              "  wall seconds: %.2f\n",
              rubis_secs, static_cast<unsigned long long>(rubis.completed),
              rubis.allocs_per_request, rubis.perf.pool_misses_per_packet(),
              100.0 * rubis.perf.pool_hit_rate(), rubis.wall_seconds);

  // The quick CTest smoke run keeps the JSON artifact from the full run.
  if (!quick) write_sim_json(legacy, current, echo, rubis, "BENCH_sim.json");
  return 0;
}
