// Ablation A8: hybrid-cloud security (paper §IV-A: "HIP can authenticate
// and protect the traffic between private and public clouds"). A web tier
// in a private OpenNebula cloud queries a database living in a public
// EC2-like cloud across a WAN; sweeps the inter-cloud latency and
// compares plain against HIP-protected inter-cloud queries.

#include <cstdio>

#include "apps/database.hpp"
#include "cloud/cloud.hpp"
#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "sim/stats.hpp"

using namespace hipcloud;

namespace {

hip::HostIdentity make_identity(const char* name) {
  crypto::HmacDrbg drbg(17, std::string("hybrid:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}

struct Result {
  double mean_ms;
  double qps;
};

Result run(bool use_hip, sim::Duration wan_latency) {
  net::Network net(19);
  cloud::Cloud priv(net, cloud::ProviderProfile::opennebula(), 1);
  cloud::Cloud pub(net, cloud::ProviderProfile::ec2(), 2);
  priv.add_host();
  pub.add_host();
  auto* web = priv.launch("web", cloud::InstanceType::small());
  auto* db = pub.launch("db", cloud::InstanceType::large());

  // Inter-cloud WAN: gateway-to-gateway.
  auto* wan = net.add_node("wan-core");
  wan->set_forwarding(true);
  net::LinkConfig wan_link{200e6, wan_latency, sim::from_millis(200), 0.0,
                           1500};
  priv.attach_external(wan, wan_link);
  pub.attach_external(wan, wan_link);

  std::unique_ptr<hip::HipDaemon> hw, hd;
  if (use_hip) {
    hw = std::make_unique<hip::HipDaemon>(web->node(), make_identity("web"));
    hd = std::make_unique<hip::HipDaemon>(db->node(), make_identity("db"));
    hw->add_peer(hd->hit(), net::IpAddr(db->private_ip()));
    hd->add_peer(hw->hit(), net::IpAddr(web->private_ip()));
    hw->initiate(hd->hit());
    net.loop().run();
  }

  net::TcpStack tw(web->node()), td(db->node());
  apps::DatabaseServer server(db->node(), &td, 3306);
  for (int i = 0; i < 500; ++i) server.load_row("accounts", i, 1024);

  const net::Endpoint db_ep{
      use_hip ? net::IpAddr(hd->hit()) : net::IpAddr(db->private_ip()), 3306};
  apps::DbClient client(web->node(), &tw, db_ep);

  sim::Summary latency;
  std::uint64_t completed = 0;
  // Closed-loop queries for 20 s of virtual time.
  std::function<void()> issue = [&] {
    if (net.loop().now() > 20 * sim::kSecond) return;
    client.query("GET accounts " + std::to_string(completed % 500),
                 [&](std::optional<apps::DbResult> result, sim::Duration d) {
                   if (result && result->ok) {
                     ++completed;
                     latency.add(sim::to_millis(d));
                   }
                   issue();
                 });
  };
  issue();
  net.loop().run();

  return Result{latency.mean(),
                static_cast<double>(completed) / 20.0};
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation A8: hybrid cloud — inter-cloud DB queries, plain vs "
      "HIP ===\n\n");
  std::printf("%14s %16s %16s %14s\n", "WAN RTT (ms)", "plain mean (ms)",
              "HIP mean (ms)", "HIP overhead");
  bool overhead_shrinks = true;
  double first_overhead = 0, last_overhead = 0;
  const sim::Duration latencies[] = {
      sim::from_millis(2), sim::from_millis(10), sim::from_millis(25),
      sim::from_millis(50)};
  for (const auto one_way : latencies) {
    const Result plain = run(false, one_way);
    const Result hip = run(true, one_way);
    const double overhead = (hip.mean_ms - plain.mean_ms) / plain.mean_ms;
    std::printf("%14.0f %16.2f %16.2f %13.1f%%\n",
                2 * sim::to_millis(one_way), plain.mean_ms, hip.mean_ms,
                overhead * 100);
    if (one_way == latencies[0]) first_overhead = overhead;
    last_overhead = overhead;
    std::fflush(stdout);
  }
  overhead_shrinks = last_overhead < first_overhead;
  std::printf("\nShape check:\n"
              "  [%s] HIP's relative overhead shrinks as WAN latency grows "
              "(crypto cost amortized — ideal for hybrid clouds)\n",
              overhead_shrinks ? "PASS" : "FAIL");
  return 0;
}
