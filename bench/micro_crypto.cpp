// Ablation A6: microbenchmarks of the from-scratch crypto primitives
// (real wall-clock performance of this implementation, complementing the
// calibrated virtual-time cost model in crypto::CostModel).

#include <benchmark/benchmark.h>

#include <array>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/dh.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec_p256.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha_mb.hpp"
#include "crypto_micro.hpp"
#include "hip/esp.hpp"
#include "hip/puzzle.hpp"

namespace {

using namespace hipcloud;
using crypto::Bytes;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1500)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1500);

void BM_HmacSha256Streaming(benchmark::State& state) {
  // Keyed once, reset per message — the per-packet path EspSa and the TLS
  // record layer use (no key rehash, no concat temporaries).
  crypto::HmacSha256 hmac{crypto::BytesView(Bytes(32, 0x11))};
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  std::uint8_t mac[crypto::HmacSha256::kDigestSize];
  for (auto _ : state) {
    hmac.reset();
    hmac.update(data);
    hmac.finish(mac);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256Streaming)->Arg(64)->Arg(1500);

void BM_HmacSha256StreamingScalar(benchmark::State& state) {
  // Same streaming path with the SHA-256 compress forced to the portable
  // scalar backend — the "before" yardstick for SHA-NI.
  crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kScalar);
  crypto::HmacSha256 hmac{crypto::BytesView(Bytes(32, 0x11))};
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  std::uint8_t mac[crypto::HmacSha256::kDigestSize];
  for (auto _ : state) {
    hmac.reset();
    hmac.update(data);
    hmac.finish(mac);
    benchmark::DoNotOptimize(mac);
  }
  crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kAuto);
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256StreamingScalar)->Arg(64)->Arg(1500);

void BM_HmacSha256MultiBuffer(benchmark::State& state) {
  // N independent 1500-byte ICVs per compute() call, lanes capped at
  // range(0): 1 = per-lane fallback, 2 = dual-stream SHA-NI tier, 4 =
  // SSE tier, 8 = AVX2 tier. Caps above the host's detected width
  // silently clamp, so every arg runs.
  const auto cap = static_cast<std::size_t>(state.range(0));
  crypto::shamb::set_lane_cap_for_test(cap);
  const std::size_t lanes = crypto::shamb::lane_width();
  const crypto::HmacSha256Mb mb{crypto::BytesView(Bytes(32, 0x11))};
  std::vector<Bytes> msgs(lanes, Bytes(1500, 0xab));
  std::vector<std::array<std::uint8_t, 32>> tags(lanes);
  std::vector<crypto::HmacSha256Mb::Job> jobs(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    jobs[l] = {msgs[l].data(), msgs[l].size(), tags[l].data()};
  }
  for (auto _ : state) {
    mb.compute(jobs.data(), lanes);
    benchmark::DoNotOptimize(tags.data());
  }
  crypto::shamb::set_lane_cap_for_test(0);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes) * 1500);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes));
  state.counters["lanes"] = static_cast<double>(lanes);
}
BENCHMARK(BM_HmacSha256MultiBuffer)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_AesCtrSboxRef(benchmark::State& state) {
  // Byte-oriented S-box baseline ("before") — the acceptance yardstick
  // for the T-table/AES-NI datapath.
  const bench::AesRef ref(Bytes(16, 0x22));
  const Bytes nonce(12, 0x33);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.ctr(nonce, 1, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtrSboxRef)->Arg(1500)->Arg(16384);

void BM_AesCtr(benchmark::State& state) {
  const crypto::Aes aes(Bytes(16, 0x22));
  const Bytes nonce(12, 0x33);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_ctr(aes, nonce, 1, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(1500)->Arg(16384);

void BM_AesCtrInPlace(benchmark::State& state) {
  const crypto::Aes aes(Bytes(16, 0x22));
  const std::uint8_t nonce[12] = {0x33};
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    aes.ctr_xor(nonce, 1, data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtrInPlace)->Arg(1500)->Arg(16384);

void BM_AesCbcEncrypt(benchmark::State& state) {
  const crypto::Aes aes(Bytes(16, 0x22));
  const Bytes iv(16, 0x44);
  const Bytes data(1500, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_encrypt(aes, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_AesCbcEncrypt);

void BM_AesCbcDecrypt(benchmark::State& state) {
  const crypto::Aes aes(Bytes(16, 0x22));
  const Bytes iv(16, 0x44);
  const Bytes ct = crypto::aes_cbc_encrypt(aes, iv, Bytes(1500, 0xab));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_decrypt(aes, iv, ct));
  }
  state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_AesCbcDecrypt);

void BM_EspProtectLegacy(benchmark::State& state) {
  // The seed's allocating datapath, replicated in bench/crypto_micro.hpp.
  // Its compress is pinned to scalar: the seed predates the SHA-NI
  // dispatch, so the yardstick must not accelerate with it.
  crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kScalar);
  bench::LegacyEspProtect sa(0xabcd1234, Bytes(16, 0x11), Bytes(32, 0x22));
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.protect(6, hip::EspSa::kModeHit, payload));
  }
  crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kAuto);
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EspProtectLegacy)->Arg(64)->Arg(1024);

void BM_EspProtect(benchmark::State& state) {
  hip::EspSa sa(0xabcd1234, hip::EspSuite::kAes128CtrSha256, Bytes(16, 0x11),
                Bytes(32, 0x22));
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.protect(6, hip::EspSa::kModeHit, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EspProtect)->Arg(64)->Arg(1024);

void BM_EspProtectBatch(benchmark::State& state) {
  // One event tick's worth of packets (range(0) of them, 1 KiB each)
  // through protect_batch: encryption per packet, ICVs scheduled across
  // SIMD lanes. Items/s is the per-packet rate to compare with
  // BM_EspProtect.
  hip::EspSa sa(0xabcd1234, hip::EspSuite::kAes128CtrSha256, Bytes(16, 0x11),
                Bytes(32, 0x22));
  const Bytes payload(1024, 0x5a);
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<hip::EspSa::ProtectJob> jobs(batch);
  for (auto _ : state) {
    for (auto& job : jobs) {
      job = {6, hip::EspSa::kModeHit, crypto::Buffer(payload, 26, 28)};
    }
    sa.protect_batch(std::span(jobs));
    benchmark::DoNotOptimize(jobs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch) * 1024);
}
BENCHMARK(BM_EspProtectBatch)->Arg(1)->Arg(8)->Arg(16);

void BM_EspRoundTrip(benchmark::State& state) {
  hip::EspSa out_sa(0xabcd1234, hip::EspSuite::kAes128CtrSha256,
                    Bytes(16, 0x11), Bytes(32, 0x22));
  hip::EspSa in_sa(0xabcd1234, hip::EspSuite::kAes128CtrSha256,
                   Bytes(16, 0x11), Bytes(32, 0x22));
  const Bytes payload(1024, 0x5a);
  for (auto _ : state) {
    const Bytes wire = out_sa.protect(6, hip::EspSa::kModeHit, payload);
    benchmark::DoNotOptimize(in_sa.unprotect(wire));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EspRoundTrip);

void BM_RsaSign(benchmark::State& state) {
  crypto::HmacDrbg drbg(1, "bench");
  const auto key =
      crypto::rsa_generate(drbg, static_cast<std::size_t>(state.range(0)));
  const Bytes msg = crypto::to_bytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign_pkcs1(key.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  crypto::HmacDrbg drbg(1, "bench");
  const auto key =
      crypto::rsa_generate(drbg, static_cast<std::size_t>(state.range(0)));
  const Bytes msg = crypto::to_bytes("benchmark message");
  const Bytes sig = crypto::rsa_sign_pkcs1(key.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify_pkcs1(key.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_EcdsaSign(benchmark::State& state) {
  crypto::HmacDrbg drbg(1, "bench");
  const auto key = crypto::p256::generate(drbg);
  const Bytes msg = crypto::to_bytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::p256::ecdsa_sign(key.private_scalar, drbg, msg));
  }
}
BENCHMARK(BM_EcdsaSign)->Unit(benchmark::kMicrosecond);

void BM_EcdsaVerify(benchmark::State& state) {
  crypto::HmacDrbg drbg(1, "bench");
  const auto key = crypto::p256::generate(drbg);
  const Bytes msg = crypto::to_bytes("benchmark message");
  const auto sig = crypto::p256::ecdsa_sign(key.private_scalar, drbg, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::p256::ecdsa_verify(key.public_point, msg, sig));
  }
}
BENCHMARK(BM_EcdsaVerify)->Unit(benchmark::kMicrosecond);

void BM_DhExchange(benchmark::State& state) {
  crypto::HmacDrbg drbg(1, "bench");
  const crypto::DhKeyPair a(crypto::DhGroup::kModp1536, drbg);
  const crypto::DhKeyPair b(crypto::DhGroup::kModp1536, drbg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compute_shared(b.public_value()));
  }
}
BENCHMARK(BM_DhExchange)->Unit(benchmark::kMicrosecond);

void BM_PuzzleSolve(benchmark::State& state) {
  const auto hit_i = net::Ipv6Addr::parse("2001:10::1");
  const auto hit_r = net::Ipv6Addr::parse("2001:10::2");
  std::uint64_t i = 0;
  for (auto _ : state) {
    const hip::Puzzle puzzle{static_cast<std::uint8_t>(state.range(0)), ++i};
    benchmark::DoNotOptimize(puzzle.solve(hit_i, hit_r));
  }
}
BENCHMARK(BM_PuzzleSolve)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_HmacDrbg(benchmark::State& state) {
  crypto::HmacDrbg drbg(1, "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.generate(32));
  }
}
BENCHMARK(BM_HmacDrbg);

}  // namespace

BENCHMARK_MAIN();
