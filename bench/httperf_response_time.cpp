// Reproduces the paper's §V-B httperf experiment: a single web server
// backed by the database server, driven open-loop at 120 requests/second
// with the MySQL query cache ENABLED ("to reduce the possibility of the
// database being a bottleneck"). The paper reports mean response times of
// 116.4 ms (basic), 132.2 ms (HIP) and 128.3 ms (SSL), with HIP's deficit
// attributed to LSI translation.

#include <cstdio>

#include "core/testbed.hpp"

using namespace hipcloud;

int main() {
  std::printf(
      "=== In-text experiment (Sec. V-B): httperf at 120 req/s, single web "
      "server, query cache on ===\n\n");
  std::printf("%8s %12s %12s %12s %10s\n", "mode", "mean (ms)", "stddev",
              "p95 (ms)", "errors");

  struct Row {
    core::SecurityMode mode;
    double paper_mean_ms;
  };
  const Row rows[] = {{core::SecurityMode::kBasic, 116.4},
                      {core::SecurityMode::kHip, 132.2},
                      {core::SecurityMode::kSsl, 128.3}};

  double measured[3];
  int i = 0;
  for (const auto& row : rows) {
    core::TestbedConfig cfg;
    cfg.deployment.mode = row.mode;
    cfg.deployment.web_servers = 1;
    cfg.deployment.db_query_cache = true;
    // httperf drives a single light URL ("the requests almost always
    // required a database connection"), calibrated so the single web
    // server sustains 120 req/s at high utilization (see EXPERIMENTS.md).
    cfg.deployment.web_request_cycles = 2.6e6;
    cfg.client_wan.latency = sim::from_millis(50);  // ~100 ms client RTT
    core::Testbed bed(cfg);
    const auto report =
        bed.run_open_loop(120.0, 30 * sim::kSecond, "/user?id=7");
    measured[i++] = report.latency_ms.mean();
    std::printf("%8s %12.1f %12.1f %12.1f %10llu\n",
                core::mode_name(row.mode), report.latency_ms.mean(),
                report.latency_ms.stddev(), report.latency_ms.percentile(95),
                static_cast<unsigned long long>(report.errors));
    std::fflush(stdout);
  }

  std::printf("\nPaper reference: basic 116.4 ms, HIP 132.2 ms, SSL 128.3 ms "
              "(means)\n");
  const bool ordering =
      measured[0] < measured[2] && measured[2] < measured[1];
  const bool comparable =
      measured[1] < 1.35 * measured[0];  // "largely comparable"
  std::printf("Shape checks:\n"
              "  [%s] basic < SSL < HIP ordering (HIP worst due to LSIs)\n"
              "  [%s] all three within ~35%% (\"largely comparable\")\n",
              ordering ? "PASS" : "FAIL", comparable ? "PASS" : "FAIL");
  return 0;
}
