// Extension (paper §VII): the paper used Teredo for NAT traversal only
// because "the native support was not available in any of the
// implementations yet". This bench implements the comparison the authors
// could not run: a NATted power user reaching a cloud VM over (a) HIP
// over Teredo (relay detour) and (b) native HIP UDP encapsulation
// (direct path through the learned NAT mapping).

#include <cstdio>

#include "cloud/cloud.hpp"
#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "hip/udp_encap.hpp"
#include "net/icmp.hpp"
#include "net/nat.hpp"
#include "net/teredo.hpp"

using namespace hipcloud;

namespace {

hip::HostIdentity make_identity(const char* name) {
  crypto::HmacDrbg drbg(89, std::string("natbench:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}

struct Result {
  double bex_ms = -1;
  double rtt_ms = -1;
};

/// Home-NATted admin -> internet -> cloud VM, with a Teredo server on the
/// internet. `use_teredo` selects the traversal mechanism.
Result run(bool use_teredo) {
  net::Network net(97);
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  ec2.add_host();
  auto* vm = ec2.launch("vm", cloud::InstanceType::small());
  auto* inet = net.add_node("internet");
  inet->set_forwarding(true);
  ec2.attach_external(inet, ec2.profile().gateway_link);

  auto* teredo_srv = net.add_node("teredo-server");
  const auto tl = net.connect(teredo_srv, inet,
                              {100e6, sim::from_millis(2),
                               sim::from_millis(100), 0.0, 1500});
  teredo_srv->add_address(tl.iface_a, net::Ipv4Addr(83, 1, 1, 1));
  inet->add_address(tl.iface_b, net::Ipv4Addr(83, 1, 1, 254));
  teredo_srv->set_default_route(tl.iface_a);
  inet->add_route(net::IpAddr(net::Ipv4Addr(83, 1, 1, 1)), 32, tl.iface_b);

  auto* home_nat = net.add_node("home-router");
  auto* admin = net.add_node("admin", 4e9);
  const auto hl = net.connect(admin, home_nat,
                              {50e6, sim::from_millis(1),
                               sim::from_millis(100), 0.0, 1500});
  const auto ul = net.connect(home_nat, inet,
                              {20e6, sim::from_millis(8),
                               sim::from_millis(100), 0.0, 1500});
  admin->add_address(hl.iface_a, net::Ipv4Addr(192, 168, 1, 100));
  home_nat->add_address(hl.iface_b, net::Ipv4Addr(192, 168, 1, 1));
  home_nat->add_address(ul.iface_a, net::Ipv4Addr(84, 20, 30, 41));
  inet->add_address(ul.iface_b, net::Ipv4Addr(84, 20, 30, 254));
  admin->set_default_route(hl.iface_a);
  home_nat->add_route(net::IpAddr(net::Ipv4Addr(192, 168, 1, 0)), 24,
                      hl.iface_b);
  home_nat->set_default_route(ul.iface_a);
  net::Nat nat(home_nat, hl.iface_b, ul.iface_a,
               net::Ipv4Addr(84, 20, 30, 40));
  inet->add_route(net::IpAddr(net::Ipv4Addr(84, 20, 30, 40)), 32,
                  ul.iface_b);

  hip::HipDaemon hip_admin(admin, make_identity("admin"));
  hip::HipDaemon hip_vm(vm->node(), make_identity("vm"));
  net::UdpStack u_admin(admin), u_vm(vm->node()), u_srv(teredo_srv);
  net::IcmpStack icmp_admin(admin), icmp_vm(vm->node());

  std::unique_ptr<net::TeredoServer> server;
  std::unique_ptr<net::TeredoClient> t_admin, t_vm;
  std::unique_ptr<hip::UdpEncap> e_admin, e_vm;

  if (use_teredo) {
    server = std::make_unique<net::TeredoServer>(teredo_srv, &u_srv);
    const net::Endpoint srv_ep{net::IpAddr(net::Ipv4Addr(83, 1, 1, 1)),
                               net::kTeredoPort};
    t_admin = std::make_unique<net::TeredoClient>(admin, &u_admin, srv_ep);
    t_vm = std::make_unique<net::TeredoClient>(vm->node(), &u_vm, srv_ep);
    t_admin->qualify([](const net::Ipv6Addr&) {});
    t_vm->qualify([](const net::Ipv6Addr&) {});
    net.loop().run();
    hip_admin.add_peer(hip_vm.hit(), net::IpAddr(t_vm->address()));
    hip_vm.add_peer(hip_admin.hit(), net::IpAddr(t_admin->address()));
  } else {
    e_admin = std::make_unique<hip::UdpEncap>(admin, &u_admin, 0);
    e_vm = std::make_unique<hip::UdpEncap>(vm->node(), &u_vm,
                                           hip::kHipNatPort);
    hip_admin.add_peer(hip_vm.hit(), net::IpAddr(vm->private_ip()));
    e_admin->add_encap_peer(net::IpAddr(vm->private_ip()));
  }

  Result result;
  hip_admin.on_established([&](const net::Ipv6Addr&, sim::Duration l) {
    result.bex_ms = sim::to_millis(l);
  });
  hip_admin.initiate(hip_vm.hit());
  net.loop().run();

  icmp_admin.ping(net::IpAddr(hip_vm.hit()), 20, sim::from_millis(50), 56,
                  [&](const sim::Summary& rtts, int lost) {
                    if (lost == 0) result.rtt_ms = rtts.mean();
                  });
  net.loop().run();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Extension: native HIP NAT traversal vs Teredo ===\n\n");
  std::printf("%-26s %12s %14s\n", "traversal", "BEX (ms)",
              "ESP RTT (ms)");
  const Result teredo = run(true);
  std::printf("%-26s %12.2f %14.3f\n", "HIP over Teredo (relay)",
              teredo.bex_ms, teredo.rtt_ms);
  const Result native = run(false);
  std::printf("%-26s %12.2f %14.3f\n", "native UDP encapsulation",
              native.bex_ms, native.rtt_ms);

  auto mark = [](bool ok) { return ok ? "PASS" : "FAIL"; };
  std::printf("\nShape checks:\n"
              "  [%s] both mechanisms traverse the NAT (BEX completes)\n"
              "  [%s] native mode has lower RTT (no relay detour)\n"
              "  [%s] native mode completes the BEX faster\n",
              mark(teredo.bex_ms > 0 && native.bex_ms > 0),
              mark(native.rtt_ms > 0 && native.rtt_ms < teredo.rtt_ms),
              mark(native.bex_ms < teredo.bex_ms));
  return 0;
}
