#pragma once

// Quick wall-clock crypto micro-measurements for the BENCH_fig2.json
// perf-trajectory file, plus self-contained "before" reference
// implementations:
//
//  - AesRef: the byte-oriented S-box AES-128 the datapath started from
//    (plain SubBytes/ShiftRows/MixColumns per byte, no T-tables, no
//    AES-NI), with the seed's allocating aes_ctr shape on top.
//  - legacy_esp_protect: the seed's EspSa::protect() datapath — separate
//    plaintext/IV/ciphertext/ICV temporaries assembled with inserts and a
//    per-packet re-keyed HMAC (~5 heap allocations per packet).
//
// These live in the bench (not the library) on purpose: the library keeps
// one implementation; the bench keeps the yardstick.

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha_mb.hpp"
#include "hip/esp.hpp"

namespace hipcloud::bench {

// ---------------------------------------------------------------------------
// Reference S-box AES-128 ("before")

class AesRef {
 public:
  explicit AesRef(crypto::BytesView key16) {
    const std::uint8_t* sbox = get_sbox();
    std::memcpy(rk_, key16.data(), 16);
    std::uint8_t rcon = 0x01;
    for (int i = 4; i < 44; ++i) {
      std::uint8_t t[4];
      std::memcpy(t, rk_ + 4 * (i - 1), 4);
      if (i % 4 == 0) {
        const std::uint8_t hi = t[0];
        t[0] = static_cast<std::uint8_t>(sbox[t[1]] ^ rcon);
        t[1] = sbox[t[2]];
        t[2] = sbox[t[3]];
        t[3] = sbox[hi];
        rcon = xtime(rcon);
      }
      for (int j = 0; j < 4; ++j) {
        rk_[4 * i + j] = static_cast<std::uint8_t>(rk_[4 * (i - 4) + j] ^ t[j]);
      }
    }
  }

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
    const std::uint8_t* sbox = get_sbox();
    std::uint8_t s[16];
    for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ rk_[i]);
    for (int round = 1; round <= 10; ++round) {
      for (auto& b : s) b = sbox[b];
      shift_rows(s);
      if (round != 10) mix_columns(s);
      for (int i = 0; i < 16; ++i) s[i] ^= rk_[16 * round + i];
    }
    std::memcpy(out, s, 16);
  }

  /// The seed's allocating aes_ctr: fresh output vector, one
  /// encrypt_block per 16 bytes.
  crypto::Bytes ctr(crypto::BytesView nonce12, std::uint32_t initial_counter,
                    crypto::BytesView data) const {
    crypto::Bytes out(data.begin(), data.end());
    std::uint8_t counter_block[16];
    std::memcpy(counter_block, nonce12.data(), 12);
    std::uint32_t ctr_v = initial_counter;
    std::uint8_t keystream[16];
    for (std::size_t off = 0; off < out.size(); off += 16) {
      counter_block[12] = static_cast<std::uint8_t>(ctr_v >> 24);
      counter_block[13] = static_cast<std::uint8_t>(ctr_v >> 16);
      counter_block[14] = static_cast<std::uint8_t>(ctr_v >> 8);
      counter_block[15] = static_cast<std::uint8_t>(ctr_v);
      ++ctr_v;
      encrypt_block(counter_block, keystream);
      const std::size_t n = out.size() - off < 16 ? out.size() - off : 16;
      for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    }
    return out;
  }

 private:
  static std::uint8_t xtime(std::uint8_t x) {
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
  }

  // S-box computed once (multiplicative inverse + affine transform) — the
  // baseline has the table, it just works byte-at-a-time like the seed.
  static const std::uint8_t* get_sbox() {
    static const auto table = [] {
      std::array<std::uint8_t, 256> sbox{};
      std::uint8_t inv[256] = {0};
      for (int a = 1; a < 256; ++a) {
        for (int b = 1; b < 256; ++b) {
          if (gmul(static_cast<std::uint8_t>(a),
                   static_cast<std::uint8_t>(b)) == 1) {
            inv[a] = static_cast<std::uint8_t>(b);
            break;
          }
        }
      }
      for (int i = 0; i < 256; ++i) {
        const std::uint8_t x = inv[i];
        sbox[i] = static_cast<std::uint8_t>(
            x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63);
      }
      return sbox;
    }();
    return table.data();
  }

  static std::uint8_t rotl8(std::uint8_t x, int n) {
    return static_cast<std::uint8_t>((x << n) | (x >> (8 - n)));
  }

  static std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & 1) p ^= a;
      a = xtime(a);
      b >>= 1;
    }
    return p;
  }

  static void shift_rows(std::uint8_t s[16]) {
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
    }
    std::memcpy(s, t, 16);
  }

  static void mix_columns(std::uint8_t s[16]) {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3);
      col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3);
      col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3);
      col[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3));
    }
  }

  std::uint8_t rk_[176];
};

// ---------------------------------------------------------------------------
// Legacy ESP protect ("before"): the seed's allocation-per-stage datapath.

class LegacyEspProtect {
 public:
  LegacyEspProtect(std::uint32_t spi, crypto::BytesView enc_key,
                   crypto::BytesView auth_key)
      : spi_(spi),
        cipher_(enc_key.subspan(0, 16)),
        auth_key_(auth_key.begin(), auth_key.end()) {}

  crypto::Bytes protect(std::uint8_t inner_proto, std::uint8_t addr_mode,
                        crypto::BytesView payload) {
    crypto::Bytes plaintext;
    plaintext.reserve(2 + payload.size());
    plaintext.push_back(inner_proto);
    plaintext.push_back(addr_mode);
    plaintext.insert(plaintext.end(), payload.begin(), payload.end());

    crypto::Bytes iv(16, 0);
    crypto::append_be(iv, spi_, 4);
    crypto::append_be(iv, iv_counter_++, 8);
    iv.erase(iv.begin(), iv.begin() + 12);
    iv.resize(16, 0);

    crypto::Bytes ciphertext = crypto::aes_ctr(
        cipher_, crypto::BytesView(iv).subspan(0, 12),
        static_cast<std::uint32_t>(crypto::read_be(iv, 12, 4)), plaintext);

    crypto::Bytes wire;
    wire.reserve(4 + 4 + 16 + ciphertext.size() + 12);
    crypto::append_be(wire, spi_, 4);
    crypto::append_be(wire, next_seq_++, 4);
    wire.insert(wire.end(), iv.begin(), iv.end());
    wire.insert(wire.end(), ciphertext.begin(), ciphertext.end());
    crypto::Bytes icv = crypto::hmac_sha256(auth_key_, wire);
    icv.resize(12);
    wire.insert(wire.end(), icv.begin(), icv.end());
    return wire;
  }

 private:
  std::uint32_t spi_;
  crypto::Aes cipher_;
  crypto::Bytes auth_key_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t iv_counter_ = 1;
};

// ---------------------------------------------------------------------------
// Timed measurements

/// Calls `fn()` (which processes `bytes_per_call` bytes) until ~`budget`
/// wall-clock elapses and returns the MB/s (1 MB = 1e6 bytes).
template <typename Fn>
double measure_mbps(std::size_t bytes_per_call, Fn&& fn,
                    std::chrono::milliseconds budget =
                        std::chrono::milliseconds(150)) {
  // hipcheck:allow(wall-clock): micro-bench measures real elapsed time; never feeds sim state
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up
  const auto start = Clock::now();
  const auto deadline = start + budget;
  std::size_t calls = 0;
  auto now = start;
  do {
    fn();
    ++calls;
    now = Clock::now();
  } while (now < deadline);
  const double secs = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(calls) * static_cast<double>(bytes_per_call) /
         1e6 / secs;
}

/// Calls `fn()` until ~`budget` elapses and returns calls per second.
template <typename Fn>
double measure_ops(Fn&& fn, std::chrono::milliseconds budget =
                                std::chrono::milliseconds(150)) {
  // hipcheck:allow(wall-clock): micro-bench measures real elapsed time; never feeds sim state
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up
  const auto start = Clock::now();
  const auto deadline = start + budget;
  std::size_t calls = 0;
  auto now = start;
  do {
    fn();
    ++calls;
    now = Clock::now();
  } while (now < deadline);
  const double secs = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(calls) / secs;
}

struct CryptoMicro {
  double aes_ctr_mbps_before;   // byte-oriented S-box reference
  double aes_ctr_mbps_after;    // library Aes (T-tables or AES-NI)
  double hmac_mbps_scalar;      // streamed HmacSha256, compress forced scalar
  double hmac_mbps;             // streamed HmacSha256, live dispatch
  double hmac_mb_mbps;          // HmacSha256Mb, lane_width() lanes in flight
  double esp_protect_ops_before;  // seed-style allocating datapath
  double esp_protect_ops_after;   // EspSa::protect single-buffer path
  double esp_protect_batch_ops;   // EspSa::protect_batch, per-packet rate
  bool aes_hw;                  // AES-NI in use
  const char* sha_backend;      // sha256_backend::active_name()
  std::size_t sha_mb_lanes;     // shamb::lane_width()
};

inline CryptoMicro run_crypto_micro() {
  const crypto::Bytes key(16, 0x11);
  const crypto::Bytes auth_key(32, 0x22);
  const std::uint8_t nonce[12] = {0};

  CryptoMicro m{};
  m.aes_hw = crypto::Aes::hardware_accelerated();
  m.sha_backend = crypto::sha256_backend::active_name();
  m.sha_mb_lanes = crypto::shamb::lane_width();

  {
    // The reference is slow; a modest buffer keeps the measurement quick
    // while still spanning many calls.
    const AesRef ref(key);
    std::vector<std::uint8_t> buf(64 * 1024, 0xa5);
    m.aes_ctr_mbps_before = measure_mbps(buf.size(), [&] {
      const crypto::Bytes out =
          ref.ctr(crypto::BytesView(nonce, 12), 1,
                  crypto::BytesView(buf.data(), buf.size()));
      buf[0] = out[0];  // keep the work observable
    });
  }
  {
    const crypto::Aes aes(key);
    std::vector<std::uint8_t> buf(1 << 20, 0xa5);
    m.aes_ctr_mbps_after = measure_mbps(
        buf.size(), [&] { aes.ctr_xor(nonce, 1, buf.data(), buf.size()); });
  }
  {
    crypto::HmacSha256 hmac{crypto::BytesView(auth_key)};
    std::vector<std::uint8_t> pkt(1500, 0x5a);
    std::uint8_t mac[crypto::HmacSha256::kDigestSize];
    const auto one_packet = [&] {
      hmac.reset();
      hmac.update(crypto::BytesView(pkt.data(), pkt.size()));
      hmac.finish(mac);
    };
    crypto::sha256_backend::set_for_test(
        crypto::sha256_backend::Kind::kScalar);
    m.hmac_mbps_scalar = measure_mbps(pkt.size(), one_packet);
    crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kAuto);
    m.hmac_mbps = measure_mbps(pkt.size(), one_packet);

    // Multi-buffer: lane_width() independent 1500-byte ICVs per pass, the
    // shape protect_batch feeds it.
    const std::size_t lanes = crypto::shamb::lane_width();
    std::vector<std::vector<std::uint8_t>> msgs(
        lanes, std::vector<std::uint8_t>(1500, 0x5a));
    std::vector<std::array<std::uint8_t, 32>> tags(lanes);
    std::vector<crypto::HmacSha256Mb::Job> jobs(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      jobs[l] = {msgs[l].data(), msgs[l].size(), tags[l].data()};
    }
    const crypto::HmacSha256Mb mb{crypto::BytesView(auth_key)};
    m.hmac_mb_mbps = measure_mbps(lanes * pkt.size(),
                                  [&] { mb.compute(jobs.data(), lanes); });
  }
  {
    const crypto::Bytes payload(1024, 0x5a);
    // The legacy yardstick measures the seed's datapath, which predates
    // the SHA-NI dispatch — pin its compress to scalar so the "before"
    // number doesn't accelerate out from under the comparison.
    LegacyEspProtect legacy(0xabcd1234, key, auth_key);
    crypto::sha256_backend::set_for_test(
        crypto::sha256_backend::Kind::kScalar);
    m.esp_protect_ops_before = measure_ops([&] {
      const crypto::Bytes wire =
          legacy.protect(6, hip::EspSa::kModeHit, payload);
      (void)wire;
    });
    crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kAuto);
    hip::EspSa sa(0xabcd1234, hip::EspSuite::kAes128CtrSha256, key, auth_key);
    m.esp_protect_ops_after = measure_ops([&] {
      const crypto::Bytes wire = sa.protect(6, hip::EspSa::kModeHit, payload);
      (void)wire;
    });

    // Batched: one event tick's worth of packets through protect_batch,
    // ICVs scheduled across SIMD lanes. Reported as a per-packet rate so
    // it compares directly with the single-buffer numbers above.
    constexpr std::size_t kBatch = 16;
    hip::EspSa batch_sa(0xabcd1234, hip::EspSuite::kAes128CtrSha256, key,
                        auth_key);
    std::array<hip::EspSa::ProtectJob, kBatch> jobs;
    const double batches_per_sec = measure_ops([&] {
      for (auto& job : jobs) {
        job = {6, hip::EspSa::kModeHit, crypto::Buffer(payload, 26, 28)};
      }
      batch_sa.protect_batch(std::span(jobs));
    });
    m.esp_protect_batch_ops = batches_per_sec * kBatch;
  }
  return m;
}

}  // namespace hipcloud::bench
