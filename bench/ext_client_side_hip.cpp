// Extension (paper §VII future work): "HIP ... is also relevant at the
// client side. Wider adoption of HIP on the client side ... could solve
// several security issues." Compares the paper's end-to-middle deployment
// (plain-HTTP consumers, proxy terminates HIP) against fully end-to-end
// client-side HIP, where consumers install a HIP stack and reach a web VM
// directly by HIT — no proxy hop, encryption all the way to the client.

#include <cstdio>

#include "core/testbed.hpp"

using namespace hipcloud;

namespace {
hip::HostIdentity make_identity(const char* name) {
  crypto::HmacDrbg drbg(67, std::string("client-hip:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}
}  // namespace

int main() {
  std::printf("=== Extension: end-to-middle vs client-side (end-to-end) HIP "
              "===\n\n");
  std::printf("%28s %12s %14s %12s\n", "deployment", "req/s",
              "mean lat (ms)", "errors");

  double via_proxy_rps = 0, direct_rps = 0;
  double via_proxy_lat = 0, direct_lat = 0;

  {
    // End-to-middle: the paper's deployment (Fig. 1).
    core::TestbedConfig cfg;
    cfg.deployment.mode = core::SecurityMode::kHip;
    core::Testbed bed(cfg);
    const auto report = bed.run_closed_loop(10, 20 * sim::kSecond);
    via_proxy_rps = report.throughput_rps();
    via_proxy_lat = report.latency_ms.mean();
    std::printf("%28s %12.1f %14.1f %12llu\n",
                "end-to-middle (proxy)", via_proxy_rps, via_proxy_lat,
                static_cast<unsigned long long>(report.errors));
  }
  {
    // Client-side HIP: the consumer machine runs a HIP daemon and loads
    // pages straight off a web VM's HIT, bypassing the proxy.
    core::TestbedConfig cfg;
    cfg.deployment.mode = core::SecurityMode::kHip;
    core::Testbed bed(cfg);
    hip::HipDaemon client_hip(bed.client_node(), make_identity("consumer"));
    // Exchange peer entries with every web VM (in deployment: DNS HIP
    // records + the provider publishing VM HITs).
    for (std::size_t i = 0; i < 3; ++i) {
      auto* web_hip = bed.service().web_hip(i);
      client_hip.add_peer(web_hip->hit(),
                          net::IpAddr(bed.service().web_vms()[i]
                                          ->private_ip()));
      web_hip->add_peer(client_hip.hit(),
                        *bed.client_node()->first_address(false));
    }
    apps::ClosedLoopClients::Config load;
    load.concurrency = 10;
    load.duration = 20 * sim::kSecond;
    // Clients spread over the three web VMs by HIT (DNS round-robin).
    load.target = net::Endpoint{
        net::IpAddr(bed.service().web_hip(0)->hit()), 8080};
    load.mix = cfg.deployment.dataset;
    apps::ClosedLoopClients clients(bed.client_node(), &bed.client_tcp(),
                                    load);
    apps::LoadReport report;
    clients.start([&](const apps::LoadReport& r) { report = r; });
    bed.network().loop().run();
    direct_rps = report.throughput_rps();
    direct_lat = report.latency_ms.mean();
    std::printf("%28s %12.1f %14.1f %12llu\n",
                "client-side HIP (1 VM, e2e)", direct_rps, direct_lat,
                static_cast<unsigned long long>(report.errors));
  }

  std::printf(
      "\nInterpretation: client-side HIP removes the proxy hop and keeps\n"
      "packets encrypted all the way to the consumer, at the cost of a\n"
      "HIP stack on every client and the loss of proxy-side load\n"
      "balancing (here all load lands on one web VM). The end-to-middle\n"
      "model spreads %0.f req/s over three VMs; the single-VM e2e path\n"
      "delivers %.0f req/s — the deployment trade-off the paper's\n"
      "conclusion describes.\n",
      via_proxy_rps, direct_rps);
  return 0;
}
