// Ablation A3: ESP transform suites. The paper notes HIP's protection
// level is configurable — minimally integrity-only, typically also
// confidentiality. Measures HIP data-plane throughput (iperf over HITs)
// for NULL-SHA256, AES128-CTR-SHA256 and AES128-CBC-SHA256, against the
// plain-IPv4 baseline.

#include <cstdio>

#include "core/path_lab.hpp"

using namespace hipcloud;

namespace {
double run_suite(std::optional<hip::EspSuite> suite) {
  core::PathLab::Config cfg;
  if (suite) cfg.hip.esp_suite = *suite;
  core::PathLab lab(cfg);
  const auto dst = lab.establish(suite ? core::PathLab::Path::kHit
                                       : core::PathLab::Path::kIpv4);
  return lab.iperf_mbps(dst, 10 * sim::kSecond);
}
}  // namespace

int main() {
  std::printf("=== Ablation A3: ESP cipher suite vs data-plane throughput "
              "===\n\n");
  std::printf("%-22s %16s\n", "suite", "iperf (Mbit/s)");
  const double plain = run_suite(std::nullopt);
  std::printf("%-22s %16.1f\n", "(no ESP, plain IPv4)", plain);
  const double null_mbps = run_suite(hip::EspSuite::kNullSha256);
  std::printf("%-22s %16.1f\n", esp_suite_name(hip::EspSuite::kNullSha256),
              null_mbps);
  const double ctr_mbps = run_suite(hip::EspSuite::kAes128CtrSha256);
  std::printf("%-22s %16.1f\n",
              esp_suite_name(hip::EspSuite::kAes128CtrSha256), ctr_mbps);
  const double cbc_mbps = run_suite(hip::EspSuite::kAes128CbcSha256);
  std::printf("%-22s %16.1f\n",
              esp_suite_name(hip::EspSuite::kAes128CbcSha256), cbc_mbps);

  auto mark = [](bool ok) { return ok ? "PASS" : "FAIL"; };
  std::printf(
      "\nShape checks:\n"
      "  [%s] plain IPv4 fastest (no crypto)\n"
      "  [%s] NULL (auth-only) beats the encrypting suites\n"
      "  [%s] CTR is at least as fast as CBC (no padding)\n",
      mark(plain > null_mbps),
      mark(null_mbps > ctr_mbps && null_mbps > cbc_mbps),
      mark(ctr_mbps >= cbc_mbps * 0.98));
  return 0;
}
