// Failover experiment: the paper's testbed under injected faults.
//
// A baseline RUBiS run and a chaos run share one configuration; the chaos
// run crashes a web VM mid-workload and live-migrates another (locator
// flip). A 100 ms sampler watches the proxy's health view and the LB HIP
// daemon's association state, so the emitted BENCH_failover.json carries
// actual recovery times (fault -> detection -> service restored), not
// just end-of-run aggregates.

#include <cstdio>
#include <vector>

#include "core/testbed.hpp"
#include "sim/fault.hpp"

namespace hipcloud::bench {
namespace {

using core::SecurityMode;
using core::Testbed;
using core::TestbedConfig;

constexpr int kConcurrency = 8;
constexpr sim::Duration kRunFor = 40 * sim::kSecond;
constexpr sim::Duration kCrashAt = 10 * sim::kSecond;     // after run start
constexpr sim::Duration kCrashFor = 8 * sim::kSecond;
constexpr sim::Duration kMigrateAt = 20 * sim::kSecond;
constexpr sim::Duration kSamplePeriod = 100 * sim::kMillisecond;

TestbedConfig make_config() {
  TestbedConfig cfg;
  cfg.deployment.mode = SecurityMode::kHip;
  cfg.deployment.web_servers = 3;
  cfg.deployment.hip.keepalive_interval = sim::kSecond;
  cfg.deployment.hip.keepalive_max_misses = 2;
  cfg.deployment.proxy_health.max_failures = 2;
  cfg.deployment.proxy_health.reprobe_interval = 2 * sim::kSecond;
  cfg.deployment.proxy_health.retry_limit = 1;
  cfg.deployment.proxy_health.upstream_timeout = 2 * sim::kSecond;
  return cfg;
}

struct Sample {
  sim::Time at;
  bool proxy_healthy0;
  bool hip_established0;
};

struct FailoverResult {
  apps::LoadReport baseline;
  apps::LoadReport chaos;
  // Absolute fault times (virtual).
  sim::Time t_crash = 0, t_restart = 0, t_migrate = 0;
  // Recovery metrics, milliseconds of virtual time (-1: never observed).
  double proxy_detect_ms = -1;    // crash -> backend ejected
  double proxy_revive_ms = -1;    // restart -> backend back in rotation
  double hip_detect_ms = -1;      // crash -> association torn down
  double hip_recover_ms = -1;     // restart -> association re-established
  std::uint64_t ejections = 0, revivals = 0, retries = 0;
  std::uint64_t rekeys = 0, keepalives = 0, peer_failures = 0;
  std::uint64_t updates = 0;
  bool migrated = false;
  sim::PerfCounters sim_perf;  // chaos world's simulator-substrate counters
};

/// First sample at/after `from` where `pred` holds; -1 if none.
template <typename Pred>
double delay_ms(const std::vector<Sample>& samples, sim::Time from,
                Pred pred) {
  for (const auto& s : samples) {
    if (s.at >= from && pred(s)) return sim::to_millis(s.at - from);
  }
  return -1;
}

FailoverResult run_failover() {
  FailoverResult out;

  {
    Testbed tb(make_config());
    out.baseline = tb.run_closed_loop(kConcurrency, kRunFor);
  }

  Testbed tb(make_config());
  auto& loop = tb.network().loop();
  auto& svc = tb.service();
  // Start the LB->web2 outbound SA near the 2^32 sequence ceiling so the
  // run also exercises a proactive rekey.
  svc.lb_hip()->seek_esp_seq(svc.web_hip(2)->hit(), 0xFFFFFF00u);
  const sim::Time t0 = loop.now();
  out.t_crash = t0 + kCrashAt;
  out.t_restart = t0 + kCrashAt + kCrashFor;
  out.t_migrate = t0 + kMigrateAt;

  sim::FaultInjector chaos(&loop);
  net::Node* web0 = svc.web_vms()[0]->node();
  chaos.window("web0-crash", out.t_crash, kCrashFor,
               [web0] { web0->set_down(true); },
               [web0] { web0->set_down(false); });
  chaos.at("web1-migrate", out.t_migrate, [&] {
    tb.cloud().migrate(svc.web_vms()[1], tb.cloud().hosts()[0].get(),
                       [&](const cloud::Cloud::MigrationReport&) {
                         out.migrated = true;
                       });
  });

  // Sampler: the proxy's health view + the LB daemon's association state
  // towards the crashed VM.
  std::vector<Sample> samples;
  const auto web0_hit = svc.web_hip(0)->hit();
  std::function<void()> sample = [&] {
    samples.push_back(Sample{
        loop.now(), svc.proxy().healthy(0),
        svc.lb_hip()->state(web0_hit) == hip::AssocState::kEstablished});
    loop.schedule(kSamplePeriod, sample);
  };
  loop.schedule(0, sample);

  out.chaos = tb.run_closed_loop(kConcurrency, kRunFor);

  out.proxy_detect_ms =
      delay_ms(samples, out.t_crash, [](const Sample& s) {
        return !s.proxy_healthy0;
      });
  out.proxy_revive_ms =
      delay_ms(samples, out.t_restart, [](const Sample& s) {
        return s.proxy_healthy0;
      });
  out.hip_detect_ms = delay_ms(samples, out.t_crash, [](const Sample& s) {
    return !s.hip_established0;
  });
  out.hip_recover_ms =
      delay_ms(samples, out.t_restart, [](const Sample& s) {
        return s.hip_established0;
      });

  const auto& st = svc.lb_hip()->stats();
  out.ejections = svc.proxy().ejections();
  out.revivals = svc.proxy().revivals();
  out.retries = svc.proxy().retries();
  out.rekeys = st.rekeys_completed;
  out.keepalives = st.keepalives_sent;
  out.peer_failures = st.peer_failures;
  out.updates = st.updates_processed;
  out.sim_perf = tb.network().perf();
  return out;
}

void write_json(const FailoverResult& r, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path);
    return;
  }
  const double err_rate =
      r.chaos.completed + r.chaos.errors > 0
          ? static_cast<double>(r.chaos.errors) /
                static_cast<double>(r.chaos.completed + r.chaos.errors)
          : 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"title\": \"RUBiS failover under injected faults\",\n");
  std::fprintf(f, "  \"config\": {\"concurrency\": %d, "
               "\"run_seconds\": %.0f, \"crash_at_s\": %.0f, "
               "\"crash_for_s\": %.0f, \"migrate_at_s\": %.0f},\n",
               kConcurrency, sim::to_seconds(kRunFor),
               sim::to_seconds(kCrashAt), sim::to_seconds(kCrashFor),
               sim::to_seconds(kMigrateAt));
  std::fprintf(f, "  \"baseline\": {\"throughput_rps\": %.4f, "
               "\"errors\": %llu, \"latency_ms_mean\": %.4f},\n",
               r.baseline.throughput_rps(),
               static_cast<unsigned long long>(r.baseline.errors),
               r.baseline.latency_ms.mean());
  std::fprintf(f, "  \"chaos\": {\"throughput_rps\": %.4f, "
               "\"errors\": %llu, \"error_rate\": %.5f, "
               "\"latency_ms_mean\": %.4f, \"latency_ms_p95\": %.4f},\n",
               r.chaos.throughput_rps(),
               static_cast<unsigned long long>(r.chaos.errors), err_rate,
               r.chaos.latency_ms.mean(), r.chaos.latency_ms.percentile(95));
  std::fprintf(f, "  \"recovery_ms\": {\"proxy_detect\": %.1f, "
               "\"proxy_revive\": %.1f, \"hip_dead_peer_detect\": %.1f, "
               "\"hip_reestablish\": %.1f},\n",
               r.proxy_detect_ms, r.proxy_revive_ms, r.hip_detect_ms,
               r.hip_recover_ms);
  std::fprintf(f, "  \"events\": {\"ejections\": %llu, \"revivals\": %llu, "
               "\"retries\": %llu, \"rekeys_completed\": %llu, "
               "\"keepalives_sent\": %llu, \"peer_failures\": %llu, "
               "\"updates_processed\": %llu, \"migration_completed\": %s},\n",
               static_cast<unsigned long long>(r.ejections),
               static_cast<unsigned long long>(r.revivals),
               static_cast<unsigned long long>(r.retries),
               static_cast<unsigned long long>(r.rekeys),
               static_cast<unsigned long long>(r.keepalives),
               static_cast<unsigned long long>(r.peer_failures),
               static_cast<unsigned long long>(r.updates),
               r.migrated ? "true" : "false");
  std::fprintf(f, "  \"sim_perf\": {\n");
  r.sim_perf.write_json_fields(f, "    ");
  std::fprintf(f, "\n  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("Wrote %s\n", path);
}

}  // namespace
}  // namespace hipcloud::bench

int main() {
  using namespace hipcloud;
  std::printf("Failover: baseline vs crash+migration chaos run\n");
  const auto r = bench::run_failover();
  std::printf("  baseline: %.1f rps, %llu errors\n",
              r.baseline.throughput_rps(),
              static_cast<unsigned long long>(r.baseline.errors));
  std::printf("  chaos:    %.1f rps, %llu errors\n",
              r.chaos.throughput_rps(),
              static_cast<unsigned long long>(r.chaos.errors));
  std::printf("  proxy: detect %.0f ms, revive %.0f ms  |  hip: dead-peer "
              "%.0f ms, re-establish %.0f ms\n",
              r.proxy_detect_ms, r.proxy_revive_ms, r.hip_detect_ms,
              r.hip_recover_ms);
  bench::write_json(r, "BENCH_failover.json");
  return 0;
}
