#pragma once

// Shared driver for the Figure 2 reproduction (public EC2 and private
// OpenNebula variants). The (clients, mode) grid runs through the
// parallel sweep runner — every point is its own simulated world with its
// own seed, so the numbers are identical to a serial run — and the
// results land in a machine-readable BENCH_fig2*.json next to the table.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/testbed.hpp"
#include "crypto_micro.hpp"
#include "sweep.hpp"

namespace hipcloud::bench {

/// The paper's client counts for Figure 2.
inline constexpr int kFig2Clients[] = {2, 3, 4, 6, 10, 20, 30, 50};

struct Fig2Row {
  int clients;
  double basic, hip, ssl;
  /// HIP with the accelerated cost model (AES-NI + SHA-NI + batched
  /// multi-buffer ICVs) — the crossover-shift arm, not a paper mode.
  double hip_accel;
  double lat_basic, lat_hip, lat_ssl;  // mean latency, ms
  double lat_hip_accel;
};

struct Fig2Report {
  std::vector<Fig2Row> rows;
  double wall_seconds;
  unsigned threads;
  CryptoMicro crypto;
  /// Simulator-substrate counters merged across every world in the sweep.
  sim::PerfCounters sim_perf;
  /// Per-mode latency distributions merged (Summary::merge) across every
  /// client count in the sweep: [basic, hip, ssl, hip_accel].
  sim::Summary latency_all[4];
};

inline void write_fig2_json(const Fig2Report& r, const char* path,
                            const char* title) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"title\": \"%s\",\n", title);
  std::fprintf(f, "  \"wall_clock_seconds\": %.3f,\n", r.wall_seconds);
  std::fprintf(f, "  \"sweep_threads\": %u,\n", r.threads);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    const auto& row = r.rows[i];
    std::fprintf(f,
                 "    {\"clients\": %d, "
                 "\"throughput_rps\": {\"basic\": %.4f, \"hip\": %.4f, "
                 "\"ssl\": %.4f, \"hip_accel\": %.4f}, "
                 "\"latency_ms\": {\"basic\": %.4f, \"hip\": %.4f, "
                 "\"ssl\": %.4f, \"hip_accel\": %.4f}}%s\n",
                 row.clients, row.basic, row.hip, row.ssl, row.hip_accel,
                 row.lat_basic, row.lat_hip, row.lat_ssl, row.lat_hip_accel,
                 i + 1 < r.rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"crypto_micro\": {\n");
  std::fprintf(f, "    \"aes_hardware\": %s,\n",
               r.crypto.aes_hw ? "true" : "false");
  std::fprintf(f, "    \"sha256_backend\": \"%s\",\n", r.crypto.sha_backend);
  std::fprintf(f, "    \"sha256_mb_lanes\": %zu,\n", r.crypto.sha_mb_lanes);
  std::fprintf(f, "    \"aes128_ctr_mbps\": {\"before\": %.1f, \"after\": %.1f},\n",
               r.crypto.aes_ctr_mbps_before, r.crypto.aes_ctr_mbps_after);
  std::fprintf(f,
               "    \"hmac_sha256_mbps\": {\"scalar\": %.1f, \"after\": %.1f, "
               "\"multibuffer\": %.1f},\n",
               r.crypto.hmac_mbps_scalar, r.crypto.hmac_mbps,
               r.crypto.hmac_mb_mbps);
  std::fprintf(f,
               "    \"esp_protect_ops_per_sec\": {\"before\": %.0f, "
               "\"after\": %.0f, \"batched\": %.0f}\n",
               r.crypto.esp_protect_ops_before, r.crypto.esp_protect_ops_after,
               r.crypto.esp_protect_batch_ops);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"sim_perf\": {\n");
  r.sim_perf.write_json_fields(f, "    ");
  std::fprintf(f, "\n  },\n");
  static const char* kModeNames[] = {"basic", "hip", "ssl", "hip_accel"};
  std::fprintf(f, "  \"latency_ms_all_clients\": {\n");
  for (int m = 0; m < 4; ++m) {
    const auto& s = r.latency_all[m];
    std::fprintf(f,
                 "    \"%s\": {\"count\": %zu, \"mean\": %.4f, "
                 "\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}%s\n",
                 kModeNames[m], s.count(), s.mean(), s.percentile(50),
                 s.percentile(95), s.percentile(99), m < 3 ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("Wrote %s\n", path);
}

inline Fig2Report run_fig2(const cloud::ProviderProfile& provider,
                           const char* title,
                           const char* json_path = nullptr) {
  std::printf("%s\n", title);
  std::printf(
      "Throughput (successful requests/second) of the RUBiS-like auction "
      "service,\n3 web VMs (t1.micro) + 1 DB VM (m1.large), HAProxy-style "
      "round-robin LB,\nclosed-loop clients, 30 s per point.\n\n");

  constexpr std::size_t kNumClients = std::size(kFig2Clients);
  // Four arms per client count: the paper's three modes plus hip_accel —
  // HIP re-run under CostModel::accelerated() to locate the crossover
  // shift the hardware-crypto datapath buys.
  constexpr std::size_t kJobs = kNumClients * 4;
  constexpr core::SecurityMode kModes[] = {
      core::SecurityMode::kBasic, core::SecurityMode::kHip,
      core::SecurityMode::kSsl, core::SecurityMode::kHip};

  struct PointResult {
    double throughput;
    double latency_ms;
    sim::PerfCounters perf;
    sim::Summary latency;
  };

  const unsigned threads = sweep_thread_count(kJobs);
  std::printf("Sweeping %zu (clients, mode) worlds on %u thread%s...\n\n",
              kJobs, threads, threads == 1 ? "" : "s");

  // hipcheck:allow(wall-clock): wall-time of the parallel sweep, reporting only
  const auto start = std::chrono::steady_clock::now();
  // Job i = (clients index, mode index); each job builds its own Testbed
  // world, so the numbers match the serial run point for point.
  const auto results = sweep<PointResult>(
      kJobs,
      [&](std::size_t i) {
        core::TestbedConfig cfg;
        cfg.provider = provider;
        cfg.deployment.mode = kModes[i % 4];
        if (i % 4 == 3) {
          cfg.deployment.hip.costs = crypto::CostModel::accelerated();
        }
        core::Testbed bed(cfg);
        const auto report =
            bed.run_closed_loop(kFig2Clients[i / 4], 30 * sim::kSecond);
        return PointResult{report.throughput_rps(), report.latency_ms.mean(),
                           bed.network().perf(), report.latency_ms};
      },
      threads);
  const double wall =
      // hipcheck:allow(wall-clock): wall-time of the parallel sweep, reporting only
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("%8s %10s %10s %10s %10s   %s\n", "clients", "basic", "hip",
              "ssl", "hip_accel", "(mean latency ms: basic/hip/ssl/accel)");
  std::vector<Fig2Row> rows;
  for (std::size_t c = 0; c < kNumClients; ++c) {
    const auto& b = results[4 * c];
    const auto& h = results[4 * c + 1];
    const auto& s = results[4 * c + 2];
    const auto& ha = results[4 * c + 3];
    Fig2Row row{kFig2Clients[c], b.throughput,  h.throughput,  s.throughput,
                ha.throughput,   b.latency_ms,  h.latency_ms,  s.latency_ms,
                ha.latency_ms};
    std::printf("%8d %10.1f %10.1f %10.1f %10.1f   (%.0f / %.0f / %.0f / %.0f)\n",
                row.clients, row.basic, row.hip, row.ssl, row.hip_accel,
                row.lat_basic, row.lat_hip, row.lat_ssl, row.lat_hip_accel);
    rows.push_back(row);
  }
  std::printf("\nSweep wall-clock: %.1f s (%u thread%s)\n", wall, threads,
              threads == 1 ? "" : "s");

  // Shape checks against the paper's qualitative findings.
  bool basic_highest = true, comparable = true;
  for (const auto& row : rows) {
    if (row.basic < row.hip || row.basic < row.ssl) basic_highest = false;
    if (row.clients <= 20 &&
        std::abs(row.hip - row.ssl) > 0.12 * std::max(row.hip, row.ssl)) {
      comparable = false;
    }
  }
  const auto& last = rows.back();
  const bool hip_slightly_below =
      last.hip < last.ssl && last.hip > last.ssl * 0.7;
  const bool basic_surges = last.basic > 1.1 * last.ssl;
  // Crossover shift: the accelerated datapath must dominate stock HIP at
  // every point, and at 50 clients the HIP-vs-SSL deficit must shrink or
  // flip — the data-plane crypto stops being what separates them.
  bool accel_dominates = true;
  for (const auto& row : rows) {
    if (row.hip_accel < row.hip) accel_dominates = false;
  }
  const bool accel_closes_gap =
      (last.ssl - last.hip_accel) < 0.5 * (last.ssl - last.hip);
  auto mark = [](bool ok) { return ok ? "PASS" : "FAIL"; };
  std::printf(
      "\nPaper (Fig. 2) shape checks:\n"
      "  [%s] basic has the highest throughput at every point\n"
      "  [%s] HIP comparable to SSL (within 12%%) up to 20 clients\n"
      "  [%s] at 50 clients HIP is slightly below SSL\n"
      "  [%s] basic surges ahead of both at 50 clients\n"
      "Accelerated-datapath checks (hip_accel arm):\n"
      "  [%s] hip_accel >= hip at every point\n"
      "  [%s] at 50 clients the SSL-HIP gap at least halves under "
      "acceleration\n\n",
      mark(basic_highest), mark(comparable), mark(hip_slightly_below),
      mark(basic_surges), mark(accel_dominates), mark(accel_closes_gap));

  Fig2Report report{std::move(rows), wall, threads, {}, {}, {}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    report.sim_perf.merge(results[i].perf);
    report.latency_all[i % 4].merge(results[i].latency);
  }
  if (json_path) {
    std::printf(
        "Simulator substrate across the sweep: %.2f pool misses/packet "
        "(%llu packets, %.0f%% pool hit rate)\n",
        report.sim_perf.pool_misses_per_packet(),
        static_cast<unsigned long long>(report.sim_perf.packets_delivered),
        100.0 * report.sim_perf.pool_hit_rate());
  }
  if (json_path) {
    std::printf("Crypto micro-bench (for the JSON perf trajectory)...\n");
    report.crypto = run_crypto_micro();
    std::printf(
        "  AES-128-CTR: %.0f MB/s before (S-box ref) -> %.0f MB/s after "
        "(%s)\n"
        "  HMAC-SHA256 (1500 B): %.0f MB/s scalar -> %.0f MB/s (%s) -> "
        "%.0f MB/s multi-buffer x%zu\n"
        "  ESP protect (1 KiB): %.0f ops/s before -> %.0f ops/s after -> "
        "%.0f ops/s batched\n\n",
        report.crypto.aes_ctr_mbps_before, report.crypto.aes_ctr_mbps_after,
        report.crypto.aes_hw ? "AES-NI" : "T-tables",
        report.crypto.hmac_mbps_scalar, report.crypto.hmac_mbps,
        report.crypto.sha_backend, report.crypto.hmac_mb_mbps,
        report.crypto.sha_mb_lanes, report.crypto.esp_protect_ops_before,
        report.crypto.esp_protect_ops_after,
        report.crypto.esp_protect_batch_ops);
    write_fig2_json(report, json_path, title);
  }
  return report;
}

}  // namespace hipcloud::bench
