#pragma once

// Shared driver for the Figure 2 reproduction (public EC2 and private
// OpenNebula variants).

#include <cstdio>
#include <vector>

#include "core/testbed.hpp"

namespace hipcloud::bench {

/// The paper's client counts for Figure 2.
inline constexpr int kFig2Clients[] = {2, 3, 4, 6, 10, 20, 30, 50};

struct Fig2Row {
  int clients;
  double basic, hip, ssl;
};

inline std::vector<Fig2Row> run_fig2(const cloud::ProviderProfile& provider,
                                     const char* title) {
  std::printf("%s\n", title);
  std::printf(
      "Throughput (successful requests/second) of the RUBiS-like auction "
      "service,\n3 web VMs (t1.micro) + 1 DB VM (m1.large), HAProxy-style "
      "round-robin LB,\nclosed-loop clients, 30 s per point.\n\n");
  std::printf("%8s %10s %10s %10s   %s\n", "clients", "basic", "hip", "ssl",
              "(mean latency ms: basic/hip/ssl)");
  std::vector<Fig2Row> rows;
  for (const int clients : kFig2Clients) {
    Fig2Row row{clients, 0, 0, 0};
    double lat[3];
    int i = 0;
    for (const auto mode :
         {core::SecurityMode::kBasic, core::SecurityMode::kHip,
          core::SecurityMode::kSsl}) {
      core::TestbedConfig cfg;
      cfg.provider = provider;
      cfg.deployment.mode = mode;
      core::Testbed bed(cfg);
      const auto report = bed.run_closed_loop(clients, 30 * sim::kSecond);
      (i == 0 ? row.basic : i == 1 ? row.hip : row.ssl) =
          report.throughput_rps();
      lat[i] = report.latency_ms.mean();
      ++i;
    }
    std::printf("%8d %10.1f %10.1f %10.1f   (%.0f / %.0f / %.0f)\n", clients,
                row.basic, row.hip, row.ssl, lat[0], lat[1], lat[2]);
    std::fflush(stdout);
    rows.push_back(row);
  }

  // Shape checks against the paper's qualitative findings.
  bool basic_highest = true, comparable = true;
  for (const auto& row : rows) {
    if (row.basic < row.hip || row.basic < row.ssl) basic_highest = false;
    if (row.clients <= 20 &&
        std::abs(row.hip - row.ssl) > 0.12 * std::max(row.hip, row.ssl)) {
      comparable = false;
    }
  }
  const auto& last = rows.back();
  const bool hip_slightly_below =
      last.hip < last.ssl && last.hip > last.ssl * 0.7;
  const bool basic_surges = last.basic > 1.1 * last.ssl;
  auto mark = [](bool ok) { return ok ? "PASS" : "FAIL"; };
  std::printf(
      "\nPaper (Fig. 2) shape checks:\n"
      "  [%s] basic has the highest throughput at every point\n"
      "  [%s] HIP comparable to SSL (within 12%%) up to 20 clients\n"
      "  [%s] at 50 clients HIP is slightly below SSL\n"
      "  [%s] basic surges ahead of both at 50 clients\n\n",
      mark(basic_highest), mark(comparable), mark(hip_slightly_below),
      mark(basic_surges));
  return rows;
}

}  // namespace hipcloud::bench
