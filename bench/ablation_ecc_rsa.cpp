// Ablation A2: RSA vs elliptic-curve Host Identities. The paper notes the
// latest HIP supports ECC "that can curb the processing costs without
// hardware acceleration" (citing Ponomarev et al.). Compares BEX latency
// and control-message sizes for both identity algorithms.

#include <cstdio>

#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "net/udp.hpp"

using namespace hipcloud;

namespace {

struct Result {
  double bex_ms;
  std::size_t hi_bytes;
  std::size_t signature_bytes;
};

Result run(hip::HiAlgorithm algo, std::size_t rsa_bits) {
  net::Network net(7);
  auto* a = net.add_node("a", 1.2e9);  // 1-ECU class hosts
  auto* b = net.add_node("b", 1.2e9);
  const auto link = net.connect(a, b, {});
  a->add_address(link.iface_a, net::Ipv4Addr(10, 0, 0, 1));
  b->add_address(link.iface_b, net::Ipv4Addr(10, 0, 0, 2));
  a->set_default_route(link.iface_a);
  b->set_default_route(link.iface_b);

  crypto::HmacDrbg da(1, "ecc-rsa-a"), db(2, "ecc-rsa-b");
  auto ha = std::make_unique<hip::HipDaemon>(
      a, hip::HostIdentity::generate(da, algo, rsa_bits));
  auto hb = std::make_unique<hip::HipDaemon>(
      b, hip::HostIdentity::generate(db, algo, rsa_bits));
  ha->add_peer(hb->hit(), net::IpAddr(net::Ipv4Addr(10, 0, 0, 2)));
  hb->add_peer(ha->hit(), net::IpAddr(net::Ipv4Addr(10, 0, 0, 1)));

  sim::Duration latency = 0;
  ha->on_established(
      [&](const net::Ipv6Addr&, sim::Duration l) { latency = l; });
  ha->initiate(hb->hit());
  net.loop().run();

  Result result;
  result.bex_ms = sim::to_millis(latency);
  result.hi_bytes = ha->identity().public_encoding().size();
  result.signature_bytes =
      ha->identity().sign(crypto::to_bytes("probe")).size();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation A2: RSA vs ECDSA host identities ===\n\n");
  std::printf("%-12s %14s %12s %16s\n", "identity", "BEX (ms)", "HI bytes",
              "signature bytes");
  const Result rsa1024 = run(hip::HiAlgorithm::kRsa, 1024);
  std::printf("%-12s %14.2f %12zu %16zu\n", "RSA-1024", rsa1024.bex_ms,
              rsa1024.hi_bytes, rsa1024.signature_bytes);
  const Result rsa2048 = run(hip::HiAlgorithm::kRsa, 2048);
  std::printf("%-12s %14.2f %12zu %16zu\n", "RSA-2048", rsa2048.bex_ms,
              rsa2048.hi_bytes, rsa2048.signature_bytes);
  const Result ecdsa = run(hip::HiAlgorithm::kEcdsa, 0);
  std::printf("%-12s %14.2f %12zu %16zu\n", "ECDSA-P256", ecdsa.bex_ms,
              ecdsa.hi_bytes, ecdsa.signature_bytes);

  auto mark = [](bool ok) { return ok ? "PASS" : "FAIL"; };
  std::printf("\nShape checks:\n"
              "  [%s] ECDSA control messages are smaller than RSA's\n"
              "  [%s] ECDSA BEX is faster than RSA-2048's\n",
              mark(ecdsa.hi_bytes < rsa1024.hi_bytes &&
                   ecdsa.signature_bytes < rsa1024.signature_bytes),
              mark(ecdsa.bex_ms < rsa2048.bex_ms));
  return 0;
}
