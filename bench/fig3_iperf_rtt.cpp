// Reproduces Figure 3 of the paper: iperf TCP bandwidth and ICMP RTT
// between two VMs inside Amazon EC2 for every connectivity mode — plain
// IPv4, HIP with LSIs/HITs over IPv4 locators, plain Teredo, and HIP over
// Teredo. The paper reports: plain IPv4 fastest; LSI translation slower
// than HITs; Teredo the worst latency. iperf TCP window 85.3 KB, ping
// averaged over 20 requests.

#include <cstdio>
#include <map>

#include "core/path_lab.hpp"

using namespace hipcloud;
using Path = core::PathLab::Path;

int main() {
  // Figure 3's x-axis order.
  const Path paths[] = {Path::kLsi,       Path::kTeredo,    Path::kIpv4,
                        Path::kHit,       Path::kHitTeredo, Path::kLsiTeredo};

  std::printf("=== Figure 3: iperf and RTT measurements in Amazon EC2 ===\n\n");
  std::printf("%-14s %16s %12s\n", "path", "iperf (Mbit/s)", "RTT (ms)");

  std::map<Path, double> mbps, rtt;
  for (const Path path : paths) {
    // A fresh lab per path keeps measurements independent (and the
    // simulation deterministic regardless of run order).
    core::PathLab lab;
    const auto dst = lab.establish(path);
    rtt[path] = lab.ping_rtt_ms(dst, 20);
    mbps[path] = lab.iperf_mbps(dst, 10 * sim::kSecond);
    std::printf("%-14s %16.1f %12.3f\n", core::PathLab::path_name(path),
                mbps[path], rtt[path]);
    std::fflush(stdout);
  }

  auto mark = [](bool ok) { return ok ? "PASS" : "FAIL"; };
  std::printf(
      "\nPaper (Fig. 3) shape checks:\n"
      "  [%s] plain IPv4 has the highest bandwidth\n"
      "  [%s] LSI RTT is higher than HIT RTT (extra translations)\n"
      "  [%s] Teredo paths have the worst RTTs\n"
      "  [%s] HIP-over-IPv4 bandwidth below plain IPv4 (crypto CPU-bound)\n"
      "  [%s] Teredo-based paths have the lowest bandwidth (relay detour)\n",
      mark(mbps[Path::kIpv4] > mbps[Path::kHit] &&
           mbps[Path::kIpv4] > mbps[Path::kLsi] &&
           mbps[Path::kIpv4] > mbps[Path::kTeredo]),
      mark(rtt[Path::kLsi] > rtt[Path::kHit] &&
           rtt[Path::kLsiTeredo] >= rtt[Path::kHitTeredo]),
      mark(rtt[Path::kTeredo] > rtt[Path::kIpv4] &&
           rtt[Path::kHitTeredo] > rtt[Path::kHit] &&
           rtt[Path::kLsiTeredo] > rtt[Path::kLsi]),
      mark(mbps[Path::kHit] < mbps[Path::kIpv4] &&
           mbps[Path::kLsi] <= mbps[Path::kHit]),
      mark(mbps[Path::kHitTeredo] < mbps[Path::kHit] &&
           mbps[Path::kLsiTeredo] < mbps[Path::kLsi]));
  return 0;
}
