file(REMOVE_RECURSE
  "CMakeFiles/hip_wire_test.dir/wire_test.cpp.o"
  "CMakeFiles/hip_wire_test.dir/wire_test.cpp.o.d"
  "hip_wire_test"
  "hip_wire_test.pdb"
  "hip_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
