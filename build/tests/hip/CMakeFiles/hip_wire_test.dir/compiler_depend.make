# Empty compiler generated dependencies file for hip_wire_test.
# This may be replaced when dependencies are built.
