# Empty dependencies file for hip_firewall_rvs_test.
# This may be replaced when dependencies are built.
