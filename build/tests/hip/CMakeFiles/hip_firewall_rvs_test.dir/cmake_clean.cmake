file(REMOVE_RECURSE
  "CMakeFiles/hip_firewall_rvs_test.dir/firewall_rvs_test.cpp.o"
  "CMakeFiles/hip_firewall_rvs_test.dir/firewall_rvs_test.cpp.o.d"
  "hip_firewall_rvs_test"
  "hip_firewall_rvs_test.pdb"
  "hip_firewall_rvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_firewall_rvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
