# Empty dependencies file for hip_identity_test.
# This may be replaced when dependencies are built.
