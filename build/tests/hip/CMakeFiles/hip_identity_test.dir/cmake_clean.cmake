file(REMOVE_RECURSE
  "CMakeFiles/hip_identity_test.dir/identity_test.cpp.o"
  "CMakeFiles/hip_identity_test.dir/identity_test.cpp.o.d"
  "hip_identity_test"
  "hip_identity_test.pdb"
  "hip_identity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
