# Empty dependencies file for hip_udp_encap_test.
# This may be replaced when dependencies are built.
