file(REMOVE_RECURSE
  "CMakeFiles/hip_udp_encap_test.dir/udp_encap_test.cpp.o"
  "CMakeFiles/hip_udp_encap_test.dir/udp_encap_test.cpp.o.d"
  "hip_udp_encap_test"
  "hip_udp_encap_test.pdb"
  "hip_udp_encap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_udp_encap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
