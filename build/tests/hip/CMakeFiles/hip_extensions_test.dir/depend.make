# Empty dependencies file for hip_extensions_test.
# This may be replaced when dependencies are built.
