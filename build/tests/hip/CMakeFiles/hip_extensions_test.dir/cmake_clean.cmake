file(REMOVE_RECURSE
  "CMakeFiles/hip_extensions_test.dir/extensions_test.cpp.o"
  "CMakeFiles/hip_extensions_test.dir/extensions_test.cpp.o.d"
  "hip_extensions_test"
  "hip_extensions_test.pdb"
  "hip_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
