file(REMOVE_RECURSE
  "CMakeFiles/hip_keymat_esp_test.dir/keymat_esp_test.cpp.o"
  "CMakeFiles/hip_keymat_esp_test.dir/keymat_esp_test.cpp.o.d"
  "hip_keymat_esp_test"
  "hip_keymat_esp_test.pdb"
  "hip_keymat_esp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_keymat_esp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
