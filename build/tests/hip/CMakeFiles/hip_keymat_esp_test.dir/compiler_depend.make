# Empty compiler generated dependencies file for hip_keymat_esp_test.
# This may be replaced when dependencies are built.
