file(REMOVE_RECURSE
  "CMakeFiles/hip_daemon_test.dir/daemon_test.cpp.o"
  "CMakeFiles/hip_daemon_test.dir/daemon_test.cpp.o.d"
  "hip_daemon_test"
  "hip_daemon_test.pdb"
  "hip_daemon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_daemon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
