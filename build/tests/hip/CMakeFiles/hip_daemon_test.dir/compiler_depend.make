# Empty compiler generated dependencies file for hip_daemon_test.
# This may be replaced when dependencies are built.
