file(REMOVE_RECURSE
  "CMakeFiles/hip_puzzle_test.dir/puzzle_test.cpp.o"
  "CMakeFiles/hip_puzzle_test.dir/puzzle_test.cpp.o.d"
  "hip_puzzle_test"
  "hip_puzzle_test.pdb"
  "hip_puzzle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_puzzle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
