# Empty compiler generated dependencies file for hip_puzzle_test.
# This may be replaced when dependencies are built.
