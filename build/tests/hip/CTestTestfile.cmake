# CMake generated Testfile for 
# Source directory: /root/repo/tests/hip
# Build directory: /root/repo/build/tests/hip
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hip/hip_identity_test[1]_include.cmake")
include("/root/repo/build/tests/hip/hip_puzzle_test[1]_include.cmake")
include("/root/repo/build/tests/hip/hip_wire_test[1]_include.cmake")
include("/root/repo/build/tests/hip/hip_keymat_esp_test[1]_include.cmake")
include("/root/repo/build/tests/hip/hip_daemon_test[1]_include.cmake")
include("/root/repo/build/tests/hip/hip_firewall_rvs_test[1]_include.cmake")
include("/root/repo/build/tests/hip/hip_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/hip/hip_udp_encap_test[1]_include.cmake")
