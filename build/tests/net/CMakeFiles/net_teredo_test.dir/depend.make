# Empty dependencies file for net_teredo_test.
# This may be replaced when dependencies are built.
