file(REMOVE_RECURSE
  "CMakeFiles/net_teredo_test.dir/teredo_test.cpp.o"
  "CMakeFiles/net_teredo_test.dir/teredo_test.cpp.o.d"
  "net_teredo_test"
  "net_teredo_test.pdb"
  "net_teredo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_teredo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
