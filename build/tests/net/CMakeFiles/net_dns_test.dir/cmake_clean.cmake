file(REMOVE_RECURSE
  "CMakeFiles/net_dns_test.dir/dns_test.cpp.o"
  "CMakeFiles/net_dns_test.dir/dns_test.cpp.o.d"
  "net_dns_test"
  "net_dns_test.pdb"
  "net_dns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_dns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
