# Empty dependencies file for net_dns_test.
# This may be replaced when dependencies are built.
