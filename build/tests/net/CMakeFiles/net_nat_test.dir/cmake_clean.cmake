file(REMOVE_RECURSE
  "CMakeFiles/net_nat_test.dir/nat_test.cpp.o"
  "CMakeFiles/net_nat_test.dir/nat_test.cpp.o.d"
  "net_nat_test"
  "net_nat_test.pdb"
  "net_nat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_nat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
