# Empty compiler generated dependencies file for net_nat_test.
# This may be replaced when dependencies are built.
