# CMake generated Testfile for 
# Source directory: /root/repo/tests/apps
# Build directory: /root/repo/build/tests/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/apps/apps_http_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_http_server_client_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_database_rubis_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_workload_test[1]_include.cmake")
