# Empty dependencies file for apps_http_test.
# This may be replaced when dependencies are built.
