file(REMOVE_RECURSE
  "CMakeFiles/apps_workload_test.dir/workload_test.cpp.o"
  "CMakeFiles/apps_workload_test.dir/workload_test.cpp.o.d"
  "apps_workload_test"
  "apps_workload_test.pdb"
  "apps_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
