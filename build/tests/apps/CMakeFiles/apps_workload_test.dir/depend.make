# Empty dependencies file for apps_workload_test.
# This may be replaced when dependencies are built.
