# Empty dependencies file for apps_http_server_client_test.
# This may be replaced when dependencies are built.
