file(REMOVE_RECURSE
  "CMakeFiles/apps_http_server_client_test.dir/http_server_client_test.cpp.o"
  "CMakeFiles/apps_http_server_client_test.dir/http_server_client_test.cpp.o.d"
  "apps_http_server_client_test"
  "apps_http_server_client_test.pdb"
  "apps_http_server_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_http_server_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
