# Empty dependencies file for apps_database_rubis_test.
# This may be replaced when dependencies are built.
