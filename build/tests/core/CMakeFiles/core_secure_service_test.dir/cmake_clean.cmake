file(REMOVE_RECURSE
  "CMakeFiles/core_secure_service_test.dir/secure_service_test.cpp.o"
  "CMakeFiles/core_secure_service_test.dir/secure_service_test.cpp.o.d"
  "core_secure_service_test"
  "core_secure_service_test.pdb"
  "core_secure_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_secure_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
