file(REMOVE_RECURSE
  "CMakeFiles/crypto_bytes_test.dir/bytes_test.cpp.o"
  "CMakeFiles/crypto_bytes_test.dir/bytes_test.cpp.o.d"
  "crypto_bytes_test"
  "crypto_bytes_test.pdb"
  "crypto_bytes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_bytes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
