# Empty compiler generated dependencies file for crypto_bytes_test.
# This may be replaced when dependencies are built.
