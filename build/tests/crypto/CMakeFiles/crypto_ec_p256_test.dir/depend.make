# Empty dependencies file for crypto_ec_p256_test.
# This may be replaced when dependencies are built.
