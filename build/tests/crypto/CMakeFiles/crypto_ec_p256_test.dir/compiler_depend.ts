# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for crypto_ec_p256_test.
