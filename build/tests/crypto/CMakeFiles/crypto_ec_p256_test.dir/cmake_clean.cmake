file(REMOVE_RECURSE
  "CMakeFiles/crypto_ec_p256_test.dir/ec_p256_test.cpp.o"
  "CMakeFiles/crypto_ec_p256_test.dir/ec_p256_test.cpp.o.d"
  "crypto_ec_p256_test"
  "crypto_ec_p256_test.pdb"
  "crypto_ec_p256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_ec_p256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
