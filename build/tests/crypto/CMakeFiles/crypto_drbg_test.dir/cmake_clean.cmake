file(REMOVE_RECURSE
  "CMakeFiles/crypto_drbg_test.dir/drbg_test.cpp.o"
  "CMakeFiles/crypto_drbg_test.dir/drbg_test.cpp.o.d"
  "crypto_drbg_test"
  "crypto_drbg_test.pdb"
  "crypto_drbg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_drbg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
