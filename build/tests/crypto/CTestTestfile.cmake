# CMake generated Testfile for 
# Source directory: /root/repo/tests/crypto
# Build directory: /root/repo/build/tests/crypto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto/crypto_sha256_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_hmac_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_aes_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_drbg_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_bigint_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_rsa_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_dh_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_ec_p256_test[1]_include.cmake")
include("/root/repo/build/tests/crypto/crypto_bytes_test[1]_include.cmake")
