# Empty dependencies file for dos_resilience_test.
# This may be replaced when dependencies are built.
