file(REMOVE_RECURSE
  "CMakeFiles/dos_resilience_test.dir/dos_resilience_test.cpp.o"
  "CMakeFiles/dos_resilience_test.dir/dos_resilience_test.cpp.o.d"
  "dos_resilience_test"
  "dos_resilience_test.pdb"
  "dos_resilience_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
