
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/integration_test.cpp" "tests/integration/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/integration/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hipcloud_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hipcloud_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hipcloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/hip/CMakeFiles/hipcloud_hip.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/hipcloud_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hipcloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipcloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hipcloud_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
