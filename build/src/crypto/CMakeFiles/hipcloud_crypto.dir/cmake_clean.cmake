file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_crypto.dir/aes.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/bigint.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/bytes.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/dh.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/drbg.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/ec_p256.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/ec_p256.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/hmac.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/rsa.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/hipcloud_crypto.dir/sha256.cpp.o"
  "CMakeFiles/hipcloud_crypto.dir/sha256.cpp.o.d"
  "libhipcloud_crypto.a"
  "libhipcloud_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
