file(REMOVE_RECURSE
  "libhipcloud_crypto.a"
)
