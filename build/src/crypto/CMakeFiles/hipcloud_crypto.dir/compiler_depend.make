# Empty compiler generated dependencies file for hipcloud_crypto.
# This may be replaced when dependencies are built.
