
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/bytes.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/bytes.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/bytes.cpp.o.d"
  "/root/repo/src/crypto/dh.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/dh.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/dh.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/ec_p256.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/ec_p256.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/ec_p256.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/hipcloud_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/hipcloud_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
