file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_tls.dir/cert.cpp.o"
  "CMakeFiles/hipcloud_tls.dir/cert.cpp.o.d"
  "CMakeFiles/hipcloud_tls.dir/tls.cpp.o"
  "CMakeFiles/hipcloud_tls.dir/tls.cpp.o.d"
  "libhipcloud_tls.a"
  "libhipcloud_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
