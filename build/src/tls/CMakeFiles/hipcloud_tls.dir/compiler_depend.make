# Empty compiler generated dependencies file for hipcloud_tls.
# This may be replaced when dependencies are built.
