file(REMOVE_RECURSE
  "libhipcloud_tls.a"
)
