file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_core.dir/path_lab.cpp.o"
  "CMakeFiles/hipcloud_core.dir/path_lab.cpp.o.d"
  "CMakeFiles/hipcloud_core.dir/secure_service.cpp.o"
  "CMakeFiles/hipcloud_core.dir/secure_service.cpp.o.d"
  "CMakeFiles/hipcloud_core.dir/testbed.cpp.o"
  "CMakeFiles/hipcloud_core.dir/testbed.cpp.o.d"
  "libhipcloud_core.a"
  "libhipcloud_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
