file(REMOVE_RECURSE
  "libhipcloud_core.a"
)
