# Empty dependencies file for hipcloud_core.
# This may be replaced when dependencies are built.
