# Empty dependencies file for hipcloud_cloud.
# This may be replaced when dependencies are built.
