file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_cloud.dir/cloud.cpp.o"
  "CMakeFiles/hipcloud_cloud.dir/cloud.cpp.o.d"
  "CMakeFiles/hipcloud_cloud.dir/vlan.cpp.o"
  "CMakeFiles/hipcloud_cloud.dir/vlan.cpp.o.d"
  "libhipcloud_cloud.a"
  "libhipcloud_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
