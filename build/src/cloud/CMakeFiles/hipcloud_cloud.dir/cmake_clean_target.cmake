file(REMOVE_RECURSE
  "libhipcloud_cloud.a"
)
