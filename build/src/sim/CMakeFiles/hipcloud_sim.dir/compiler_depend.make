# Empty compiler generated dependencies file for hipcloud_sim.
# This may be replaced when dependencies are built.
