file(REMOVE_RECURSE
  "libhipcloud_sim.a"
)
