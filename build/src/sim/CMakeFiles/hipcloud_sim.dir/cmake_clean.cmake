file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_sim.dir/event_loop.cpp.o"
  "CMakeFiles/hipcloud_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/hipcloud_sim.dir/log.cpp.o"
  "CMakeFiles/hipcloud_sim.dir/log.cpp.o.d"
  "CMakeFiles/hipcloud_sim.dir/random.cpp.o"
  "CMakeFiles/hipcloud_sim.dir/random.cpp.o.d"
  "CMakeFiles/hipcloud_sim.dir/stats.cpp.o"
  "CMakeFiles/hipcloud_sim.dir/stats.cpp.o.d"
  "CMakeFiles/hipcloud_sim.dir/time.cpp.o"
  "CMakeFiles/hipcloud_sim.dir/time.cpp.o.d"
  "libhipcloud_sim.a"
  "libhipcloud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
