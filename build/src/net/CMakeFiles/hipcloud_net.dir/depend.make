# Empty dependencies file for hipcloud_net.
# This may be replaced when dependencies are built.
