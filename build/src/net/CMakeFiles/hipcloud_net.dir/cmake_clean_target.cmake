file(REMOVE_RECURSE
  "libhipcloud_net.a"
)
