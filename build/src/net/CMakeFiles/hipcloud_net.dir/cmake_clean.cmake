file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_net.dir/address.cpp.o"
  "CMakeFiles/hipcloud_net.dir/address.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/dns.cpp.o"
  "CMakeFiles/hipcloud_net.dir/dns.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/icmp.cpp.o"
  "CMakeFiles/hipcloud_net.dir/icmp.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/link.cpp.o"
  "CMakeFiles/hipcloud_net.dir/link.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/nat.cpp.o"
  "CMakeFiles/hipcloud_net.dir/nat.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/node.cpp.o"
  "CMakeFiles/hipcloud_net.dir/node.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/packet.cpp.o"
  "CMakeFiles/hipcloud_net.dir/packet.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/tcp.cpp.o"
  "CMakeFiles/hipcloud_net.dir/tcp.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/teredo.cpp.o"
  "CMakeFiles/hipcloud_net.dir/teredo.cpp.o.d"
  "CMakeFiles/hipcloud_net.dir/udp.cpp.o"
  "CMakeFiles/hipcloud_net.dir/udp.cpp.o.d"
  "libhipcloud_net.a"
  "libhipcloud_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
