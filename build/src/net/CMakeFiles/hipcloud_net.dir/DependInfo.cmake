
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/net/CMakeFiles/hipcloud_net.dir/address.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/address.cpp.o.d"
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/hipcloud_net.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/dns.cpp.o.d"
  "/root/repo/src/net/icmp.cpp" "src/net/CMakeFiles/hipcloud_net.dir/icmp.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/icmp.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/hipcloud_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/link.cpp.o.d"
  "/root/repo/src/net/nat.cpp" "src/net/CMakeFiles/hipcloud_net.dir/nat.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/nat.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/hipcloud_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/hipcloud_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/hipcloud_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/teredo.cpp" "src/net/CMakeFiles/hipcloud_net.dir/teredo.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/teredo.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/hipcloud_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/hipcloud_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hipcloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hipcloud_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
