file(REMOVE_RECURSE
  "libhipcloud_hip.a"
)
