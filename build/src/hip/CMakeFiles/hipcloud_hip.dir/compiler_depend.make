# Empty compiler generated dependencies file for hipcloud_hip.
# This may be replaced when dependencies are built.
