
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hip/daemon.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/daemon.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/daemon.cpp.o.d"
  "/root/repo/src/hip/esp.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/esp.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/esp.cpp.o.d"
  "/root/repo/src/hip/firewall.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/firewall.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/firewall.cpp.o.d"
  "/root/repo/src/hip/identity.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/identity.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/identity.cpp.o.d"
  "/root/repo/src/hip/keymat.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/keymat.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/keymat.cpp.o.d"
  "/root/repo/src/hip/puzzle.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/puzzle.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/puzzle.cpp.o.d"
  "/root/repo/src/hip/udp_encap.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/udp_encap.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/udp_encap.cpp.o.d"
  "/root/repo/src/hip/wire.cpp" "src/hip/CMakeFiles/hipcloud_hip.dir/wire.cpp.o" "gcc" "src/hip/CMakeFiles/hipcloud_hip.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hipcloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hipcloud_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipcloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
