file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_hip.dir/daemon.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/daemon.cpp.o.d"
  "CMakeFiles/hipcloud_hip.dir/esp.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/esp.cpp.o.d"
  "CMakeFiles/hipcloud_hip.dir/firewall.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/firewall.cpp.o.d"
  "CMakeFiles/hipcloud_hip.dir/identity.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/identity.cpp.o.d"
  "CMakeFiles/hipcloud_hip.dir/keymat.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/keymat.cpp.o.d"
  "CMakeFiles/hipcloud_hip.dir/puzzle.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/puzzle.cpp.o.d"
  "CMakeFiles/hipcloud_hip.dir/udp_encap.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/udp_encap.cpp.o.d"
  "CMakeFiles/hipcloud_hip.dir/wire.cpp.o"
  "CMakeFiles/hipcloud_hip.dir/wire.cpp.o.d"
  "libhipcloud_hip.a"
  "libhipcloud_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
