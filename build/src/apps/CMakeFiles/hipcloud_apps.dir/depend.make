# Empty dependencies file for hipcloud_apps.
# This may be replaced when dependencies are built.
