
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/database.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/database.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/database.cpp.o.d"
  "/root/repo/src/apps/http.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/http.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/http.cpp.o.d"
  "/root/repo/src/apps/http_client.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/http_client.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/http_client.cpp.o.d"
  "/root/repo/src/apps/http_server.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/http_server.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/http_server.cpp.o.d"
  "/root/repo/src/apps/reverse_proxy.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/reverse_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/reverse_proxy.cpp.o.d"
  "/root/repo/src/apps/rubis.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/rubis.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/rubis.cpp.o.d"
  "/root/repo/src/apps/stream.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/stream.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/stream.cpp.o.d"
  "/root/repo/src/apps/workload.cpp" "src/apps/CMakeFiles/hipcloud_apps.dir/workload.cpp.o" "gcc" "src/apps/CMakeFiles/hipcloud_apps.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hipcloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/hipcloud_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipcloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hipcloud_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
