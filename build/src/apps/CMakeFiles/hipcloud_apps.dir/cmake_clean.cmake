file(REMOVE_RECURSE
  "CMakeFiles/hipcloud_apps.dir/database.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/database.cpp.o.d"
  "CMakeFiles/hipcloud_apps.dir/http.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/http.cpp.o.d"
  "CMakeFiles/hipcloud_apps.dir/http_client.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/http_client.cpp.o.d"
  "CMakeFiles/hipcloud_apps.dir/http_server.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/http_server.cpp.o.d"
  "CMakeFiles/hipcloud_apps.dir/reverse_proxy.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/reverse_proxy.cpp.o.d"
  "CMakeFiles/hipcloud_apps.dir/rubis.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/rubis.cpp.o.d"
  "CMakeFiles/hipcloud_apps.dir/stream.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/stream.cpp.o.d"
  "CMakeFiles/hipcloud_apps.dir/workload.cpp.o"
  "CMakeFiles/hipcloud_apps.dir/workload.cpp.o.d"
  "libhipcloud_apps.a"
  "libhipcloud_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipcloud_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
