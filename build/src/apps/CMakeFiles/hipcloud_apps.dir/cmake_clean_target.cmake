file(REMOVE_RECURSE
  "libhipcloud_apps.a"
)
