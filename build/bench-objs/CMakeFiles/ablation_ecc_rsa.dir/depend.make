# Empty dependencies file for ablation_ecc_rsa.
# This may be replaced when dependencies are built.
