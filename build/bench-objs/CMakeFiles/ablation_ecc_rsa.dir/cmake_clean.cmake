file(REMOVE_RECURSE
  "../bench/ablation_ecc_rsa"
  "../bench/ablation_ecc_rsa.pdb"
  "CMakeFiles/ablation_ecc_rsa.dir/ablation_ecc_rsa.cpp.o"
  "CMakeFiles/ablation_ecc_rsa.dir/ablation_ecc_rsa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ecc_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
