file(REMOVE_RECURSE
  "../bench/ablation_migration"
  "../bench/ablation_migration.pdb"
  "CMakeFiles/ablation_migration.dir/ablation_migration.cpp.o"
  "CMakeFiles/ablation_migration.dir/ablation_migration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
