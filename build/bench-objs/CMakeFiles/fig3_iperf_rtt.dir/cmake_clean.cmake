file(REMOVE_RECURSE
  "../bench/fig3_iperf_rtt"
  "../bench/fig3_iperf_rtt.pdb"
  "CMakeFiles/fig3_iperf_rtt.dir/fig3_iperf_rtt.cpp.o"
  "CMakeFiles/fig3_iperf_rtt.dir/fig3_iperf_rtt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_iperf_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
