# Empty compiler generated dependencies file for fig3_iperf_rtt.
# This may be replaced when dependencies are built.
