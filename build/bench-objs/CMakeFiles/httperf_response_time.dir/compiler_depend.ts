# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for httperf_response_time.
