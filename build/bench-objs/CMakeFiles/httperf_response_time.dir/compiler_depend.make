# Empty compiler generated dependencies file for httperf_response_time.
# This may be replaced when dependencies are built.
