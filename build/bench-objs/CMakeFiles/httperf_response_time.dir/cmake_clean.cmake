file(REMOVE_RECURSE
  "../bench/httperf_response_time"
  "../bench/httperf_response_time.pdb"
  "CMakeFiles/httperf_response_time.dir/httperf_response_time.cpp.o"
  "CMakeFiles/httperf_response_time.dir/httperf_response_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httperf_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
