file(REMOVE_RECURSE
  "../bench/ablation_puzzle"
  "../bench/ablation_puzzle.pdb"
  "CMakeFiles/ablation_puzzle.dir/ablation_puzzle.cpp.o"
  "CMakeFiles/ablation_puzzle.dir/ablation_puzzle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_puzzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
