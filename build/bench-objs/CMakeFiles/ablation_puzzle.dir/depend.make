# Empty dependencies file for ablation_puzzle.
# This may be replaced when dependencies are built.
