# Empty dependencies file for ablation_esp_cipher.
# This may be replaced when dependencies are built.
