file(REMOVE_RECURSE
  "../bench/ablation_esp_cipher"
  "../bench/ablation_esp_cipher.pdb"
  "CMakeFiles/ablation_esp_cipher.dir/ablation_esp_cipher.cpp.o"
  "CMakeFiles/ablation_esp_cipher.dir/ablation_esp_cipher.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_esp_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
