file(REMOVE_RECURSE
  "../bench/ext_client_side_hip"
  "../bench/ext_client_side_hip.pdb"
  "CMakeFiles/ext_client_side_hip.dir/ext_client_side_hip.cpp.o"
  "CMakeFiles/ext_client_side_hip.dir/ext_client_side_hip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_client_side_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
