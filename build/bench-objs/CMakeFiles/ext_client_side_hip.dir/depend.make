# Empty dependencies file for ext_client_side_hip.
# This may be replaced when dependencies are built.
