file(REMOVE_RECURSE
  "../bench/fig2_rubis_throughput"
  "../bench/fig2_rubis_throughput.pdb"
  "CMakeFiles/fig2_rubis_throughput.dir/fig2_rubis_throughput.cpp.o"
  "CMakeFiles/fig2_rubis_throughput.dir/fig2_rubis_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rubis_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
