# Empty dependencies file for fig2_rubis_throughput.
# This may be replaced when dependencies are built.
