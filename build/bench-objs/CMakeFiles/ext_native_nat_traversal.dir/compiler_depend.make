# Empty compiler generated dependencies file for ext_native_nat_traversal.
# This may be replaced when dependencies are built.
