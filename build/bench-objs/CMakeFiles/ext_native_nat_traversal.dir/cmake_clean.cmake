file(REMOVE_RECURSE
  "../bench/ext_native_nat_traversal"
  "../bench/ext_native_nat_traversal.pdb"
  "CMakeFiles/ext_native_nat_traversal.dir/ext_native_nat_traversal.cpp.o"
  "CMakeFiles/ext_native_nat_traversal.dir/ext_native_nat_traversal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_native_nat_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
