file(REMOVE_RECURSE
  "../bench/micro_bex"
  "../bench/micro_bex.pdb"
  "CMakeFiles/micro_bex.dir/micro_bex.cpp.o"
  "CMakeFiles/micro_bex.dir/micro_bex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
