# Empty compiler generated dependencies file for micro_bex.
# This may be replaced when dependencies are built.
