# Empty dependencies file for fig2_private_cloud.
# This may be replaced when dependencies are built.
