file(REMOVE_RECURSE
  "../bench/fig2_private_cloud"
  "../bench/fig2_private_cloud.pdb"
  "CMakeFiles/fig2_private_cloud.dir/fig2_private_cloud.cpp.o"
  "CMakeFiles/fig2_private_cloud.dir/fig2_private_cloud.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_private_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
