# Empty dependencies file for ablation_hybrid_wan.
# This may be replaced when dependencies are built.
