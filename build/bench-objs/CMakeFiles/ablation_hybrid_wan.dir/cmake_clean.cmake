file(REMOVE_RECURSE
  "../bench/ablation_hybrid_wan"
  "../bench/ablation_hybrid_wan.pdb"
  "CMakeFiles/ablation_hybrid_wan.dir/ablation_hybrid_wan.cpp.o"
  "CMakeFiles/ablation_hybrid_wan.dir/ablation_hybrid_wan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
