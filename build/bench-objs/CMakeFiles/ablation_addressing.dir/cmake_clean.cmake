file(REMOVE_RECURSE
  "../bench/ablation_addressing"
  "../bench/ablation_addressing.pdb"
  "CMakeFiles/ablation_addressing.dir/ablation_addressing.cpp.o"
  "CMakeFiles/ablation_addressing.dir/ablation_addressing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
