# Empty dependencies file for hybrid_cloud.
# This may be replaced when dependencies are built.
