file(REMOVE_RECURSE
  "CMakeFiles/hybrid_cloud.dir/hybrid_cloud.cpp.o"
  "CMakeFiles/hybrid_cloud.dir/hybrid_cloud.cpp.o.d"
  "hybrid_cloud"
  "hybrid_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
