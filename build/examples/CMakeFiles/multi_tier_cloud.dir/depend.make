# Empty dependencies file for multi_tier_cloud.
# This may be replaced when dependencies are built.
