file(REMOVE_RECURSE
  "CMakeFiles/multi_tier_cloud.dir/multi_tier_cloud.cpp.o"
  "CMakeFiles/multi_tier_cloud.dir/multi_tier_cloud.cpp.o.d"
  "multi_tier_cloud"
  "multi_tier_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tier_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
