# Empty dependencies file for power_user_teredo.
# This may be replaced when dependencies are built.
