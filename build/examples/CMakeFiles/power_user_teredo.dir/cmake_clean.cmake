file(REMOVE_RECURSE
  "CMakeFiles/power_user_teredo.dir/power_user_teredo.cpp.o"
  "CMakeFiles/power_user_teredo.dir/power_user_teredo.cpp.o.d"
  "power_user_teredo"
  "power_user_teredo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_user_teredo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
