#pragma once

#include <cstdint>

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

/// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 variant, no reseed counter
/// enforcement). Used for all key material in the simulator so scenarios
/// are deterministic: every host seeds its DRBG from the scenario seed
/// plus its own name.
class HmacDrbg {
 public:
  explicit HmacDrbg(BytesView seed);
  /// Convenience: seed from a 64-bit value plus a personalization string.
  HmacDrbg(std::uint64_t seed, std::string_view personalization);

  /// Generate `n` pseudo-random bytes.
  Bytes generate(std::size_t n);

  /// Mix additional entropy/state into the generator.
  void reseed(BytesView input);

 private:
  void update(BytesView provided);

  Bytes key_;  // K
  Bytes v_;    // V
};

}  // namespace hipcloud::crypto
