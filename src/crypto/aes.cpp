#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/aes_ni.hpp"

namespace hipcloud::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

/// All derived lookup tables, built at compile time so there is no runtime
/// initialisation to race on (bench worlds run on threads).
///
/// Te[n][x]: SubBytes + MixColumns contribution of byte x at row n, words in
/// big-endian row order (row 0 in the MSB). Td[n][x]: the same for
/// InvSubBytes + InvMixColumns. One AES round collapses to 16 lookups + XORs.
struct AesTables {
  std::uint8_t inv_sbox[256] = {};
  std::uint32_t te[4][256] = {};
  std::uint32_t td[4][256] = {};
};

constexpr AesTables make_tables() {
  AesTables t;
  for (int i = 0; i < 256; ++i) {
    t.inv_sbox[kSbox[i]] = static_cast<std::uint8_t>(i);
  }
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    // MixColumns column (2s, s, s, 3s).
    const std::uint32_t e = (std::uint32_t(gmul(s, 2)) << 24) |
                            (std::uint32_t(s) << 16) | (std::uint32_t(s) << 8) |
                            std::uint32_t(gmul(s, 3));
    t.te[0][i] = e;
    t.te[1][i] = (e >> 8) | (e << 24);
    t.te[2][i] = (e >> 16) | (e << 16);
    t.te[3][i] = (e >> 24) | (e << 8);
    const std::uint8_t is = t.inv_sbox[i];
    // InvMixColumns column (14is, 9is, 13is, 11is).
    const std::uint32_t d = (std::uint32_t(gmul(is, 14)) << 24) |
                            (std::uint32_t(gmul(is, 9)) << 16) |
                            (std::uint32_t(gmul(is, 13)) << 8) |
                            std::uint32_t(gmul(is, 11));
    t.td[0][i] = d;
    t.td[1][i] = (d >> 8) | (d << 24);
    t.td[2][i] = (d >> 16) | (d << 16);
    t.td[3][i] = (d >> 24) | (d << 8);
  }
  return t;
}

constexpr AesTables kT = make_tables();

inline std::uint32_t sub_word(std::uint32_t w) {
  return (std::uint32_t(kSbox[(w >> 24) & 0xff]) << 24) |
         (std::uint32_t(kSbox[(w >> 16) & 0xff]) << 16) |
         (std::uint32_t(kSbox[(w >> 8) & 0xff]) << 8) |
         std::uint32_t(kSbox[w & 0xff]);
}

inline std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

/// InvMixColumns on a schedule word, via Td∘SubBytes (Td already contains
/// InvSubBytes, so feeding it SubBytes(b) isolates the column transform).
inline std::uint32_t inv_mix_word(std::uint32_t w) {
  return kT.td[0][kSbox[(w >> 24) & 0xff]] ^ kT.td[1][kSbox[(w >> 16) & 0xff]] ^
         kT.td[2][kSbox[(w >> 8) & 0xff]] ^ kT.td[3][kSbox[w & 0xff]];
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t w) {
  p[0] = static_cast<std::uint8_t>(w >> 24);
  p[1] = static_cast<std::uint8_t>(w >> 16);
  p[2] = static_cast<std::uint8_t>(w >> 8);
  p[3] = static_cast<std::uint8_t>(w);
}

}  // namespace

bool Aes::hardware_accelerated() { return aesni::supported(); }

Aes::Aes(BytesView key) {
  int nk;
  if (key.size() == 16) {
    nk = 4;
    rounds_ = 10;
  } else if (key.size() == 32) {
    nk = 8;
    rounds_ = 14;
  } else {
    throw std::invalid_argument("Aes: key must be 16 or 32 bytes");
  }
  const int total = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) round_keys_[i] = load_be32(key.data() + 4 * i);
  std::uint32_t rcon = 0x01000000;
  for (int i = nk; i < total; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = std::uint32_t(xtime(static_cast<std::uint8_t>(rcon >> 24))) << 24;
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }

  // Equivalent-inverse schedule for the T-table decrypt path: reversed
  // round order, InvMixColumns applied to the middle keys (FIPS 197 §5.3.5).
  for (int c = 0; c < 4; ++c) {
    inv_round_keys_[c] = round_keys_[4 * rounds_ + c];
    inv_round_keys_[4 * rounds_ + c] = round_keys_[c];
  }
  for (int r = 1; r < rounds_; ++r) {
    for (int c = 0; c < 4; ++c) {
      inv_round_keys_[4 * r + c] = inv_mix_word(round_keys_[4 * (rounds_ - r) + c]);
    }
  }

  for (int i = 0; i < total; ++i) {
    store_be32(rk_bytes_.data() + 4 * i, round_keys_[i]);
  }
  aesni_ = aesni::supported();
  if (aesni_) {
    aesni::make_decrypt_schedule(rk_bytes_.data(), rounds_,
                                 inv_rk_bytes_.data());
  }
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  if (aesni_) {
    aesni::encrypt_block(rk_bytes_.data(), rounds_, in, out);
    return;
  }
  // Load state as big-endian column words and XOR the first round key.
  std::uint32_t c0 = load_be32(in) ^ round_keys_[0];
  std::uint32_t c1 = load_be32(in + 4) ^ round_keys_[1];
  std::uint32_t c2 = load_be32(in + 8) ^ round_keys_[2];
  std::uint32_t c3 = load_be32(in + 12) ^ round_keys_[3];
  for (int r = 1; r < rounds_; ++r) {
    const std::uint32_t* rk = &round_keys_[4 * r];
    const std::uint32_t t0 = kT.te[0][c0 >> 24] ^ kT.te[1][(c1 >> 16) & 0xff] ^
                             kT.te[2][(c2 >> 8) & 0xff] ^ kT.te[3][c3 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kT.te[0][c1 >> 24] ^ kT.te[1][(c2 >> 16) & 0xff] ^
                             kT.te[2][(c3 >> 8) & 0xff] ^ kT.te[3][c0 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kT.te[0][c2 >> 24] ^ kT.te[1][(c3 >> 16) & 0xff] ^
                             kT.te[2][(c0 >> 8) & 0xff] ^ kT.te[3][c1 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kT.te[0][c3 >> 24] ^ kT.te[1][(c0 >> 16) & 0xff] ^
                             kT.te[2][(c1 >> 8) & 0xff] ^ kT.te[3][c2 & 0xff] ^ rk[3];
    c0 = t0; c1 = t1; c2 = t2; c3 = t3;
  }
  // Final round: SubBytes + ShiftRows (no MixColumns) + AddRoundKey.
  const std::uint32_t* rk = &round_keys_[4 * rounds_];
  store_be32(out, ((std::uint32_t(kSbox[c0 >> 24]) << 24) |
                   (std::uint32_t(kSbox[(c1 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(kSbox[(c2 >> 8) & 0xff]) << 8) |
                   kSbox[c3 & 0xff]) ^ rk[0]);
  store_be32(out + 4, ((std::uint32_t(kSbox[c1 >> 24]) << 24) |
                       (std::uint32_t(kSbox[(c2 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(kSbox[(c3 >> 8) & 0xff]) << 8) |
                       kSbox[c0 & 0xff]) ^ rk[1]);
  store_be32(out + 8, ((std::uint32_t(kSbox[c2 >> 24]) << 24) |
                       (std::uint32_t(kSbox[(c3 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(kSbox[(c0 >> 8) & 0xff]) << 8) |
                       kSbox[c1 & 0xff]) ^ rk[2]);
  store_be32(out + 12, ((std::uint32_t(kSbox[c3 >> 24]) << 24) |
                        (std::uint32_t(kSbox[(c0 >> 16) & 0xff]) << 16) |
                        (std::uint32_t(kSbox[(c1 >> 8) & 0xff]) << 8) |
                        kSbox[c2 & 0xff]) ^ rk[3]);
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  if (aesni_) {
    aesni::decrypt_block(inv_rk_bytes_.data(), rounds_, in, out);
    return;
  }
  // Equivalent inverse cipher on the InvMixColumns'd schedule; mirrors the
  // encrypt path with Td tables and InvShiftRows column indexing.
  std::uint32_t c0 = load_be32(in) ^ inv_round_keys_[0];
  std::uint32_t c1 = load_be32(in + 4) ^ inv_round_keys_[1];
  std::uint32_t c2 = load_be32(in + 8) ^ inv_round_keys_[2];
  std::uint32_t c3 = load_be32(in + 12) ^ inv_round_keys_[3];
  for (int r = 1; r < rounds_; ++r) {
    const std::uint32_t* rk = &inv_round_keys_[4 * r];
    const std::uint32_t t0 = kT.td[0][c0 >> 24] ^ kT.td[1][(c3 >> 16) & 0xff] ^
                             kT.td[2][(c2 >> 8) & 0xff] ^ kT.td[3][c1 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kT.td[0][c1 >> 24] ^ kT.td[1][(c0 >> 16) & 0xff] ^
                             kT.td[2][(c3 >> 8) & 0xff] ^ kT.td[3][c2 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kT.td[0][c2 >> 24] ^ kT.td[1][(c1 >> 16) & 0xff] ^
                             kT.td[2][(c0 >> 8) & 0xff] ^ kT.td[3][c3 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kT.td[0][c3 >> 24] ^ kT.td[1][(c2 >> 16) & 0xff] ^
                             kT.td[2][(c1 >> 8) & 0xff] ^ kT.td[3][c0 & 0xff] ^ rk[3];
    c0 = t0; c1 = t1; c2 = t2; c3 = t3;
  }
  const std::uint32_t* rk = &inv_round_keys_[4 * rounds_];
  const std::uint8_t* is = kT.inv_sbox;
  store_be32(out, ((std::uint32_t(is[c0 >> 24]) << 24) |
                   (std::uint32_t(is[(c3 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(is[(c2 >> 8) & 0xff]) << 8) |
                   is[c1 & 0xff]) ^ rk[0]);
  store_be32(out + 4, ((std::uint32_t(is[c1 >> 24]) << 24) |
                       (std::uint32_t(is[(c0 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(is[(c3 >> 8) & 0xff]) << 8) |
                       is[c2 & 0xff]) ^ rk[1]);
  store_be32(out + 8, ((std::uint32_t(is[c2 >> 24]) << 24) |
                       (std::uint32_t(is[(c1 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(is[(c0 >> 8) & 0xff]) << 8) |
                       is[c3 & 0xff]) ^ rk[2]);
  store_be32(out + 12, ((std::uint32_t(is[c3 >> 24]) << 24) |
                        (std::uint32_t(is[(c2 >> 16) & 0xff]) << 16) |
                        (std::uint32_t(is[(c1 >> 8) & 0xff]) << 8) |
                        is[c0 & 0xff]) ^ rk[3]);
}

void Aes::ctr_xor(const std::uint8_t nonce12[12], std::uint32_t initial_counter,
                  std::uint8_t* data, std::size_t len) const {
  if (aesni_) {
    aesni::ctr_xor(rk_bytes_.data(), rounds_, nonce12, initial_counter, data,
                   len);
    return;
  }
  std::uint8_t counter_block[16];
  std::memcpy(counter_block, nonce12, 12);
  std::uint32_t ctr = initial_counter;
  std::uint8_t keystream[16];
  for (std::size_t off = 0; off < len; off += 16) {
    store_be32(counter_block + 12, ctr++);
    encrypt_block(counter_block, keystream);
    const std::size_t n = std::min<std::size_t>(16, len - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= keystream[i];
  }
}

void aes_ctr_xor(const Aes& cipher, BytesView nonce12,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data) {
  if (nonce12.size() != 12) {
    throw std::invalid_argument("aes_ctr: nonce must be 12 bytes");
  }
  cipher.ctr_xor(nonce12.data(), initial_counter, data.data(), data.size());
}

Bytes aes_ctr(const Aes& cipher, BytesView nonce12, std::uint32_t initial_counter,
              BytesView data) {
  if (nonce12.size() != 12) {
    throw std::invalid_argument("aes_ctr: nonce must be 12 bytes");
  }
  Bytes out(data.begin(), data.end());
  cipher.ctr_xor(nonce12.data(), initial_counter, out.data(), out.size());
  return out;
}

std::size_t aes_cbc_encrypt_inplace(const Aes& cipher, const std::uint8_t iv[16],
                                    std::uint8_t* buf, std::size_t len) {
  const std::size_t padded = aes_cbc_padded_len(len);
  const std::uint8_t pad = static_cast<std::uint8_t>(padded - len);
  for (std::size_t i = len; i < padded; ++i) buf[i] = pad;
  const std::uint8_t* prev = iv;
  for (std::size_t off = 0; off < padded; off += 16) {
    for (int i = 0; i < 16; ++i) buf[off + i] ^= prev[i];
    cipher.encrypt_block(buf + off, buf + off);
    prev = buf + off;
  }
  return padded;
}

std::size_t aes_cbc_decrypt_inplace(const Aes& cipher, const std::uint8_t iv[16],
                                    std::uint8_t* buf, std::size_t len) {
  if (len == 0 || len % 16 != 0) {
    throw std::runtime_error("aes_cbc_decrypt: bad ciphertext length");
  }
  std::uint8_t prev[16], cur[16];
  std::memcpy(prev, iv, 16);
  for (std::size_t off = 0; off < len; off += 16) {
    std::memcpy(cur, buf + off, 16);
    cipher.decrypt_block(buf + off, buf + off);
    for (int i = 0; i < 16; ++i) buf[off + i] ^= prev[i];
    std::memcpy(prev, cur, 16);
  }
  const std::uint8_t pad = buf[len - 1];
  if (pad == 0 || pad > 16 || pad > len) {
    throw std::runtime_error("aes_cbc_decrypt: bad padding");
  }
  for (std::size_t i = len - pad; i < len; ++i) {
    if (buf[i] != pad) throw std::runtime_error("aes_cbc_decrypt: bad padding");
  }
  return len - pad;
}

Bytes aes_cbc_encrypt(const Aes& cipher, BytesView iv16, BytesView plaintext) {
  if (iv16.size() != 16) {
    throw std::invalid_argument("aes_cbc_encrypt: IV must be 16 bytes");
  }
  Bytes out(aes_cbc_padded_len(plaintext.size()));
  if (!plaintext.empty()) {
    std::memcpy(out.data(), plaintext.data(), plaintext.size());
  }
  aes_cbc_encrypt_inplace(cipher, iv16.data(), out.data(), plaintext.size());
  return out;
}

Bytes aes_cbc_decrypt(const Aes& cipher, BytesView iv16, BytesView ciphertext) {
  if (iv16.size() != 16) {
    throw std::invalid_argument("aes_cbc_decrypt: IV must be 16 bytes");
  }
  Bytes out(ciphertext.begin(), ciphertext.end());
  out.resize(
      aes_cbc_decrypt_inplace(cipher, iv16.data(), out.data(), out.size()));
  return out;
}

}  // namespace hipcloud::crypto
