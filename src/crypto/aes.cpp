#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace hipcloud::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

std::uint8_t inv_sbox_table[256];
bool inv_sbox_ready = false;

const std::uint8_t* inv_sbox() {
  if (!inv_sbox_ready) {
    for (int i = 0; i < 256; ++i) inv_sbox_table[kSbox[i]] = static_cast<std::uint8_t>(i);
    inv_sbox_ready = true;
  }
  return inv_sbox_table;
}

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// Encryption T-tables (te0..te3): each combines SubBytes + MixColumns for
// one byte position, turning a round into 16 table lookups + XORs. Built
// lazily from the S-box so the tables are self-consistent by construction.
std::uint32_t te_table[4][256];
bool te_ready = false;

void build_te() {
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    // Column (2s, s, s, 3s) in big-endian word order.
    const std::uint32_t t = (std::uint32_t(s2) << 24) |
                            (std::uint32_t(s) << 16) |
                            (std::uint32_t(s) << 8) | std::uint32_t(s3);
    te_table[0][i] = t;
    te_table[1][i] = (t >> 8) | (t << 24);
    te_table[2][i] = (t >> 16) | (t << 16);
    te_table[3][i] = (t >> 24) | (t << 8);
  }
  te_ready = true;
}

inline std::uint32_t sub_word(std::uint32_t w) {
  return (std::uint32_t(kSbox[(w >> 24) & 0xff]) << 24) |
         (std::uint32_t(kSbox[(w >> 16) & 0xff]) << 16) |
         (std::uint32_t(kSbox[(w >> 8) & 0xff]) << 8) |
         std::uint32_t(kSbox[w & 0xff]);
}

inline std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

Aes::Aes(BytesView key) {
  int nk;
  if (key.size() == 16) {
    nk = 4;
    rounds_ = 10;
  } else if (key.size() == 32) {
    nk = 8;
    rounds_ = 14;
  } else {
    throw std::invalid_argument("Aes: key must be 16 or 32 bytes");
  }
  const int total = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = (std::uint32_t(key[4 * i]) << 24) |
                     (std::uint32_t(key[4 * i + 1]) << 16) |
                     (std::uint32_t(key[4 * i + 2]) << 8) |
                     std::uint32_t(key[4 * i + 3]);
  }
  std::uint32_t rcon = 0x01000000;
  for (int i = nk; i < total; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ rcon;
      rcon = std::uint32_t(xtime(static_cast<std::uint8_t>(rcon >> 24))) << 24;
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  if (!te_ready) build_te();
  // Load state as big-endian column words and XOR the first round key.
  std::uint32_t c0 = ((std::uint32_t(in[0]) << 24) | (std::uint32_t(in[1]) << 16) |
                      (std::uint32_t(in[2]) << 8) | in[3]) ^ round_keys_[0];
  std::uint32_t c1 = ((std::uint32_t(in[4]) << 24) | (std::uint32_t(in[5]) << 16) |
                      (std::uint32_t(in[6]) << 8) | in[7]) ^ round_keys_[1];
  std::uint32_t c2 = ((std::uint32_t(in[8]) << 24) | (std::uint32_t(in[9]) << 16) |
                      (std::uint32_t(in[10]) << 8) | in[11]) ^ round_keys_[2];
  std::uint32_t c3 = ((std::uint32_t(in[12]) << 24) | (std::uint32_t(in[13]) << 16) |
                      (std::uint32_t(in[14]) << 8) | in[15]) ^ round_keys_[3];
  for (int r = 1; r < rounds_; ++r) {
    const std::uint32_t* rk = &round_keys_[4 * r];
    const std::uint32_t t0 = te_table[0][c0 >> 24] ^ te_table[1][(c1 >> 16) & 0xff] ^
                             te_table[2][(c2 >> 8) & 0xff] ^ te_table[3][c3 & 0xff] ^ rk[0];
    const std::uint32_t t1 = te_table[0][c1 >> 24] ^ te_table[1][(c2 >> 16) & 0xff] ^
                             te_table[2][(c3 >> 8) & 0xff] ^ te_table[3][c0 & 0xff] ^ rk[1];
    const std::uint32_t t2 = te_table[0][c2 >> 24] ^ te_table[1][(c3 >> 16) & 0xff] ^
                             te_table[2][(c0 >> 8) & 0xff] ^ te_table[3][c1 & 0xff] ^ rk[2];
    const std::uint32_t t3 = te_table[0][c3 >> 24] ^ te_table[1][(c0 >> 16) & 0xff] ^
                             te_table[2][(c1 >> 8) & 0xff] ^ te_table[3][c2 & 0xff] ^ rk[3];
    c0 = t0; c1 = t1; c2 = t2; c3 = t3;
  }
  // Final round: SubBytes + ShiftRows (no MixColumns) + AddRoundKey.
  const std::uint32_t* rk = &round_keys_[4 * rounds_];
  const std::uint32_t f0 =
      ((std::uint32_t(kSbox[c0 >> 24]) << 24) | (std::uint32_t(kSbox[(c1 >> 16) & 0xff]) << 16) |
       (std::uint32_t(kSbox[(c2 >> 8) & 0xff]) << 8) | kSbox[c3 & 0xff]) ^ rk[0];
  const std::uint32_t f1 =
      ((std::uint32_t(kSbox[c1 >> 24]) << 24) | (std::uint32_t(kSbox[(c2 >> 16) & 0xff]) << 16) |
       (std::uint32_t(kSbox[(c3 >> 8) & 0xff]) << 8) | kSbox[c0 & 0xff]) ^ rk[1];
  const std::uint32_t f2 =
      ((std::uint32_t(kSbox[c2 >> 24]) << 24) | (std::uint32_t(kSbox[(c3 >> 16) & 0xff]) << 16) |
       (std::uint32_t(kSbox[(c0 >> 8) & 0xff]) << 8) | kSbox[c1 & 0xff]) ^ rk[2];
  const std::uint32_t f3 =
      ((std::uint32_t(kSbox[c3 >> 24]) << 24) | (std::uint32_t(kSbox[(c0 >> 16) & 0xff]) << 16) |
       (std::uint32_t(kSbox[(c1 >> 8) & 0xff]) << 8) | kSbox[c2 & 0xff]) ^ rk[3];
  const std::uint32_t words[4] = {f0, f1, f2, f3};
  for (int i = 0; i < 4; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(words[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(words[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(words[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(words[i]);
  }
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  const std::uint8_t* isb = inv_sbox();
  // Straight inverse cipher (FIPS 197 §5.3) using the encryption schedule.
  auto add_round_key = [&](int r) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t w = round_keys_[4 * r + c];
      s[4 * c] ^= static_cast<std::uint8_t>(w >> 24);
      s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
      s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
      s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
  };
  add_round_key(rounds_);
  for (int r = rounds_ - 1; r >= 0; --r) {
    // InvShiftRows
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int row = 0; row < 4; ++row) {
        t[4 * ((c + row) % 4) + row] = s[4 * c + row];
      }
    }
    std::memcpy(s, t, 16);
    // InvSubBytes
    for (auto& b : s) b = isb[b];
    add_round_key(r);
    if (r != 0) {
      // InvMixColumns
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
      }
    }
  }
  std::memcpy(out, s, 16);
}

Bytes aes_ctr(const Aes& cipher, BytesView nonce12, std::uint32_t initial_counter,
              BytesView data) {
  if (nonce12.size() != 12) {
    throw std::invalid_argument("aes_ctr: nonce must be 12 bytes");
  }
  Bytes out(data.begin(), data.end());
  std::uint8_t counter_block[16];
  std::memcpy(counter_block, nonce12.data(), 12);
  std::uint32_t ctr = initial_counter;
  std::uint8_t keystream[16];
  for (std::size_t off = 0; off < out.size(); off += 16) {
    counter_block[12] = static_cast<std::uint8_t>(ctr >> 24);
    counter_block[13] = static_cast<std::uint8_t>(ctr >> 16);
    counter_block[14] = static_cast<std::uint8_t>(ctr >> 8);
    counter_block[15] = static_cast<std::uint8_t>(ctr);
    ++ctr;
    cipher.encrypt_block(counter_block, keystream);
    const std::size_t n = std::min<std::size_t>(16, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
  }
  return out;
}

Bytes aes_cbc_encrypt(const Aes& cipher, BytesView iv16, BytesView plaintext) {
  if (iv16.size() != 16) {
    throw std::invalid_argument("aes_cbc_encrypt: IV must be 16 bytes");
  }
  const std::size_t pad = 16 - plaintext.size() % 16;
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  Bytes out(padded.size());
  std::uint8_t prev[16];
  std::memcpy(prev, iv16.data(), 16);
  for (std::size_t off = 0; off < padded.size(); off += 16) {
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i) block[i] = padded[off + i] ^ prev[i];
    cipher.encrypt_block(block, out.data() + off);
    std::memcpy(prev, out.data() + off, 16);
  }
  return out;
}

Bytes aes_cbc_decrypt(const Aes& cipher, BytesView iv16, BytesView ciphertext) {
  if (iv16.size() != 16) {
    throw std::invalid_argument("aes_cbc_decrypt: IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % 16 != 0) {
    throw std::runtime_error("aes_cbc_decrypt: bad ciphertext length");
  }
  Bytes out(ciphertext.size());
  std::uint8_t prev[16];
  std::memcpy(prev, iv16.data(), 16);
  for (std::size_t off = 0; off < ciphertext.size(); off += 16) {
    std::uint8_t block[16];
    cipher.decrypt_block(ciphertext.data() + off, block);
    for (int i = 0; i < 16; ++i) out[off + i] = block[i] ^ prev[i];
    std::memcpy(prev, ciphertext.data() + off, 16);
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > 16 || pad > out.size()) {
    throw std::runtime_error("aes_cbc_decrypt: bad padding");
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) throw std::runtime_error("aes_cbc_decrypt: bad padding");
  }
  out.resize(out.size() - pad);
  return out;
}

}  // namespace hipcloud::crypto
