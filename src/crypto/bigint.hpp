#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

class HmacDrbg;

/// Arbitrary-precision unsigned integer, 32-bit little-endian limbs.
///
/// Supports everything the public-key layer needs: +, -, *, divmod,
/// shifts, modular exponentiation (Montgomery for odd moduli), modular
/// inverse and GCD. Subtraction below zero throws — the protocol code
/// never needs signed values; the extended Euclid below handles signs
/// internally.
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  static BigInt from_bytes_be(BytesView data);
  static BigInt from_hex(std::string_view hex);

  /// Big-endian bytes, left-padded with zeros to at least `min_width`.
  Bytes to_bytes_be(std::size_t min_width = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i);

  std::strong_ordering operator<=>(const BigInt& other) const;
  bool operator==(const BigInt& other) const { return limbs_ == other.limbs_; }

  BigInt operator+(const BigInt& rhs) const;
  /// Throws std::underflow_error if rhs > *this.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Quotient and remainder; throws std::domain_error on divide-by-zero.
  std::pair<BigInt, BigInt> divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& rhs) const { return divmod(rhs).first; }
  BigInt operator%(const BigInt& rhs) const { return divmod(rhs).second; }

  /// (this ^ exp) mod m. Uses Montgomery ladder-free square-and-multiply
  /// with Montgomery reduction when m is odd; plain divmod otherwise.
  BigInt mod_exp(const BigInt& exp, const BigInt& m) const;

  /// Multiplicative inverse mod m; throws std::domain_error when
  /// gcd(this, m) != 1.
  BigInt mod_inverse(const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform random value in [0, bound) drawn from the DRBG.
  static BigInt random_below(HmacDrbg& drbg, const BigInt& bound);

  /// Random integer with exactly `bits` bits (MSB set).
  static BigInt random_bits(HmacDrbg& drbg, std::size_t bits);

  /// Miller-Rabin probabilistic primality test with `rounds` bases drawn
  /// from the DRBG (plus deterministic small-prime trial division).
  static bool is_probable_prime(const BigInt& n, HmacDrbg& drbg,
                                int rounds = 20);

  /// Generate a random probable prime with exactly `bits` bits.
  static BigInt generate_prime(HmacDrbg& drbg, std::size_t bits);

 private:
  void trim();
  static BigInt mont_mul(const BigInt& a, const BigInt& b, const BigInt& m,
                         std::uint32_t m_inv, std::size_t n);

  std::vector<std::uint32_t> limbs_;  // little-endian; no trailing zeros
};

}  // namespace hipcloud::crypto
