#pragma once

#include <cstddef>
#include <cstdint>

namespace hipcloud::crypto::aesni {

/// True when the running CPU has the AES instruction set (checked once).
/// Always false on non-x86 builds; every other function here must only be
/// called when this returns true.
bool supported();

/// Build the `aesdec` schedule from a byte-serialized encryption schedule:
/// reversed round order with InvMixColumns applied to the middle keys.
void make_decrypt_schedule(const std::uint8_t* enc_rk, int rounds,
                           std::uint8_t* dec_rk);

void encrypt_block(const std::uint8_t* rk, int rounds,
                   const std::uint8_t in[16], std::uint8_t out[16]);
void decrypt_block(const std::uint8_t* dec_rk, int rounds,
                   const std::uint8_t in[16], std::uint8_t out[16]);

/// XOR the CTR keystream into `data` in place, four blocks in flight.
void ctr_xor(const std::uint8_t* rk, int rounds, const std::uint8_t nonce12[12],
             std::uint32_t counter, std::uint8_t* data, std::size_t len);

}  // namespace hipcloud::crypto::aesni
