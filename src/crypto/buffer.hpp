#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

#include "crypto/bytes.hpp"
#include "sim/perf.hpp"

namespace hipcloud::crypto {

class BufferPool;

/// Pooled payload buffer with headroom/tailroom, built for the packet
/// datapath.
///
/// A Buffer owns a block of capacity `cap_` and exposes the window
/// [off_, off_ + len_) of it. Encapsulation layers (UDP, ESP-BEET, the
/// UDP-encap tag, Teredo) call prepend()/append() to grow the window over
/// pre-reserved headroom/tailroom and write their headers in place,
/// instead of allocating a fresh vector and copying the payload at every
/// layer boundary. Decapsulation is pop_front()/pop_back() — O(1) window
/// arithmetic, zero copies.
///
/// Blocks come from a per-world BufferPool freelist and return to it when
/// the Buffer dies, so steady-state packet traffic recycles a handful of
/// blocks instead of hitting the allocator per packet. A Buffer must not
/// outlive the pool it was drawn from (the pool is owned by the world's
/// Network, which outlives every packet in that world); buffers created
/// from plain Bytes carry no pool and free their own block.
///
/// The API mirrors the std::vector subset the protocol layers used on
/// `crypto::Bytes` payloads, plus implicit conversions to BytesView
/// (free) and Bytes (copying) so cold call sites and tests keep working
/// unchanged.
class Buffer {
 public:
  using value_type = std::uint8_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;

  Buffer() = default;

  /// Copying from raw bytes (cold paths, tests): no pool, exact fit.
  Buffer(const Bytes& b) : Buffer(BytesView(b)) {}  // NOLINT
  Buffer(BytesView v);                              // NOLINT
  /// Copy with reserved headroom/tailroom (unpooled staging buffer for
  /// in-place encapsulation).
  Buffer(BytesView v, std::size_t headroom, std::size_t tailroom);

  Buffer(const Buffer& o);
  Buffer& operator=(const Buffer& o);
  Buffer(Buffer&& o) noexcept { steal(o); }
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      destroy();
      steal(o);
    }
    return *this;
  }
  ~Buffer() { destroy(); }

  std::uint8_t* data() { return block_ + off_; }
  const std::uint8_t* data() const { return block_ + off_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::uint8_t& operator[](std::size_t i) { return block_[off_ + i]; }
  const std::uint8_t& operator[](std::size_t i) const {
    return block_[off_ + i];
  }
  iterator begin() { return data(); }
  iterator end() { return data() + len_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + len_; }

  std::size_t headroom() const { return off_; }
  std::size_t tailroom() const { return cap_ - off_ - len_; }

  /// Grow the window `n` bytes at the front and return a pointer to the
  /// new region. Falls back to one realloc+copy when headroom runs out.
  std::uint8_t* prepend(std::size_t n) {
    if (off_ < n) grow(n, 0);
    off_ -= static_cast<std::uint32_t>(n);
    len_ += static_cast<std::uint32_t>(n);
    return data();
  }

  /// Grow the window `n` bytes at the back and return a pointer to the
  /// new region.
  std::uint8_t* append(std::size_t n) {
    if (tailroom() < n) grow(0, n);
    std::uint8_t* p = block_ + off_ + len_;
    len_ += static_cast<std::uint32_t>(n);
    return p;
  }

  /// Drop `n` bytes from the front (header strip). O(1).
  void pop_front(std::size_t n) {
    off_ += static_cast<std::uint32_t>(n);
    len_ -= static_cast<std::uint32_t>(n);
  }

  /// Drop `n` bytes from the back (trailer strip). O(1).
  void pop_back(std::size_t n) { len_ -= static_cast<std::uint32_t>(n); }

  void clear() { len_ = 0; }

  void resize(std::size_t n, std::uint8_t fill = 0) {
    if (n <= len_) {
      len_ = static_cast<std::uint32_t>(n);
      return;
    }
    const std::size_t extra = n - len_;
    std::memset(append(extra), fill, extra);
  }

  template <typename It>
  void assign(It first, It last) {
    const std::size_t n = static_cast<std::size_t>(last - first);
    len_ = 0;
    if (n > cap_) {
      grow(0, n);  // leaves off_ at the front slack
    } else {
      off_ = 0;
    }
    std::uint8_t* p = data();
    for (; first != last; ++first) *p++ = static_cast<std::uint8_t>(*first);
    len_ = static_cast<std::uint32_t>(n);
  }

  void push_back(std::uint8_t b) { *append(1) = b; }

  BytesView view() const { return BytesView(data(), len_); }
  operator BytesView() const { return view(); }  // NOLINT
  /// Copying escape hatch for code that stores payloads as Bytes.
  operator Bytes() const { return Bytes(begin(), end()); }  // NOLINT

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }

 private:
  friend class BufferPool;

  Buffer(BufferPool* pool, std::uint8_t* block, std::uint32_t cap,
         std::uint32_t off, std::uint32_t len)
      : block_(block), cap_(cap), off_(off), len_(len), pool_(pool) {}

  void steal(Buffer& o) noexcept;

  void take_fields(Buffer& o) noexcept {
    block_ = o.block_;
    cap_ = o.cap_;
    off_ = o.off_;
    len_ = o.len_;
    pool_ = o.pool_;
    o.block_ = nullptr;
    o.cap_ = o.off_ = o.len_ = 0;
    o.pool_ = nullptr;
  }

  void destroy();
  /// Move to a bigger block with >= front_extra headroom and >= back_extra
  /// tailroom beyond the current window.
  void grow(std::size_t front_extra, std::size_t back_extra);

  std::uint8_t* block_ = nullptr;
  std::uint32_t cap_ = 0;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
  BufferPool* pool_ = nullptr;
};

/// Per-world freelist of payload blocks in power-of-two size classes
/// (64..4096 bytes; larger blocks are allocated directly and never
/// cached). Single-threaded like everything else inside one world, so no
/// locks. Hit/miss/return counts land in the world's PerfCounters.
class BufferPool {
 public:
  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kMaxClass = 4096;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  void set_perf(sim::PerfCounters* perf) { perf_ = perf; }

  /// A buffer of `len` bytes with the requested headroom/tailroom
  /// reserved around it. The window is uninitialised (callers on the
  /// packet path overwrite it wholesale; recycled blocks keep old bytes).
  Buffer make(std::size_t len, std::size_t headroom = 0,
              std::size_t tailroom = 0);

  /// Copy `v` into a pooled buffer with the requested surrounding room.
  Buffer copy(BytesView v, std::size_t headroom = 0, std::size_t tailroom = 0);

  /// Cached blocks currently sitting in the freelists (for tests).
  std::size_t cached_blocks() const;

 private:
  friend class Buffer;

  static constexpr std::size_t kClasses = 7;  // 64,128,...,4096

  static std::size_t class_index(std::size_t cap);

  std::uint8_t* acquire(std::size_t needed, std::uint32_t& cap_out);
  void release(std::uint8_t* block, std::uint32_t cap);
  /// O(cached blocks) scan backing the audit-build double-release /
  /// aliasing check: a block being released must not already sit in any
  /// freelist (two Buffers thinking they own the same block corrupts
  /// whichever packet recycles it first).
  bool audit_not_cached(const std::uint8_t* block) const;

  std::vector<std::uint8_t*> free_[kClasses];
  sim::PerfCounters* perf_ = nullptr;
};

inline void Buffer::steal(Buffer& o) noexcept {
  if (o.pool_ != nullptr && o.pool_->perf_ != nullptr && o.len_ != 0) {
    o.pool_->perf_->payload_bytes_moved += o.len_;
  }
  take_fields(o);
}

/// append_be overload so existing call sites that build payloads with
/// crypto::append_be keep working on pooled buffers.
void append_be(Buffer& out, std::uint64_t value, std::size_t width);

}  // namespace hipcloud::crypto
