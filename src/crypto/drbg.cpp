#include "crypto/drbg.hpp"

#include "crypto/hmac.hpp"

namespace hipcloud::crypto {

HmacDrbg::HmacDrbg(BytesView seed) : key_(32, 0x00), v_(32, 0x01) {
  update(seed);
}

HmacDrbg::HmacDrbg(std::uint64_t seed, std::string_view personalization)
    : key_(32, 0x00), v_(32, 0x01) {
  Bytes s;
  append_be(s, seed, 8);
  const Bytes p = to_bytes(personalization);
  s.insert(s.end(), p.begin(), p.end());
  update(s);
}

void HmacDrbg::update(BytesView provided) {
  Bytes input = v_;
  input.push_back(0x00);
  input.insert(input.end(), provided.begin(), provided.end());
  key_ = hmac_sha256(key_, input);
  v_ = hmac_sha256(key_, v_);
  if (!provided.empty()) {
    input = v_;
    input.push_back(0x01);
    input.insert(input.end(), provided.begin(), provided.end());
    key_ = hmac_sha256(key_, input);
    v_ = hmac_sha256(key_, v_);
  }
}

Bytes HmacDrbg::generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = hmac_sha256(key_, v_);
    const std::size_t take = std::min(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + static_cast<long>(take));
  }
  update({});
  return out;
}

void HmacDrbg::reseed(BytesView input) { update(input); }

}  // namespace hipcloud::crypto
