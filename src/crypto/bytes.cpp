#include "crypto/bytes.hpp"

#include <stdexcept>

namespace hipcloud::crypto {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_hex(BytesView data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: bad hex digit");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd length");
  }
  Bytes out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((hex_nibble(hex[2 * i]) << 4) |
                                       hex_nibble(hex[2 * i + 1]));
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  // volatile accumulator: the compiler must keep every OR, so the loop
  // cannot be short-circuited into an early exit on first mismatch and
  // the comparison time is independent of where the buffers differ.
  volatile std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = acc | static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

void xor_inplace(std::span<std::uint8_t> a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_inplace: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

void append_be(Bytes& out, std::uint64_t value, std::size_t width) {
  if (width > 8) throw std::invalid_argument("append_be: width > 8");
  for (std::size_t i = 0; i < width; ++i) {
    out.push_back(
        static_cast<std::uint8_t>(value >> (8 * (width - 1 - i))));
  }
}

std::uint64_t read_be(BytesView data, std::size_t offset, std::size_t width) {
  if (width > 8 || offset + width > data.size()) {
    throw std::out_of_range("read_be: out of range");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v = (v << 8) | data[offset + i];
  }
  return v;
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace hipcloud::crypto
