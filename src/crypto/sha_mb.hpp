#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace hipcloud::crypto {

/// Multi-buffer SHA-256: hashes N *independent* messages in lock-step by
/// keeping one message per SIMD lane (8 lanes under AVX2, 4 under
/// SSE2/SSSE3, 2 interleaved SHA-NI streams on SHA-NI hosts). Unlike a
/// single SHA-NI stream, these tiers scale with batch width, which is
/// exactly the shape of the ESP send queue: many small packets wanting
/// independent ICVs in the same event tick. Digests are byte-identical
/// to Sha256 at every lane width (pinned by
/// tests/crypto/sha_parity_test.cpp).
namespace shamb {

/// Upper bound on lanes any backend steps at once (AVX2 width).
inline constexpr std::size_t kMaxLanes = 8;

/// Lanes the active backend compresses per step: 8 (AVX2), 4 (SSE), 2
/// (two interleaved SHA-NI streams — the default on SHA-NI hosts), or 1
/// (per-lane fallback through sha256_backend, which may itself be
/// SHA-NI). Honors `HIPCLOUD_NO_SHAMB` (force 1) and
/// `HIPCLOUD_SHAMB_LANES` (cap: "4" exercises the SSE tier on AVX2
/// hardware, "1" forces the single stream) — both read once at first
/// use.
std::size_t lane_width();

/// Test hook mirroring sha256_backend::set_for_test: cap the lane width
/// in-process (0 = auto, else 1/2/4/8). Lets the parity fuzz test sweep
/// every tier in a single run regardless of env.
void set_lane_cap_for_test(std::size_t cap);

/// Name of the widest tier compress_blocks() would use ("avx2-x8",
/// "sse-x4", "sha-ni-x2", or "scalar").
const char* active_name();

/// Advance `nlanes` independent SHA-256 states by `nblocks` 64-byte
/// blocks each: states[l] absorbs blocks[l][0 .. 64*nblocks). Splits
/// internally into x8 / x4 SIMD groups plus a per-lane tail, so any
/// nlanes is legal. The per-lane block streams must not alias.
void compress_blocks(std::uint32_t (*states)[8],
                     const std::uint8_t* const* blocks, std::size_t nlanes,
                     std::size_t nblocks);

}  // namespace shamb

/// Batched HMAC-SHA256: same key schedule as HmacSha256 (the lanes start
/// from the identical ipad/opad midstates) but computes up to N tags per
/// multi-buffer pass. Keep one keyed instance per SA next to the
/// streaming MAC; compute() is const and heap-free, so it is safe on the
/// packet path.
class HmacSha256Mb {
 public:
  static constexpr std::size_t kDigestSize = HmacSha256::kDigestSize;

  HmacSha256Mb() = default;
  explicit HmacSha256Mb(BytesView key) : mac_(key) {}

  /// One MAC computation: `mac` receives the full 32-byte tag (callers
  /// truncate for ICVs). `data` may be null only when len == 0.
  struct Job {
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    std::uint8_t* mac = nullptr;
  };

  /// Compute all jobs' tags, lane_width() messages per SIMD pass.
  /// Bit-identical to running HmacSha256 per job; allocation-free.
  void compute(Job* jobs, std::size_t njobs) const;

 private:
  HmacSha256 mac_;  // holds the precomputed inner/outer midstates
};

}  // namespace hipcloud::crypto
