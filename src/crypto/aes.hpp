#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

/// AES block cipher (FIPS 197), 128- or 256-bit keys. Table-free S-box
/// implementation, verified against FIPS/NIST vectors in
/// tests/crypto/aes_test.cpp.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(BytesView key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  std::size_t key_bits() const { return rounds_ == 10 ? 128 : 256; }

 private:
  int rounds_;
  std::array<std::uint32_t, 60> round_keys_;  // shared by both directions
};

/// AES-CTR keystream encryption/decryption (symmetric). The 16-byte
/// counter block is `nonce(12) | counter(4)` starting at `initial_counter`.
Bytes aes_ctr(const Aes& cipher, BytesView nonce12, std::uint32_t initial_counter,
              BytesView data);

/// AES-CBC with PKCS#7 padding.
Bytes aes_cbc_encrypt(const Aes& cipher, BytesView iv16, BytesView plaintext);

/// Throws std::runtime_error on bad padding.
Bytes aes_cbc_decrypt(const Aes& cipher, BytesView iv16, BytesView ciphertext);

}  // namespace hipcloud::crypto
