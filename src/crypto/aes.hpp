#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

/// AES block cipher (FIPS 197), 128- or 256-bit keys. Verified against
/// FIPS/NIST vectors in tests/crypto/aes_test.cpp.
///
/// Two backends behind one interface, selected at construction:
///  - AES-NI (x86 `aesenc`/`aesdec` via function multi-versioning) when the
///    CPU supports it — the "as fast as the hardware allows" path;
///  - portable 32-bit T-tables (constexpr-built, so there is no lazy
///    initialisation to race on when bench worlds run on threads).
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(BytesView key);

  /// In-place operation (in == out) is supported by both backends.
  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  /// XOR the CTR keystream for counter block `nonce(12) | counter(4)`
  /// (counter big-endian, incrementing per block) into `data` in place.
  /// Zero allocations; pipelines four blocks on the AES-NI backend.
  void ctr_xor(const std::uint8_t nonce12[12], std::uint32_t initial_counter,
               std::uint8_t* data, std::size_t len) const;

  std::size_t key_bits() const { return rounds_ == 10 ? 128 : 256; }

  /// True when this process dispatches to the hardware AES backend.
  static bool hardware_accelerated();

 private:
  int rounds_;
  bool aesni_;
  std::array<std::uint32_t, 60> round_keys_;      // encryption schedule
  std::array<std::uint32_t, 60> inv_round_keys_;  // equivalent-inverse schedule
  // Byte-serialized schedules for the AES-NI backend (one 16-byte round key
  // per round, InvMixColumns-transformed for decryption).
  alignas(16) std::array<std::uint8_t, 240> rk_bytes_;
  alignas(16) std::array<std::uint8_t, 240> inv_rk_bytes_;
};

/// AES-CTR keystream encryption/decryption (symmetric). The 16-byte
/// counter block is `nonce(12) | counter(4)` starting at `initial_counter`.
Bytes aes_ctr(const Aes& cipher, BytesView nonce12, std::uint32_t initial_counter,
              BytesView data);

/// In-place variant of aes_ctr over a caller-owned buffer; validates the
/// nonce length like aes_ctr but never allocates.
void aes_ctr_xor(const Aes& cipher, BytesView nonce12,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data);

/// AES-CBC with PKCS#7 padding.
Bytes aes_cbc_encrypt(const Aes& cipher, BytesView iv16, BytesView plaintext);

/// Throws std::runtime_error on bad padding.
Bytes aes_cbc_decrypt(const Aes& cipher, BytesView iv16, BytesView ciphertext);

/// CBC-encrypt `buf[0, len)` in place, appending PKCS#7 padding. The buffer
/// must have room for `aes_cbc_padded_len(len)` bytes; returns that length.
std::size_t aes_cbc_encrypt_inplace(const Aes& cipher, const std::uint8_t iv[16],
                                    std::uint8_t* buf, std::size_t len);

/// CBC-decrypt `buf[0, len)` in place and strip PKCS#7 padding. Returns the
/// plaintext length; throws std::runtime_error on bad length or padding.
std::size_t aes_cbc_decrypt_inplace(const Aes& cipher, const std::uint8_t iv[16],
                                    std::uint8_t* buf, std::size_t len);

/// Ciphertext length CBC produces for a `len`-byte plaintext (always at
/// least one pad byte).
constexpr std::size_t aes_cbc_padded_len(std::size_t len) {
  return len + 16 - len % 16;
}

}  // namespace hipcloud::crypto
