#include "crypto/ec_p256.hpp"

#include <stdexcept>

#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"

namespace hipcloud::crypto::p256 {

namespace {

const BigInt& P() {
  static const BigInt p = BigInt::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  return p;
}

const BigInt& N() {
  static const BigInt n = BigInt::from_hex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  return n;
}

const BigInt& A() {
  // a = p - 3
  static const BigInt a = P() - BigInt(3);
  return a;
}

const BigInt& B() {
  static const BigInt b = BigInt::from_hex(
      "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  return b;
}

BigInt sub_mod(const BigInt& a, const BigInt& b, const BigInt& m) {
  if (a >= b) return (a - b) % m;
  return m - ((b - a) % m);
}

// Jacobian projective point: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
struct Jac {
  BigInt x, y, z;  // z == 0 -> infinity
  bool inf() const { return z.is_zero(); }
};

Jac to_jac(const Point& p) {
  if (p.infinity) return {BigInt(1), BigInt(1), BigInt()};
  return {p.x, p.y, BigInt(1)};
}

Point from_jac(const Jac& j) {
  if (j.inf()) return Point{};
  const BigInt zinv = j.z.mod_inverse(P());
  const BigInt zinv2 = (zinv * zinv) % P();
  Point out;
  out.infinity = false;
  out.x = (j.x * zinv2) % P();
  out.y = (j.y * zinv2 % P()) * zinv % P();
  return out;
}

Jac jac_double(const Jac& p) {
  if (p.inf() || p.y.is_zero()) return {BigInt(1), BigInt(1), BigInt()};
  // Standard dbl-2007-bl-like formulas with a = -3 folded in via
  // M = 3(X-Z^2)(X+Z^2).
  const BigInt z2 = (p.z * p.z) % P();
  const BigInt m =
      (BigInt(3) * (sub_mod(p.x, z2, P()) * ((p.x + z2) % P()) % P())) % P();
  const BigInt y2 = (p.y * p.y) % P();
  const BigInt s = (BigInt(4) * p.x % P()) * y2 % P();
  Jac out;
  out.x = sub_mod((m * m) % P(), (BigInt(2) * s) % P(), P());
  const BigInt y4 = (y2 * y2) % P();
  out.y = sub_mod((m * sub_mod(s, out.x, P())) % P(),
                  (BigInt(8) * y4) % P(), P());
  out.z = (BigInt(2) * p.y % P()) * p.z % P();
  return out;
}

Jac jac_add(const Jac& p, const Jac& q) {
  if (p.inf()) return q;
  if (q.inf()) return p;
  const BigInt z1_2 = (p.z * p.z) % P();
  const BigInt z2_2 = (q.z * q.z) % P();
  const BigInt u1 = (p.x * z2_2) % P();
  const BigInt u2 = (q.x * z1_2) % P();
  const BigInt s1 = (p.y * z2_2 % P()) * q.z % P();
  const BigInt s2 = (q.y * z1_2 % P()) * p.z % P();
  if (u1 == u2) {
    if (s1 == s2) return jac_double(p);
    return {BigInt(1), BigInt(1), BigInt()};  // P + (-P) = O
  }
  const BigInt h = sub_mod(u2, u1, P());
  const BigInt r = sub_mod(s2, s1, P());
  const BigInt h2 = (h * h) % P();
  const BigInt h3 = (h2 * h) % P();
  const BigInt u1h2 = (u1 * h2) % P();
  Jac out;
  out.x = sub_mod(sub_mod((r * r) % P(), h3, P()),
                  (BigInt(2) * u1h2) % P(), P());
  out.y = sub_mod((r * sub_mod(u1h2, out.x, P())) % P(),
                  (s1 * h3) % P(), P());
  out.z = (p.z * q.z % P()) * h % P();
  return out;
}

}  // namespace

bool Point::operator==(const Point& other) const {
  if (infinity || other.infinity) return infinity == other.infinity;
  return x == other.x && y == other.y;
}

const BigInt& order() { return N(); }
const BigInt& field_prime() { return P(); }

const Point& generator() {
  static const Point g = [] {
    Point p;
    p.infinity = false;
    p.x = BigInt::from_hex(
        "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
    p.y = BigInt::from_hex(
        "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
    return p;
  }();
  return g;
}

bool on_curve(const Point& pt) {
  if (pt.infinity) return true;
  if (pt.x >= P() || pt.y >= P()) return false;
  const BigInt lhs = (pt.y * pt.y) % P();
  const BigInt x3 = ((pt.x * pt.x) % P()) * pt.x % P();
  const BigInt rhs = (x3 + (A() * pt.x) % P() + B()) % P();
  return lhs == rhs;
}

Point add(const Point& a, const Point& b) {
  return from_jac(jac_add(to_jac(a), to_jac(b)));
}

Point multiply(const Point& p, const BigInt& k) {
  const BigInt scalar = k % N();
  if (scalar.is_zero() || p.infinity) return Point{};
  Jac acc{BigInt(1), BigInt(1), BigInt()};
  const Jac base = to_jac(p);
  for (std::size_t i = scalar.bit_length(); i-- > 0;) {
    acc = jac_double(acc);
    if (scalar.bit(i)) acc = jac_add(acc, base);
  }
  return from_jac(acc);
}

Bytes encode_point(const Point& pt) {
  if (pt.infinity) return Bytes{0x00};
  Bytes out{0x04};
  const Bytes xb = pt.x.to_bytes_be(32);
  const Bytes yb = pt.y.to_bytes_be(32);
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

Point decode_point(BytesView data) {
  if (data.size() == 1 && data[0] == 0x00) return Point{};
  if (data.size() != 65 || data[0] != 0x04) {
    throw std::runtime_error("p256: malformed point encoding");
  }
  Point pt;
  pt.infinity = false;
  pt.x = BigInt::from_bytes_be(data.subspan(1, 32));
  pt.y = BigInt::from_bytes_be(data.subspan(33, 32));
  if (!on_curve(pt)) throw std::runtime_error("p256: point not on curve");
  return pt;
}

KeyPair generate(HmacDrbg& drbg) {
  const BigInt d = BigInt(1) + BigInt::random_below(drbg, N() - BigInt(1));
  return {d, multiply(generator(), d)};
}

Bytes ecdh(const BigInt& private_scalar, const Point& peer_public) {
  if (!on_curve(peer_public) || peer_public.infinity) {
    throw std::runtime_error("p256::ecdh: invalid peer point");
  }
  const Point shared = multiply(peer_public, private_scalar);
  if (shared.infinity) throw std::runtime_error("p256::ecdh: identity result");
  return shared.x.to_bytes_be(32);
}

Bytes Signature::encode() const {
  Bytes out = r.to_bytes_be(32);
  const Bytes sb = s.to_bytes_be(32);
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

Signature Signature::decode(BytesView data) {
  if (data.size() != 64) throw std::runtime_error("p256: bad signature size");
  Signature sig;
  sig.r = BigInt::from_bytes_be(data.subspan(0, 32));
  sig.s = BigInt::from_bytes_be(data.subspan(32, 32));
  return sig;
}

namespace {
BigInt hash_to_scalar(BytesView message) {
  // SHA-256 output is 256 bits = curve size; no truncation needed.
  return BigInt::from_bytes_be(Sha256::digest(message)) % N();
}
}  // namespace

Signature ecdsa_sign(const BigInt& private_scalar, HmacDrbg& drbg,
                     BytesView message) {
  const BigInt e = hash_to_scalar(message);
  for (;;) {
    const BigInt k = BigInt(1) + BigInt::random_below(drbg, N() - BigInt(1));
    const Point kg = multiply(generator(), k);
    const BigInt r = kg.x % N();
    if (r.is_zero()) continue;
    const BigInt kinv = k.mod_inverse(N());
    const BigInt s = (kinv * ((e + (r * private_scalar) % N()) % N())) % N();
    if (s.is_zero()) continue;
    return {r, s};
  }
}

bool ecdsa_verify(const Point& public_point, BytesView message,
                  const Signature& sig) {
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= N() || sig.s >= N()) {
    return false;
  }
  if (public_point.infinity || !on_curve(public_point)) return false;
  const BigInt e = hash_to_scalar(message);
  const BigInt w = sig.s.mod_inverse(N());
  const BigInt u1 = (e * w) % N();
  const BigInt u2 = (sig.r * w) % N();
  const Point pt = add(multiply(generator(), u1), multiply(public_point, u2));
  if (pt.infinity) return false;
  return (pt.x % N()) == sig.r;
}

}  // namespace hipcloud::crypto::p256
