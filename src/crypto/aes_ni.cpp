// Hardware AES backend. Compiled into the portable library with per-function
// target attributes (no global -maes flag needed) and dispatched at runtime
// from Aes, so the same binary runs on CPUs without the extension.

#include "crypto/aes_ni.hpp"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define HIPCLOUD_HAS_AESNI 1
#include <immintrin.h>
#else
#define HIPCLOUD_HAS_AESNI 0
#endif

namespace hipcloud::crypto::aesni {

#if HIPCLOUD_HAS_AESNI

#define AESNI_TARGET __attribute__((target("aes,sse4.1")))

bool supported() {
  static const bool ok = [] {
    // Escape hatch for benchmarking/testing the portable T-table path on
    // hardware that has AES-NI.
    if (std::getenv("HIPCLOUD_NO_AESNI") != nullptr) return false;
    __builtin_cpu_init();
    return __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse4.1");
  }();
  return ok;
}

AESNI_TARGET void make_decrypt_schedule(const std::uint8_t* enc_rk, int rounds,
                                        std::uint8_t* dec_rk) {
  auto rk = [&](int r) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(enc_rk + 16 * r));
  };
  auto store = [&](int r, __m128i k) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dec_rk + 16 * r), k);
  };
  store(0, rk(rounds));
  for (int r = 1; r < rounds; ++r) store(r, _mm_aesimc_si128(rk(rounds - r)));
  store(rounds, rk(0));
}

namespace {

AESNI_TARGET inline __m128i ctr_block(__m128i base, std::uint32_t ctr) {
  return _mm_insert_epi32(base, static_cast<int>(__builtin_bswap32(ctr)), 3);
}

AESNI_TARGET inline __m128i encrypt_m128(const std::uint8_t* rk, int rounds,
                                         __m128i b) {
  b = _mm_xor_si128(b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
  for (int r = 1; r < rounds; ++r) {
    b = _mm_aesenc_si128(
        b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * r)));
  }
  return _mm_aesenclast_si128(
      b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * rounds)));
}

}  // namespace

AESNI_TARGET void encrypt_block(const std::uint8_t* rk, int rounds,
                                const std::uint8_t in[16], std::uint8_t out[16]) {
  const __m128i b =
      encrypt_m128(rk, rounds,
                   _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

AESNI_TARGET void decrypt_block(const std::uint8_t* dec_rk, int rounds,
                                const std::uint8_t in[16], std::uint8_t out[16]) {
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  b = _mm_xor_si128(b,
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(dec_rk)));
  for (int r = 1; r < rounds; ++r) {
    b = _mm_aesdec_si128(
        b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dec_rk + 16 * r)));
  }
  b = _mm_aesdeclast_si128(
      b,
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(dec_rk + 16 * rounds)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

AESNI_TARGET void ctr_xor(const std::uint8_t* rk, int rounds,
                          const std::uint8_t nonce12[12], std::uint32_t counter,
                          std::uint8_t* data, std::size_t len) {
  // Counter block template with the nonce in bytes 0..11; the big-endian
  // counter is inserted as lane 3 per block.
  alignas(16) std::uint8_t tmpl[16] = {};
  for (int i = 0; i < 12; ++i) tmpl[i] = nonce12[i];
  const __m128i base = _mm_load_si128(reinterpret_cast<const __m128i*>(tmpl));

  std::size_t off = 0;
  // Four independent blocks in flight to cover the aesenc latency.
  while (off + 64 <= len) {
    __m128i b0 = _mm_xor_si128(
        ctr_block(base, counter), _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
    __m128i b1 = _mm_xor_si128(
        ctr_block(base, counter + 1),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
    __m128i b2 = _mm_xor_si128(
        ctr_block(base, counter + 2),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
    __m128i b3 = _mm_xor_si128(
        ctr_block(base, counter + 3),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk)));
    for (int r = 1; r < rounds; ++r) {
      const __m128i k =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * r));
      b0 = _mm_aesenc_si128(b0, k);
      b1 = _mm_aesenc_si128(b1, k);
      b2 = _mm_aesenc_si128(b2, k);
      b3 = _mm_aesenc_si128(b3, k);
    }
    const __m128i kl =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * rounds));
    b0 = _mm_aesenclast_si128(b0, kl);
    b1 = _mm_aesenclast_si128(b1, kl);
    b2 = _mm_aesenclast_si128(b2, kl);
    b3 = _mm_aesenclast_si128(b3, kl);
    auto xor_store = [&](std::size_t o, __m128i ks) {
      __m128i* p = reinterpret_cast<__m128i*>(data + o);
      _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), ks));
    };
    xor_store(off, b0);
    xor_store(off + 16, b1);
    xor_store(off + 32, b2);
    xor_store(off + 48, b3);
    counter += 4;
    off += 64;
  }
  while (off + 16 <= len) {
    const __m128i ks = encrypt_m128(rk, rounds, ctr_block(base, counter++));
    __m128i* p = reinterpret_cast<__m128i*>(data + off);
    _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), ks));
    off += 16;
  }
  if (off < len) {
    alignas(16) std::uint8_t ks[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(ks),
                    encrypt_m128(rk, rounds, ctr_block(base, counter)));
    for (std::size_t i = 0; off + i < len; ++i) data[off + i] ^= ks[i];
  }
}

#else  // !HIPCLOUD_HAS_AESNI — stubs so non-x86 builds link; never called
       // because supported() is false.

bool supported() { return false; }
void make_decrypt_schedule(const std::uint8_t*, int, std::uint8_t*) {}
void encrypt_block(const std::uint8_t*, int, const std::uint8_t[16],
                   std::uint8_t[16]) {}
void decrypt_block(const std::uint8_t*, int, const std::uint8_t[16],
                   std::uint8_t[16]) {}
void ctr_xor(const std::uint8_t*, int, const std::uint8_t[12], std::uint32_t,
             std::uint8_t*, std::size_t) {}

#endif

}  // namespace hipcloud::crypto::aesni
