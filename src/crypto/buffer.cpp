#include "crypto/buffer.hpp"

#include "sim/check.hpp"

namespace hipcloud::crypto {

Buffer::Buffer(BytesView v) {
  if (v.empty()) return;
  block_ = new std::uint8_t[v.size()];
  cap_ = len_ = static_cast<std::uint32_t>(v.size());
  std::memcpy(block_, v.data(), v.size());
}

Buffer::Buffer(BytesView v, std::size_t headroom, std::size_t tailroom) {
  const std::size_t cap = headroom + v.size() + tailroom;
  if (cap == 0) return;
  block_ = new std::uint8_t[cap];
  cap_ = static_cast<std::uint32_t>(cap);
  off_ = static_cast<std::uint32_t>(headroom);
  len_ = static_cast<std::uint32_t>(v.size());
  if (!v.empty()) std::memcpy(block_ + off_, v.data(), v.size());
}

Buffer::Buffer(const Buffer& o) {
  if (o.len_ == 0) return;
  if (o.pool_ != nullptr) {
    pool_ = o.pool_;
    block_ = pool_->acquire(o.len_, cap_);
  } else {
    block_ = new std::uint8_t[o.len_];
    cap_ = o.len_;
  }
  len_ = o.len_;
  std::memcpy(block_, o.data(), o.len_);
  if (pool_ != nullptr && pool_->perf_ != nullptr) {
    pool_->perf_->payload_bytes_copied += o.len_;
  }
}

Buffer& Buffer::operator=(const Buffer& o) {
  if (this != &o) {
    destroy();
    block_ = nullptr;
    cap_ = off_ = len_ = 0;
    pool_ = nullptr;
    Buffer tmp(o);
    steal(tmp);
  }
  return *this;
}

void Buffer::destroy() {
  if (block_ == nullptr) return;
  if (pool_ != nullptr) {
    pool_->release(block_, cap_);
  } else {
    delete[] block_;
  }
}

void Buffer::grow(std::size_t front_extra, std::size_t back_extra) {
  // One realloc covering the requested room plus slack, so a pipeline
  // that underestimated headroom converges instead of reallocating at
  // every layer.
  constexpr std::size_t kSlack = 64;
  const std::size_t need = front_extra + kSlack + len_ + back_extra + kSlack;
  std::uint8_t* nblock;
  std::uint32_t ncap;
  if (pool_ != nullptr) {
    nblock = pool_->acquire(need, ncap);
  } else {
    nblock = new std::uint8_t[need];
    ncap = static_cast<std::uint32_t>(need);
  }
  const std::uint32_t noff = static_cast<std::uint32_t>(front_extra + kSlack);
  if (len_ != 0) {
    std::memcpy(nblock + noff, block_ + off_, len_);
    if (pool_ != nullptr && pool_->perf_ != nullptr) {
      pool_->perf_->payload_bytes_copied += len_;
    }
  }
  destroy();
  block_ = nblock;
  cap_ = ncap;
  off_ = noff;
}

BufferPool::~BufferPool() {
  for (auto& cls : free_) {
    for (std::uint8_t* block : cls) delete[] block;
  }
}

std::size_t BufferPool::class_index(std::size_t cap) {
  std::size_t idx = 0;
  std::size_t size = kMinClass;
  while (size < cap) {
    size <<= 1;
    ++idx;
  }
  return idx;
}

std::uint8_t* BufferPool::acquire(std::size_t needed, std::uint32_t& cap_out) {
  if (needed <= kMaxClass) {
    const std::size_t idx = class_index(needed);
    cap_out = static_cast<std::uint32_t>(kMinClass << idx);
    auto& cls = free_[idx];
    if (!cls.empty()) {
      std::uint8_t* block = cls.back();
      cls.pop_back();
      if (perf_ != nullptr) ++perf_->pool_hits;
      return block;
    }
    if (perf_ != nullptr) ++perf_->pool_misses;
    return new std::uint8_t[cap_out];
  }
  cap_out = static_cast<std::uint32_t>(needed);
  if (perf_ != nullptr) ++perf_->pool_misses;
  return new std::uint8_t[needed];
}

bool BufferPool::audit_not_cached(const std::uint8_t* block) const {
  for (const auto& cls : free_) {
    for (const std::uint8_t* cached : cls) {
      if (cached == block) return false;
    }
  }
  return true;
}

void BufferPool::release(std::uint8_t* block, std::uint32_t cap) {
  HIPCLOUD_AUDIT(audit_not_cached(block),
                 "BufferPool double-release: block is already on a freelist");
  // Only exact pool-class blocks are cached; odd sizes (oversize direct
  // allocations) are freed.
  if (cap >= kMinClass && cap <= kMaxClass && (cap & (cap - 1)) == 0) {
    if (perf_ != nullptr) ++perf_->pool_returns;
    free_[class_index(cap)].push_back(block);
    return;
  }
  delete[] block;
}

Buffer BufferPool::make(std::size_t len, std::size_t headroom,
                        std::size_t tailroom) {
  std::uint32_t cap;
  std::uint8_t* block = acquire(headroom + len + tailroom, cap);
  return Buffer(this, block, cap, static_cast<std::uint32_t>(headroom),
                static_cast<std::uint32_t>(len));
}

Buffer BufferPool::copy(BytesView v, std::size_t headroom,
                        std::size_t tailroom) {
  Buffer b = make(v.size(), headroom, tailroom);
  if (!v.empty()) std::memcpy(b.data(), v.data(), v.size());
  if (perf_ != nullptr) perf_->payload_bytes_copied += v.size();
  return b;
}

std::size_t BufferPool::cached_blocks() const {
  std::size_t n = 0;
  for (const auto& cls : free_) n += cls.size();
  return n;
}

void append_be(Buffer& out, std::uint64_t value, std::size_t width) {
  std::uint8_t* p = out.append(width);
  for (std::size_t i = 0; i < width; ++i) {
    p[i] = static_cast<std::uint8_t>(value >> (8 * (width - 1 - i)));
  }
}

}  // namespace hipcloud::crypto
