#pragma once

#include <cstddef>

namespace hipcloud::crypto {

/// Virtual-time cost model for cryptographic operations, in CPU cycles.
///
/// The simulator executes every operation for real (ciphertext on the
/// simulated wire is genuine), but the *time charged* to a VM's
/// CpuScheduler comes from this table so performance curves are
/// deterministic and instance-type dependent. Defaults approximate a
/// ~2.6 GHz 2010-era Xeon as deployed in EC2 at the time of the paper
/// (openssl-speed-style numbers).
struct CostModel {
  // Asymmetric operations (per op).
  double rsa1024_sign_cycles = 1.3e6;
  double rsa1024_verify_cycles = 70e3;
  double rsa2048_sign_cycles = 8.0e6;
  double rsa2048_verify_cycles = 250e3;
  double ecdsa_p256_sign_cycles = 350e3;
  double ecdsa_p256_verify_cycles = 1.0e6;
  double dh_modp1536_cycles = 2.0e6;  // one modexp
  double ecdh_p256_cycles = 900e3;    // one point multiply

  // Symmetric/data-plane (per byte). Pre-AES-NI software crypto inside a
  // paravirtualized guest: noticeably slower than bare metal.
  double aes_cycles_per_byte = 30.0;
  double sha256_cycles_per_byte = 20.0;
  /// SHA-1 per puzzle attempt over one small input.
  double puzzle_hash_cycles = 700.0;

  // Fixed software overheads. An ESP packet costs kernel IPsec processing
  // plus a VM exit; a TLS record costs user-space record assembly plus
  // the extra copies through the socket layer. Records carry more bytes
  // than packets, so the per-unit costs differ (calibrated so the
  // aggregate per-request costs match the paper's HIP ≈ SSL finding).
  double packet_overhead_cycles = 9000.0;     // per ESP packet
  double tls_record_overhead_cycles = 70000.0;  // per TLS record
  double lsi_translation_cycles = 25000.0;     // HIT<->LSI rewrite per packet
  double hit_processing_cycles = 2000.0;      // HIT source/dest handling

  /// Profile for hosts with AES-NI + SHA-NI and the batched multi-buffer
  /// ICV datapath: symmetric per-byte costs drop to hardware-instruction
  /// rates (openssl-speed-style numbers on a SHA-NI-era Xeon), and the
  /// coalesced send queue amortizes part of the fixed per-packet kernel
  /// work across the packets batched in one event tick. Asymmetric BEX
  /// costs are unchanged — acceleration moves the data plane only.
  static CostModel accelerated() {
    CostModel m;
    m.aes_cycles_per_byte = 0.6;
    m.sha256_cycles_per_byte = 1.4;
    m.packet_overhead_cycles = 6500.0;
    return m;
  }

  double rsa_sign_cycles(std::size_t bits) const {
    return bits > 1536 ? rsa2048_sign_cycles : rsa1024_sign_cycles;
  }
  double rsa_verify_cycles(std::size_t bits) const {
    return bits > 1536 ? rsa2048_verify_cycles : rsa1024_verify_cycles;
  }

  /// Symmetric cost of protecting/unprotecting `bytes` in one ESP packet.
  double record_cycles(std::size_t bytes) const {
    return packet_overhead_cycles +
           static_cast<double>(bytes) *
               (aes_cycles_per_byte + sha256_cycles_per_byte);
  }

  /// Symmetric cost of protecting/unprotecting `bytes` in one TLS record.
  double tls_record_cycles(std::size_t bytes) const {
    return tls_record_overhead_cycles +
           static_cast<double>(bytes) *
               (aes_cycles_per_byte + sha256_cycles_per_byte);
  }
};

}  // namespace hipcloud::crypto
