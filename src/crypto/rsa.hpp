#pragma once

#include "crypto/bigint.hpp"
#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

class HmacDrbg;

/// RSA public key (n, e).
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// Serialized form used for HIs on the wire and HIT derivation:
  /// len(e)[2] | e | n.
  Bytes encode() const;
  static RsaPublicKey decode(BytesView data);

  bool operator==(const RsaPublicKey& other) const = default;
};

/// RSA private key with CRT components for fast signing.
struct RsaPrivateKey {
  BigInt n, e, d;
  BigInt p, q, dp, dq, qinv;

  RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA keypair with modulus of `bits` (e = 65537). Determinism
/// follows the DRBG, so identical seeds yield identical keys.
RsaKeyPair rsa_generate(HmacDrbg& drbg, std::size_t bits);

/// PKCS#1 v1.5 signature over SHA-256(message). Returns modulus-width bytes.
Bytes rsa_sign_pkcs1(const RsaPrivateKey& key, BytesView message);

/// Verify a PKCS#1 v1.5 SHA-256 signature.
bool rsa_verify_pkcs1(const RsaPublicKey& key, BytesView message,
                      BytesView signature);

/// PKCS#1 v1.5 encryption (type-2 padding) — used by the TLS baseline's
/// RSA key exchange. Plaintext must be at most modulus_bytes - 11.
Bytes rsa_encrypt_pkcs1(const RsaPublicKey& key, HmacDrbg& drbg,
                        BytesView plaintext);

/// Throws std::runtime_error on padding failure.
Bytes rsa_decrypt_pkcs1(const RsaPrivateKey& key, BytesView ciphertext);

}  // namespace hipcloud::crypto
