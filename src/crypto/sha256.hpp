#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

/// Incremental SHA-256 (FIPS 180-4). Implemented from scratch; verified
/// against the NIST test vectors in tests/crypto/sha256_test.cpp.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalize and return the 32-byte digest. The object must be reset()
  /// before reuse.
  std::array<std::uint8_t, kDigestSize> finish();

  /// One-shot convenience.
  static Bytes digest(BytesView data);

  /// Captured compression state at a block boundary. Lets HMAC precompute
  /// the keyed inner/outer pad blocks once and restart from them per
  /// message instead of rehashing 64 key bytes every call.
  struct Midstate {
    std::array<std::uint32_t, 8> h;
    std::uint64_t processed_bytes;
  };

  /// Snapshot the state. Only valid at a block boundary (no buffered
  /// partial block); throws std::logic_error otherwise.
  Midstate midstate() const;

  /// Reset to a previously captured midstate.
  void restore(const Midstate& m);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// SHA-1 (FIPS 180-1) — needed because HIPv1 (RFC 5201) derives HITs and
/// puzzle digests with SHA-1. One-shot only; not for new designs.
Bytes sha1(BytesView data);

}  // namespace hipcloud::crypto
