#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

/// Block-compression backend shared by Sha256 (streaming) and the
/// multi-buffer scheduler in sha_mb.cpp. Dispatches once per call between
/// the scalar compression and the SHA-NI kernel (sha_ni.cpp) based on
/// CPUID — the digests are byte-identical either way (pinned by
/// tests/crypto/sha_parity_test.cpp).
namespace sha256_backend {

enum class Kind {
  kAuto,    // runtime CPUID dispatch (production default)
  kScalar,  // force the portable compression
  kShaNi,   // prefer SHA-NI; silently falls back to scalar if unsupported
};

/// Compress `nblocks` consecutive 64-byte blocks into `state` using the
/// active backend.
void compress(std::uint32_t state[8], const std::uint8_t* blocks,
              std::size_t nblocks);

/// The portable compression, always available (parity reference).
void compress_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                     std::size_t nblocks);

/// Test hook: override the dispatch for the whole process. Unlike the
/// HIPCLOUD_NO_SHANI env knob (read once), this switches backends
/// in-process so parity tests can interleave them.
void set_for_test(Kind kind);

/// Name of the backend compress() would use right now ("sha-ni"/"scalar").
const char* active_name();

}  // namespace sha256_backend

/// Incremental SHA-256 (FIPS 180-4). Implemented from scratch; verified
/// against the NIST test vectors in tests/crypto/sha256_test.cpp.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalize and return the 32-byte digest. The object must be reset()
  /// before reuse.
  std::array<std::uint8_t, kDigestSize> finish();

  /// One-shot convenience.
  static Bytes digest(BytesView data);

  /// Captured compression state at a block boundary. Lets HMAC precompute
  /// the keyed inner/outer pad blocks once and restart from them per
  /// message instead of rehashing 64 key bytes every call.
  struct Midstate {
    std::array<std::uint32_t, 8> h;
    std::uint64_t processed_bytes;
  };

  /// Snapshot the state. Only valid at a block boundary (no buffered
  /// partial block); throws std::logic_error otherwise.
  Midstate midstate() const;

  /// Reset to a previously captured midstate.
  void restore(const Midstate& m);

 private:
  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// SHA-1 (FIPS 180-1) — needed because HIPv1 (RFC 5201) derives HITs and
/// puzzle digests with SHA-1. One-shot only; not for new designs.
Bytes sha1(BytesView data);

}  // namespace hipcloud::crypto
