#include "crypto/rsa.hpp"

#include <stdexcept>

#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"

namespace hipcloud::crypto {

Bytes RsaPublicKey::encode() const {
  const Bytes eb = e.to_bytes_be();
  const Bytes nb = n.to_bytes_be();
  Bytes out;
  append_be(out, eb.size(), 2);
  out.insert(out.end(), eb.begin(), eb.end());
  out.insert(out.end(), nb.begin(), nb.end());
  return out;
}

RsaPublicKey RsaPublicKey::decode(BytesView data) {
  if (data.size() < 3) throw std::runtime_error("RsaPublicKey: truncated");
  const auto elen = static_cast<std::size_t>(read_be(data, 0, 2));
  if (2 + elen >= data.size()) {
    throw std::runtime_error("RsaPublicKey: truncated");
  }
  RsaPublicKey key;
  key.e = BigInt::from_bytes_be(data.subspan(2, elen));
  key.n = BigInt::from_bytes_be(data.subspan(2 + elen));
  return key;
}

RsaKeyPair rsa_generate(HmacDrbg& drbg, std::size_t bits) {
  if (bits < 128 || bits % 2 != 0) {
    throw std::invalid_argument("rsa_generate: bits must be even and >= 128");
  }
  const BigInt e(65537);
  for (;;) {
    BigInt p = BigInt::generate_prime(drbg, bits / 2);
    BigInt q = BigInt::generate_prime(drbg, bits / 2);
    if (p == q) continue;
    if (p < q) std::swap(p, q);
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (!(BigInt::gcd(e, phi) == BigInt(1))) continue;
    const BigInt d = e.mod_inverse(phi);
    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = d;
    priv.p = p;
    priv.q = q;
    priv.dp = d % (p - BigInt(1));
    priv.dq = d % (q - BigInt(1));
    priv.qinv = q.mod_inverse(p);
    return {priv.public_key(), priv};
  }
}

namespace {

// RSA private operation with CRT: ~4x faster than a full-width mod_exp.
BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& c) {
  const BigInt m1 = c.mod_exp(key.dp, key.p);
  const BigInt m2 = c.mod_exp(key.dq, key.q);
  // h = qinv * (m1 - m2) mod p, handling m1 < m2.
  BigInt diff;
  if (m1 >= m2) {
    diff = m1 - m2;
  } else {
    diff = key.p - ((m2 - m1) % key.p);
  }
  const BigInt h = (key.qinv * diff) % key.p;
  return m2 + key.q * h;
}

// DER prefix for a SHA-256 DigestInfo (RFC 8017 §9.2 note 1).
const std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

Bytes emsa_pkcs1_v15(BytesView message, std::size_t em_len) {
  const Bytes digest = Sha256::digest(message);
  const std::size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
  if (em_len < t_len + 11) {
    throw std::invalid_argument("emsa_pkcs1_v15: modulus too small");
  }
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), kSha256DigestInfo,
            kSha256DigestInfo + sizeof(kSha256DigestInfo));
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

Bytes rsa_sign_pkcs1(const RsaPrivateKey& key, BytesView message) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const Bytes em = emsa_pkcs1_v15(message, k);
  const BigInt m = BigInt::from_bytes_be(em);
  const BigInt s = rsa_private_op(key, m);
  return s.to_bytes_be(k);
}

bool rsa_verify_pkcs1(const RsaPublicKey& key, BytesView message,
                      BytesView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  const BigInt m = s.mod_exp(key.e, key.n);
  const Bytes em = m.to_bytes_be(k);
  Bytes expected;
  try {
    expected = emsa_pkcs1_v15(message, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return ct_equal(em, expected);
}

Bytes rsa_encrypt_pkcs1(const RsaPublicKey& key, HmacDrbg& drbg,
                        BytesView plaintext) {
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() + 11 > k) {
    throw std::invalid_argument("rsa_encrypt_pkcs1: message too long");
  }
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t pad_len = k - plaintext.size() - 3;
  while (em.size() < 2 + pad_len) {
    // Non-zero random padding bytes.
    const Bytes r = drbg.generate(pad_len);
    for (std::uint8_t b : r) {
      if (b != 0 && em.size() < 2 + pad_len) em.push_back(b);
    }
  }
  em.push_back(0x00);
  em.insert(em.end(), plaintext.begin(), plaintext.end());
  const BigInt m = BigInt::from_bytes_be(em);
  return m.mod_exp(key.e, key.n).to_bytes_be(k);
}

Bytes rsa_decrypt_pkcs1(const RsaPrivateKey& key, BytesView ciphertext) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (ciphertext.size() != k) {
    throw std::runtime_error("rsa_decrypt_pkcs1: bad length");
  }
  const BigInt c = BigInt::from_bytes_be(ciphertext);
  if (c >= key.n) throw std::runtime_error("rsa_decrypt_pkcs1: out of range");
  const Bytes em = rsa_private_op(key, c).to_bytes_be(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    throw std::runtime_error("rsa_decrypt_pkcs1: bad padding");
  }
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep < 10 || sep == em.size()) {
    throw std::runtime_error("rsa_decrypt_pkcs1: bad padding");
  }
  return Bytes(em.begin() + static_cast<long>(sep) + 1, em.end());
}

}  // namespace hipcloud::crypto
