#pragma once

#include "crypto/bigint.hpp"
#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

class HmacDrbg;

/// Finite-field Diffie-Hellman over the RFC 3526 MODP groups used by HIP
/// BEX (HIP's DIFFIE_HELLMAN parameter advertises these group ids).
enum class DhGroup : std::uint8_t {
  kModp1536 = 5,   // RFC 3526 group 5
  kModp2048 = 14,  // RFC 3526 group 14
  kModp3072 = 15,  // RFC 3526 group 15
};

/// The (prime, generator) pair for a group. Primes are the published
/// RFC 3526 constants.
struct DhParams {
  BigInt p;
  BigInt g;
  std::size_t prime_bytes;
};

const DhParams& dh_params(DhGroup group);

class DhKeyPair {
 public:
  /// Generate a fresh keypair in the group (private exponent of 256 bits —
  /// ample for the group sizes used here).
  DhKeyPair(DhGroup group, HmacDrbg& drbg);

  DhGroup group() const { return group_; }
  /// Public value g^x mod p, fixed-width big-endian.
  const Bytes& public_value() const { return public_value_; }

  /// Shared secret (peer_public ^ x mod p), fixed-width big-endian.
  /// Throws std::runtime_error on degenerate peer values (0, 1, p-1, >= p).
  Bytes compute_shared(BytesView peer_public) const;

 private:
  DhGroup group_;
  BigInt private_exp_;
  Bytes public_value_;
};

}  // namespace hipcloud::crypto
