// Hardware SHA-256 backend (Intel SHA extensions). Compiled into the
// portable library with per-function target attributes and dispatched at
// runtime from sha256.cpp, exactly like the AES-NI backend in aes_ni.cpp:
// the same binary runs on CPUs without the extension.
//
// The 64-round body follows the canonical SHA-NI scheduling (two rounds
// per sha256rnds2, message schedule kept in four xmm registers rolled
// with sha256msg1/sha256msg2/palignr). Verified bit-for-bit against the
// scalar compression by tests/crypto/sha_parity_test.cpp.

#include "crypto/sha_ni.hpp"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define HIPCLOUD_HAS_SHANI 1
#include <cpuid.h>
#include <immintrin.h>
#else
#define HIPCLOUD_HAS_SHANI 0
#endif

namespace hipcloud::crypto::shani {

#if HIPCLOUD_HAS_SHANI

#define SHANI_TARGET __attribute__((target("sha,sse4.1,ssse3")))

bool supported() {
  static const bool ok = [] {
    // Escape hatch for benchmarking/parity-testing the scalar compression
    // on hardware that has the SHA extensions.
    if (std::getenv("HIPCLOUD_NO_SHANI") != nullptr) return false;
    // SHA is CPUID.(EAX=7,ECX=0):EBX bit 29; __builtin_cpu_supports has no
    // portable "sha" feature name across the GCC versions we build with,
    // so read the leaf directly.
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
    if ((ebx & (1u << 29)) == 0) return false;
    __builtin_cpu_init();
    return __builtin_cpu_supports("sse4.1") != 0 &&
           __builtin_cpu_supports("ssse3") != 0;
  }();
  return ok;
}

SHANI_TARGET void compress(std::uint32_t state[8], const std::uint8_t* blocks,
                           std::size_t nblocks) {
  // State register layout required by sha256rnds2: {A,B,E,F} / {C,D,G,H}.
  __m128i tmp =
      _mm_shuffle_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(state)),
                        0xB1);  // CDAB
  __m128i state1 = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4)),
      0x1B);                                            // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

  const __m128i bswap_mask = _mm_set_epi64x(
      static_cast<long long>(0x0c0d0e0f08090a0bULL),
      static_cast<long long>(0x0405060700010203ULL));

  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint8_t* p = blocks + 64 * b;
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

// Two sha256rnds2 per 4-round group: the low 64 bits of `k+w` feed the
// first pair of rounds, the high 64 bits the second.
#define SHANI_QROUNDS(wk)                                   \
  msg = (wk);                                               \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);      \
  msg = _mm_shuffle_epi32(msg, 0x0E);                       \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg)
#define SHANI_K(hi, lo)                                     \
  _mm_set_epi64x(static_cast<long long>(hi##ULL),           \
                 static_cast<long long>(lo##ULL))

    // Rounds 0-15: load + byte-swap the message block.
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), bswap_mask);
    SHANI_QROUNDS(_mm_add_epi32(msg0, SHANI_K(0xE9B5DBA5B5C0FBCF,
                                              0x71374491428A2F98)));
    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)), bswap_mask);
    SHANI_QROUNDS(_mm_add_epi32(msg1, SHANI_K(0xAB1C5ED5923F82A4,
                                              0x59F111F13956C25B)));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);
    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)), bswap_mask);
    SHANI_QROUNDS(_mm_add_epi32(msg2, SHANI_K(0x550C7DC3243185BE,
                                              0x12835B01D807AA98)));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);
    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)), bswap_mask);
    SHANI_QROUNDS(_mm_add_epi32(msg3, SHANI_K(0xC19BF1749BDC06A7,
                                              0x80DEB1FE72BE5D74)));
    msg0 = _mm_sha256msg2_epu32(
        _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4)), msg3);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

// Steady-state group: consume `cur` (W[4g..4g+3]), extend the schedule.
#define SHANI_SCHED_QROUNDS(cur, prev, next, hi, lo)            \
  SHANI_QROUNDS(_mm_add_epi32(cur, SHANI_K(hi, lo)));           \
  next = _mm_sha256msg2_epu32(                                  \
      _mm_add_epi32(next, _mm_alignr_epi8(cur, prev, 4)), cur); \
  prev = _mm_sha256msg1_epu32(prev, cur)

    SHANI_SCHED_QROUNDS(msg0, msg3, msg1, 0x240CA1CC0FC19DC6,
                        0xEFBE4786E49B69C1);  // 16-19
    SHANI_SCHED_QROUNDS(msg1, msg0, msg2, 0x76F988DA5CB0A9DC,
                        0x4A7484AA2DE92C6F);  // 20-23
    SHANI_SCHED_QROUNDS(msg2, msg1, msg3, 0xBF597FC7B00327C8,
                        0xA831C66D983E5152);  // 24-27
    SHANI_SCHED_QROUNDS(msg3, msg2, msg0, 0x1429296706CA6351,
                        0xD5A79147C6E00BF3);  // 28-31
    SHANI_SCHED_QROUNDS(msg0, msg3, msg1, 0x53380D134D2C6DFC,
                        0x2E1B213827B70A85);  // 32-35
    SHANI_SCHED_QROUNDS(msg1, msg0, msg2, 0x92722C8581C2C92E,
                        0x766A0ABB650A7354);  // 36-39
    SHANI_SCHED_QROUNDS(msg2, msg1, msg3, 0xC76C51A3C24B8B70,
                        0xA81A664BA2BFE8A1);  // 40-43
    SHANI_SCHED_QROUNDS(msg3, msg2, msg0, 0x106AA070F40E3585,
                        0xD6990624D192E819);  // 44-47
    SHANI_SCHED_QROUNDS(msg0, msg3, msg1, 0x34B0BCB52748774C,
                        0x1E376C0819A4C116);  // 48-51

    // Rounds 52-63: the tail of the schedule needs msg2 extensions only.
    SHANI_QROUNDS(_mm_add_epi32(msg1, SHANI_K(0x682E6FF35B9CCA4F,
                                              0x4ED8AA4A391C0CB3)));
    msg2 = _mm_sha256msg2_epu32(
        _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4)), msg1);
    SHANI_QROUNDS(_mm_add_epi32(msg2, SHANI_K(0x8CC7020884C87814,
                                              0x78A5636F748F82EE)));
    msg3 = _mm_sha256msg2_epu32(
        _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4)), msg2);
    SHANI_QROUNDS(_mm_add_epi32(msg3, SHANI_K(0xC67178F2BEF9A3F7,
                                              0xA4506CEB90BEFFFA)));

#undef SHANI_SCHED_QROUNDS
#undef SHANI_K
#undef SHANI_QROUNDS

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

SHANI_TARGET void compress2(std::uint32_t state_a[8],
                            const std::uint8_t* blocks_a,
                            std::uint32_t state_b[8],
                            const std::uint8_t* blocks_b,
                            std::size_t nblocks) {
  // Same canonical scheduling as compress(), two lanes interleaved: every
  // sha256rnds2 of lane a is immediately followed by lane b's, so the two
  // dependency chains overlap in the pipeline. Layout per lane is the
  // usual {A,B,E,F}/{C,D,G,H}.
  __m128i tmp_a = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state_a)), 0xB1);
  __m128i s1a = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state_a + 4)), 0x1B);
  __m128i s0a = _mm_alignr_epi8(tmp_a, s1a, 8);
  s1a = _mm_blend_epi16(s1a, tmp_a, 0xF0);
  __m128i tmp_b = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state_b)), 0xB1);
  __m128i s1b = _mm_shuffle_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state_b + 4)), 0x1B);
  __m128i s0b = _mm_alignr_epi8(tmp_b, s1b, 8);
  s1b = _mm_blend_epi16(s1b, tmp_b, 0xF0);

  const __m128i bswap_mask = _mm_set_epi64x(
      static_cast<long long>(0x0c0d0e0f08090a0bULL),
      static_cast<long long>(0x0405060700010203ULL));

  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint8_t* pa = blocks_a + 64 * b;
    const std::uint8_t* pb = blocks_b + 64 * b;
    const __m128i save0a = s0a, save1a = s1a;
    const __m128i save0b = s0b, save1b = s1b;
    __m128i ma, mb;
    __m128i m0a, m1a, m2a, m3a;
    __m128i m0b, m1b, m2b, m3b;

#define SHANI2_K(hi, lo)                          \
  _mm_set_epi64x(static_cast<long long>(hi##ULL), \
                 static_cast<long long>(lo##ULL))
// Four rounds for both lanes: a's rnds2 issues, then b's uses the
// otherwise-dead latency cycles, round pair by round pair.
#define SHANI2_QROUNDS(wka, wkb)                 \
  ma = (wka);                                    \
  mb = (wkb);                                    \
  s1a = _mm_sha256rnds2_epu32(s1a, s0a, ma);     \
  s1b = _mm_sha256rnds2_epu32(s1b, s0b, mb);     \
  ma = _mm_shuffle_epi32(ma, 0x0E);              \
  mb = _mm_shuffle_epi32(mb, 0x0E);              \
  s0a = _mm_sha256rnds2_epu32(s0a, s1a, ma);     \
  s0b = _mm_sha256rnds2_epu32(s0b, s1b, mb)
#define SHANI2_LOAD(dst_a, dst_b, off)                                      \
  dst_a = _mm_shuffle_epi8(                                                 \
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + (off))),        \
      bswap_mask);                                                          \
  dst_b = _mm_shuffle_epi8(                                                 \
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + (off))),        \
      bswap_mask)

    // Rounds 0-15: load + byte-swap both message blocks.
    SHANI2_LOAD(m0a, m0b, 0);
    SHANI2_QROUNDS(
        _mm_add_epi32(m0a, SHANI2_K(0xE9B5DBA5B5C0FBCF, 0x71374491428A2F98)),
        _mm_add_epi32(m0b, SHANI2_K(0xE9B5DBA5B5C0FBCF, 0x71374491428A2F98)));
    SHANI2_LOAD(m1a, m1b, 16);
    SHANI2_QROUNDS(
        _mm_add_epi32(m1a, SHANI2_K(0xAB1C5ED5923F82A4, 0x59F111F13956C25B)),
        _mm_add_epi32(m1b, SHANI2_K(0xAB1C5ED5923F82A4, 0x59F111F13956C25B)));
    m0a = _mm_sha256msg1_epu32(m0a, m1a);
    m0b = _mm_sha256msg1_epu32(m0b, m1b);
    SHANI2_LOAD(m2a, m2b, 32);
    SHANI2_QROUNDS(
        _mm_add_epi32(m2a, SHANI2_K(0x550C7DC3243185BE, 0x12835B01D807AA98)),
        _mm_add_epi32(m2b, SHANI2_K(0x550C7DC3243185BE, 0x12835B01D807AA98)));
    m1a = _mm_sha256msg1_epu32(m1a, m2a);
    m1b = _mm_sha256msg1_epu32(m1b, m2b);
    SHANI2_LOAD(m3a, m3b, 48);
    SHANI2_QROUNDS(
        _mm_add_epi32(m3a, SHANI2_K(0xC19BF1749BDC06A7, 0x80DEB1FE72BE5D74)),
        _mm_add_epi32(m3b, SHANI2_K(0xC19BF1749BDC06A7, 0x80DEB1FE72BE5D74)));
    m0a = _mm_sha256msg2_epu32(
        _mm_add_epi32(m0a, _mm_alignr_epi8(m3a, m2a, 4)), m3a);
    m0b = _mm_sha256msg2_epu32(
        _mm_add_epi32(m0b, _mm_alignr_epi8(m3b, m2b, 4)), m3b);
    m2a = _mm_sha256msg1_epu32(m2a, m3a);
    m2b = _mm_sha256msg1_epu32(m2b, m3b);

#define SHANI2_SCHED_QROUNDS(cur, prev, next, hi, lo)                        \
  SHANI2_QROUNDS(_mm_add_epi32(cur##a, SHANI2_K(hi, lo)),                    \
                 _mm_add_epi32(cur##b, SHANI2_K(hi, lo)));                   \
  next##a = _mm_sha256msg2_epu32(                                            \
      _mm_add_epi32(next##a, _mm_alignr_epi8(cur##a, prev##a, 4)), cur##a);  \
  next##b = _mm_sha256msg2_epu32(                                            \
      _mm_add_epi32(next##b, _mm_alignr_epi8(cur##b, prev##b, 4)), cur##b);  \
  prev##a = _mm_sha256msg1_epu32(prev##a, cur##a);                           \
  prev##b = _mm_sha256msg1_epu32(prev##b, cur##b)

    SHANI2_SCHED_QROUNDS(m0, m3, m1, 0x240CA1CC0FC19DC6,
                         0xEFBE4786E49B69C1);  // 16-19
    SHANI2_SCHED_QROUNDS(m1, m0, m2, 0x76F988DA5CB0A9DC,
                         0x4A7484AA2DE92C6F);  // 20-23
    SHANI2_SCHED_QROUNDS(m2, m1, m3, 0xBF597FC7B00327C8,
                         0xA831C66D983E5152);  // 24-27
    SHANI2_SCHED_QROUNDS(m3, m2, m0, 0x1429296706CA6351,
                         0xD5A79147C6E00BF3);  // 28-31
    SHANI2_SCHED_QROUNDS(m0, m3, m1, 0x53380D134D2C6DFC,
                         0x2E1B213827B70A85);  // 32-35
    SHANI2_SCHED_QROUNDS(m1, m0, m2, 0x92722C8581C2C92E,
                         0x766A0ABB650A7354);  // 36-39
    SHANI2_SCHED_QROUNDS(m2, m1, m3, 0xC76C51A3C24B8B70,
                         0xA81A664BA2BFE8A1);  // 40-43
    SHANI2_SCHED_QROUNDS(m3, m2, m0, 0x106AA070F40E3585,
                         0xD6990624D192E819);  // 44-47
    SHANI2_SCHED_QROUNDS(m0, m3, m1, 0x34B0BCB52748774C,
                         0x1E376C0819A4C116);  // 48-51

    // Rounds 52-63: schedule tail.
    SHANI2_QROUNDS(
        _mm_add_epi32(m1a, SHANI2_K(0x682E6FF35B9CCA4F, 0x4ED8AA4A391C0CB3)),
        _mm_add_epi32(m1b, SHANI2_K(0x682E6FF35B9CCA4F, 0x4ED8AA4A391C0CB3)));
    m2a = _mm_sha256msg2_epu32(
        _mm_add_epi32(m2a, _mm_alignr_epi8(m1a, m0a, 4)), m1a);
    m2b = _mm_sha256msg2_epu32(
        _mm_add_epi32(m2b, _mm_alignr_epi8(m1b, m0b, 4)), m1b);
    SHANI2_QROUNDS(
        _mm_add_epi32(m2a, SHANI2_K(0x8CC7020884C87814, 0x78A5636F748F82EE)),
        _mm_add_epi32(m2b, SHANI2_K(0x8CC7020884C87814, 0x78A5636F748F82EE)));
    m3a = _mm_sha256msg2_epu32(
        _mm_add_epi32(m3a, _mm_alignr_epi8(m2a, m1a, 4)), m2a);
    m3b = _mm_sha256msg2_epu32(
        _mm_add_epi32(m3b, _mm_alignr_epi8(m2b, m1b, 4)), m2b);
    SHANI2_QROUNDS(
        _mm_add_epi32(m3a, SHANI2_K(0xC67178F2BEF9A3F7, 0xA4506CEB90BEFFFA)),
        _mm_add_epi32(m3b, SHANI2_K(0xC67178F2BEF9A3F7, 0xA4506CEB90BEFFFA)));

#undef SHANI2_SCHED_QROUNDS
#undef SHANI2_LOAD
#undef SHANI2_QROUNDS
#undef SHANI2_K

    s0a = _mm_add_epi32(s0a, save0a);
    s1a = _mm_add_epi32(s1a, save1a);
    s0b = _mm_add_epi32(s0b, save0b);
    s1b = _mm_add_epi32(s1b, save1b);
  }

  tmp_a = _mm_shuffle_epi32(s0a, 0x1B);
  s1a = _mm_shuffle_epi32(s1a, 0xB1);
  s0a = _mm_blend_epi16(tmp_a, s1a, 0xF0);
  s1a = _mm_alignr_epi8(s1a, tmp_a, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state_a), s0a);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state_a + 4), s1a);
  tmp_b = _mm_shuffle_epi32(s0b, 0x1B);
  s1b = _mm_shuffle_epi32(s1b, 0xB1);
  s0b = _mm_blend_epi16(tmp_b, s1b, 0xF0);
  s1b = _mm_alignr_epi8(s1b, tmp_b, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state_b), s0b);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state_b + 4), s1b);
}

#else  // !HIPCLOUD_HAS_SHANI — stubs so non-x86 builds link; never called
       // because supported() is false.

bool supported() { return false; }
void compress(std::uint32_t[8], const std::uint8_t*, std::size_t) {}
void compress2(std::uint32_t[8], const std::uint8_t*, std::uint32_t[8],
               const std::uint8_t*, std::size_t) {}

#endif

}  // namespace hipcloud::crypto::shani
