#pragma once

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

/// HMAC-SHA256 (RFC 2104). Keys of any length; long keys are hashed first.
Bytes hmac_sha256(BytesView key, BytesView message);

/// HKDF-style expand used for HIP KEYMAT (RFC 5201 §6.5 uses a similar
/// iterated-hash construction) and TLS key blocks: repeated
/// HMAC(key, T(n-1) | info | n) until `length` bytes are produced.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// HKDF extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

}  // namespace hipcloud::crypto
