#pragma once

#include "crypto/bytes.hpp"
#include "crypto/sha256.hpp"

namespace hipcloud::crypto {

/// Streaming HMAC-SHA256 (RFC 2104) with precomputed key schedule.
///
/// Construction hashes the ipad/opad blocks once; reset() rewinds to those
/// midstates, so per-message cost is just the message blocks plus one extra
/// compression — no key rehash, no concat temporaries, no heap. Copyable:
/// keep one keyed instance per SA/session and copy (or reset) per packet.
class HmacSha256 {
 public:
  static constexpr std::size_t kDigestSize = Sha256::kDigestSize;

  HmacSha256() = default;
  explicit HmacSha256(BytesView key);

  /// Restart the MAC for a new message under the same key.
  void reset();
  void update(BytesView data);
  /// Finalize into a 32-byte buffer. reset() before reuse.
  void finish(std::uint8_t out[kDigestSize]);

  /// Keyed midstates (post-ipad/-opad compression). HmacSha256Mb seeds its
  /// lanes from these so the multi-buffer path shares the exact key
  /// schedule this streaming instance uses.
  const Sha256::Midstate& inner_midstate() const { return inner_; }
  const Sha256::Midstate& outer_midstate() const { return outer_; }

 private:
  Sha256::Midstate inner_{};  // state after the ipad block
  Sha256::Midstate outer_{};  // state after the opad block
  Sha256 hash_;
};

/// HMAC-SHA256 one-shot (RFC 2104). Keys of any length; long keys are
/// hashed first.
Bytes hmac_sha256(BytesView key, BytesView message);

/// HKDF-style expand used for HIP KEYMAT (RFC 5201 §6.5 uses a similar
/// iterated-hash construction) and TLS key blocks: repeated
/// HMAC(key, T(n-1) | info | n) until `length` bytes are produced.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// HKDF extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

}  // namespace hipcloud::crypto
