#include "crypto/sha256.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "crypto/sha_ni.hpp"

namespace hipcloud::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

namespace sha256_backend {

namespace {
// kAuto by default; tests flip this with set_for_test(). Relaxed is fine:
// there is no data guarded by the flag, only a pure-function choice.
std::atomic<Kind> g_forced{Kind::kAuto};
}  // namespace

void compress_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                     std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* p = blocks + 64 * blk;
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t(p[4 * i]) << 24) |
             (std::uint32_t(p[4 * i + 1]) << 16) |
             (std::uint32_t(p[4 * i + 2]) << 8) | std::uint32_t(p[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + t2;
    }
    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
  }
}

void compress(std::uint32_t state[8], const std::uint8_t* blocks,
              std::size_t nblocks) {
  const Kind forced = g_forced.load(std::memory_order_relaxed);
  if (forced != Kind::kScalar && shani::supported()) {
    shani::compress(state, blocks, nblocks);
  } else {
    compress_scalar(state, blocks, nblocks);
  }
}

void set_for_test(Kind kind) {
  g_forced.store(kind, std::memory_order_relaxed);
}

const char* active_name() {
  return g_forced.load(std::memory_order_relaxed) != Kind::kScalar &&
                 shani::supported()
             ? "sha-ni"
             : "scalar";
}

}  // namespace sha256_backend

void Sha256::reset() {
  h_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha256::update(BytesView data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t need = kBlockSize - buf_len_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == kBlockSize) {
      sha256_backend::compress(h_.data(), buf_.data(), 1);
      buf_len_ = 0;
    }
  }
  // Hand all full blocks to the backend in one call so SHA-NI amortizes
  // its state shuffles across the whole run instead of per block.
  if (const std::size_t nblocks = (data.size() - off) / kBlockSize) {
    sha256_backend::compress(h_.data(), data.data() + off, nblocks);
    off += nblocks * kBlockSize;
  }
  if (off < data.size()) {
    buf_len_ = data.size() - off;
    std::memcpy(buf_.data(), data.data() + off, buf_len_);
  }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  const std::uint8_t pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  static const std::uint8_t zeros[kBlockSize] = {};
  while (buf_len_ != 56) {
    const std::size_t gap = buf_len_ < 56 ? 56 - buf_len_ : kBlockSize - buf_len_ + 56;
    update(BytesView(zeros, gap));
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  update(BytesView(len_be, 8));
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Sha256::Midstate Sha256::midstate() const {
  if (buf_len_ != 0) {
    throw std::logic_error("Sha256::midstate: not at a block boundary");
  }
  return Midstate{h_, total_len_};
}

void Sha256::restore(const Midstate& m) {
  h_ = m.h;
  total_len_ = m.processed_bytes;
  buf_len_ = 0;
}

Bytes Sha256::digest(BytesView data) {
  Sha256 h;
  h.update(data);
  const auto d = h.finish();
  return Bytes(d.begin(), d.end());
}

Bytes sha1(BytesView data) {
  std::uint32_t h0 = 0x67452301, h1 = 0xEFCDAB89, h2 = 0x98BADCFE,
                h3 = 0x10325476, h4 = 0xC3D2E1F0;
  // Build the padded message (one-shot keeps this simple and is fine for
  // HIT/puzzle-sized inputs).
  Bytes m(data.begin(), data.end());
  const std::uint64_t bit_len = static_cast<std::uint64_t>(m.size()) * 8;
  m.push_back(0x80);
  while (m.size() % 64 != 56) m.push_back(0);
  for (int i = 0; i < 8; ++i) {
    m.push_back(static_cast<std::uint8_t>(bit_len >> (8 * (7 - i))));
  }
  auto rotl = [](std::uint32_t x, int n) {
    return (x << n) | (x >> (32 - n));
  };
  for (std::size_t blk = 0; blk < m.size(); blk += 64) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      const std::uint8_t* p = m.data() + blk + 4 * i;
      w[i] = (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
             (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    std::uint32_t a = h0, b = h1, c = h2, d = h3, e = h4;
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) { f = (b & c) | (~b & d); k = 0x5A827999; }
      else if (i < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
      else if (i < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC; }
      else { f = b ^ c ^ d; k = 0xCA62C1D6; }
      const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
      e = d; d = c; c = rotl(b, 30); b = a; a = tmp;
    }
    h0 += a; h1 += b; h2 += c; h3 += d; h4 += e;
  }
  Bytes out(20);
  const std::uint32_t hs[5] = {h0, h1, h2, h3, h4};
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(hs[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(hs[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(hs[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(hs[i]);
  }
  return out;
}

}  // namespace hipcloud::crypto
