#pragma once

#include <optional>

#include "crypto/bigint.hpp"
#include "crypto/bytes.hpp"

namespace hipcloud::crypto {

class HmacDrbg;

/// NIST P-256 (secp256r1) elliptic-curve operations: ECDH and ECDSA with
/// SHA-256. This backs the elliptic-curve Host Identities the paper cites
/// (Ponomarev et al., "ECC for HIP") and the A2 ablation bench.
namespace p256 {

/// Affine point; `infinity` marks the identity element.
struct Point {
  BigInt x;
  BigInt y;
  bool infinity = true;

  bool operator==(const Point& other) const;
};

/// Curve order n and base point G accessors (published NIST constants).
const BigInt& order();
const Point& generator();
const BigInt& field_prime();

/// True when `pt` is the identity or satisfies the curve equation.
bool on_curve(const Point& pt);

/// Scalar multiplication k*P (Jacobian double-and-add internally).
Point multiply(const Point& p, const BigInt& k);

Point add(const Point& a, const Point& b);

/// Uncompressed SEC1 encoding: 0x04 | x(32) | y(32); identity -> {0x00}.
Bytes encode_point(const Point& pt);
/// Throws std::runtime_error on malformed or off-curve input.
Point decode_point(BytesView data);

struct KeyPair {
  BigInt private_scalar;
  Point public_point;
};

/// Random keypair with private scalar in [1, n).
KeyPair generate(HmacDrbg& drbg);

/// ECDH: x-coordinate of d * peer, 32 bytes. Rejects identity results.
Bytes ecdh(const BigInt& private_scalar, const Point& peer_public);

struct Signature {
  BigInt r;
  BigInt s;

  Bytes encode() const;  // r(32) | s(32)
  static Signature decode(BytesView data);
};

/// ECDSA sign over SHA-256(message); nonce from the DRBG.
Signature ecdsa_sign(const BigInt& private_scalar, HmacDrbg& drbg,
                     BytesView message);

bool ecdsa_verify(const Point& public_point, BytesView message,
                  const Signature& sig);

}  // namespace p256
}  // namespace hipcloud::crypto
