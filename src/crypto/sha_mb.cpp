// Multi-buffer SHA-256 backend: one independent message per SIMD lane,
// compressed in lock-step. The kernels keep the eight working variables
// as vectors-of-lanes (transposed form), so each vector instruction
// advances every message by one round — throughput scales with lane
// count rather than with the (serial) dependency chain of one hash.
//
// Tiering: 8 lanes under AVX2, 4 under SSE2+SSSE3, 2 interleaved SHA-NI
// streams when the CPU has the SHA extensions (shani::compress2 — faster
// than any transposed tier there), and a per-lane fallback through
// sha256_backend::compress. Everything here is allocation-free: the ESP
// batch path runs through HmacSha256Mb::compute on the per-packet hot
// path.

#include "crypto/sha_mb.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "crypto/sha_ni.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define HIPCLOUD_HAS_SHAMB 1
#include <immintrin.h>
#else
#define HIPCLOUD_HAS_SHAMB 0
#endif

namespace hipcloud::crypto::shamb {

namespace {

constexpr std::uint32_t kRoundK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

#if HIPCLOUD_HAS_SHAMB

// ---- 4-lane SSE kernel -----------------------------------------------------

#define SHAMB_SSE __attribute__((target("ssse3")))

// Macros (not inline helpers) so the shift counts stay integer literals —
// GCC's unoptimized intrinsic macros demand immediates.
#define MB4_ROTR(x, n) \
  _mm_or_si128(_mm_srli_epi32(x, n), _mm_slli_epi32(x, 32 - (n)))
#define MB4_XOR3(x, y, z) _mm_xor_si128(_mm_xor_si128(x, y), z)
#define MB4_BSIG0(x) MB4_XOR3(MB4_ROTR(x, 2), MB4_ROTR(x, 13), MB4_ROTR(x, 22))
#define MB4_BSIG1(x) MB4_XOR3(MB4_ROTR(x, 6), MB4_ROTR(x, 11), MB4_ROTR(x, 25))
#define MB4_SSIG0(x) \
  MB4_XOR3(MB4_ROTR(x, 7), MB4_ROTR(x, 18), _mm_srli_epi32(x, 3))
#define MB4_SSIG1(x) \
  MB4_XOR3(MB4_ROTR(x, 17), MB4_ROTR(x, 19), _mm_srli_epi32(x, 10))
// 4x4 32-bit transpose, in place.
#define MB4_T4X4(r0, r1, r2, r3)                      \
  do {                                                \
    const __m128i t0 = _mm_unpacklo_epi32(r0, r1);    \
    const __m128i t1 = _mm_unpacklo_epi32(r2, r3);    \
    const __m128i t2 = _mm_unpackhi_epi32(r0, r1);    \
    const __m128i t3 = _mm_unpackhi_epi32(r2, r3);    \
    r0 = _mm_unpacklo_epi64(t0, t1);                  \
    r1 = _mm_unpackhi_epi64(t0, t1);                  \
    r2 = _mm_unpacklo_epi64(t2, t3);                  \
    r3 = _mm_unpackhi_epi64(t2, t3);                  \
  } while (0)

SHAMB_SSE void compress4_sse(std::uint32_t (*states)[8],
                             const std::uint8_t* const* blocks,
                             std::size_t nblocks) {
  const __m128i bswap =
      _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  // Transpose the four 8-word states into one vector per working variable.
  __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[0]));
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[1]));
  __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[2]));
  __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[3]));
  MB4_T4X4(a, b, c, d);
  __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[0] + 4));
  __m128i f = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[1] + 4));
  __m128i g = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[2] + 4));
  __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[3] + 4));
  MB4_T4X4(e, f, g, h);

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const __m128i sa = a, sb = b, sc = c, sd = d;
    const __m128i se = e, sf = f, sg = g, sh = h;

    __m128i w[16];
    for (int q = 0; q < 4; ++q) {
      __m128i m0 = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[0] +
                                                           64 * blk + 16 * q)),
          bswap);
      __m128i m1 = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[1] +
                                                           64 * blk + 16 * q)),
          bswap);
      __m128i m2 = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[2] +
                                                           64 * blk + 16 * q)),
          bswap);
      __m128i m3 = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[3] +
                                                           64 * blk + 16 * q)),
          bswap);
      MB4_T4X4(m0, m1, m2, m3);
      w[4 * q + 0] = m0;
      w[4 * q + 1] = m1;
      w[4 * q + 2] = m2;
      w[4 * q + 3] = m3;
    }

    for (int i = 0; i < 64; ++i) {
      if (i >= 16) {
        w[i & 15] = _mm_add_epi32(
            _mm_add_epi32(MB4_SSIG0(w[(i - 15) & 15]), w[(i - 7) & 15]),
            _mm_add_epi32(MB4_SSIG1(w[(i - 2) & 15]), w[i & 15]));
      }
      const __m128i wk = _mm_add_epi32(
          w[i & 15], _mm_set1_epi32(static_cast<int>(kRoundK[i])));
      const __m128i ch =
          _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
      const __m128i t1 = _mm_add_epi32(_mm_add_epi32(h, MB4_BSIG1(e)),
                                       _mm_add_epi32(ch, wk));
      const __m128i maj = _mm_xor_si128(
          _mm_and_si128(_mm_xor_si128(a, b), c), _mm_and_si128(a, b));
      const __m128i t2 = _mm_add_epi32(MB4_BSIG0(a), maj);
      h = g; g = f; f = e; e = _mm_add_epi32(d, t1);
      d = c; c = b; b = a; a = _mm_add_epi32(t1, t2);
    }

    a = _mm_add_epi32(a, sa); b = _mm_add_epi32(b, sb);
    c = _mm_add_epi32(c, sc); d = _mm_add_epi32(d, sd);
    e = _mm_add_epi32(e, se); f = _mm_add_epi32(f, sf);
    g = _mm_add_epi32(g, sg); h = _mm_add_epi32(h, sh);
  }

  MB4_T4X4(a, b, c, d);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[0]), a);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[1]), b);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[2]), c);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[3]), d);
  MB4_T4X4(e, f, g, h);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[0] + 4), e);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[1] + 4), f);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[2] + 4), g);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[3] + 4), h);
}

// ---- 8-lane AVX2 kernel ----------------------------------------------------

#define SHAMB_AVX2 __attribute__((target("avx2")))

#define MB8_ROTR(x, n) \
  _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - (n)))
#define MB8_XOR3(x, y, z) _mm256_xor_si256(_mm256_xor_si256(x, y), z)
#define MB8_BSIG0(x) MB8_XOR3(MB8_ROTR(x, 2), MB8_ROTR(x, 13), MB8_ROTR(x, 22))
#define MB8_BSIG1(x) MB8_XOR3(MB8_ROTR(x, 6), MB8_ROTR(x, 11), MB8_ROTR(x, 25))
#define MB8_SSIG0(x) \
  MB8_XOR3(MB8_ROTR(x, 7), MB8_ROTR(x, 18), _mm256_srli_epi32(x, 3))
#define MB8_SSIG1(x) \
  MB8_XOR3(MB8_ROTR(x, 17), MB8_ROTR(x, 19), _mm256_srli_epi32(x, 10))
// 8x8 32-bit transpose, in place (unpack within 128-bit halves, then
// recombine halves with permute2x128).
#define MB8_T8X8(r0, r1, r2, r3, r4, r5, r6, r7)       \
  do {                                                 \
    const __m256i t0 = _mm256_unpacklo_epi32(r0, r1);  \
    const __m256i t1 = _mm256_unpackhi_epi32(r0, r1);  \
    const __m256i t2 = _mm256_unpacklo_epi32(r2, r3);  \
    const __m256i t3 = _mm256_unpackhi_epi32(r2, r3);  \
    const __m256i t4 = _mm256_unpacklo_epi32(r4, r5);  \
    const __m256i t5 = _mm256_unpackhi_epi32(r4, r5);  \
    const __m256i t6 = _mm256_unpacklo_epi32(r6, r7);  \
    const __m256i t7 = _mm256_unpackhi_epi32(r6, r7);  \
    const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);  \
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);  \
    const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);  \
    const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);  \
    const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);  \
    const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);  \
    const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);  \
    const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);  \
    r0 = _mm256_permute2x128_si256(u0, u4, 0x20);      \
    r1 = _mm256_permute2x128_si256(u1, u5, 0x20);      \
    r2 = _mm256_permute2x128_si256(u2, u6, 0x20);      \
    r3 = _mm256_permute2x128_si256(u3, u7, 0x20);      \
    r4 = _mm256_permute2x128_si256(u0, u4, 0x31);      \
    r5 = _mm256_permute2x128_si256(u1, u5, 0x31);      \
    r6 = _mm256_permute2x128_si256(u2, u6, 0x31);      \
    r7 = _mm256_permute2x128_si256(u3, u7, 0x31);      \
  } while (0)

SHAMB_AVX2 void compress8_avx2(std::uint32_t (*states)[8],
                               const std::uint8_t* const* blocks,
                               std::size_t nblocks) {
  const __m256i bswap = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

  // Each state row is exactly one __m256i; transpose rows -> variables.
  __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[0]));
  __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[1]));
  __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[2]));
  __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[3]));
  __m256i e = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[4]));
  __m256i f = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[5]));
  __m256i g = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[6]));
  __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states[7]));
  MB8_T8X8(a, b, c, d, e, f, g, h);

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const __m256i sa = a, sb = b, sc = c, sd = d;
    const __m256i se = e, sf = f, sg = g, sh = h;

    __m256i w[16];
    for (int half = 0; half < 2; ++half) {
      __m256i m[8];
      for (int l = 0; l < 8; ++l) {
        m[l] = _mm256_shuffle_epi8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                blocks[l] + 64 * blk + 32 * half)),
            bswap);
      }
      MB8_T8X8(m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7]);
      for (int i = 0; i < 8; ++i) w[8 * half + i] = m[i];
    }

    for (int i = 0; i < 64; ++i) {
      if (i >= 16) {
        w[i & 15] = _mm256_add_epi32(
            _mm256_add_epi32(MB8_SSIG0(w[(i - 15) & 15]), w[(i - 7) & 15]),
            _mm256_add_epi32(MB8_SSIG1(w[(i - 2) & 15]), w[i & 15]));
      }
      const __m256i wk = _mm256_add_epi32(
          w[i & 15], _mm256_set1_epi32(static_cast<int>(kRoundK[i])));
      const __m256i ch =
          _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(_mm256_add_epi32(h, MB8_BSIG1(e)),
                                          _mm256_add_epi32(ch, wk));
      const __m256i maj = _mm256_xor_si256(
          _mm256_and_si256(_mm256_xor_si256(a, b), c), _mm256_and_si256(a, b));
      const __m256i t2 = _mm256_add_epi32(MB8_BSIG0(a), maj);
      h = g; g = f; f = e; e = _mm256_add_epi32(d, t1);
      d = c; c = b; b = a; a = _mm256_add_epi32(t1, t2);
    }

    a = _mm256_add_epi32(a, sa); b = _mm256_add_epi32(b, sb);
    c = _mm256_add_epi32(c, sc); d = _mm256_add_epi32(d, sd);
    e = _mm256_add_epi32(e, se); f = _mm256_add_epi32(f, sf);
    g = _mm256_add_epi32(g, sg); h = _mm256_add_epi32(h, sh);
  }

  MB8_T8X8(a, b, c, d, e, f, g, h);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[0]), a);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[1]), b);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[2]), c);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[3]), d);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[4]), e);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[5]), f);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[6]), g);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states[7]), h);
}

#endif  // HIPCLOUD_HAS_SHAMB

// Widest transposed-SIMD tier the hardware (and env knobs) allow —
// independent of whether we'd *choose* it.
std::size_t hw_simd_width() {
  static const std::size_t width = [] {
    if (std::getenv("HIPCLOUD_NO_SHAMB") != nullptr) return std::size_t{1};
    std::size_t cap = kMaxLanes;
    if (const char* lanes = std::getenv("HIPCLOUD_SHAMB_LANES")) {
      cap = static_cast<std::size_t>(std::strtoul(lanes, nullptr, 10));
      if (cap == 0) cap = 1;
      if (cap > kMaxLanes) cap = kMaxLanes;
    }
#if HIPCLOUD_HAS_SHAMB
    __builtin_cpu_init();
    if (cap >= 8 && __builtin_cpu_supports("avx2")) return std::size_t{8};
    if (cap >= 4 && __builtin_cpu_supports("sse2") &&
        __builtin_cpu_supports("ssse3")) {
      return std::size_t{4};
    }
    // Width 2 is not a transposed tier: it is two interleaved SHA-NI
    // streams (shani::compress2), so it needs the SHA extensions.
    if (cap >= 2 && shani::supported()) return std::size_t{2};
#endif
    return std::size_t{1};
  }();
  return width;
}

// The tier actually used when nothing forces one. On SHA-NI parts the
// single-stream kernel already outruns 8 transposed AVX2 lanes (measured
// ~1.25x over AVX2-x8 here), and interleaving two independent streams
// per pass hides the sha256rnds2 latency chain on top of that — so
// batches run two lanes at a time through shani::compress2; the
// transposed tiers carry pre-SHA-NI hosts. An explicit
// HIPCLOUD_SHAMB_LANES still forces a tier ("1" the single stream, "4"/
// "8" the transposed kernels) — that is how benches compare backends on
// SHA-NI machines.
std::size_t preferred_width() {
  static const std::size_t width = [] {
    if (shani::supported() && std::getenv("HIPCLOUD_NO_SHAMB") == nullptr &&
        std::getenv("HIPCLOUD_SHAMB_LANES") == nullptr) {
      return std::size_t{2};
    }
    return hw_simd_width();
  }();
  return width;
}

// In-process override for tests (0 = no override).
std::atomic<std::size_t> g_test_cap{0};

}  // namespace

std::size_t lane_width() {
  const std::size_t cap = g_test_cap.load(std::memory_order_relaxed);
  if (cap == 0) return preferred_width();
  // A test cap selects a tier outright (so SIMD kernels are testable on
  // SHA-NI hosts, where the preferred width is 2): >=8 the AVX2 tier,
  // >=4 the SSE tier, >=2 the dual-stream SHA-NI pair, below that
  // single-stream — always bounded by what the hardware and env knobs
  // support.
  const std::size_t tier =
      cap >= 8 ? 8 : cap >= 4 ? 4 : (cap >= 2 && shani::supported()) ? 2 : 1;
  return std::min(tier, hw_simd_width());
}

void set_lane_cap_for_test(std::size_t cap) {
  g_test_cap.store(cap, std::memory_order_relaxed);
}

const char* active_name() {
  switch (lane_width()) {
    case 8: return "avx2-x8";
    case 4: return "sse-x4";
    case 2: return "sha-ni-x2";
    // Width 1 runs lanes through the single-stream backend — report
    // which one ("sha-ni" or "scalar").
    default: return sha256_backend::active_name();
  }
}

void compress_blocks(std::uint32_t (*states)[8],
                     const std::uint8_t* const* blocks, std::size_t nlanes,
                     std::size_t nblocks) {
  if (nblocks == 0 || nlanes == 0) return;
  std::size_t done = 0;
  const std::size_t width = lane_width();
#if HIPCLOUD_HAS_SHAMB
  while (width >= 8 && nlanes - done >= 8) {
    compress8_avx2(states + done, blocks + done, nblocks);
    done += 8;
  }
  while (width >= 4 && nlanes - done >= 4) {
    compress4_sse(states + done, blocks + done, nblocks);
    done += 4;
  }
#endif
  // Remaining lanes — the width-2 tier and any odd remainder of the
  // transposed tiers — run pairwise through the dual-stream SHA-NI
  // kernel when the CPU has it (width 1 means single-stream was forced,
  // so stay off it there).
  if (width >= 2 && shani::supported()) {
    while (nlanes - done >= 2) {
      shani::compress2(states[done], blocks[done], states[done + 1],
                       blocks[done + 1], nblocks);
      done += 2;
    }
  }
  // A last odd lane (and the no-SIMD tier) runs one at a time through
  // the single-stream backend — SHA-NI when the CPU has it.
  for (; done < nlanes; ++done) {
    sha256_backend::compress(states[done], blocks[done], nblocks);
  }
}

}  // namespace hipcloud::crypto::shamb

namespace hipcloud::crypto {

namespace {

void store_be32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

// hipcheck:hot
void HmacSha256Mb::compute(Job* jobs, std::size_t njobs) const {
  const Sha256::Midstate& inner = mac_.inner_midstate();
  const Sha256::Midstate& outer = mac_.outer_midstate();
  constexpr std::size_t kW = shamb::kMaxLanes;

  std::size_t j = 0;
  while (j < njobs) {
    const std::size_t n = std::min(shamb::lane_width(), njobs - j);

    // Per-lane plumbing, all on the stack: SHA state, the padded tail
    // (last partial block + 0x80 + length, at most two blocks), and the
    // cursor over data-then-tail.
    std::uint32_t states[kW][8];
    std::uint32_t inner_h[kW][8];
    std::uint8_t tails[kW][2 * Sha256::kBlockSize];
    const std::uint8_t* ptrs[kW];
    std::size_t data_blocks[kW];  // full 64-byte blocks still in `data`
    std::size_t left[kW];         // total blocks (data + tail) remaining

    for (std::size_t l = 0; l < n; ++l) {
      const Job& job = jobs[j + l];
      for (int i = 0; i < 8; ++i) states[l][i] = inner.h[i];
      data_blocks[l] = job.len / Sha256::kBlockSize;
      const std::size_t rem = job.len % Sha256::kBlockSize;
      const std::size_t tail_blocks = rem + 1 + 8 <= Sha256::kBlockSize ? 1 : 2;
      std::memset(tails[l], 0, sizeof tails[l]);
      if (rem > 0) {
        std::memcpy(tails[l], job.data + job.len - rem, rem);
      }
      tails[l][rem] = 0x80;
      const std::uint64_t bits = (inner.processed_bytes + job.len) * 8;
      std::uint8_t* lenp = tails[l] + 64 * tail_blocks - 8;
      for (int i = 0; i < 8; ++i) {
        lenp[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
      }
      left[l] = data_blocks[l] + tail_blocks;
      ptrs[l] = data_blocks[l] > 0 ? job.data : tails[l];
    }

    // Inner pass, lock-step. Each round compresses `step` blocks on every
    // lane, where `step` is the largest contiguous run all lanes can
    // serve (whole data region for equal-length batches — the common ESP
    // case — so the SIMD kernels amortize their transposes). Lanes that
    // finish early have their state snapshotted and then grind their tail
    // block as dummy work; no compaction, no pointer fix-ups.
    std::size_t live = n;
    while (live > 0) {
      std::size_t step = SIZE_MAX;
      for (std::size_t l = 0; l < n; ++l) {
        const std::size_t avail =
            left[l] == 0 ? 1 : (data_blocks[l] > 0 ? data_blocks[l] : left[l]);
        step = std::min(step, avail);
      }
      shamb::compress_blocks(states, ptrs, n, step);
      for (std::size_t l = 0; l < n; ++l) {
        if (left[l] == 0) continue;  // dummy lane, state is scratch now
        left[l] -= step;
        if (left[l] == 0) {
          std::memcpy(inner_h[l], states[l], sizeof inner_h[l]);
          ptrs[l] = tails[l];  // keep the dummy reads in bounds
          --live;
        } else if (data_blocks[l] > 0) {
          data_blocks[l] -= step;
          ptrs[l] = data_blocks[l] > 0 ? ptrs[l] + 64 * step : tails[l];
        } else {
          ptrs[l] += 64 * step;  // advancing within the 2-block tail
        }
      }
    }

    // Outer pass: HMAC's outer message is always digest(32) + padding =
    // exactly one block per lane, so this is a single uniform step.
    std::uint8_t outer_blocks[kW][Sha256::kBlockSize];
    for (std::size_t l = 0; l < n; ++l) {
      std::memset(outer_blocks[l], 0, sizeof outer_blocks[l]);
      for (int i = 0; i < 8; ++i) {
        store_be32(outer_blocks[l] + 4 * i, inner_h[l][i]);
      }
      outer_blocks[l][32] = 0x80;
      const std::uint64_t bits = (outer.processed_bytes + 32) * 8;
      for (int i = 0; i < 8; ++i) {
        outer_blocks[l][56 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
      }
      for (int i = 0; i < 8; ++i) states[l][i] = outer.h[i];
      ptrs[l] = outer_blocks[l];
    }
    shamb::compress_blocks(states, ptrs, n, 1);
    for (std::size_t l = 0; l < n; ++l) {
      for (int i = 0; i < 8; ++i) {
        store_be32(jobs[j + l].mac + 4 * i, states[l][i]);
      }
    }

    j += n;
  }
}

}  // namespace hipcloud::crypto
