#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hipcloud::crypto {

/// Owning byte buffer used throughout the crypto and protocol layers.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view of bytes.
using BytesView = std::span<const std::uint8_t>;

/// Build a Bytes from a string's raw characters.
Bytes to_bytes(std::string_view s);

/// Render as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Parse lowercase/uppercase hex; throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Constant-time equality — the comparison time depends only on the
/// lengths, never on content, so MAC checks don't leak prefixes.
bool ct_equal(BytesView a, BytesView b);

/// XOR b into a (a ^= b); sizes must match.
void xor_inplace(std::span<std::uint8_t> a, BytesView b);

/// Append a big-endian integer of `width` bytes.
void append_be(Bytes& out, std::uint64_t value, std::size_t width);

/// Read a big-endian integer of `width` (<= 8) bytes at `offset`.
std::uint64_t read_be(BytesView data, std::size_t offset, std::size_t width);

/// Concatenate arbitrary many byte views.
Bytes concat(std::initializer_list<BytesView> parts);

}  // namespace hipcloud::crypto
