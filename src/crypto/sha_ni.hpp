#pragma once

#include <cstddef>
#include <cstdint>

namespace hipcloud::crypto::shani {

/// True when the running CPU has the SHA extensions (checked once, like
/// aesni::supported()). Always false on non-x86 builds; compress() must
/// only be called when this returns true. `HIPCLOUD_NO_SHANI` in the
/// environment forces false so the portable path stays benchmarkable and
/// testable on SHA-NI hardware.
bool supported();

/// Run `nblocks` SHA-256 compressions over consecutive 64-byte blocks,
/// updating the 8-word state in place. Same contract as the scalar
/// compression in sha256.cpp — byte-identical digests, just ~10x faster.
void compress(std::uint32_t state[8], const std::uint8_t* blocks,
              std::size_t nblocks);

/// Two independent streams, interleaved round-for-round. sha256rnds2 has
/// multi-cycle latency but single-cycle throughput, and within one
/// stream every round depends on the previous — the port sits idle most
/// cycles. Interleaving a second stream's chain fills those slots
/// (~1.7x the single-stream rate on two streams) without touching the
/// digest: each lane computes exactly what two compress() calls would.
/// Both streams advance `nblocks` blocks; states update in place.
void compress2(std::uint32_t state_a[8], const std::uint8_t* blocks_a,
               std::uint32_t state_b[8], const std::uint8_t* blocks_b,
               std::size_t nblocks);

}  // namespace hipcloud::crypto::shani
