#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/drbg.hpp"

namespace hipcloud::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigInt::BigInt(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(BytesView data) {
  BigInt out;
  for (std::uint8_t b : data) {
    // out = out * 256 + b, done limb-wise for efficiency.
    std::uint64_t carry = b;
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = (static_cast<std::uint64_t>(limb) << 8) | carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.trim();
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes_be(crypto::from_hex(padded));
}

Bytes BigInt::to_bytes_be(std::size_t min_width) const {
  Bytes out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const std::uint32_t limb = limbs_[i];
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb));
  }
  // Strip leading zeros, then left-pad to the requested width.
  std::size_t lead = 0;
  while (lead < out.size() && out[lead] == 0) ++lead;
  out.erase(out.begin(), out.begin() + static_cast<long>(lead));
  if (out.size() < min_width) {
    out.insert(out.begin(), min_width - out.size(), 0);
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = crypto::to_hex(to_bytes_be());
  std::size_t lead = 0;
  while (lead + 1 < s.size() && s[lead] == '0') ++lead;
  return s.substr(lead);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

void BigInt::set_bit(std::size_t i) {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= (1u << (i % 32));
}

std::strong_ordering BigInt::operator<=>(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = carry;
    if (i < limbs_.size()) v += limbs_[i];
    if (i < rhs.limbs_.size()) v += rhs.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(v);
    carry = v >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) throw std::underflow_error("BigInt: negative result");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t v = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) v -= rhs.limbs_[i];
    if (v < 0) {
      v += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t v =
          a * rhs.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    out.limbs_[i + rhs.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return BigInt();
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt: divide by zero");
  if (*this < divisor) return {BigInt(), *this};
  if (divisor.limbs_.size() == 1) {
    // Fast single-limb path.
    BigInt q;
    q.limbs_.resize(limbs_.size());
    const std::uint64_t d = divisor.limbs_[0];
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its MSB set.
  int shift = 0;
  std::uint32_t top = divisor.limbs_.back();
  while (!(top & 0x80000000u)) {
    top <<= 1;
    ++shift;
  }
  const BigInt u = *this << static_cast<std::size_t>(shift);
  const BigInt v = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat from the top two limbs.
    const std::uint64_t num =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-and-subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t =
          static_cast<std::int64_t>(un[i + j]) -
          static_cast<std::int64_t>(static_cast<std::uint32_t>(p)) - borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add the divisor back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<long>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

// Montgomery multiplication: returns a*b*R^-1 mod m where R = 2^(32n).
// `m_inv` satisfies m[0] * m_inv == -1 mod 2^32.
BigInt BigInt::mont_mul(const BigInt& a, const BigInt& b, const BigInt& m,
                        std::uint32_t m_inv, std::size_t n) {
  std::vector<std::uint32_t> t(n + 2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ai = i < a.limbs_.size() ? a.limbs_[i] : 0;
    // t += ai * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t bj = j < b.limbs_.size() ? b.limbs_[j] : 0;
      const std::uint64_t v = ai * bj + t[j] + carry;
      t[j] = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    std::uint64_t v = static_cast<std::uint64_t>(t[n]) + carry;
    t[n] = static_cast<std::uint32_t>(v);
    t[n + 1] += static_cast<std::uint32_t>(v >> 32);

    // u = t[0] * m_inv mod 2^32;  t += u * m; then shift right one limb.
    const std::uint32_t u = t[0] * m_inv;
    carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t w =
          static_cast<std::uint64_t>(u) * m.limbs_[j] + t[j] + carry;
      t[j] = static_cast<std::uint32_t>(w);
      carry = w >> 32;
    }
    v = static_cast<std::uint64_t>(t[n]) + carry;
    t[n] = static_cast<std::uint32_t>(v);
    t[n + 1] += static_cast<std::uint32_t>(v >> 32);
    // Shift down by one limb (divide by 2^32); t[0] is zero by construction.
    for (std::size_t j = 0; j < n + 1; ++j) t[j] = t[j + 1];
    t[n + 1] = 0;
  }
  BigInt out;
  out.limbs_.assign(t.begin(), t.begin() + static_cast<long>(n + 1));
  out.trim();
  if (out >= m) out = out - m;
  return out;
}

BigInt BigInt::mod_exp(const BigInt& exp, const BigInt& m) const {
  if (m.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (m == BigInt(1)) return BigInt();
  BigInt base = *this % m;
  if (exp.is_zero()) return BigInt(1);

  if (m.is_odd()) {
    // Montgomery exponentiation.
    const std::size_t n = m.limbs_.size();
    // m_inv = -m^-1 mod 2^32 via Newton iteration.
    std::uint32_t inv = 1;
    for (int i = 0; i < 5; ++i) inv *= 2 - m.limbs_[0] * inv;
    const std::uint32_t m_inv = ~inv + 1;  // -inv

    // R mod m and R^2 mod m where R = 2^(32n).
    BigInt r = BigInt(1) << (32 * n);
    const BigInt r_mod = r % m;
    const BigInt r2 = (r_mod * r_mod) % m;

    BigInt x = mont_mul(base, r2, m, m_inv, n);  // base in Montgomery form
    BigInt acc = r_mod;                          // 1 in Montgomery form
    const std::size_t bits = exp.bit_length();
    for (std::size_t i = bits; i-- > 0;) {
      acc = mont_mul(acc, acc, m, m_inv, n);
      if (exp.bit(i)) acc = mont_mul(acc, x, m, m_inv, n);
    }
    return mont_mul(acc, BigInt(1), m, m_inv, n);
  }

  // Even modulus: plain square-and-multiply with divmod (rare path; only
  // used by tests).
  BigInt acc(1);
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = (acc * acc) % m;
    if (exp.bit(i)) acc = (acc * base) % m;
  }
  return acc;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& m) const {
  // Extended Euclid tracking coefficients with explicit signs.
  BigInt r0 = m, r1 = *this % m;
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q * t1 with sign handling.
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!(r0 == BigInt(1))) {
    throw std::domain_error("mod_inverse: not invertible");
  }
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::random_below(HmacDrbg& drbg, const BigInt& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  const std::size_t bytes = (bound.bit_length() + 7) / 8;
  // Rejection sampling keeps the distribution exactly uniform.
  for (;;) {
    Bytes raw = drbg.generate(bytes);
    // Mask off excess top bits to tighten the rejection rate.
    const std::size_t excess = bytes * 8 - bound.bit_length();
    if (excess) raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt candidate = from_bytes_be(raw);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(HmacDrbg& drbg, std::size_t bits) {
  if (bits == 0) return BigInt();
  const std::size_t bytes = (bits + 7) / 8;
  Bytes raw = drbg.generate(bytes);
  const std::size_t excess = bytes * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  BigInt out = from_bytes_be(raw);
  out.set_bit(bits - 1);
  return out;
}

namespace {
constexpr std::uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};
}

bool BigInt::is_probable_prime(const BigInt& n, HmacDrbg& drbg, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (n == BigInt(p)) return true;
    if ((n % BigInt(p)).is_zero()) return false;
  }
  // Write n-1 = d * 2^s.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigInt a =
        BigInt(2) + random_below(drbg, n - BigInt(4));
    BigInt x = a.mod_exp(d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = x.mod_exp(BigInt(2), n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(HmacDrbg& drbg, std::size_t bits) {
  if (bits < 8) throw std::invalid_argument("generate_prime: bits < 8");
  for (;;) {
    BigInt candidate = random_bits(drbg, bits);
    candidate.set_bit(0);         // odd
    candidate.set_bit(bits - 2);  // keep products full-width for RSA
    if (is_probable_prime(candidate, drbg)) return candidate;
  }
}

}  // namespace hipcloud::crypto
