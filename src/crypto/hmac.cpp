#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace hipcloud::crypto {

Bytes hmac_sha256(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;
  Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) k = Sha256::digest(k);
  k.resize(kBlock, 0);

  Bytes ipad(kBlock, 0x36);
  Bytes opad(kBlock, 0x5c);
  xor_inplace(ipad, k);
  xor_inplace(opad, k);

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  const auto d = outer.finish();
  return Bytes(d.begin(), d.end());
}

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    t = hmac_sha256(prk, input);
    const std::size_t take =
        std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return out;
}

}  // namespace hipcloud::crypto
