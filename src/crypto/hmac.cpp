#include "crypto/hmac.hpp"

#include <cstring>

namespace hipcloud::crypto {

HmacSha256::HmacSha256(BytesView key) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;
  std::uint8_t k[kBlock] = {};
  if (key.size() > kBlock) {
    Sha256 kh;
    kh.update(key);
    const auto d = kh.finish();
    std::memcpy(k, d.data(), d.size());
  } else if (!key.empty()) {
    std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t pad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x36;
  hash_.reset();
  hash_.update(BytesView(pad, kBlock));
  inner_ = hash_.midstate();
  for (std::size_t i = 0; i < kBlock; ++i) pad[i] = k[i] ^ 0x5c;
  hash_.reset();
  hash_.update(BytesView(pad, kBlock));
  outer_ = hash_.midstate();

  hash_.restore(inner_);
}

void HmacSha256::reset() { hash_.restore(inner_); }

void HmacSha256::update(BytesView data) { hash_.update(data); }

void HmacSha256::finish(std::uint8_t out[kDigestSize]) {
  const auto inner_digest = hash_.finish();
  hash_.restore(outer_);
  hash_.update(BytesView(inner_digest.data(), inner_digest.size()));
  const auto d = hash_.finish();
  std::memcpy(out, d.data(), d.size());
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  HmacSha256 mac(key);
  mac.update(message);
  Bytes out(HmacSha256::kDigestSize);
  mac.finish(out.data());
  return out;
}

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  HmacSha256 mac(prk);
  Bytes out;
  out.reserve(length);
  std::uint8_t t[HmacSha256::kDigestSize];
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    mac.reset();
    mac.update(BytesView(t, t_len));
    mac.update(info);
    mac.update(BytesView(&counter, 1));
    ++counter;
    mac.finish(t);
    t_len = sizeof t;
    const std::size_t take = std::min(t_len, length - out.size());
    out.insert(out.end(), t, t + take);
  }
  return out;
}

}  // namespace hipcloud::crypto
