#include "cloud/shard_fabric.hpp"

#include <limits>
#include <string>

#include "sim/check.hpp"

namespace hipcloud::cloud {

ShardedFabric::ShardedFabric(const FabricConfig& config)
    : config_(config), world_(config.racks, config.seed) {
  HIPCLOUD_CHECK(config.racks > 0, "fabric needs at least one rack");
  HIPCLOUD_CHECK(config.racks <= 200,
                 "rack id doubles as the 10.<rack>/16 cloud index");
  clouds_.reserve(config.racks);
  for (std::size_t r = 0; r < config.racks; ++r) {
    auto cloud = std::make_unique<Cloud>(world_.shard(r), config.profile,
                                         static_cast<int>(r));
    for (std::size_t h = 0; h < config.hosts_per_rack; ++h) {
      Hypervisor* host = cloud->add_host();
      for (std::size_t v = 0; v < config.vms_per_host; ++v) {
        cloud->launch("rack" + std::to_string(r) + "-vm" +
                          std::to_string(h) + "." + std::to_string(v),
                      InstanceType::small(), "tenant-fabric", host);
      }
    }
    clouds_.push_back(std::move(cloud));
  }
  mesh_iface_.assign(config.racks * config.racks,
                     std::numeric_limits<std::size_t>::max());
  // Full mesh of rack-to-rack links: every pair of racks gets its own
  // cross-shard path, so inter-rack traffic never funnels through a
  // single shard's spine node (which would serialize the whole world on
  // one loop). Each gateway routes the peer rack's 10.<peer>/16 out of
  // the pair's own interface.
  for (std::size_t i = 0; i < config.racks; ++i) {
    for (std::size_t j = i + 1; j < config.racks; ++j) {
      // Intra-pod pairs ride the fast cross_rack link; pairs spanning
      // pods ride cross_pod — registering a per-pair lookahead as slow
      // as the seam really is.
      const bool same_pod = pod_of(i) == pod_of(j);
      const auto att = world_.connect_cross(
          i, clouds_[i]->gateway(), j, clouds_[j]->gateway(),
          same_pod ? config.cross_rack : config.cross_pod);
      clouds_[i]->gateway()->add_route(
          net::IpAddr(net::Ipv4Addr(10, static_cast<std::uint8_t>(j), 0, 0)),
          16, att.iface_a);
      clouds_[j]->gateway()->add_route(
          net::IpAddr(net::Ipv4Addr(10, static_cast<std::uint8_t>(i), 0, 0)),
          16, att.iface_b);
      mesh_iface_[i * config.racks + j] = att.iface_a;
      mesh_iface_[j * config.racks + i] = att.iface_b;
    }
  }
}

std::size_t ShardedFabric::cross_iface(std::size_t from, std::size_t to) const {
  HIPCLOUD_CHECK(from < racks() && to < racks() && from != to,
                 "cross_iface needs two distinct racks");
  return mesh_iface_[from * config_.racks + to];
}

}  // namespace hipcloud::cloud
