#pragma once

#include <map>

#include "net/node.hpp"

namespace hipcloud::cloud {

/// 802.1Q-style VLAN segmentation baseline (the paper's related-work
/// comparison point): addresses are assigned to VLAN ids, and every
/// enrolled forwarding node drops traffic crossing VLAN boundaries. The
/// Eucalyptus-style default policy — block all traffic among VMs in
/// different VLANs — corresponds to `drop_unassigned = true`.
class VlanFabric {
 public:
  explicit VlanFabric(bool drop_unassigned = false)
      : drop_unassigned_(drop_unassigned) {}

  /// Tag an address (a VM's private IP) with a VLAN id.
  void assign(const net::IpAddr& addr, int vlan_id);

  /// Enforce on a forwarding node (hypervisor, fabric switch). Replaces
  /// the node's forward hook.
  void enforce_on(net::Node* node);

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t passed() const { return passed_; }

 private:
  bool permits(const net::Packet& pkt);

  std::map<net::IpAddr, int> vlan_of_;
  bool drop_unassigned_;
  std::uint64_t dropped_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace hipcloud::cloud
