#include "cloud/vlan.hpp"

namespace hipcloud::cloud {

void VlanFabric::assign(const net::IpAddr& addr, int vlan_id) {
  vlan_of_[addr] = vlan_id;
}

void VlanFabric::enforce_on(net::Node* node) {
  node->set_forward_hook(
      [this](net::Packet& pkt, std::size_t) { return permits(pkt); });
}

bool VlanFabric::permits(const net::Packet& pkt) {
  const auto src = vlan_of_.find(pkt.src);
  const auto dst = vlan_of_.find(pkt.dst);
  bool pass;
  if (src == vlan_of_.end() && dst == vlan_of_.end()) {
    // Infrastructure traffic (untagged on both ends).
    pass = !drop_unassigned_;
  } else if (src == vlan_of_.end() || dst == vlan_of_.end()) {
    // Tagged <-> untagged (e.g. VM to gateway): allowed — VLANs segment
    // tenant-to-tenant traffic, not tenant-to-infrastructure.
    pass = true;
  } else {
    pass = src->second == dst->second;
  }
  if (pass) {
    ++passed_;
  } else {
    ++dropped_;
  }
  return pass;
}

}  // namespace hipcloud::cloud
