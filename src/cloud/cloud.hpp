#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "net/node.hpp"

namespace hipcloud::cloud {

/// Link/latency parameters distinguishing provider deployments. Values
/// model the two testbeds of the paper: Amazon EC2 (eu-west-1a) and a
/// private OpenNebula cloud on a lab LAN.
struct ProviderProfile {
  std::string name;
  /// Virtual NIC between a VM and its hypervisor's bridge.
  net::LinkConfig guest_link;
  /// Hypervisor <-> datacenter fabric.
  net::LinkConfig fabric_link;
  /// Fabric <-> internet gateway.
  net::LinkConfig gateway_link;

  static ProviderProfile ec2();
  static ProviderProfile opennebula();
};

class Cloud;

/// A physical machine running a hypervisor: its node forwards traffic
/// between guest links and the datacenter fabric.
class Hypervisor {
 public:
  Hypervisor(Cloud* cloud, net::Node* node, int index)
      : cloud_(cloud), node_(node), index_(index) {}

  net::Node* node() { return node_; }
  int index() const { return index_; }
  Cloud* cloud() { return cloud_; }
  int vm_count() const { return vm_count_; }

 private:
  friend class Cloud;
  Cloud* cloud_;
  net::Node* node_;
  int index_;
  int next_vm_octet_ = 10;
  int vm_count_ = 0;
};

/// One virtual machine: a guest node attached to a hypervisor.
class Vm {
 public:
  net::Node* node() { return node_; }
  const std::string& name() const { return name_; }
  const InstanceType& type() const { return type_; }
  Hypervisor* host() { return host_; }
  net::Ipv4Addr private_ip() const { return private_ip_; }
  const std::string& tenant() const { return tenant_; }
  /// The VM's virtual NIC link. Chaos experiments take it down/up
  /// (set_down) to model guest crashes without tearing down topology.
  net::Link* guest_link() { return guest_link_; }

 private:
  friend class Cloud;
  std::string name_;
  InstanceType type_;
  Hypervisor* host_ = nullptr;
  net::Node* node_ = nullptr;
  net::Ipv4Addr private_ip_;
  std::string tenant_;
  std::size_t guest_iface_ = 0;  // iface index on the VM side
  net::Link* guest_link_ = nullptr;
};

/// An IaaS cloud: gateway router, datacenter fabric, hypervisors and VMs,
/// with EC2-like 10.c.h.v private addressing. External networks attach to
/// the gateway. Multiple Cloud instances in one Network model hybrid
/// deployments.
class Cloud {
 public:
  /// `index` selects the 10.<index>.0.0/16 private space.
  Cloud(net::Network& net, ProviderProfile profile, int index);

  net::Network& network() { return net_; }
  const ProviderProfile& profile() const { return profile_; }
  net::Node* gateway() { return gateway_; }
  net::Node* fabric() { return fabric_; }
  int index() const { return index_; }

  Hypervisor* add_host();

  /// Launch a VM on `host` (round-robin placement when nullptr).
  Vm* launch(const std::string& name, const InstanceType& type,
             const std::string& tenant = "default",
             Hypervisor* host = nullptr);

  /// Connect this cloud's gateway to an external node (an internet core,
  /// another cloud's gateway for a hybrid deployment, a lab LAN...).
  /// Adds a default route from the gateway out through this link and a
  /// route towards our 10.<index>/8-ish space on the far side.
  net::Link* attach_external(net::Node* external,
                             const net::LinkConfig& link_config);

  /// Live-migrate `vm` to `dst`: models pre-copy memory transfer over the
  /// fabric, then detaches the old guest link and re-attaches the VM on
  /// the destination host with a fresh private IP. `done` receives the
  /// total migration time and the stop-and-copy downtime.
  struct MigrationReport {
    sim::Duration total;
    sim::Duration downtime;
    net::Ipv4Addr new_ip;
    std::size_t bytes_copied;
  };
  using MigrationDoneFn = std::function<void(const MigrationReport&)>;
  void migrate(Vm* vm, Hypervisor* dst, MigrationDoneFn done,
               double dirty_page_rate = 0.1);

  const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }
  const std::vector<std::unique_ptr<Hypervisor>>& hosts() const {
    return hosts_;
  }

 private:
  net::Ipv4Addr host_subnet(int host_index) const;

  net::Network& net_;
  ProviderProfile profile_;
  int index_;
  net::Node* gateway_;
  net::Node* fabric_;
  std::vector<std::unique_ptr<Hypervisor>> hosts_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::size_t next_placement_ = 0;
};

}  // namespace hipcloud::cloud
