#include "cloud/cloud.hpp"

#include <stdexcept>

#include "sim/log.hpp"

namespace hipcloud::cloud {

using net::IpAddr;
using net::Ipv4Addr;
using net::LinkConfig;

ProviderProfile ProviderProfile::ec2() {
  ProviderProfile p;
  p.name = "ec2";
  // EC2 guest networking of the era: a shared-GbE slice (~300 Mbit/s per
  // small guest) with noticeable virtualization latency.
  p.guest_link = LinkConfig{300e6, sim::from_micros(120),
                            sim::from_millis(50), 0.0, 1500};
  p.fabric_link = LinkConfig{10e9, sim::from_micros(80), sim::from_millis(50),
                             0.0, 1500};
  p.gateway_link = LinkConfig{10e9, sim::from_micros(100),
                              sim::from_millis(50), 0.0, 1500};
  return p;
}

ProviderProfile ProviderProfile::opennebula() {
  ProviderProfile p;
  p.name = "opennebula";
  // Private lab cloud: flatter, slightly quicker LAN, 1 Gbit/s switches.
  p.guest_link = LinkConfig{1e9, sim::from_micros(80), sim::from_millis(50),
                            0.0, 1500};
  p.fabric_link = LinkConfig{1e9, sim::from_micros(50), sim::from_millis(50),
                             0.0, 1500};
  p.gateway_link = LinkConfig{1e9, sim::from_micros(50), sim::from_millis(50),
                              0.0, 1500};
  return p;
}

Cloud::Cloud(net::Network& net, ProviderProfile profile, int index)
    : net_(net), profile_(std::move(profile)), index_(index) {
  gateway_ = net_.add_node(profile_.name + std::to_string(index) + "-gw");
  fabric_ = net_.add_node(profile_.name + std::to_string(index) + "-fabric");
  gateway_->set_forwarding(true);
  fabric_->set_forwarding(true);
  const auto att = net_.connect(gateway_, fabric_, profile_.gateway_link);
  gateway_->add_address(att.iface_a,
                        Ipv4Addr(10, std::uint8_t(index_), 255, 1));
  fabric_->add_address(att.iface_b,
                       Ipv4Addr(10, std::uint8_t(index_), 255, 2));
  // Gateway reaches the whole cloud via the fabric; fabric defaults out
  // through the gateway.
  gateway_->add_route(IpAddr(Ipv4Addr(10, std::uint8_t(index_), 0, 0)), 16,
                      att.iface_a);
  fabric_->set_default_route(att.iface_b);
}

net::Ipv4Addr Cloud::host_subnet(int host_index) const {
  return Ipv4Addr(10, std::uint8_t(index_), std::uint8_t(host_index), 0);
}

Hypervisor* Cloud::add_host() {
  const int h = static_cast<int>(hosts_.size());
  if (h >= 255) throw std::runtime_error("Cloud: host space exhausted");
  net::Node* node = net_.add_node(profile_.name + std::to_string(index_) +
                                  "-host" + std::to_string(h));
  node->set_forwarding(true);
  const auto att = net_.connect(fabric_, node, profile_.fabric_link);
  node->add_address(att.iface_b,
                    Ipv4Addr(10, std::uint8_t(index_), std::uint8_t(h), 1));
  // Fabric learns this host's /24; host defaults into the fabric.
  fabric_->add_route(IpAddr(host_subnet(h)), 24, att.iface_a);
  node->set_default_route(att.iface_b);
  hosts_.push_back(std::make_unique<Hypervisor>(this, node, h));
  return hosts_.back().get();
}

Vm* Cloud::launch(const std::string& name, const InstanceType& type,
                  const std::string& tenant, Hypervisor* host) {
  if (hosts_.empty()) throw std::runtime_error("Cloud: no hosts");
  if (host == nullptr) {
    host = hosts_[next_placement_ % hosts_.size()].get();
    ++next_placement_;
  }
  if (host->next_vm_octet_ >= 250) {
    throw std::runtime_error("Cloud: VM space exhausted on host");
  }
  auto vm = std::make_unique<Vm>();
  vm->name_ = name;
  vm->type_ = type;
  vm->host_ = host;
  vm->tenant_ = tenant;
  vm->node_ = net_.add_node(name, type.cycles_per_second());
  if (type.burst_compute_units > 0) {
    const double burst_cps =
        type.burst_compute_units * InstanceType::kCyclesPerEcu;
    vm->node_->cpu().enable_burst(burst_cps,
                                  burst_cps * type.burst_credit_seconds);
  }
  const auto att =
      net_.connect(host->node(), vm->node_, profile_.guest_link);
  vm->private_ip_ = Ipv4Addr(10, std::uint8_t(index_),
                             std::uint8_t(host->index()),
                             std::uint8_t(host->next_vm_octet_++));
  vm->node_->add_address(att.iface_b, vm->private_ip_);
  vm->guest_iface_ = att.iface_b;
  vm->guest_link_ = att.link;
  vm->node_->set_default_route(att.iface_b);
  host->node()->add_route(IpAddr(vm->private_ip_), 32, att.iface_a);
  ++host->vm_count_;
  vms_.push_back(std::move(vm));
  return vms_.back().get();
}

net::Link* Cloud::attach_external(net::Node* external,
                                  const net::LinkConfig& link_config) {
  const auto att = net_.connect(gateway_, external, link_config);
  gateway_->set_default_route(att.iface_a);
  external->add_route(IpAddr(Ipv4Addr(10, std::uint8_t(index_), 0, 0)), 16,
                      att.iface_b);
  return att.link;
}

void Cloud::migrate(Vm* vm, Hypervisor* dst, MigrationDoneFn done,
                    double dirty_page_rate) {
  if (vm->host_ == dst) {
    throw std::invalid_argument("Cloud::migrate: already on destination");
  }
  // Pre-copy model: transfer all memory, then iteratively re-copy pages
  // dirtied during the previous round; stop-and-copy the remainder.
  const double bw_Bps = profile_.fabric_link.bandwidth_bps / 8.0;
  const double memory_bytes = static_cast<double>(vm->type_.memory_mb) * 1e6;
  double round_bytes = memory_bytes;
  double total_bytes = 0;
  double total_seconds = 0;
  constexpr double kStopThresholdBytes = 16e6;
  constexpr int kMaxRounds = 10;
  for (int round = 0; round < kMaxRounds && round_bytes > kStopThresholdBytes;
       ++round) {
    const double secs = round_bytes / bw_Bps;
    total_bytes += round_bytes;
    total_seconds += secs;
    round_bytes = std::min(round_bytes,
                           dirty_page_rate * memory_bytes *
                               std::min(1.0, secs));
  }
  // Stop-and-copy: the VM is paused for the final round + switch-over.
  const double downtime_seconds = round_bytes / bw_Bps + 0.030;
  total_bytes += round_bytes;
  total_seconds += downtime_seconds;

  const auto total = sim::from_seconds(total_seconds);
  const auto downtime = sim::from_seconds(downtime_seconds);
  const auto copied = static_cast<std::size_t>(total_bytes);

  // Stop-and-copy: the guest is paused (its link goes dark) for the
  // final round, then resumes on the destination host.
  net_.loop().schedule(total - downtime, [vm] {
    vm->guest_link_->set_down(true);
  });
  net_.loop().schedule(total, [this, vm, dst, downtime, total, copied,
                               done = std::move(done)] {
    // Detach from the source host.
    vm->guest_link_->set_down(true);
    Hypervisor* src = vm->host_;
    src->node()->remove_route(IpAddr(vm->private_ip_), 32);
    --src->vm_count_;

    // Attach on the destination host with a fresh IP.
    const auto att =
        net_.connect(dst->node(), vm->node_, profile_.guest_link);
    const Ipv4Addr new_ip(10, std::uint8_t(index_),
                          std::uint8_t(dst->index()),
                          std::uint8_t(dst->next_vm_octet_++));
    vm->node_->remove_address(vm->guest_iface_, IpAddr(vm->private_ip_));
    vm->node_->remove_routes_via(vm->guest_iface_);
    vm->node_->add_address(att.iface_b, new_ip);
    vm->node_->set_default_route(att.iface_b);
    dst->node()->add_route(IpAddr(new_ip), 32, att.iface_a);
    vm->private_ip_ = new_ip;
    vm->guest_iface_ = att.iface_b;
    vm->guest_link_ = att.link;
    vm->host_ = dst;
    ++dst->vm_count_;

    HIPCLOUD_LOG(sim::LogLevel::kInfo, net_.loop().now(), "cloud",
                  vm->name_ + " migrated to host" +
                      std::to_string(dst->index()) + " as " +
                      new_ip.to_string());
    if (done) done(MigrationReport{total, downtime, new_ip, copied});
  });
}

}  // namespace hipcloud::cloud
