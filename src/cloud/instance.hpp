#pragma once

#include <cstddef>
#include <string>

namespace hipcloud::cloud {

/// EC2-style instance sizing. One EC2 Compute Unit (ECU) is defined by
/// Amazon as roughly a 1.0-1.2 GHz 2007 Opteron/Xeon; we model it as
/// 1.2e9 cycles/second feeding the VM's CpuScheduler.
struct InstanceType {
  std::string name;
  /// Sustained compute units. The paper's t1.micro advertises "up to 2
  /// ECU" in bursts but sustains far less; we model the sustained rate,
  /// which is what a saturated web tier sees.
  double compute_units = 1.0;
  std::size_t memory_mb = 1024;
  /// Burstable types execute at this rate while credits last (0 = none).
  double burst_compute_units = 0.0;
  /// Seconds of full-burst execution the initial credit bucket buys.
  double burst_credit_seconds = 0.0;

  static constexpr double kCyclesPerEcu = 1.2e9;

  double cycles_per_second() const { return compute_units * kCyclesPerEcu; }

  /// t1.micro: 613 MB, "up to 2 ECU" in short bursts, ~0.35 ECU
  /// sustained once the credit bucket drains — the behaviour that shapes
  /// the paper's 50-client data points.
  static InstanceType micro() { return {"t1.micro", 0.35, 613, 2.0, 2.0}; }
  /// m1.small.
  static InstanceType small() { return {"m1.small", 1.0, 1700}; }
  /// m1.large: 7.5 GB, 4 ECU (paper's database tier).
  static InstanceType large() { return {"m1.large", 4.0, 7680}; }
  /// m1.xlarge (for extension experiments).
  static InstanceType xlarge() { return {"m1.xlarge", 8.0, 15360}; }
};

}  // namespace hipcloud::cloud
