#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/cloud.hpp"
#include "net/shard_world.hpp"

namespace hipcloud::cloud {

/// Deterministic rack/hypervisor → shard assignment. The fabric puts one
/// rack per shard (a rack's hypervisors, VMs, ToR fabric and gateway all
/// share one event loop — almost all traffic a VM generates stays inside
/// its rack's loop); when a caller wants fewer shards than racks it folds
/// racks onto shards round-robin, keeping the mapping a pure function of
/// topology, never of thread timing.
inline std::size_t shard_for_rack(std::size_t rack, std::size_t shards) {
  return shards == 0 ? 0 : rack % shards;
}
inline std::size_t shard_for_hypervisor(std::size_t rack,
                                        std::size_t hypervisor,
                                        std::size_t hosts_per_rack,
                                        std::size_t shards) {
  // Hypervisors inherit their rack's shard; the parameters only exist so
  // call sites state what they are placing.
  (void)hypervisor;
  (void)hosts_per_rack;
  return shard_for_rack(rack, shards);
}

struct FabricConfig {
  std::size_t racks = 4;
  std::size_t hosts_per_rack = 2;
  std::size_t vms_per_host = 2;
  ProviderProfile profile = ProviderProfile::ec2();
  /// Rack-to-rack interconnect. Its latency is the world's lookahead
  /// floor: bigger = longer epochs and fewer barriers, smaller = tighter
  /// cross-rack RTTs. Must stay positive.
  net::LinkConfig cross_rack{/*bandwidth_bps=*/10e9,
                             /*latency=*/sim::from_micros(100),
                             /*max_queue_delay=*/sim::from_millis(50),
                             /*loss_rate=*/0.0,
                             /*mtu=*/1500};
  /// Heterogeneous interconnect: racks group into pods of
  /// `racks_per_pod` consecutive racks (0 = one flat pod, every link
  /// `cross_rack`). Links between racks in *different* pods use
  /// `cross_pod` instead — typically WAN-ish latency, which is exactly
  /// the shape where per-pair lookahead beats the global minimum: only
  /// the intra-pod seams are fast, so remote pods stride at cross_pod
  /// cadence instead of barriering at cross_rack cadence.
  std::size_t racks_per_pod = 0;
  net::LinkConfig cross_pod{/*bandwidth_bps=*/1e9,
                            /*latency=*/sim::from_millis(5),
                            /*max_queue_delay=*/sim::from_millis(50),
                            /*loss_rate=*/0.0,
                            /*mtu=*/1500};
  std::uint64_t seed = 1;
};

/// A datacenter built for the sharded simulator: `racks` Cloud instances
/// (cloud index = rack id, so rack r owns 10.r.0.0/16), each living in
/// its own shard of a net::ShardedWorld, with a full mesh of cross-shard
/// gateway-to-gateway links carrying the inter-rack routes. Worker
/// threads are chosen at run() time; the topology (and therefore every
/// event stream) never depends on them.
class ShardedFabric {
 public:
  explicit ShardedFabric(const FabricConfig& config);

  net::ShardedWorld& world() { return world_; }
  const FabricConfig& config() const { return config_; }
  std::size_t racks() const { return clouds_.size(); }
  Cloud& rack(std::size_t r) { return *clouds_[r]; }

  /// Pod of a rack under this fabric's grouping (0 when flat).
  std::size_t pod_of(std::size_t rack_id) const {
    return config_.racks_per_pod ? rack_id / config_.racks_per_pod : 0;
  }

  /// All VMs of one rack, in launch order.
  const std::vector<std::unique_ptr<Vm>>& rack_vms(std::size_t r) const {
    return clouds_[r]->vms();
  }

  /// Gateway interface index on rack `from` for the mesh link toward
  /// rack `to` — what callers use to add routes for non-10/8 prefixes
  /// (consumer subnets, frontends) across the rack mesh. CHECK-fails on
  /// from == to.
  std::size_t cross_iface(std::size_t from, std::size_t to) const;

  std::size_t run(sim::Time until, unsigned workers = 1) {
    return world_.run(until, workers);
  }
  sim::PerfCounters merged_perf() const { return world_.merged_perf(); }
  std::uint64_t world_hash() const { return world_.world_hash(); }

 private:
  FabricConfig config_;
  net::ShardedWorld world_;
  // One Cloud per rack; rack r's nodes, links and pools are confined to
  // shard r's event loop (the fabric's whole point), so the analyzer
  // treats the racks as shard-confined state.
  std::vector<std::unique_ptr<Cloud>> clouds_;  // hipcheck:shard_owned
  /// mesh_iface_[from * racks + to] = gateway iface on `from` toward
  /// `to` (SIZE_MAX on the diagonal).
  std::vector<std::size_t> mesh_iface_;
};

}  // namespace hipcloud::cloud
