#pragma once

#include <cstddef>
#include <vector>

namespace hipcloud::sim {

/// Streaming summary statistics (Welford's algorithm) with full-sample
/// retention for exact percentiles. Samples are doubles in caller-chosen
/// units.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const { return count() ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank on the sorted sample, q in [0,100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }
  double sum() const { return sum_; }

  /// Fold another summary into this one (Chan's parallel Welford
  /// combination plus sample concatenation, so percentiles stay exact).
  /// This is how the parallel sweep runner aggregates per-world summaries
  /// — O(samples) memcpy instead of re-running the online update per
  /// sample.
  void merge(const Summary& o);

  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram for latency distributions; buckets are
/// half-open [lo, hi) spans of equal width plus an overflow bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  /// Fold another histogram into this one. Both must share the same
  /// geometry (lo/width/bucket count); throws std::invalid_argument
  /// otherwise.
  void merge(const Histogram& o);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t overflow() const { return overflow_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t bucket) const { return lo_ + width_ * static_cast<double>(bucket); }
  double bucket_high(std::size_t bucket) const { return bucket_low(bucket) + width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t overflow_ = 0;
  std::size_t underflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace hipcloud::sim
