#pragma once

#include <atomic>
#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace hipcloud::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log sink for the simulator. Defaults to kWarn so tests and
/// benches stay quiet; examples raise it to kInfo to narrate scenarios.
/// The level is atomic (relaxed): parallel sweep workers each run their
/// own world but share this one process-wide filter, and the bench
/// driver may flip it while workers log.
///
/// Emission is multi-thread clean: each line is formatted into a stack
/// buffer and handed to stderr as ONE write, so concurrent shard workers
/// can never interleave mid-line. A shard worker declares itself with
/// set_shard_id(); every line it emits is then tagged "s<id>" so
/// interleaved output from a parallel world run stays attributable.
class Log {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  // hipcheck:seam — relaxed store on the process-wide filter; racing
  // readers may see either level for a line or two, which is the
  // documented contract (see the class comment).
  static void set_level(LogLevel lvl) {
    level_.store(lvl, std::memory_order_relaxed);
  }

  /// Would a message at `lvl` actually be emitted? Callers on hot paths
  /// check this before building the message string.
  static bool enabled(LogLevel lvl) {
    return lvl >= level() && lvl < LogLevel::kOff;
  }

  /// Tag every line emitted from the calling thread with the given shard
  /// id (-1 = untagged; the single-threaded default). Thread-local: the
  /// shard coordinator sets it on each worker before running a shard's
  /// loop and clears it at teardown.
  static void set_shard_id(int shard);
  static int shard_id();

  /// Emit one line: "[ 12.345ms] tag: message" (plus a "s<id>" column
  /// when the calling thread declared a shard id). Cheap no-op below
  /// level. One write(2)-style emission per line.
  static void write(LogLevel lvl, Time now, const char* tag,
                    const std::string& msg);

 private:
  static std::atomic<LogLevel> level_;  // hipcheck:shard_shared
};

}  // namespace hipcloud::sim

/// Lazy logging: the message expression (everything after `tag`) is only
/// evaluated when the level is enabled, so per-packet call sites stop
/// paying for std::string concatenation that the default kWarn filter
/// immediately discards.
#define HIPCLOUD_LOG(lvl, now, tag, ...)                           \
  do {                                                             \
    if (::hipcloud::sim::Log::enabled(lvl)) {                      \
      ::hipcloud::sim::Log::write((lvl), (now), (tag), __VA_ARGS__); \
    }                                                              \
  } while (0)
