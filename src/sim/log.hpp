#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace hipcloud::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log sink for the simulator. Defaults to kWarn so tests and
/// benches stay quiet; examples raise it to kInfo to narrate scenarios.
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel lvl) { level_ = lvl; }

  /// Emit one line: "[ 12.345ms] tag: message". Cheap no-op below level.
  static void write(LogLevel lvl, Time now, const char* tag,
                    const std::string& msg);

 private:
  static LogLevel level_;
};

}  // namespace hipcloud::sim
