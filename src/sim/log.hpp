#pragma once

#include <atomic>
#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace hipcloud::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log sink for the simulator. Defaults to kWarn so tests and
/// benches stay quiet; examples raise it to kInfo to narrate scenarios.
/// The level is atomic (relaxed): parallel sweep workers each run their
/// own world but share this one process-wide filter, and the bench
/// driver may flip it while workers log.
class Log {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel lvl) {
    level_.store(lvl, std::memory_order_relaxed);
  }

  /// Would a message at `lvl` actually be emitted? Callers on hot paths
  /// check this before building the message string.
  static bool enabled(LogLevel lvl) {
    return lvl >= level() && lvl < LogLevel::kOff;
  }

  /// Emit one line: "[ 12.345ms] tag: message". Cheap no-op below level.
  static void write(LogLevel lvl, Time now, const char* tag,
                    const std::string& msg);

 private:
  static std::atomic<LogLevel> level_;
};

}  // namespace hipcloud::sim

/// Lazy logging: the message expression (everything after `tag`) is only
/// evaluated when the level is enabled, so per-packet call sites stop
/// paying for std::string concatenation that the default kWarn filter
/// immediately discards.
#define HIPCLOUD_LOG(lvl, now, tag, ...)                           \
  do {                                                             \
    if (::hipcloud::sim::Log::enabled(lvl)) {                      \
      ::hipcloud::sim::Log::write((lvl), (now), (tag), __VA_ARGS__); \
    }                                                              \
  } while (0)
