#pragma once

// Runtime invariant layer (hipcheck part 2).
//
// Three tiers of machine-checked invariants, all reporting through one
// failure path (sim::CheckFailure) so tests can assert that a deliberate
// protocol-invariant regression actually trips:
//
//   HIPCLOUD_CHECK(cond, msg)   always on, every build. For cheap,
//                               certain invariants on paths where a
//                               violation means the simulation's results
//                               are garbage (event time monotonicity,
//                               ESP sequence emission order).
//   HIPCLOUD_DCHECK(cond, msg)  on when NDEBUG is not defined or the
//                               audit build is enabled. For invariants
//                               cheap enough for debug runs but not for
//                               release benchmarking.
//   HIPCLOUD_AUDIT(cond, msg)   compiled in only under the dedicated
//                               audit build (-DHIPCLOUD_AUDIT=ON, which
//                               defines HIPCLOUD_AUDIT_ENABLED). For the
//                               heavyweight protocol state-machine and
//                               data-structure audits: HIP association
//                               transition legality, ESP replay-window
//                               monotonicity, event-heap shape, buffer
//                               double-release scans.
//
// Failures throw sim::CheckFailure (after logging at kError) rather than
// aborting: the audit-build regression tests drive an illegal transition
// and EXPECT_THROW on it, which keeps the trip path itself under test and
// plays well with the sanitizer builds (no death-test forking).
//
// The macros never evaluate the message expression unless the condition
// fails. A disabled tier compiles to nothing: the condition is parsed
// inside an unevaluated sizeof (so the variables it names count as used
// and stay warning-clean) but generates no code. Audit-only shadow state
// that would cost memory or writes must still live behind the same
// HIPCLOUD_AUDIT_ENABLED gate as the audits that read it.

#include <stdexcept>
#include <string>

namespace hipcloud::sim {

/// Thrown by every failed HIPCLOUD_CHECK / DCHECK / AUDIT.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
/// Build the failure message lazily; overloads let call sites omit it.
inline std::string check_msg() { return {}; }
inline std::string check_msg(const char* m) { return m; }
inline std::string check_msg(std::string m) { return m; }
}  // namespace detail

/// Format, log (kError) and throw. Out of line so the macro's cold path
/// costs one call.
[[noreturn]] void check_fail(const char* kind, const char* file, int line,
                             const char* expr, const std::string& msg);

}  // namespace hipcloud::sim

#define HIPCLOUD_CHECK(cond, ...)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::hipcloud::sim::check_fail(                                       \
          "CHECK", __FILE__, __LINE__, #cond,                            \
          ::hipcloud::sim::detail::check_msg(__VA_ARGS__));              \
    }                                                                    \
  } while (0)

#if !defined(NDEBUG) || defined(HIPCLOUD_AUDIT_ENABLED)
#define HIPCLOUD_DCHECK(cond, ...)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::hipcloud::sim::check_fail(                                       \
          "DCHECK", __FILE__, __LINE__, #cond,                           \
          ::hipcloud::sim::detail::check_msg(__VA_ARGS__));              \
    }                                                                    \
  } while (0)
#else
#define HIPCLOUD_DCHECK(cond, ...)   \
  do {                               \
    (void)sizeof(!(cond));            \
  } while (0)
#endif

#ifdef HIPCLOUD_AUDIT_ENABLED
#define HIPCLOUD_AUDIT(cond, ...)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::hipcloud::sim::check_fail(                                       \
          "AUDIT", __FILE__, __LINE__, #cond,                            \
          ::hipcloud::sim::detail::check_msg(__VA_ARGS__));              \
    }                                                                    \
  } while (0)
#else
#define HIPCLOUD_AUDIT(cond, ...)    \
  do {                               \
    (void)sizeof(!(cond));            \
  } while (0)
#endif
