#include "sim/random.hpp"

#include <cmath>

namespace hipcloud::sim {

double Xoshiro256::exponential(double mean) {
  // Inverse-transform sampling; clamp away from 0 to avoid log(0).
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace hipcloud::sim
