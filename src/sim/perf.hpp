#pragma once

#include <cstdint>
#include <cstdio>

namespace hipcloud::sim {

/// Always-on per-world performance counters. One instance per simulated
/// world (owned by the EventLoop, shared with the buffer pool and the
/// packet pipeline), so the bench harness can report exactly what the
/// simulator substrate did: how many events the engine processed, how
/// often the payload pool recycled a buffer instead of hitting the
/// allocator, and how many payload bytes moved through the datapath by
/// reference rather than by copy.
///
/// Counters are plain uint64 increments on paths that already do far more
/// work per call — the overhead is noise, which is why they stay on even
/// in release builds and can feed every BENCH_*.json.
struct PerfCounters {
  /// FNV-1a parameters (64-bit). The determinism hash folds in one
  /// 64-bit word per round instead of the canonical byte-at-a-time
  /// variant — same mixing structure, 3 multiplies per event instead
  /// of 24, and the auditor only needs stream equality, not FNV
  /// test-vector compatibility.
  static constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

  // Event engine.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t events_cancelled = 0;

  /// Rolling hash of every event firing in this world, in firing order:
  /// for each fired event the engine folds in (when, seq). The pair is a
  /// unique, schedule-stable name for the event: local events draw seq
  /// from the loop's FIFO counter, cross-shard events carry a
  /// (src shard, post index) encoding assigned at post time (see
  /// EventLoop::schedule_cross) — so the stream is invariant not only
  /// across worker counts but across epoch slicings (adaptive vs
  /// global-min lookahead drain the same posts at different barriers).
  /// Arena slot indices are deliberately NOT folded: slot recycling
  /// depends on when cross events are drained, which is exactly the
  /// freedom the adaptive horizon exploits. Two runs of the same seeded
  /// world are bit-deterministic iff their hash streams match; any hidden
  /// nondeterminism (iteration-order leak, uninitialised read feeding a
  /// timer, cross-world state) diverges the hash at the first bad
  /// firing. bench/audit_determinism re-runs sweep worlds across thread
  /// counts and schedule perturbations and diffs exactly this value.
  std::uint64_t determinism_hash = kFnvOffset;

  /// Fold one event firing into the determinism hash.
  void note_fire(std::int64_t when, std::uint64_t seq) {
    auto fold = [this](std::uint64_t word) {
      determinism_hash = (determinism_hash ^ word) * kFnvPrime;
    };
    fold(static_cast<std::uint64_t>(when));
    fold(seq);
  }

  // Payload buffer pool.
  std::uint64_t pool_hits = 0;    // buffer recycled from a freelist
  std::uint64_t pool_misses = 0;  // freelist empty: fresh heap allocation
  std::uint64_t pool_returns = 0;

  // Packet pipeline.
  std::uint64_t packets_delivered = 0;   // local_deliver on any node
  std::uint64_t payload_bytes_copied = 0;  // memcpy'd between buffers
  std::uint64_t payload_bytes_moved = 0;   // changed owner without a copy

  // Sharded coordinator (filled in by ShardCoordinator::merged_perf).
  // All three are pure functions of the simulated schedule — identical
  // at every worker count — so they can sit next to the hash in every
  // BENCH_*.json without harming comparability.
  std::uint64_t shard_epochs = 0;      // barrier rounds executed
  std::uint64_t shard_strides = 0;     // per-shard bounded run intervals
  std::uint64_t shard_stride_ns = 0;   // total simulated ns those strides span

  void merge(const PerfCounters& o) {
    events_scheduled += o.events_scheduled;
    events_fired += o.events_fired;
    events_cancelled += o.events_cancelled;
    // Per-world hashes are order-sensitive streams; the cross-world
    // combination must not depend on merge order (sweep results arrive
    // by job index regardless of which thread ran them), so worlds
    // combine commutatively. A per-world regression still flips the
    // merged value.
    determinism_hash ^= o.determinism_hash;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    pool_returns += o.pool_returns;
    packets_delivered += o.packets_delivered;
    payload_bytes_copied += o.payload_bytes_copied;
    payload_bytes_moved += o.payload_bytes_moved;
    shard_epochs += o.shard_epochs;
    shard_strides += o.shard_strides;
    shard_stride_ns += o.shard_stride_ns;
  }

  /// Mean events executed per barrier round — the headline the adaptive
  /// per-pair lookahead drives up (same events, fewer barriers).
  double events_per_epoch() const {
    return shard_epochs ? static_cast<double>(events_fired) /
                              static_cast<double>(shard_epochs)
                        : 0.0;
  }

  double pool_hit_rate() const {
    const std::uint64_t total = pool_hits + pool_misses;
    return total ? static_cast<double>(pool_hits) / static_cast<double>(total)
                 : 0.0;
  }

  /// Fresh payload-buffer heap allocations per delivered packet — the
  /// headline number the pooled pipeline drives down.
  double pool_misses_per_packet() const {
    return packets_delivered ? static_cast<double>(pool_misses) /
                                   static_cast<double>(packets_delivered)
                             : 0.0;
  }

  /// Emit as a JSON object body (no surrounding braces) with the given
  /// indent prefix — shared by every BENCH_*.json writer.
  void write_json_fields(std::FILE* f, const char* indent) const {
    std::fprintf(f,
                 "%s\"determinism_hash\": \"0x%016llx\",\n"
                 "%s\"events_scheduled\": %llu,\n"
                 "%s\"events_fired\": %llu,\n"
                 "%s\"events_cancelled\": %llu,\n"
                 "%s\"pool_hits\": %llu,\n"
                 "%s\"pool_misses\": %llu,\n"
                 "%s\"pool_hit_rate\": %.4f,\n"
                 "%s\"packets_delivered\": %llu,\n"
                 "%s\"pool_misses_per_packet\": %.4f,\n"
                 "%s\"payload_bytes_copied\": %llu,\n"
                 "%s\"payload_bytes_moved\": %llu,\n"
                 "%s\"shard_epochs\": %llu,\n"
                 "%s\"shard_strides\": %llu,\n"
                 "%s\"shard_stride_ns\": %llu,\n"
                 "%s\"events_per_epoch\": %.2f",
                 indent, static_cast<unsigned long long>(determinism_hash),
                 indent, static_cast<unsigned long long>(events_scheduled),
                 indent, static_cast<unsigned long long>(events_fired),
                 indent, static_cast<unsigned long long>(events_cancelled),
                 indent, static_cast<unsigned long long>(pool_hits),
                 indent, static_cast<unsigned long long>(pool_misses),
                 indent, pool_hit_rate(),
                 indent, static_cast<unsigned long long>(packets_delivered),
                 indent, pool_misses_per_packet(),
                 indent, static_cast<unsigned long long>(payload_bytes_copied),
                 indent, static_cast<unsigned long long>(payload_bytes_moved),
                 indent, static_cast<unsigned long long>(shard_epochs),
                 indent, static_cast<unsigned long long>(shard_strides),
                 indent, static_cast<unsigned long long>(shard_stride_ns),
                 indent, events_per_epoch());
  }
};

}  // namespace hipcloud::sim
