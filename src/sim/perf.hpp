#pragma once

#include <cstdint>
#include <cstdio>

namespace hipcloud::sim {

/// Always-on per-world performance counters. One instance per simulated
/// world (owned by the EventLoop, shared with the buffer pool and the
/// packet pipeline), so the bench harness can report exactly what the
/// simulator substrate did: how many events the engine processed, how
/// often the payload pool recycled a buffer instead of hitting the
/// allocator, and how many payload bytes moved through the datapath by
/// reference rather than by copy.
///
/// Counters are plain uint64 increments on paths that already do far more
/// work per call — the overhead is noise, which is why they stay on even
/// in release builds and can feed every BENCH_*.json.
struct PerfCounters {
  // Event engine.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t events_cancelled = 0;

  // Payload buffer pool.
  std::uint64_t pool_hits = 0;    // buffer recycled from a freelist
  std::uint64_t pool_misses = 0;  // freelist empty: fresh heap allocation
  std::uint64_t pool_returns = 0;

  // Packet pipeline.
  std::uint64_t packets_delivered = 0;   // local_deliver on any node
  std::uint64_t payload_bytes_copied = 0;  // memcpy'd between buffers
  std::uint64_t payload_bytes_moved = 0;   // changed owner without a copy

  void merge(const PerfCounters& o) {
    events_scheduled += o.events_scheduled;
    events_fired += o.events_fired;
    events_cancelled += o.events_cancelled;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    pool_returns += o.pool_returns;
    packets_delivered += o.packets_delivered;
    payload_bytes_copied += o.payload_bytes_copied;
    payload_bytes_moved += o.payload_bytes_moved;
  }

  double pool_hit_rate() const {
    const std::uint64_t total = pool_hits + pool_misses;
    return total ? static_cast<double>(pool_hits) / static_cast<double>(total)
                 : 0.0;
  }

  /// Fresh payload-buffer heap allocations per delivered packet — the
  /// headline number the pooled pipeline drives down.
  double pool_misses_per_packet() const {
    return packets_delivered ? static_cast<double>(pool_misses) /
                                   static_cast<double>(packets_delivered)
                             : 0.0;
  }

  /// Emit as a JSON object body (no surrounding braces) with the given
  /// indent prefix — shared by every BENCH_*.json writer.
  void write_json_fields(std::FILE* f, const char* indent) const {
    std::fprintf(f,
                 "%s\"events_scheduled\": %llu,\n"
                 "%s\"events_fired\": %llu,\n"
                 "%s\"events_cancelled\": %llu,\n"
                 "%s\"pool_hits\": %llu,\n"
                 "%s\"pool_misses\": %llu,\n"
                 "%s\"pool_hit_rate\": %.4f,\n"
                 "%s\"packets_delivered\": %llu,\n"
                 "%s\"pool_misses_per_packet\": %.4f,\n"
                 "%s\"payload_bytes_copied\": %llu,\n"
                 "%s\"payload_bytes_moved\": %llu",
                 indent, (unsigned long long)events_scheduled,
                 indent, (unsigned long long)events_fired,
                 indent, (unsigned long long)events_cancelled,
                 indent, (unsigned long long)pool_hits,
                 indent, (unsigned long long)pool_misses,
                 indent, pool_hit_rate(),
                 indent, (unsigned long long)packets_delivered,
                 indent, pool_misses_per_packet(),
                 indent, (unsigned long long)payload_bytes_copied,
                 indent, (unsigned long long)payload_bytes_moved);
  }
};

}  // namespace hipcloud::sim
