#pragma once

#include <mutex>

/// Clang Thread Safety Analysis (TSA) surface. Under clang with attribute
/// support, HIPCLOUD_THREAD_SAFETY is defined and the HIPCLOUD_* macros
/// expand to the real capability attributes, so `-Wthread-safety` (wired
/// into the build under HIPCLOUD_WERROR, see the root CMakeLists) proves
/// lock discipline at compile time. Everywhere else — gcc builds this
/// repo's CI tier — they expand to nothing and the wrappers below are
/// zero-cost inline shims over std::mutex.
///
/// The repo deliberately annotates through its own Mutex/MutexLock pair
/// instead of std::mutex + std::lock_guard: libstdc++'s std::mutex
/// carries no capability attribute and std::lock_guard no scoped_lockable
/// attribute, so TSA cannot see acquisitions made through them and would
/// flag every guarded access as unlocked.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability) || __has_attribute(lockable)
#define HIPCLOUD_THREAD_SAFETY 1
#endif
#endif

#ifdef HIPCLOUD_THREAD_SAFETY
#define HIPCLOUD_TSA(x) __attribute__((x))
#else
#define HIPCLOUD_TSA(x)  // no-op outside clang
#endif

/// A type that is a lockable capability.
#define HIPCLOUD_CAPABILITY(name) HIPCLOUD_TSA(capability(name))
/// An RAII type whose lifetime holds a capability.
#define HIPCLOUD_SCOPED_CAPABILITY HIPCLOUD_TSA(scoped_lockable)
/// Data member readable/writable only while `mu` is held.
#define HIPCLOUD_GUARDED_BY(mu) HIPCLOUD_TSA(guarded_by(mu))
/// Function that may only be called with the capability held.
#define HIPCLOUD_REQUIRES(...) HIPCLOUD_TSA(requires_capability(__VA_ARGS__))
/// Function that acquires / releases the capability.
#define HIPCLOUD_ACQUIRE(...) HIPCLOUD_TSA(acquire_capability(__VA_ARGS__))
#define HIPCLOUD_RELEASE(...) HIPCLOUD_TSA(release_capability(__VA_ARGS__))
/// Function that must be entered with the capability NOT held (it takes
/// the lock itself; re-entry would deadlock).
#define HIPCLOUD_EXCLUDES(...) HIPCLOUD_TSA(locks_excluded(__VA_ARGS__))
/// Escape hatch for code TSA cannot model (e.g. lock handoff).
#define HIPCLOUD_NO_TSA HIPCLOUD_TSA(no_thread_safety_analysis)

namespace hipcloud::sim {

/// std::mutex annotated as a TSA capability.
class HIPCLOUD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HIPCLOUD_ACQUIRE() { mu_.lock(); }
  void unlock() HIPCLOUD_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock that TSA can see through (the std::lock_guard shape, with
/// the scoped_lockable attribute libstdc++ lacks).
class HIPCLOUD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HIPCLOUD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HIPCLOUD_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace hipcloud::sim
