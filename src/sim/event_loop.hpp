#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/perf.hpp"
#include "sim/time.hpp"

namespace hipcloud::sim {

/// Handle returned by EventLoop::schedule(); can be used to cancel the
/// event before it fires. Value-semantic and cheap to copy.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  // (generation << 32) | (slot index + 1); 0 is the invalid handle.
  std::uint64_t id_ = 0;
};

/// Deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant fire in schedule order (FIFO),
/// which together with the seeded PRNGs makes every scenario bit-for-bit
/// reproducible. Single-threaded by design: one EventLoop = one simulated
/// world. Parallelism belongs one level up (independent worlds on
/// independent threads, e.g. the bench harness sweeping client counts).
///
/// Internally the queue is an indexed binary heap of 24-byte POD entries
/// over an arena of generation-tagged callback slots:
///
///  - schedule: grab a slot from the freelist (or grow the arena), store
///    the callback in place (InlineFn — no heap allocation for callables
///    up to 128 bytes), push {when, seq, slot} onto the heap.
///  - cancel: O(1) — validate the handle's generation against the slot,
///    mark the slot dead and destroy its callback eagerly. No tombstone
///    hash sets, no per-event unordered_set inserts; the dead heap entry
///    is skipped (and its slot recycled) when it reaches the top.
///  - fire: pop the root, move the callback out, recycle the slot (bump
///    its generation so stale handles can't cancel a reused slot), then
///    invoke — so callbacks can freely schedule/cancel re-entrantly.
class EventLoop {
 public:
  using Callback = InlineFn;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `cb` to run `delay` from now. Negative delays clamp to 0.
  EventHandle schedule(Duration delay, Callback cb);

  /// Schedule `cb` at an absolute virtual time (>= now).
  EventHandle schedule_at(Time when, Callback cb);

  /// Schedule a cross-shard arrival with a schedule-stable identity.
  /// Instead of drawing from the local FIFO counter (whose value depends
  /// on *when* the coordinator drained this post), the entry's seq is the
  /// encoding `kCrossSeqBit | (src << kCrossSrcShift) | post_idx` — a
  /// name fixed at post() time. Consequences, both load-bearing for the
  /// determinism hash:
  ///  - at the same instant, every cross arrival fires after every local
  ///    event (kCrossSeqBit dominates any realistic local counter), and
  ///    cross arrivals order among themselves by (src shard, post index)
  ///    — exactly the coordinator's canonical drain order;
  ///  - the (when, seq) pair folded by PerfCounters::note_fire is
  ///    invariant across epoch slicings, so adaptive and global-min
  ///    lookahead produce byte-identical hashes by construction.
  /// The local counter is NOT consumed, so local seq streams are equally
  /// slicing-invariant.
  EventHandle schedule_cross(Time when, std::uint32_t src_shard,
                             std::uint64_t post_idx, Callback cb);

  static constexpr std::uint64_t kCrossSeqBit = 1ULL << 63;
  static constexpr unsigned kCrossSrcShift = 40;  // post_idx < 2^40

  /// Cancel a pending event. Returns true if the event existed and had
  /// not yet fired. Cancelling twice (or after firing) is a harmless no-op
  /// (the slot generation has moved on) and costs O(1).
  bool cancel(EventHandle h);

  /// Run until the event queue drains or `until` (if >= 0) is reached.
  /// Returns the number of events executed.
  std::size_t run(Time until = -1);

  /// Execute at most one pending event. Returns false when queue is empty
  /// or the next event lies beyond `until` (when `until` >= 0).
  bool step(Time until = -1);

  /// Pending (non-cancelled) event count.
  std::size_t pending() const { return live_; }

  /// Time of the earliest live event, or -1 when no live events remain.
  /// Non-const: cancelled entries sitting on the heap top are recycled on
  /// the way (same bounded work step() would have done). The shard
  /// coordinator uses this between epochs to skip idle stretches
  /// deterministically.
  Time next_event_time();

  /// Cancelled-but-not-yet-popped heap entries. Bounded by the number of
  /// scheduled events: each dead entry is dropped (and its slot recycled)
  /// the moment it reaches the heap top, and a drained heap holds none.
  /// Exposed for the consistency assertions in the tests.
  std::size_t tombstones() const { return dead_in_heap_; }

  /// True when no live events remain.
  bool idle() const { return pending() == 0; }

  /// Request run() to stop after the current event completes.
  void stop() { stopped_ = true; }

  /// Full structural audit of the engine: heap shape ((when, seq) order
  /// holds on every parent/child edge), slot-arena partition (every slot
  /// is referenced by exactly one heap entry or sits on the freelist,
  /// never both), live/tombstone accounting, and no pending event in the
  /// past. O(pending). Throws sim::CheckFailure on the first violation.
  /// Always compiled (tests call it directly); the audit build
  /// (-DHIPCLOUD_AUDIT=ON) additionally runs it every 1024 firings.
  void audit_consistency() const;

  /// Per-world performance counters (event engine + buffer pool + packet
  /// pipeline all record into this one instance).
  PerfCounters& perf() { return perf_; }
  const PerfCounters& perf() const { return perf_; }

 private:
  struct Slot {
    InlineFn cb;
    std::uint32_t gen = 0;
    bool live = false;  // false: free-listed, or cancelled-awaiting-pop
  };
  // POD heap entry; the generation lives only in the handle because a slot
  // is recycled exactly when its (single) heap entry pops.
  struct HeapEntry {
    Time when;
    std::uint64_t seq;  // tiebreaker: FIFO within the same instant
    std::uint32_t slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  EventHandle schedule_with_seq(Time when, std::uint64_t seq, Callback cb);
  std::uint32_t alloc_slot();
  void recycle_slot(std::uint32_t idx);
  void heap_push(HeapEntry e);
  void heap_pop();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::size_t live_ = 0;
  std::size_t dead_in_heap_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  PerfCounters perf_;
};

}  // namespace hipcloud::sim
