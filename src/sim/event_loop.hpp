#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace hipcloud::sim {

/// Handle returned by EventLoop::schedule(); can be used to cancel the
/// event before it fires. Value-semantic and cheap to copy.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant fire in schedule order (FIFO),
/// which together with the seeded PRNGs makes every scenario bit-for-bit
/// reproducible. Single-threaded by design: one EventLoop = one simulated
/// world. Parallelism belongs one level up (independent worlds on
/// independent threads, e.g. the bench harness sweeping client counts).
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `cb` to run `delay` from now. Negative delays clamp to 0.
  EventHandle schedule(Duration delay, Callback cb);

  /// Schedule `cb` at an absolute virtual time (>= now).
  EventHandle schedule_at(Time when, Callback cb);

  /// Cancel a pending event. Returns true if the event existed and had
  /// not yet fired. Cancelling twice (or after firing) is a harmless no-op
  /// and never leaves a tombstone behind.
  bool cancel(EventHandle h);

  /// Run until the event queue drains or `until` (if >= 0) is reached.
  /// Returns the number of events executed.
  std::size_t run(Time until = -1);

  /// Execute at most one pending event. Returns false when queue is empty
  /// or the next event lies beyond `until` (when `until` >= 0).
  bool step(Time until = -1);

  /// Pending (non-cancelled) event count.
  std::size_t pending() const { return live_ids_.size(); }

  /// Cancelled-but-not-yet-popped tombstone count. Bounded by pending():
  /// tombstones are erased when their entry pops and cleared when the
  /// queue drains, so long closed-loop runs with heavy timer re-arming
  /// (every TCP ack re-arms the RTO) can't grow the set without bound.
  /// Exposed for the consistency assertions in the tests.
  std::size_t tombstones() const { return cancelled_.size(); }

  /// True when no live events remain.
  bool idle() const { return pending() == 0; }

  /// Request run() to stop after the current event completes.
  void stop() { stopped_ = true; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // tiebreaker: FIFO within the same instant
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Ids of scheduled, not-yet-fired, not-cancelled events. Lets cancel()
  // distinguish "pending" from "already fired" in O(1), which is what keeps
  // the tombstone set from accumulating ids that can never pop.
  std::unordered_set<std::uint64_t> live_ids_;
  // Cancelled ids still sitting in the queue; entries are skipped lazily
  // when popped (a hash set because this is consulted on every pop).
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace hipcloud::sim
