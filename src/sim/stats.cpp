#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hipcloud::sim {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  sum_ += x;
  // Welford's online update keeps mean/variance numerically stable even
  // for millions of samples with large offsets.
  const double n = static_cast<double>(samples_.size());
  const double delta = x - mean_;
  mean_ += delta / n;
  m2_ += delta * (x - mean_);
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (std::isnan(q)) return 0.0;  // NaN survives both clamps below
  if (q < 0.0) q = 0.0;
  if (q > 100.0) q = 100.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto n = samples_.size();
  // Nearest-rank: ceil(q/100 * n), 1-indexed.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

// ORDER-SENSITIVE: Chan's parallel-Welford combination below is exact in
// real arithmetic but not associative in floating point — merging shard
// B then C produces bit-different mean_/m2_ than C then B, and the
// sample concatenation order decides percentile ties. Aggregators MUST
// merge partial summaries in a fixed structural order (shard id, sweep
// job index), never in worker-completion order, or the BENCH_*.json
// bytes stop being reproducible across thread counts.
// sim::ShardCoordinator::merged_perf and the bench sweeps already do;
// tests/sim/stats_test pins the contract.
void Summary::merge(const Summary& o) {
  if (o.samples_.empty()) return;
  if (samples_.empty()) {
    samples_ = o.samples_;
    sorted_ = o.sorted_;
    mean_ = o.mean_;
    m2_ = o.m2_;
    sum_ = o.sum_;
    return;
  }
  const double na = static_cast<double>(samples_.size());
  const double nb = static_cast<double>(o.samples_.size());
  const double delta = o.mean_ - mean_;
  m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
  mean_ += delta * nb / (na + nb);
  sum_ += o.sum_;
  samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
  sorted_ = false;
}

void Summary::clear() {
  samples_.clear();
  sorted_ = true;
  mean_ = m2_ = sum_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::merge(const Histogram& o) {
  if (lo_ != o.lo_ || width_ != o.width_ || counts_.size() != o.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: mismatched geometry");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  overflow_ += o.overflow_;
  underflow_ += o.underflow_;
  total_ += o.total_;
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

}  // namespace hipcloud::sim
