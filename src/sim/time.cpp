#include "sim/time.hpp"

#include <cstdio>

namespace hipcloud::sim {

std::string format_time(Time t) {
  char buf[64];
  if (t < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_micros(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(t));
  }
  return buf;
}

}  // namespace hipcloud::sim
