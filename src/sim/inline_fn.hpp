#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hipcloud::sim {

/// Move-only type-erased `void()` callable with a large small-buffer
/// optimisation, built for the event loop's hot path.
///
/// `std::function` keeps only ~16 bytes of inline storage on libstdc++, so
/// every real simulator callback — a link-delivery lambda capturing a
/// Packet, an RTO timer capturing a shared_ptr plus sequence state — heap
/// allocates on schedule and frees on fire. InlineFn reserves
/// `kInlineSize` bytes in place (≥ the largest per-packet lambda in the
/// tree), so the per-event allocator round-trip disappears; callables that
/// do not fit still work via a heap fallback.
///
/// Unlike `std::function` it is move-only, which is exactly what the event
/// queue needs and lets captures hold move-only payload buffers.
class InlineFn {
 public:
  /// Inline capacity. The largest hot callback today is the link-delivery
  /// lambda (~112 bytes: Packet by value plus two pointers); 128 leaves
  /// headroom without bloating the per-slot arena entry.
  static constexpr std::size_t kInlineSize = 128;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage_) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  struct Ops {
    void (*invoke)(void* storage);
    void (*move_to)(void* from, void* to);  // move-construct into `to`
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](void* from, void* to) {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](void* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->move_to(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(kAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace hipcloud::sim
