#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>

#include "sim/check.hpp"
#include "sim/log.hpp"

namespace hipcloud::sim {

namespace {

constexpr Time kInfTime = std::numeric_limits<Time>::max();

/// Saturating add for horizon arithmetic: an unconstrained bound plus a
/// finite lookahead stays unconstrained instead of wrapping.
Time sat_add(Time a, Duration b) {
  if (a >= kInfTime - b) return kInfTime;
  return a + b;
}

}  // namespace

// hipcheck:seam — setup-time (re)build of the round state; no workers exist
std::size_t ShardCoordinator::add_shard(EventLoop* loop) {
  const std::size_t id = shards_.size();
  shards_.push_back(loop);
  const std::size_t n = shards_.size();
  // Resizing invalidates mailbox contents, so shards must all register
  // before the first post()/run(); cells are addressed src * n + dst.
  HIPCLOUD_CHECK(inbox_pending() == 0,
                 "add_shard after cross-shard events were posted");
  inboxes_.clear();
  inboxes_.resize(n * n);
  post_seq_.assign(n, 0);
  pair_lookahead_.assign(n * n, -1);
  horizons_.assign(n, -1);
  lbts_.assign(n, kInfTime);
  return id;
}

void ShardCoordinator::register_pair_lookahead(std::size_t src,
                                               std::size_t dst,
                                               Duration lookahead) {
  const std::size_t n = shards_.size();
  HIPCLOUD_CHECK(src < n && dst < n && src != dst,
                 "pair lookahead outside the world");
  HIPCLOUD_CHECK(lookahead > 0, "pair lookahead must be positive");
  Duration& cell = pair_lookahead_[src * n + dst];
  if (cell < 0 || lookahead < cell) cell = lookahead;
}

Duration ShardCoordinator::pair_lookahead(std::size_t src,
                                          std::size_t dst) const {
  const std::size_t n = shards_.size();
  HIPCLOUD_CHECK(src < n && dst < n, "pair lookahead outside the world");
  return pair_lookahead_[src * n + dst];
}

Duration ShardCoordinator::effective_lookahead(std::size_t src,
                                               std::size_t dst) const {
  const Duration reg = pair_lookahead_[src * shards_.size() + dst];
  if (reg >= 0) return reg;
  return registered_only_ ? -1 : lookahead_;
}

Duration ShardCoordinator::min_effective_lookahead() const {
  const std::size_t n = shards_.size();
  Duration min_la = registered_only_ ? -1 : lookahead_;
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      const Duration reg = pair_lookahead_[src * n + dst];
      if (reg >= 0 && (min_la < 0 || reg < min_la)) min_la = reg;
    }
  }
  // A world with no seams at all still needs a positive epoch for the
  // global-min rule; the default lookahead serves.
  return min_la >= 0 ? min_la : lookahead_;
}

void ShardCoordinator::post(std::size_t src, std::size_t dst, Time when,
                            InlineFn fn) {
  const std::size_t n = shards_.size();
  HIPCLOUD_CHECK(src < n && dst < n, "cross-shard post outside the world");
  HIPCLOUD_CHECK(!registered_only_ || pair_lookahead_[src * n + dst] >= 0,
                 "cross-shard post on an unregistered seam");
  Inbox& cell = inboxes_[src * n + dst];
  cell.events.push_back(CrossEvent{when, post_seq_[src]++, std::move(fn)});
}

std::size_t ShardCoordinator::inbox_pending() const {
  std::size_t total = 0;
  for (const Inbox& cell : inboxes_) total += cell.events.size();
  return total;
}

PerfCounters ShardCoordinator::merged_perf() const {
  // Shard-id order, always: PerfCounters::merge folds the per-shard
  // hashes commutatively, but the float-free counters here and the
  // Summary/Histogram merges one level up are only byte-stable when the
  // merge order itself is fixed — so the coordinator pins it to the id
  // order regardless of which worker finished last.
  PerfCounters merged;
  for (const EventLoop* loop : shards_) merged.merge(loop->perf());
  merged.shard_epochs += epochs_;
  merged.shard_strides += strides_;
  merged.shard_stride_ns += stride_ns_;
  return merged;
}

// hipcheck:seam — the sanctioned barrier-phase inbox drain: both barrier
// crossings between a post and this drain give the happens-before edge.
void ShardCoordinator::drain_into(std::size_t dst) {
  const std::size_t n = shards_.size();
  struct Pending {
    Time when;
    std::uint32_t src;
    std::uint64_t post_idx;
    InlineFn fn;
  };
  std::vector<Pending> batch;
  for (std::size_t src = 0; src < n; ++src) {
    Inbox& cell = inboxes_[src * n + dst];
    for (CrossEvent& e : cell.events) {
      batch.push_back(Pending{e.when, static_cast<std::uint32_t>(src),
                              e.post_idx, std::move(e.fn)});
    }
    cell.events.clear();
  }
  if (batch.empty()) return;
  // (when, src shard, per-source post index) is a total order independent
  // of drain timing. schedule_cross stamps each entry with exactly this
  // identity, so the heap would order them correctly in any insertion
  // order; the sort keeps the canonical sequence visible in schedule
  // order too (events_scheduled traces, audit dumps).
  std::sort(batch.begin(), batch.end(), [](const Pending& a, const Pending& b) {
    return std::tie(a.when, a.src, a.post_idx) <
           std::tie(b.when, b.src, b.post_idx);
  });
  EventLoop* loop = shards_[dst];
  for (Pending& p : batch) {
    loop->schedule_cross(p.when, p.src, p.post_idx, std::move(p.fn));
  }
}

// hipcheck:seam — the cross-worker failure funnel; mutex-serialized
void ShardCoordinator::record_failure() {
  const MutexLock lock(failure_mu_);
  if (!first_failure_) first_failure_ = std::current_exception();
  failed_.store(true, std::memory_order_relaxed);
}

// hipcheck:seam — barrier-completion step: every worker is parked, so the
// shared round state (horizons_, lbts_, the schedule counters) has exactly
// one running writer and the barrier release publishes it.
void ShardCoordinator::compute_horizons(Time until, bool& done) {
  const std::size_t n = shards_.size();
  // l(i) starts at next(i): the earliest pending work for shard i, from
  // its own heap or from undrained inbox posts addressed to it. These
  // are the committed clocks' forward projections published at this
  // barrier — every shard's loop is parked, so the reads are exact.
  Time global_min = kInfTime;
  for (std::size_t i = 0; i < n; ++i) {
    const Time t = shards_[i]->next_event_time();
    lbts_[i] = t >= 0 ? t : kInfTime;
  }
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      for (const CrossEvent& e : inboxes_[src * n + dst].events) {
        if (e.when < lbts_[dst]) lbts_[dst] = e.when;
      }
    }
  }
  for (const Time t : lbts_) global_min = std::min(global_min, t);
  if (global_min == kInfTime || (until >= 0 && global_min > until)) {
    done = true;
    return;
  }

  if (!adaptive_) {
    // Global-min ablation: one epoch length for everyone, the PR-7 rule.
    const Duration la = min_effective_lookahead();
    HIPCLOUD_CHECK(la > 0, "shard lookahead must be positive");
    Time h = sat_add(global_min, la);
    if (until >= 0 && h > until) h = until;
    horizons_.assign(n, h);
  } else {
    // Fixed point of l(i) = min(next(i), min_j l(j) + la(j,i)) — a
    // shortest-path relaxation, so at most n-1 sweeps converge; worlds
    // converge in 2-3 because seams are few. l(i) lower-bounds the next
    // instant shard i can fire (and hence emit) anything.
    for (std::size_t round = 1; round < n; ++round) {
      bool changed = false;
      for (std::size_t dst = 0; dst < n; ++dst) {
        for (std::size_t src = 0; src < n; ++src) {
          if (src == dst) continue;
          const Duration la = effective_lookahead(src, dst);
          if (la < 0) continue;
          const Time cand = sat_add(lbts_[src], la);
          if (cand < lbts_[dst]) {
            lbts_[dst] = cand;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    // horizon(i): nothing can arrive from seam (j,i) before l(j) +
    // la(j,i), so shard i safely commits through the min of those. The
    // shard holding the global minimum l always clears its own horizon
    // (every term is >= l_min + positive la), so each round fires at
    // least one event — progress is unconditional.
    for (std::size_t i = 0; i < n; ++i) {
      Time h = kInfTime;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const Duration la = effective_lookahead(j, i);
        if (la < 0) continue;
        h = std::min(h, sat_add(lbts_[j], la));
      }
      if (until >= 0 && h > until) h = until;
      horizons_[i] = h == kInfTime ? -1 : h;
    }
  }

  ++epochs_;
  for (std::size_t i = 0; i < n; ++i) {
    const Time h = horizons_[i];
    if (h < 0) {
      // Unconstrained drain stride (no incoming seam).
      if (shards_[i]->pending() > 0) ++strides_;
    } else if (h > shards_[i]->now()) {
      ++strides_;
      stride_ns_ += static_cast<std::uint64_t>(h - shards_[i]->now());
    }
  }
}

unsigned ShardCoordinator::plan_workers(unsigned requested) const {
  const std::size_t n = shards_.size();
  if (n == 0) return 1;
  if (requested >= 1) {
    return requested > n ? static_cast<unsigned>(n) : requested;
  }
  // Auto: size the pool from the work on hand. Barrier rounds cost real
  // wall time per worker, so tiny worlds (the 1k-client fig_scale point)
  // must collapse to few workers no matter how many cores the host has.
  std::size_t pending = inbox_pending();
  for (const EventLoop* loop : shards_) pending += loop->pending();
  std::size_t by_work = pending / kAutoEventsPerWorker;
  if (by_work < 1) by_work = 1;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::size_t w = std::min<std::size_t>({by_work, n, hw});
  return static_cast<unsigned>(w);
}

// hipcheck:seam — owns the worker pool: resets the shared failure funnel
// before any worker exists and reads it back after every join.
std::size_t ShardCoordinator::run(Time until, unsigned workers) {
  const std::size_t n = shards_.size();
  if (n == 0) return 0;
  workers = plan_workers(workers);
  HIPCLOUD_CHECK(lookahead_ > 0, "shard lookahead must be positive");
  failed_.store(false, std::memory_order_relaxed);
  first_failure_ = nullptr;

  std::uint64_t fired_before = 0;
  for (const EventLoop* loop : shards_) fired_before += loop->perf().events_fired;

  // Round state: written only inside the barrier completion (all workers
  // parked) or before the workers start, read by workers after release —
  // the barrier itself is the synchronization.
  bool done = false;
  auto advance = [&]() noexcept {
    if (failed_.load(std::memory_order_relaxed)) {
      done = true;
      return;
    }
    compute_horizons(until, done);
  };

  std::barrier drain_gate(static_cast<std::ptrdiff_t>(workers));
  std::barrier sync(static_cast<std::ptrdiff_t>(workers), advance);

  advance();  // compute the first round's horizons before any worker exists

  auto worker_main = [&](unsigned w) {
    // Audited shared reads in this loop: `done` and horizons_ are written
    // only by the barrier completion (advance) while every worker is
    // parked, and the barrier release sequences those writes before the
    // reads below — plain loads are race-free. failed_ and
    // barrier_wait_ns_ are relaxed atomics by design (flag and counter;
    // no data rides on their ordering).
    while (!done) {
      // Phase A: drain inboxes filled during the previous round. The
      // drain_gate keeps phase-B posts (into cells another worker may
      // still be draining) from starting early.
      if (!failed_.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t s = w; s < n; s += workers) drain_into(s);
        } catch (...) {
          record_failure();
        }
      }
      // hipcheck:allow(wall-clock): barrier-wait telemetry; never feeds sim state
      const auto wait_a = std::chrono::steady_clock::now();
      drain_gate.arrive_and_wait();
      barrier_wait_ns_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  // hipcheck:allow(wall-clock): barrier-wait telemetry; never feeds sim state
                  std::chrono::steady_clock::now() - wait_a)
                  .count()),
          std::memory_order_relaxed);
      // Phase B: run each owned shard's loop to its own horizon. Static
      // id-striped ownership: assignment affects only wall time, never
      // what any shard executes.
      if (!failed_.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t s = w; s < n; s += workers) {
            Log::set_shard_id(static_cast<int>(s));
            shards_[s]->run(horizons_[s]);
          }
        } catch (...) {
          record_failure();
        }
        Log::set_shard_id(-1);
      }
      // hipcheck:allow(wall-clock): barrier-wait telemetry; never feeds sim state
      const auto wait_b = std::chrono::steady_clock::now();
      sync.arrive_and_wait();  // completion computes the next horizons
      barrier_wait_ns_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  // hipcheck:allow(wall-clock): barrier-wait telemetry; never feeds sim state
                  std::chrono::steady_clock::now() - wait_b)
                  .count()),
          std::memory_order_relaxed);
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
    for (std::thread& t : pool) t.join();
  }

  {
    // The joins above already order every record_failure() before this
    // read; the lock is for the thread-safety analysis (first_failure_ is
    // GUARDED_BY) and costs one uncontended acquire per run.
    const MutexLock lock(failure_mu_);
    if (first_failure_) std::rethrow_exception(first_failure_);
  }

  if (until >= 0) {
    // Leave every clock at exactly `until` (EventLoop::run semantics for
    // bounded runs); nothing fires — the termination check proved no
    // event at or before `until` remains anywhere.
    for (EventLoop* loop : shards_) loop->run(until);
  }

  std::uint64_t fired_after = 0;
  for (const EventLoop* loop : shards_) fired_after += loop->perf().events_fired;
  return static_cast<std::size_t>(fired_after - fired_before);
}

}  // namespace hipcloud::sim
