#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <tuple>
#include <utility>

#include "sim/check.hpp"
#include "sim/log.hpp"

namespace hipcloud::sim {

std::size_t ShardCoordinator::add_shard(EventLoop* loop) {
  const std::size_t id = shards_.size();
  shards_.push_back(loop);
  const std::size_t n = shards_.size();
  // Resizing invalidates mailbox contents, so shards must all register
  // before the first post()/run(); cells are addressed src * n + dst.
  HIPCLOUD_CHECK(inbox_pending() == 0,
                 "add_shard after cross-shard events were posted");
  inboxes_.clear();
  inboxes_.resize(n * n);
  post_seq_.assign(n, 0);
  return id;
}

void ShardCoordinator::post(std::size_t src, std::size_t dst, Time when,
                            InlineFn fn) {
  const std::size_t n = shards_.size();
  HIPCLOUD_CHECK(src < n && dst < n, "cross-shard post outside the world");
  Inbox& cell = inboxes_[src * n + dst];
  cell.events.push_back(CrossEvent{when, post_seq_[src]++, std::move(fn)});
}

std::size_t ShardCoordinator::inbox_pending() const {
  std::size_t total = 0;
  for (const Inbox& cell : inboxes_) total += cell.events.size();
  return total;
}

PerfCounters ShardCoordinator::merged_perf() const {
  // Shard-id order, always: PerfCounters::merge folds the per-shard
  // hashes commutatively, but the float-free counters here and the
  // Summary/Histogram merges one level up are only byte-stable when the
  // merge order itself is fixed — so the coordinator pins it to the id
  // order regardless of which worker finished last.
  PerfCounters merged;
  for (const EventLoop* loop : shards_) merged.merge(loop->perf());
  return merged;
}

void ShardCoordinator::drain_into(std::size_t dst) {
  const std::size_t n = shards_.size();
  struct Pending {
    Time when;
    std::uint32_t src;
    std::uint64_t post_idx;
    InlineFn fn;
  };
  std::vector<Pending> batch;
  for (std::size_t src = 0; src < n; ++src) {
    Inbox& cell = inboxes_[src * n + dst];
    for (CrossEvent& e : cell.events) {
      batch.push_back(Pending{e.when, static_cast<std::uint32_t>(src),
                              e.post_idx, std::move(e.fn)});
    }
    cell.events.clear();
  }
  if (batch.empty()) return;
  // (when, src shard, per-source post index) is a total order independent
  // of drain timing, so the destination loop sees one canonical schedule
  // sequence — its (when, seq) firing stream cannot depend on workers.
  std::sort(batch.begin(), batch.end(), [](const Pending& a, const Pending& b) {
    return std::tie(a.when, a.src, a.post_idx) <
           std::tie(b.when, b.src, b.post_idx);
  });
  EventLoop* loop = shards_[dst];
  for (Pending& p : batch) loop->schedule_at(p.when, std::move(p.fn));
}

void ShardCoordinator::record_failure() {
  const std::lock_guard<std::mutex> lock(failure_mu_);
  if (!first_failure_) first_failure_ = std::current_exception();
  failed_.store(true, std::memory_order_relaxed);
}

std::size_t ShardCoordinator::run(Time until, unsigned workers) {
  const std::size_t n = shards_.size();
  if (n == 0) return 0;
  if (workers < 1) workers = 1;
  if (workers > n) workers = static_cast<unsigned>(n);
  HIPCLOUD_CHECK(lookahead_ > 0, "shard lookahead must be positive");
  failed_.store(false, std::memory_order_relaxed);
  first_failure_ = nullptr;

  std::uint64_t fired_before = 0;
  for (const EventLoop* loop : shards_) fired_before += loop->perf().events_fired;

  // Epoch state: written only inside the barrier completion (all workers
  // parked) or before the workers start, read by workers after release —
  // the barrier itself is the synchronization.
  Time epoch_end = 0;
  bool done = false;
  auto advance = [&]() noexcept {
    if (failed_.load(std::memory_order_relaxed)) {
      done = true;
      return;
    }
    // Skip-ahead: the next epoch starts at the earliest pending work
    // anywhere (loop events or undrained inbox entries), so idle
    // stretches cost one barrier round instead of (gap / lookahead).
    Time min_next = -1;
    for (EventLoop* loop : shards_) {
      const Time t = loop->next_event_time();
      if (t >= 0 && (min_next < 0 || t < min_next)) min_next = t;
    }
    for (const Inbox& cell : inboxes_) {
      for (const CrossEvent& e : cell.events) {
        if (min_next < 0 || e.when < min_next) min_next = e.when;
      }
    }
    if (min_next < 0 || (until >= 0 && min_next > until)) {
      done = true;
      return;
    }
    epoch_end = min_next + lookahead_;
    if (until >= 0 && epoch_end > until) epoch_end = until;
  };

  std::barrier drain_gate(static_cast<std::ptrdiff_t>(workers));
  std::barrier sync(static_cast<std::ptrdiff_t>(workers), advance);

  advance();  // compute the first epoch before any worker exists

  auto worker_main = [&](unsigned w) {
    while (!done) {
      // Phase A: drain inboxes filled during the previous epoch. The
      // drain_gate keeps phase-B posts (into cells another worker may
      // still be draining) from starting early.
      if (!failed_.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t s = w; s < n; s += workers) drain_into(s);
        } catch (...) {
          record_failure();
        }
      }
      drain_gate.arrive_and_wait();
      // Phase B: run each owned shard's loop through the epoch. Static
      // id-striped ownership: assignment affects only wall time, never
      // what any shard executes.
      if (!failed_.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t s = w; s < n; s += workers) {
            Log::set_shard_id(static_cast<int>(s));
            shards_[s]->run(epoch_end);
          }
        } catch (...) {
          record_failure();
        }
        Log::set_shard_id(-1);
      }
      sync.arrive_and_wait();  // completion computes the next epoch
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
    for (std::thread& t : pool) t.join();
  }

  if (first_failure_) std::rethrow_exception(first_failure_);

  if (until >= 0) {
    // Leave every clock at exactly `until` (EventLoop::run semantics for
    // bounded runs); nothing fires — the termination check proved no
    // event at or before `until` remains anywhere.
    for (EventLoop* loop : shards_) loop->run(until);
  }

  std::uint64_t fired_after = 0;
  for (const EventLoop* loop : shards_) fired_after += loop->perf().events_fired;
  return static_cast<std::size_t>(fired_after - fired_before);
}

}  // namespace hipcloud::sim
