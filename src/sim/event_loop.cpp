#include "sim/event_loop.hpp"

#include <algorithm>

namespace hipcloud::sim {

EventHandle EventLoop::schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle EventLoop::schedule_at(Time when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(cb)});
  live_ids_.insert(id);
  return EventHandle(id);
}

bool EventLoop::cancel(EventHandle h) {
  // Only a still-live id becomes a tombstone; cancelling a fired (or
  // already-cancelled) event is a no-op, so cancelled_ never holds ids
  // whose queue entry is gone.
  if (!h.valid() || live_ids_.erase(h.id_) == 0) return false;
  cancelled_.insert(h.id_);
  return true;
}

bool EventLoop::step(Time until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (until >= 0 && top.when > until) return false;
    if (const auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    Entry e = std::move(const_cast<Entry&>(top));
    queue_.pop();
    live_ids_.erase(e.id);
    now_ = e.when;
    e.cb();
    return true;
  }
  // Queue drained: any remaining tombstones can never pop, drop them.
  cancelled_.clear();
  return false;
}

std::size_t EventLoop::run(Time until) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step(until)) ++n;
  // When bounded, advance the clock to the bound so repeated bounded runs
  // observe monotonic time even across empty stretches.
  if (until >= 0 && now_ < until) now_ = until;
  return n;
}

}  // namespace hipcloud::sim
