#include "sim/event_loop.hpp"

#include "sim/check.hpp"

namespace hipcloud::sim {

void EventLoop::audit_consistency() const {
  const std::size_t n = heap_.size();
  std::size_t live_in_heap = 0;
  std::size_t dead_in_heap = 0;
  std::vector<bool> referenced(slots_.size(), false);
  for (std::size_t i = 0; i < n; ++i) {
    const HeapEntry& e = heap_[i];
    HIPCLOUD_CHECK(e.slot < slots_.size(),
                   "heap entry references a slot outside the arena");
    HIPCLOUD_CHECK(!referenced[e.slot],
                   "slot referenced by two heap entries");
    referenced[e.slot] = true;
    if (slots_[e.slot].live) {
      ++live_in_heap;
    } else {
      ++dead_in_heap;
    }
    if (i > 0) {
      const HeapEntry& parent = heap_[(i - 1) / 2];
      HIPCLOUD_CHECK(!earlier(e, parent),
                     "heap property violated: child earlier than parent");
    }
    HIPCLOUD_CHECK(e.when >= now_, "pending event scheduled in the past");
  }
  HIPCLOUD_CHECK(live_in_heap == live_,
                 "live-event count disagrees with heap contents");
  HIPCLOUD_CHECK(dead_in_heap == dead_in_heap_,
                 "tombstone count disagrees with heap contents");
  for (const std::uint32_t idx : free_slots_) {
    HIPCLOUD_CHECK(idx < slots_.size(), "freelist entry outside the arena");
    HIPCLOUD_CHECK(!slots_[idx].live, "live slot on the freelist");
    HIPCLOUD_CHECK(!referenced[idx],
                   "slot simultaneously freelisted and in the heap");
  }
  HIPCLOUD_CHECK(heap_.size() + free_slots_.size() == slots_.size(),
                 "slot arena partition broken (leaked or duplicated slot)");
}

std::uint32_t EventLoop::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventLoop::recycle_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.cb.reset();
  s.live = false;
  ++s.gen;  // invalidate any outstanding handles to this slot
  free_slots_.push_back(idx);
}

// Both sifts move the 24-byte POD entries through a hole instead of
// swapping, so each level costs one copy rather than three.

void EventLoop::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);  // grow first; the slot is overwritten below
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventLoop::heap_pop() {
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

EventHandle EventLoop::schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle EventLoop::schedule_at(Time when, Callback cb) {
  return schedule_with_seq(when, next_seq_++, std::move(cb));
}

EventHandle EventLoop::schedule_cross(Time when, std::uint32_t src_shard,
                                      std::uint64_t post_idx, Callback cb) {
  HIPCLOUD_DCHECK(src_shard < (1u << (63 - kCrossSrcShift)),
                  "cross seq encoding: shard id too wide");
  HIPCLOUD_DCHECK(post_idx < (1ULL << kCrossSrcShift),
                  "cross seq encoding: post index too wide");
  const std::uint64_t seq =
      kCrossSeqBit | (static_cast<std::uint64_t>(src_shard) << kCrossSrcShift) |
      post_idx;
  return schedule_with_seq(when, seq, std::move(cb));
}

EventHandle EventLoop::schedule_with_seq(Time when, std::uint64_t seq,
                                         Callback cb) {
  if (when < now_) when = now_;
  const std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  s.live = true;
  heap_push(HeapEntry{when, seq, idx});
  ++live_;
  ++perf_.events_scheduled;
  return EventHandle((static_cast<std::uint64_t>(s.gen) << 32) |
                     (static_cast<std::uint64_t>(idx) + 1));
}

bool EventLoop::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const std::uint32_t idx =
      static_cast<std::uint32_t>(h.id_ & 0xffffffffu) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(h.id_ >> 32);
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  // A fired (or already-cancelled) event has had its slot recycled and its
  // generation bumped, so stale handles fail this check in O(1).
  if (!s.live || s.gen != gen) return false;
  s.live = false;
  s.cb.reset();  // release captured state eagerly, not at pop time
  --live_;
  ++dead_in_heap_;
  ++perf_.events_cancelled;
  return true;
}

bool EventLoop::step(Time until) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    Slot& s = slots_[top.slot];
    if (!s.live) {
      // Cancelled entry reached the top: recycle its slot and move on.
      recycle_slot(top.slot);
      heap_pop();
      --dead_in_heap_;
      continue;
    }
    if (until >= 0 && top.when > until) return false;
    // Capture the entry by value: heap_pop() below rewrites the root.
    const HeapEntry entry = top;
    HIPCLOUD_CHECK(entry.when >= now_, "event fired with regressed time");
    // Move the callback out and retire the entry *before* invoking, so the
    // callback can re-enter schedule()/cancel() freely.
    Callback cb = std::move(s.cb);
    recycle_slot(entry.slot);
    heap_pop();
    --live_;
    now_ = entry.when;
    ++perf_.events_fired;
    perf_.note_fire(entry.when, entry.seq);
#ifdef HIPCLOUD_AUDIT_ENABLED
    // Periodic full structural audit; every firing would make the suite
    // O(events * pending).
    if ((perf_.events_fired & 1023u) == 0) audit_consistency();
#endif
    cb();
    return true;
  }
  return false;
}

Time EventLoop::next_event_time() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slots_[top.slot].live) return top.when;
    recycle_slot(top.slot);
    heap_pop();
    --dead_in_heap_;
  }
  return -1;
}

std::size_t EventLoop::run(Time until) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && step(until)) ++n;
  // When bounded, advance the clock to the bound so repeated bounded runs
  // observe monotonic time even across empty stretches.
  if (until >= 0 && now_ < until) now_ = until;
  return n;
}

}  // namespace hipcloud::sim
