#pragma once

#include <cstdint>
#include <string>

namespace hipcloud::sim {

/// Virtual simulation time in nanoseconds since scenario start.
///
/// All latency, bandwidth and CPU-cost arithmetic in the simulator is done
/// in this unit. A plain signed 64-bit count covers ~292 years, far beyond
/// any scenario.
using Time = std::int64_t;

/// Duration alias — same representation as Time, kept separate in
/// signatures for readability.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

/// Convert a duration expressed in (possibly fractional) seconds.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Convert a duration expressed in (possibly fractional) milliseconds.
constexpr Duration from_millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Convert a duration expressed in (possibly fractional) microseconds.
constexpr Duration from_micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double to_micros(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Render a time as a human-readable string (e.g. "12.345ms") for logs.
std::string format_time(Time t);

}  // namespace hipcloud::sim
