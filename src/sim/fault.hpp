#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hipcloud::sim {

/// Deterministic fault-injection scheduler.
///
/// Chaos for the simulator: scripted or seeded fault windows (link
/// down/up, loss or latency bursts, node crash/restart, partitions) are
/// expressed as apply/revert callback pairs and driven by the event loop,
/// so a faulty run is exactly as reproducible as a clean one. The
/// injector itself is layer-agnostic — callers bind the callbacks to
/// whatever they want to break (`Link::set_down`, `Node::set_down`,
/// `Link::set_fault_loss`, ...), which keeps `sim` free of upward
/// dependencies.
///
/// Every activation/deactivation is recorded on a timeline that tests and
/// benches read back to correlate client-visible symptoms with the faults
/// that caused them.
class FaultInjector {
 public:
  using Action = std::function<void()>;

  explicit FaultInjector(EventLoop* loop, std::uint64_t seed = 0x5eedfa01u)
      : loop_(loop), rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// One scripted fault window: `apply` runs at `start`, `revert` runs
  /// `duration` later. An empty `revert` models a permanent fault (crash
  /// without restart).
  void window(std::string name, Time start, Duration duration, Action apply,
              Action revert);

  /// One-shot fault at `start` with no automatic revert (e.g. a locator
  /// flip or a scripted migration kick-off).
  void at(std::string name, Time start, Action apply);

  /// Seeded random fault windows over [from, until): gaps between window
  /// starts are exponential with mean `mean_gap`, window lengths uniform
  /// in [min_duration, max_duration]. All windows are pre-computed at call
  /// time from the injector's RNG, so the schedule is a pure function of
  /// the seed.
  void random_windows(std::string name, Time from, Time until,
                      Duration mean_gap, Duration min_duration,
                      Duration max_duration, Action apply, Action revert);

  /// One timeline entry: a fault named `name` became active/inactive.
  struct Event {
    std::string name;
    Time at;
    bool active;
  };
  const std::vector<Event>& timeline() const { return timeline_; }

  /// Faults applied so far (activations, not windows scheduled).
  std::size_t injected() const { return injected_; }
  /// Currently-active fault count.
  std::size_t active() const { return active_; }

 private:
  void fire(const std::string& name, bool activate, const Action& action);

  EventLoop* loop_;
  Xoshiro256 rng_;
  std::vector<Event> timeline_;
  std::size_t injected_ = 0;
  std::size_t active_ = 0;
};

}  // namespace hipcloud::sim
