#include "sim/fault.hpp"

#include <utility>

namespace hipcloud::sim {

void FaultInjector::fire(const std::string& name, bool activate,
                         const Action& action) {
  timeline_.push_back(Event{name, loop_->now(), activate});
  if (activate) {
    ++injected_;
    ++active_;
  } else if (active_ > 0) {
    --active_;
  }
  if (action) action();
}

void FaultInjector::window(std::string name, Time start, Duration duration,
                           Action apply, Action revert) {
  loop_->schedule_at(start, [this, name, apply = std::move(apply)] {
    fire(name, true, apply);
  });
  if (revert) {
    loop_->schedule_at(start + duration,
                       [this, name = std::move(name),
                        revert = std::move(revert)] {
                         fire(name, false, revert);
                       });
  }
}

void FaultInjector::at(std::string name, Time start, Action apply) {
  loop_->schedule_at(start, [this, name = std::move(name),
                             apply = std::move(apply)] {
    fire(name, true, apply);
    // A one-shot fault is not a window; it does not stay "active".
    if (active_ > 0) --active_;
  });
}

void FaultInjector::random_windows(std::string name, Time from, Time until,
                                   Duration mean_gap, Duration min_duration,
                                   Duration max_duration, Action apply,
                                   Action revert) {
  // Pre-compute the whole schedule now so it depends only on the seed and
  // the call order, never on what else the event loop interleaves.
  Time t = from;
  int index = 0;
  while (true) {
    t += static_cast<Duration>(
        rng_.exponential(static_cast<double>(mean_gap)));
    if (t >= until) break;
    const auto dur = static_cast<Duration>(rng_.uniform(
        static_cast<double>(min_duration), static_cast<double>(max_duration)));
    window(name + "#" + std::to_string(index++), t, dur, apply, revert);
    t += dur;
  }
}

}  // namespace hipcloud::sim
