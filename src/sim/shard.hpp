#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/inline_fn.hpp"
#include "sim/perf.hpp"
#include "sim/time.hpp"

namespace hipcloud::sim {

/// Conservative parallel discrete-event coordinator: N single-threaded
/// EventLoops (one per shard) advance in lockstep epochs whose length is
/// the cross-shard *lookahead* — the minimum latency of any cross-shard
/// link. Within an epoch every shard is causally independent (nothing one
/// shard emits can reach another before the epoch ends), so the shards'
/// loops run concurrently on worker threads with no locks on the hot
/// path.
///
/// Cross-shard traffic flows through per-(src,dst) inboxes:
///
///  - During an epoch, a shard posts a cross-shard event with post():
///    an absolute firing time plus a callback. Each (src,dst) cell has
///    exactly one writer (the source shard's worker), so appends are
///    plain vector pushes — no locks, no atomics.
///  - At the epoch barrier, each destination drains the cells addressed
///    to it, sorts the entries by (when, src shard, source post index),
///    and schedules them into its own loop. The two barrier crossings
///    between a post and its drain give the happens-before edge.
///
/// Determinism: the shard partition is part of the world's topology, and
/// nothing in the epoch schedule, drain order, or per-loop event order
/// depends on the number of worker threads or on OS scheduling. The
/// per-loop (when, seq) firing streams — and therefore every per-shard
/// FNV-1a determinism hash and their shard-id-order merge — are
/// byte-identical whether the same world runs on 1 worker or N.
class ShardCoordinator {
 public:
  ShardCoordinator() = default;
  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Register a shard's loop; returns its shard id (dense, 0-based).
  /// All shards must be added before the first run().
  std::size_t add_shard(EventLoop* loop);

  std::size_t shard_count() const { return shards_.size(); }
  EventLoop* shard(std::size_t id) { return shards_[id]; }

  /// Epoch length. Must be positive and no larger than the minimum
  /// cross-shard delivery latency, or conservative synchronization is
  /// violated (a post could land inside the epoch that issued it).
  /// Callers building worlds shrink this to their minimum cross link
  /// latency before running.
  void set_lookahead(Duration lookahead) { lookahead_ = lookahead; }
  Duration lookahead() const { return lookahead_; }

  /// Post a cross-shard event: run `fn` in shard `dst`'s loop at absolute
  /// time `when`. Called only from `src`'s worker during an epoch (or
  /// from the setup thread before run()); the lookahead contract requires
  /// `when` to be at or beyond the end of the posting epoch.
  void post(std::size_t src, std::size_t dst, Time when, InlineFn fn);

  /// Run every shard to `until` (inclusive, like EventLoop::run; pass -1
  /// to run until all loops and inboxes drain) using `workers` threads.
  /// workers is clamped to [1, shard_count]; 1 runs inline on the caller.
  /// Returns the total number of events fired across all shards.
  std::size_t run(Time until, unsigned workers = 1);

  /// Cross-shard events still waiting in inboxes (only meaningful between
  /// runs; exposed for tests).
  std::size_t inbox_pending() const;

  /// Per-shard counters merged in shard-id order — never in worker
  /// completion order — so the merged stream (and the JSON it feeds) is
  /// byte-identical for every worker count.
  PerfCounters merged_perf() const;

  /// The world determinism hash: the shard-id-order merge of the
  /// per-shard FNV-1a firing streams.
  std::uint64_t world_hash() const { return merged_perf().determinism_hash; }

 private:
  struct CrossEvent {
    Time when;
    std::uint64_t post_idx;  // per-source posting counter: drain tiebreak
    InlineFn fn;
  };
  /// One single-writer mailbox per (src,dst) shard pair.
  struct Inbox {
    std::vector<CrossEvent> events;
  };

  void drain_into(std::size_t dst);
  void record_failure();

  std::vector<EventLoop*> shards_;
  std::vector<Inbox> inboxes_;            // src * shard_count + dst
  std::vector<std::uint64_t> post_seq_;   // per-source posting counters
  Duration lookahead_ = from_micros(50);

  // Per-run worker failure funnel: a throwing shard callback must not
  // deadlock the barrier protocol, so workers record here, go passive,
  // and the epoch completion shuts the run down.
  std::atomic<bool> failed_{false};
  std::mutex failure_mu_;
  std::exception_ptr first_failure_;
};

}  // namespace hipcloud::sim
