#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/inline_fn.hpp"
#include "sim/perf.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace hipcloud::sim {

/// Conservative parallel discrete-event coordinator: N single-threaded
/// EventLoops (one per shard) advance in barrier-synchronized rounds.
/// Each round computes a *per-shard horizon* from adaptive per-pair
/// channel lookahead: every ordered shard pair (j,i) carries the minimum
/// delivery latency of links crossing that seam, and shard i may run to
///
///   horizon(i) = min over incoming seams (j,i) of  l(j) + lookahead(j,i)
///
/// where l(j) is a lower bound on the next instant shard j can fire any
/// event — the fixed point of l(j) = min(next(j), min_k l(k) +
/// lookahead(k,j)) over the published per-shard committed clocks and
/// next-event times, computed once per barrier. Shards connected only by
/// slow seams take long strides; idle shards skip ahead; a fast seam
/// between two other shards never throttles them. Pairs with no
/// registered seam fall back to the global default lookahead — or, in
/// registered-pairs-only mode (net::ShardedWorld, where all cross
/// traffic flows over registered CrossLinkHalf twins), to no constraint
/// at all. `set_adaptive(false)` reverts to the PR-7 global-min epoch
/// rule for ablation; both modes produce byte-identical hashes.
///
/// Cross-shard traffic flows through per-(src,dst) inboxes:
///
///  - During a round, a shard posts a cross-shard event with post():
///    an absolute firing time plus a callback. Each (src,dst) cell has
///    exactly one writer (the source shard's worker), so appends are
///    plain vector pushes — no locks, no atomics.
///  - At the barrier, each destination drains the cells addressed to it,
///    sorts the entries by (when, src shard, source post index), and
///    schedules them into its own loop via EventLoop::schedule_cross,
///    which stamps the entry with a (src, post index) identity fixed at
///    post time. The two barrier crossings between a post and its drain
///    give the happens-before edge.
///
/// Determinism: the shard partition is part of the world's topology, and
/// nothing in the horizon computation, drain order, or per-loop event
/// order depends on the number of worker threads or on OS scheduling.
/// Moreover the per-loop (when, seq) firing streams are invariant across
/// *epoch slicings*: local events draw seq from the loop's FIFO counter
/// (which cross arrivals do not consume) and cross arrivals carry their
/// post-time identity, so draining the same posts at different barriers
/// cannot reorder or rename any firing. The per-shard FNV-1a hashes and
/// their shard-id-order merge are therefore byte-identical whether the
/// same world runs on 1 worker or N, adaptive or global-min.
class ShardCoordinator {
 public:
  ShardCoordinator() = default;
  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Register a shard's loop; returns its shard id (dense, 0-based).
  /// All shards must be added before the first run().
  std::size_t add_shard(EventLoop* loop);

  std::size_t shard_count() const { return shards_.size(); }
  EventLoop* shard(std::size_t id) { return shards_[id]; }

  /// Default lookahead for shard pairs with no registered seam, and the
  /// floor of the global-min ablation. Must be positive and no larger
  /// than the minimum cross-shard delivery latency of any unregistered
  /// seam, or conservative synchronization is violated (a post could
  /// land inside the round that issued it). Callers building worlds
  /// shrink this to their minimum cross link latency before running.
  void set_lookahead(Duration lookahead) { lookahead_ = lookahead; }
  Duration lookahead() const { return lookahead_; }

  /// Record that links cross the ordered seam (src,dst) with delivery
  /// latency >= `lookahead`. Shrink-only min: registering a faster link
  /// later tightens the pair (legal between runs — outstanding posts
  /// were validated against the older, larger bound). Posts on a
  /// registered pair must arrive at least `pair_lookahead(src,dst)`
  /// after the source's committed clock.
  void register_pair_lookahead(std::size_t src, std::size_t dst,
                               Duration lookahead);

  /// The registered seam lookahead, or -1 when (src,dst) has none.
  Duration pair_lookahead(std::size_t src, std::size_t dst) const;

  /// When true, cross-shard posts are only legal on registered pairs
  /// (checked), and unregistered pairs impose no horizon constraint at
  /// all. net::ShardedWorld enables this: every cross post it issues
  /// rides a CrossLinkHalf whose seam was registered at connect time.
  void set_registered_pairs_only(bool on) { registered_only_ = on; }
  bool registered_pairs_only() const { return registered_only_; }

  /// Adaptive per-pair horizons (default) vs the PR-7 global-min epoch
  /// rule (every shard runs to min-next-event + min-lookahead). The
  /// ablation knob for bench/fig_scale; hashes are identical either way.
  void set_adaptive(bool on) { adaptive_ = on; }
  bool adaptive() const { return adaptive_; }

  /// Post a cross-shard event: run `fn` in shard `dst`'s loop at absolute
  /// time `when`. Called only from `src`'s worker during a round (or
  /// from the setup thread before run()); the lookahead contract requires
  /// `when` to be at or beyond `dst`'s current horizon.
  void post(std::size_t src, std::size_t dst, Time when, InlineFn fn);

  /// Run every shard to `until` (inclusive, like EventLoop::run; pass -1
  /// to run until all loops and inboxes drain) using `workers` threads.
  /// workers is clamped to [1, shard_count]; 1 runs inline on the caller;
  /// 0 picks a count automatically (see plan_workers). Returns the total
  /// number of events fired across all shards.
  std::size_t run(Time until, unsigned workers = 1);

  /// The worker count run() will actually use for `requested`. An
  /// explicit request (>= 1) is only clamped to [1, shard_count]. A
  /// request of 0 sizes the pool from the work on hand: one worker per
  /// kAutoEventsPerWorker currently-pending events, capped by the host's
  /// hardware concurrency and the shard count — so tiny worlds run
  /// inline instead of paying barrier traffic for microseconds of work.
  unsigned plan_workers(unsigned requested) const;

  /// Auto-sizing grain: pending events per worker below which adding a
  /// worker costs more in barrier rounds than it saves in parallelism
  /// (measured on the 1k-client fig_scale point, which regressed to
  /// 0.895x at 8 workers before the clamp).
  static constexpr std::size_t kAutoEventsPerWorker = 2048;

  /// Cross-shard events still waiting in inboxes (only meaningful between
  /// runs; exposed for tests).
  std::size_t inbox_pending() const;

  /// Barrier rounds executed across all runs so far. A pure function of
  /// the simulated schedule — identical at every worker count — and the
  /// denominator of the events-per-epoch bench column.
  std::uint64_t epochs() const { return epochs_; }

  /// Total wall-clock nanoseconds workers spent parked at the two
  /// barriers, summed across workers and runs. Telemetry only (never
  /// feeds simulation state or the hash): the BENCH_scale.json
  /// barrier-wait column showing what the adaptive horizon saves.
  std::uint64_t barrier_wait_ns() const {
    return barrier_wait_ns_.load(std::memory_order_relaxed);
  }

  /// Per-shard counters merged in shard-id order — never in worker
  /// completion order — so the merged stream (and the JSON it feeds) is
  /// byte-identical for every worker count. The coordinator's own
  /// epoch/stride counters ride along in the shard_* fields.
  PerfCounters merged_perf() const;

  /// The world determinism hash: the shard-id-order merge of the
  /// per-shard FNV-1a firing streams.
  std::uint64_t world_hash() const { return merged_perf().determinism_hash; }

 private:
  struct CrossEvent {
    Time when;
    std::uint64_t post_idx;  // per-source posting counter: drain tiebreak
    InlineFn fn;
  };
  /// One single-writer mailbox per (src,dst) shard pair.
  struct Inbox {
    std::vector<CrossEvent> events;
  };

  /// Seam lookahead used by the horizon rule for (src,dst): the
  /// registered pair value, else the global default, else (in
  /// registered-pairs-only mode) no constraint (-1).
  Duration effective_lookahead(std::size_t src, std::size_t dst) const;
  /// min over all ordered pairs of effective_lookahead — the global-min
  /// ablation's epoch length (and the PR-7 behavior).
  Duration min_effective_lookahead() const;
  void compute_horizons(Time until, bool& done);
  void drain_into(std::size_t dst);
  void record_failure() HIPCLOUD_EXCLUDES(failure_mu_);

  std::vector<EventLoop*> shards_;
  // Single-writer mailbox cells: inboxes_[src * n + dst] and
  // post_seq_[src] are appended only by src's worker during a round, so
  // the ownership analyzer treats them as confined to the posting shard.
  std::vector<Inbox> inboxes_;            // hipcheck:shard_owned
  std::vector<std::uint64_t> post_seq_;   // hipcheck:shard_owned
  std::vector<Duration> pair_lookahead_;  // src * shard_count + dst; -1 unset
  Duration lookahead_ = from_micros(50);
  bool registered_only_ = false;
  bool adaptive_ = true;

  // Round state: written only inside the barrier completion (all workers
  // parked) or before the workers start, read by workers after release —
  // the barrier itself is the synchronization. horizons_[i] is the bound
  // shard i runs to this round (-1: unconstrained, run to drain).
  std::vector<Time> horizons_;  // hipcheck:shard_shared
  std::vector<Time> lbts_;      // hipcheck:shard_shared — fixed-point scratch

  // Deterministic schedule counters (see epochs()); barrier-published
  // like the horizons above.
  std::uint64_t epochs_ = 0;     // hipcheck:shard_shared
  std::uint64_t strides_ = 0;    // hipcheck:shard_shared
  std::uint64_t stride_ns_ = 0;  // hipcheck:shard_shared

  // Wall-clock telemetry (see barrier_wait_ns()); relaxed atomic, any
  // worker may add at any time.
  std::atomic<std::uint64_t> barrier_wait_ns_{0};  // hipcheck:shard_shared

  // Per-run worker failure funnel: a throwing shard callback must not
  // deadlock the barrier protocol, so workers record here, go passive,
  // and the round completion shuts the run down.
  std::atomic<bool> failed_{false};  // hipcheck:shard_shared
  Mutex failure_mu_;
  std::exception_ptr first_failure_ HIPCLOUD_GUARDED_BY(failure_mu_);  // hipcheck:shard_shared
};

}  // namespace hipcloud::sim
