#include "sim/log.hpp"

namespace hipcloud::sim {

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};

void Log::write(LogLevel lvl, Time now, const char* tag,
                const std::string& msg) {
  if (lvl < level()) return;
  static const char* names[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<int>(lvl);
  if (idx < 0 || idx > 4) return;
  std::fprintf(stderr, "[%12s] %-5s %s: %s\n", format_time(now).c_str(),
               names[idx], tag, msg.c_str());
}

}  // namespace hipcloud::sim
