#include "sim/log.hpp"

#include <cstring>

namespace hipcloud::sim {

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};

namespace {
// Thread-local, not per-Log-call state: a worker thread runs one shard's
// loop at a time, and every log line it emits belongs to that shard.
thread_local int t_shard_id = -1;
}  // namespace

void Log::set_shard_id(int shard) { t_shard_id = shard; }
int Log::shard_id() { return t_shard_id; }

void Log::write(LogLevel lvl, Time now, const char* tag,
                const std::string& msg) {
  if (lvl < level()) return;
  static const char* names[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<int>(lvl);
  if (idx < 0 || idx > 4) return;
  // Format the whole line into one buffer and emit it with a single
  // fwrite: concurrent shard workers each complete their own line, so
  // stderr never carries a half-line from one shard spliced into
  // another's. Oversized messages are truncated (with a marker) rather
  // than split across writes.
  char line[512];
  int n;
  if (t_shard_id >= 0) {
    n = std::snprintf(line, sizeof(line), "[%12s] s%-3d %-5s %s: %s\n",
                      format_time(now).c_str(), t_shard_id, names[idx], tag,
                      msg.c_str());
  } else {
    n = std::snprintf(line, sizeof(line), "[%12s] %-5s %s: %s\n",
                      format_time(now).c_str(), names[idx], tag, msg.c_str());
  }
  if (n < 0) return;
  auto len = static_cast<std::size_t>(n);
  if (len >= sizeof(line)) {
    // Truncated: keep the trailing newline and mark the cut.
    len = sizeof(line) - 1;
    std::memcpy(line + len - 5, "...\n", 5);
    len -= 1;
  }
  std::fwrite(line, 1, len, stderr);
}

}  // namespace hipcloud::sim
