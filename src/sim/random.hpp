#pragma once

#include <cstdint>
#include <limits>

namespace hipcloud::sim {

/// SplitMix64 — tiny, fast generator used to expand a single 64-bit seed
/// into the state of larger generators. Passes BigCrush when used alone.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the simulator's workhorse PRNG. Deterministic across
/// platforms; never used for key material (see crypto::HmacDrbg for that).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponentially-distributed sample with the given mean (for Poisson
  /// arrival processes in open-loop workload generators).
  double exponential(double mean);

  /// Fork an independent, deterministically-derived child stream.
  Xoshiro256 fork() { return Xoshiro256(next() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hipcloud::sim
