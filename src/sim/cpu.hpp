#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "sim/event_loop.hpp"
#include "sim/time.hpp"

namespace hipcloud::sim {

/// Serializing CPU model: work items queue FIFO on a single virtual core
/// whose speed is expressed in cycles per second. Instance types (EC2
/// micro vs large) differ by `cycles_per_second`; crypto and application
/// costs are expressed in cycles so the same workload takes longer on a
/// weaker instance.
class CpuScheduler {
 public:
  CpuScheduler(EventLoop& loop, double cycles_per_second)
      : loop_(loop), cycles_per_second_(cycles_per_second) {}

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  double cycles_per_second() const { return cycles_per_second_; }
  void set_cycles_per_second(double cps) { cycles_per_second_ = cps; }

  /// Enable EC2-t1.micro-style burst crediting: work executes at
  /// `burst_cps` while the credit bucket lasts, then falls back to the
  /// base rate. Credits do not replenish within a scenario (t1.micro
  /// credits regenerate over tens of minutes — beyond our runs).
  void enable_burst(double burst_cps, double credit_cycles) {
    burst_cps_ = burst_cps;
    credit_cycles_ = credit_cycles;
  }
  double remaining_credit_cycles() const { return credit_cycles_; }

  /// Enqueue `cycles` of work; `done` runs when the core has executed it
  /// (after all previously queued work). Zero-cost work still round-trips
  /// through the event loop to preserve FIFO ordering.
  void run(double cycles, std::function<void()> done) {
    const Duration d = duration_of(cycles);
    const Time start = std::max(loop_.now(), busy_until_);
    busy_until_ = start + d;
    total_cycles_ += cycles;
    loop_.schedule_at(busy_until_, std::move(done));
  }

  /// Charge cycles without a continuation (fire-and-forget accounting).
  void charge(double cycles) {
    const Time start = std::max(loop_.now(), busy_until_);
    busy_until_ = start + duration_of(cycles);
    total_cycles_ += cycles;
  }

  /// Virtual time until which the core is committed.
  Time busy_until() const { return busy_until_; }

  /// Instantaneous queue delay a new arrival would see.
  Duration backlog() const {
    return busy_until_ > loop_.now() ? busy_until_ - loop_.now() : 0;
  }

  double total_cycles() const { return total_cycles_; }

 private:
  Duration duration_of(double cycles) {
    double seconds = 0;
    if (burst_cps_ > 0 && credit_cycles_ > 0) {
      const double burst_part = std::min(cycles, credit_cycles_);
      credit_cycles_ -= burst_part;
      seconds += burst_part / burst_cps_;
      cycles -= burst_part;
    }
    seconds += cycles / cycles_per_second_;
    return static_cast<Duration>(seconds * static_cast<double>(kSecond));
  }

  EventLoop& loop_;
  double cycles_per_second_;
  double burst_cps_ = 0;
  double credit_cycles_ = 0;
  Time busy_until_ = 0;
  double total_cycles_ = 0;
};

}  // namespace hipcloud::sim
