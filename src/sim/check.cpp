#include "sim/check.hpp"

#include <cstdio>

#include "sim/log.hpp"

namespace hipcloud::sim {

void check_fail(const char* kind, const char* file, int line,
                const char* expr, const std::string& msg) {
  std::string what = std::string(kind) + " failed at " + file + ":" +
                     std::to_string(line) + ": " + expr;
  if (!msg.empty()) what += " — " + msg;
  // The failure is about to unwind through arbitrary simulation state;
  // log it eagerly so the diagnostic survives even if the exception is
  // swallowed or rethrown without its message.
  if (Log::enabled(LogLevel::kError)) {
    std::fprintf(stderr, "[hipcheck] %s\n", what.c_str());
  }
  throw CheckFailure(what);
}

}  // namespace hipcloud::sim
