#include "core/sharded_service.hpp"

#include <algorithm>
#include <string>

#include "crypto/drbg.hpp"
#include "sim/check.hpp"

namespace hipcloud::core {

using apps::TransportConfig;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

namespace {

hip::HostIdentity make_identity(std::uint64_t seed, const std::string& name) {
  crypto::HmacDrbg drbg(seed, "shsvc:" + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}

}  // namespace

ShardedService::ShardedService(cloud::ShardedFabric& fabric,
                               ShardedServiceConfig config)
    : fabric_(fabric), config_(std::move(config)) {
  const std::size_t racks = fabric_.racks();
  HIPCLOUD_CHECK(racks >= 3,
                 "ShardedService needs a gateway rack, a web rack and a db "
                 "rack");
  HIPCLOUD_CHECK(racks <= 100, "client subnet octet is 100 + rack");
  HIPCLOUD_CHECK(config_.mode != SecurityMode::kSsl,
                 "sharded service supports kBasic and kHip only");

  // --- tier placement: proxy on rack 0, web on 1..racks-2, db last ---------
  for (std::size_t r = 1; r + 1 < racks; ++r) {
    web_vms_.push_back(fabric_.rack_vms(r)[0].get());
    web_racks_.push_back(r);
  }
  db_rack_ = racks - 1;
  db_vm_ = fabric_.rack_vms(db_rack_)[0].get();

  // --- proxy node on the gateway rack (198.18.1.2) --------------------------
  net::Network& net0 = fabric_.world().shard(0);
  net::Node* gw0 = fabric_.rack(0).gateway();
  proxy_node_ = net0.add_node("proxy", 16e9);
  const auto patt = net0.connect(gw0, proxy_node_, config_.proxy_link);
  gw0->add_address(patt.iface_a, Ipv4Addr(198, 18, 1, 1));
  proxy_node_->add_address(patt.iface_b, Ipv4Addr(198, 18, 1, 2));
  proxy_node_->set_default_route(patt.iface_b);
  gw0->add_route(IpAddr(Ipv4Addr(198, 18, 1, 0)), 24, patt.iface_a);

  // --- per-rack client farms (198.18.<100+r>.2) -----------------------------
  for (std::size_t r = 0; r < racks; ++r) {
    net::Network& net = fabric_.world().shard(r);
    net::Node* gw = fabric_.rack(r).gateway();
    net::Node* farm = net.add_node("clients-" + std::to_string(r), 50e9);
    const auto att = net.connect(gw, farm, config_.client_link);
    const auto octet = static_cast<std::uint8_t>(100 + r);
    gw->add_address(att.iface_a, Ipv4Addr(198, 18, octet, 1));
    farm->add_address(att.iface_b, Ipv4Addr(198, 18, octet, 2));
    farm->set_default_route(att.iface_b);
    gw->add_route(IpAddr(Ipv4Addr(198, 18, octet, 0)), 24, att.iface_a);
    client_nodes_.push_back(farm);
  }

  // --- consumer routes over the rack mesh -----------------------------------
  // Every rack reaches the frontend subnet via its seam to rack 0; rack 0
  // reaches each remote farm subnet via its seam to that rack. (10/8
  // routes already ride the mesh from the fabric build.)
  for (std::size_t r = 1; r < racks; ++r) {
    fabric_.rack(r).gateway()->add_route(IpAddr(Ipv4Addr(198, 18, 1, 0)), 24,
                                         fabric_.cross_iface(r, 0));
    gw0->add_route(
        IpAddr(Ipv4Addr(198, 18, static_cast<std::uint8_t>(100 + r), 0)), 24,
        fabric_.cross_iface(0, r));
  }

  // --- HIP daemons (before any TCP stack opens sockets) ---------------------
  if (config_.mode == SecurityMode::kHip) {
    proxy_hip_ = std::make_unique<hip::HipDaemon>(
        proxy_node_, make_identity(config_.seed, "proxy"), config_.hip);
    for (std::size_t i = 0; i < web_vms_.size(); ++i) {
      web_hips_.push_back(std::make_unique<hip::HipDaemon>(
          web_vms_[i]->node(),
          make_identity(config_.seed, "web" + std::to_string(i)),
          config_.hip));
    }
    db_hip_ = std::make_unique<hip::HipDaemon>(
        db_vm_->node(), make_identity(config_.seed, "db"), config_.hip);

    for (std::size_t i = 0; i < web_vms_.size(); ++i) {
      auto& wh = *web_hips_[i];
      proxy_hip_->add_peer(wh.hit(), IpAddr(web_vms_[i]->private_ip()));
      wh.add_peer(proxy_hip_->hit(), *proxy_node_->first_address(false));
      wh.add_peer(db_hip_->hit(), IpAddr(db_vm_->private_ip()));
      db_hip_->add_peer(wh.hit(), IpAddr(web_vms_[i]->private_ip()));
    }
  }

  // --- TCP stacks -----------------------------------------------------------
  proxy_tcp_ = std::make_unique<net::TcpStack>(proxy_node_);
  for (cloud::Vm* vm : web_vms_) {
    web_tcp_.push_back(std::make_unique<net::TcpStack>(vm->node()));
  }
  db_tcp_ = std::make_unique<net::TcpStack>(db_vm_->node());
  for (net::Node* farm : client_nodes_) {
    client_tcp_.push_back(std::make_unique<net::TcpStack>(farm));
  }

  // --- database tier --------------------------------------------------------
  apps::DbConfig db_config;
  db_server_ = std::make_unique<apps::DatabaseServer>(
      db_vm_->node(), db_tcp_.get(), 3306, db_config);
  apps::load_rubis_dataset(*db_server_, config_.dataset);

  // --- web tier -------------------------------------------------------------
  for (std::size_t i = 0; i < web_vms_.size(); ++i) {
    web_servers_.push_back(std::make_unique<apps::RubisWebServer>(
        web_vms_[i]->node(), web_tcp_[i].get(), 8080, TransportConfig{},
        db_endpoint_for_web(i), TransportConfig{}, config_.dataset));
    web_servers_.back()->set_request_cycles(config_.web_request_cycles);
  }

  // --- proxy tier -----------------------------------------------------------
  std::vector<Endpoint> backends;
  for (std::size_t i = 0; i < web_vms_.size(); ++i) {
    backends.push_back(web_backend_endpoint(i));
  }
  proxy_ = std::make_unique<apps::ReverseProxy>(
      proxy_node_, proxy_tcp_.get(), config_.frontend_port, TransportConfig{},
      TransportConfig{}, std::move(backends),
      apps::ReverseProxy::Balance::kRoundRobin, config_.proxy_health);
}

Endpoint ShardedService::web_backend_endpoint(std::size_t i) const {
  if (config_.mode == SecurityMode::kHip) {
    const auto& web_hit = web_hips_[i]->hit();
    if (config_.hip_addressing == HipAddressing::kLsi) {
      return Endpoint{IpAddr(*proxy_hip_->lsi_for_peer(web_hit)), 8080};
    }
    return Endpoint{IpAddr(web_hit), 8080};
  }
  return Endpoint{IpAddr(web_vms_[i]->private_ip()), 8080};
}

Endpoint ShardedService::db_endpoint_for_web(std::size_t i) const {
  if (config_.mode == SecurityMode::kHip) {
    const auto& db_hit = db_hip_->hit();
    if (config_.hip_addressing == HipAddressing::kLsi) {
      return Endpoint{IpAddr(*web_hips_[i]->lsi_for_peer(db_hit)), 3306};
    }
    return Endpoint{IpAddr(db_hit), 3306};
  }
  return Endpoint{IpAddr(db_vm_->private_ip()), 3306};
}

void ShardedService::prepare() {
  if (config_.mode != SecurityMode::kHip) return;
  for (auto& wh : web_hips_) {
    proxy_hip_->initiate(wh->hit());
    wh->initiate(db_hip_->hit());
  }
}

void ShardedService::start_clients() {
  const std::size_t racks = fabric_.racks();
  farm_reports_.assign(racks, apps::LoadReport{});
  farm_done_.assign(racks, 0);
  for (std::size_t r = 0; r < racks; ++r) {
    apps::ClosedLoopClients::Config cfg;
    cfg.concurrency = config_.clients_per_rack;
    cfg.think_time = config_.think_time;
    cfg.duration = config_.duration;
    cfg.warmup = config_.client_warmup;
    cfg.target = frontend();
    cfg.mix = config_.dataset;
    cfg.seed = config_.seed ^ ((r + 1) * 0x9e3779b97f4a7c15ULL);
    farms_.push_back(std::make_unique<apps::ClosedLoopClients>(
        client_nodes_[r], client_tcp_[r].get(), cfg));
    farms_.back()->start([this, r](const apps::LoadReport& rep) {
      farm_reports_[r] = rep;
      farm_done_[r] = 1;
    });
  }
}

apps::LoadReport ShardedService::report() const {
  apps::LoadReport total;
  for (std::size_t r = 0; r < farm_reports_.size(); ++r) {
    if (farm_done_[r] == 0) continue;
    const auto& rep = farm_reports_[r];
    total.completed += rep.completed;
    total.errors += rep.errors;
    total.duration_seconds =
        std::max(total.duration_seconds, rep.duration_seconds);
    total.latency_ms.merge(rep.latency_ms);
  }
  return total;
}

Endpoint ShardedService::frontend() const {
  return Endpoint{IpAddr(Ipv4Addr(198, 18, 1, 2)), config_.frontend_port};
}

std::uint64_t ShardedService::total_esp_packets() const {
  std::uint64_t total = 0;
  if (proxy_hip_) total += proxy_hip_->stats().esp_packets_out;
  for (const auto& wh : web_hips_) total += wh->stats().esp_packets_out;
  if (db_hip_) total += db_hip_->stats().esp_packets_out;
  return total;
}

}  // namespace hipcloud::core
