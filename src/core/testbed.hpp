#pragma once

#include <memory>

#include "apps/workload.hpp"
#include "core/secure_service.hpp"

namespace hipcloud::core {

/// Full experimental testbed mirroring the paper's setup: a client farm
/// and the HAProxy-style load balancer live *outside* the cloud, reaching
/// the VMs through the cloud gateway.
///
///   clients --wan-- internet --"-- LB --"-- [gateway fabric hosts VMs]
struct TestbedConfig {
  cloud::ProviderProfile provider = cloud::ProviderProfile::ec2();
  DeploymentConfig deployment;
  /// Client farm <-> internet core (consumer WAN). 25 ms one way ≈ the
  /// paper's measurement clients reaching EC2 eu-west-1a.
  net::LinkConfig client_wan{1e9, sim::from_millis(25), sim::from_millis(100),
                             0.0, 1500};
  /// LB <-> internet core (the LB sits close to the cloud).
  net::LinkConfig lb_link{1e9, sim::from_millis(1), sim::from_millis(100),
                          0.0, 1500};
  int cloud_hosts = 4;
  std::uint64_t seed = 1;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  net::Network& network() { return *net_; }
  cloud::Cloud& cloud() { return *cloud_; }
  SecureService& service() { return *service_; }
  net::Node* client_node() { return client_node_; }
  net::Node* lb_node() { return lb_node_; }
  net::TcpStack& client_tcp() { return *client_tcp_; }

  /// jmeter-style closed-loop run against the frontend (Figure 2 rows).
  /// Runs the event loop to completion and returns the report.
  apps::LoadReport run_closed_loop(int concurrency, sim::Duration duration,
                                   sim::Duration think_time = 0);

  /// httperf-style fixed-rate run (the §V-B response-time experiment).
  /// When `fixed_path` is non-empty every request GETs that path instead
  /// of the RUBiS mix (httperf drives one URL).
  apps::LoadReport run_open_loop(double rate_rps, sim::Duration duration,
                                 const std::string& fixed_path = "");

 private:
  TestbedConfig config_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<cloud::Cloud> cloud_;
  net::Node* inet_ = nullptr;
  net::Node* client_node_ = nullptr;
  net::Node* lb_node_ = nullptr;
  std::unique_ptr<net::TcpStack> client_tcp_;
  std::unique_ptr<SecureService> service_;
};

}  // namespace hipcloud::core
