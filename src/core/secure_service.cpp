#include "core/secure_service.hpp"

#include "crypto/drbg.hpp"

namespace hipcloud::core {

using apps::TransportConfig;
using net::Endpoint;
using net::IpAddr;

const char* mode_name(SecurityMode mode) {
  switch (mode) {
    case SecurityMode::kBasic:
      return "basic";
    case SecurityMode::kHip:
      return "hip";
    case SecurityMode::kSsl:
      return "ssl";
  }
  return "?";
}

namespace {

hip::HostIdentity make_identity(std::uint64_t seed, const std::string& name) {
  crypto::HmacDrbg drbg(seed, "hi:" + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}

}  // namespace

SecureService::SecureService(net::Network& net, cloud::Cloud& cloud,
                             net::Node* lb_node, DeploymentConfig config)
    : net_(net), cloud_(cloud), lb_node_(lb_node), config_(config) {
  // --- launch the VM fleet -------------------------------------------------
  for (int i = 0; i < config_.web_servers; ++i) {
    web_vms_.push_back(
        cloud_.launch("web" + std::to_string(i), config_.web_type, "acme"));
  }
  db_vm_ = cloud_.launch("db", config_.db_type, "acme");

  // --- HIP daemons (before anything opens sockets) --------------------------
  if (config_.mode == SecurityMode::kHip) {
    lb_hip_ = std::make_unique<hip::HipDaemon>(
        lb_node_, make_identity(config_.seed, "lb"), config_.hip);
    for (int i = 0; i < config_.web_servers; ++i) {
      web_hips_.push_back(std::make_unique<hip::HipDaemon>(
          web_vms_[static_cast<std::size_t>(i)]->node(),
          make_identity(config_.seed, "web" + std::to_string(i)),
          config_.hip));
    }
    db_hip_ = std::make_unique<hip::HipDaemon>(
        db_vm_->node(), make_identity(config_.seed, "db"), config_.hip);

    // Populate the "hip hosts files": LB <-> web, web <-> db.
    for (int i = 0; i < config_.web_servers; ++i) {
      auto& wh = *web_hips_[static_cast<std::size_t>(i)];
      lb_hip_->add_peer(wh.hit(),
                        IpAddr(web_vms_[static_cast<std::size_t>(i)]
                                   ->private_ip()));
      wh.add_peer(lb_hip_->hit(), *lb_node_->first_address(false));
      wh.add_peer(db_hip_->hit(), IpAddr(db_vm_->private_ip()));
      db_hip_->add_peer(wh.hit(),
                        IpAddr(web_vms_[static_cast<std::size_t>(i)]
                                   ->private_ip()));
    }
  }

  // --- TCP stacks -------------------------------------------------------------
  lb_tcp_ = std::make_unique<net::TcpStack>(lb_node_);
  for (int i = 0; i < config_.web_servers; ++i) {
    web_tcp_.push_back(std::make_unique<net::TcpStack>(
        web_vms_[static_cast<std::size_t>(i)]->node()));
  }
  db_tcp_ = std::make_unique<net::TcpStack>(db_vm_->node());

  // --- TLS PKI (SSL scenario) --------------------------------------------------
  TransportConfig web_front;   // LB -> web
  TransportConfig db_transport;  // web -> db
  if (config_.mode == SecurityMode::kSsl) {
    crypto::HmacDrbg ca_drbg(config_.seed, "ca");
    ca_ = std::make_unique<tls::CertificateAuthority>("cloud-ca", ca_drbg);
    web_front.kind = TransportConfig::Kind::kTls;
    db_transport.kind = TransportConfig::Kind::kTls;
    web_front.tls.ca_public_key = ca_->public_key();
    db_transport.tls.ca_public_key = ca_->public_key();
  }

  // --- database tier ---------------------------------------------------------
  apps::DbConfig db_config;
  db_config.query_cache = config_.db_query_cache;
  db_config.base_cycles = config_.db_base_cycles;
  db_config.per_row_cycles = config_.db_per_row_cycles;
  db_config.per_byte_cycles = config_.db_per_byte_cycles;
  db_config.cache_hit_cycles = config_.db_cache_hit_cycles;
  db_config.transport = db_transport;
  if (config_.mode == SecurityMode::kSsl) {
    crypto::HmacDrbg key_drbg(config_.seed, "db-key");
    const auto key = crypto::rsa_generate(key_drbg, 1024);
    db_config.transport.tls.certificate = ca_->issue("db", key.pub);
    db_config.transport.tls.private_key = key.priv;
    db_config.transport.tls_seed = config_.seed ^ 0xdb;
  }
  db_server_ = std::make_unique<apps::DatabaseServer>(
      db_vm_->node(), db_tcp_.get(), 3306, db_config);
  apps::load_rubis_dataset(*db_server_, config_.dataset);

  // --- web tier ------------------------------------------------------------------
  for (int i = 0; i < config_.web_servers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    TransportConfig serve_cfg;  // how this web server accepts LB traffic
    TransportConfig db_cfg = db_transport;
    if (config_.mode == SecurityMode::kSsl) {
      serve_cfg.kind = TransportConfig::Kind::kTls;
      crypto::HmacDrbg key_drbg(config_.seed, "web-key" + std::to_string(i));
      const auto key = crypto::rsa_generate(key_drbg, 1024);
      serve_cfg.tls.certificate =
          ca_->issue("web" + std::to_string(i), key.pub);
      serve_cfg.tls.private_key = key.priv;
      serve_cfg.tls_seed = config_.seed ^ (0x3e0 + idx);
      db_cfg.tls.certificate.reset();  // client side needs only the CA
      db_cfg.tls.private_key.reset();
      db_cfg.tls_seed = config_.seed ^ (0x7d0 + idx);
    }
    web_servers_.push_back(std::make_unique<apps::RubisWebServer>(
        web_vms_[idx]->node(), web_tcp_[idx].get(), 8080, serve_cfg,
        db_endpoint_for_web(idx), db_cfg, config_.dataset));
    web_servers_.back()->set_request_cycles(config_.web_request_cycles);
  }

  // --- load balancer ------------------------------------------------------------
  std::vector<Endpoint> backends;
  for (int i = 0; i < config_.web_servers; ++i) {
    backends.push_back(web_backend_endpoint(static_cast<std::size_t>(i)));
  }
  TransportConfig lb_front;  // consumers: plain HTTP (paper's setup)
  TransportConfig lb_back = web_front;
  if (config_.mode == SecurityMode::kSsl) {
    lb_back.tls_seed = config_.seed ^ 0x1b;
  }
  proxy_ = std::make_unique<apps::ReverseProxy>(
      lb_node_, lb_tcp_.get(), config_.frontend_port, lb_front, lb_back,
      std::move(backends), apps::ReverseProxy::Balance::kRoundRobin,
      config_.proxy_health);
}

Endpoint SecureService::web_backend_endpoint(std::size_t i) const {
  if (config_.mode == SecurityMode::kHip) {
    const auto& web_hit = web_hips_[i]->hit();
    if (config_.hip_addressing == HipAddressing::kLsi) {
      return Endpoint{IpAddr(*lb_hip_->lsi_for_peer(web_hit)), 8080};
    }
    return Endpoint{IpAddr(web_hit), 8080};
  }
  return Endpoint{IpAddr(web_vms_[i]->private_ip()), 8080};
}

Endpoint SecureService::db_endpoint_for_web(std::size_t i) const {
  if (config_.mode == SecurityMode::kHip) {
    const auto& db_hit = db_hip_->hit();
    if (config_.hip_addressing == HipAddressing::kLsi) {
      return Endpoint{IpAddr(*web_hips_[i]->lsi_for_peer(db_hit)), 3306};
    }
    return Endpoint{IpAddr(db_hit), 3306};
  }
  return Endpoint{IpAddr(db_vm_->private_ip()), 3306};
}

void SecureService::prepare() {
  if (config_.mode != SecurityMode::kHip) return;
  // Pre-establish all associations so measurement windows see only the
  // data plane (the paper measures steady-state throughput).
  for (auto& wh : web_hips_) {
    lb_hip_->initiate(wh->hit());
    wh->initiate(db_hip_->hit());
  }
}

Endpoint SecureService::frontend() const {
  return Endpoint{*lb_node_->first_address(false), config_.frontend_port};
}

std::uint64_t SecureService::total_esp_packets() const {
  std::uint64_t total = 0;
  if (lb_hip_) total += lb_hip_->stats().esp_packets_out;
  for (const auto& wh : web_hips_) total += wh->stats().esp_packets_out;
  if (db_hip_) total += db_hip_->stats().esp_packets_out;
  return total;
}

}  // namespace hipcloud::core
