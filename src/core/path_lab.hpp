#pragma once

#include <memory>

#include "apps/workload.hpp"
#include "cloud/cloud.hpp"
#include "hip/daemon.hpp"
#include "net/icmp.hpp"
#include "net/teredo.hpp"

namespace hipcloud::core {

/// The paper's Figure 3 measurement rig: two VMs inside an EC2-like cloud
/// plus Teredo infrastructure on the public internet, measuring raw path
/// performance (iperf TCP bandwidth, ICMP RTT) across every connectivity
/// mode the paper compares:
///
///   kIpv4       plain private IPv4 between the VMs
///   kLsi        HIP with IPv4 locators, application uses LSIs
///   kHit        HIP with IPv4 locators, application uses HITs
///   kTeredo     plain IPv6-over-Teredo (no HIP)
///   kHitTeredo  HIP whose locators are Teredo addresses, app uses HITs
///   kLsiTeredo  same with LSIs
class PathLab {
 public:
  enum class Path { kIpv4, kLsi, kHit, kTeredo, kHitTeredo, kLsiTeredo };
  static const char* path_name(Path path);

  struct Config {
    cloud::ProviderProfile provider = cloud::ProviderProfile::ec2();
    cloud::InstanceType vm_type = cloud::InstanceType::small();
    /// The public Teredo relay is free shared infrastructure — modelled
    /// as a 100 Mbit/s attachment with noticeable latency.
    net::LinkConfig teredo_link{100e6, sim::from_millis(0.5),
                                sim::from_millis(100), 0.0, 1500};
    /// TCP receive window: the paper's iperf server advertised 85.3 KB.
    std::uint32_t receive_window = 87380;
    hip::HipConfig hip;
    std::uint64_t seed = 3;
  };

  PathLab() : PathLab(Config()) {}
  explicit PathLab(Config config);

  /// Prepare a path: qualifies Teredo and establishes the HIP
  /// association as needed (runs the event loop internally). Returns the
  /// address VM1 should use to reach VM2 on this path.
  net::IpAddr establish(Path path);

  /// Mean ICMP RTT in ms over `count` echo requests (the paper uses 20).
  double ping_rtt_ms(const net::IpAddr& dst, int count = 20);

  /// iperf-style TCP goodput in Mbit/s over `duration`.
  double iperf_mbps(const net::IpAddr& dst, sim::Duration duration);

  net::Network& network() { return *net_; }
  cloud::Vm* vm1() { return vm1_; }
  cloud::Vm* vm2() { return vm2_; }
  hip::HipDaemon* hip1() { return hip1_.get(); }
  hip::HipDaemon* hip2() { return hip2_.get(); }

 private:
  Config config_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<cloud::Cloud> cloud_;
  net::Node* inet_ = nullptr;
  net::Node* teredo_node_ = nullptr;
  cloud::Vm* vm1_ = nullptr;
  cloud::Vm* vm2_ = nullptr;

  std::unique_ptr<hip::HipDaemon> hip1_, hip2_;
  std::unique_ptr<net::UdpStack> udp1_, udp2_, udp_srv_;
  std::unique_ptr<net::TeredoServer> teredo_server_;
  std::unique_ptr<net::TeredoClient> teredo1_, teredo2_;
  std::unique_ptr<net::IcmpStack> icmp1_, icmp2_;
  std::unique_ptr<net::TcpStack> tcp1_, tcp2_;
  std::unique_ptr<apps::IperfServer> iperf_server_;
  std::uint16_t next_iperf_port_ = 5001;

  bool teredo_ready_ = false;
  bool hip_peered_ipv4_ = false;
  bool hip_peered_teredo_ = false;

  void ensure_teredo();
  void ensure_hip_over(bool teredo_locators);
};

}  // namespace hipcloud::core
