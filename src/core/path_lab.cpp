#include "core/path_lab.hpp"

#include <stdexcept>

#include "crypto/drbg.hpp"

namespace hipcloud::core {

using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

const char* PathLab::path_name(Path path) {
  switch (path) {
    case Path::kIpv4:
      return "IPv4";
    case Path::kLsi:
      return "LSI(IPv4)";
    case Path::kHit:
      return "HIT(IPv4)";
    case Path::kTeredo:
      return "Teredo";
    case Path::kHitTeredo:
      return "HIT(Teredo)";
    case Path::kLsiTeredo:
      return "LSI(Teredo)";
  }
  return "?";
}

namespace {
hip::HostIdentity make_identity(std::uint64_t seed, const char* name) {
  crypto::HmacDrbg drbg(seed, std::string("pathlab:") + name);
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}
}  // namespace

PathLab::PathLab(Config config) : config_(std::move(config)) {
  net_ = std::make_unique<net::Network>(config_.seed);
  cloud_ = std::make_unique<cloud::Cloud>(*net_, config_.provider, 1);
  cloud_->add_host();
  cloud_->add_host();
  vm1_ = cloud_->launch("vm1", config_.vm_type);
  vm2_ = cloud_->launch("vm2", config_.vm_type);

  inet_ = net_->add_node("internet-core");
  inet_->set_forwarding(true);
  cloud_->attach_external(inet_, config_.provider.gateway_link);

  // Teredo server/relay on the public internet.
  teredo_node_ = net_->add_node("teredo-server");
  const auto tl = net_->connect(teredo_node_, inet_, config_.teredo_link);
  teredo_node_->add_address(tl.iface_a, Ipv4Addr(83, 1, 1, 1));
  inet_->add_address(tl.iface_b, Ipv4Addr(83, 1, 1, 254));
  teredo_node_->set_default_route(tl.iface_a);
  inet_->add_route(IpAddr(Ipv4Addr(83, 1, 1, 1)), 32, tl.iface_b);

  // Order matters: HIP shims first, Teredo shims second, so ESP packets
  // towards Teredo locators are tunnelled.
  hip1_ = std::make_unique<hip::HipDaemon>(
      vm1_->node(), make_identity(config_.seed, "vm1"), config_.hip);
  hip2_ = std::make_unique<hip::HipDaemon>(
      vm2_->node(), make_identity(config_.seed, "vm2"), config_.hip);

  udp1_ = std::make_unique<net::UdpStack>(vm1_->node());
  udp2_ = std::make_unique<net::UdpStack>(vm2_->node());
  udp_srv_ = std::make_unique<net::UdpStack>(teredo_node_);
  teredo_server_ = std::make_unique<net::TeredoServer>(teredo_node_,
                                                       udp_srv_.get());
  const Endpoint server_ep{IpAddr(Ipv4Addr(83, 1, 1, 1)), net::kTeredoPort};
  teredo1_ = std::make_unique<net::TeredoClient>(vm1_->node(), udp1_.get(),
                                                 server_ep);
  teredo2_ = std::make_unique<net::TeredoClient>(vm2_->node(), udp2_.get(),
                                                 server_ep);

  icmp1_ = std::make_unique<net::IcmpStack>(vm1_->node());
  icmp2_ = std::make_unique<net::IcmpStack>(vm2_->node());

  net::TcpConfig tcp_cfg;
  tcp_cfg.receive_window = config_.receive_window;
  tcp1_ = std::make_unique<net::TcpStack>(vm1_->node(), tcp_cfg);
  tcp2_ = std::make_unique<net::TcpStack>(vm2_->node(), tcp_cfg);
}

void PathLab::ensure_teredo() {
  if (teredo_ready_) return;
  teredo1_->qualify([](const net::Ipv6Addr&) {});
  teredo2_->qualify([](const net::Ipv6Addr&) {});
  net_->loop().run();
  if (!teredo1_->qualified() || !teredo2_->qualified()) {
    throw std::runtime_error("PathLab: Teredo qualification failed");
  }
  teredo_ready_ = true;
}

void PathLab::ensure_hip_over(bool teredo_locators) {
  if (teredo_locators) {
    ensure_teredo();
    if (!hip_peered_teredo_) {
      hip1_->add_peer(hip2_->hit(), IpAddr(teredo2_->address()));
      hip2_->add_peer(hip1_->hit(), IpAddr(teredo1_->address()));
      hip_peered_teredo_ = true;
      hip_peered_ipv4_ = false;
    }
  } else if (!hip_peered_ipv4_) {
    hip1_->add_peer(hip2_->hit(), IpAddr(vm2_->private_ip()));
    hip2_->add_peer(hip1_->hit(), IpAddr(vm1_->private_ip()));
    hip_peered_ipv4_ = true;
    hip_peered_teredo_ = false;
  }
  hip1_->initiate(hip2_->hit());
  net_->loop().run();
  if (hip1_->state(hip2_->hit()) != hip::AssocState::kEstablished) {
    throw std::runtime_error("PathLab: BEX failed");
  }
}

IpAddr PathLab::establish(Path path) {
  switch (path) {
    case Path::kIpv4:
      return IpAddr(vm2_->private_ip());
    case Path::kTeredo:
      ensure_teredo();
      return IpAddr(teredo2_->address());
    case Path::kLsi:
      ensure_hip_over(false);
      return IpAddr(*hip1_->lsi_for_peer(hip2_->hit()));
    case Path::kHit:
      ensure_hip_over(false);
      return IpAddr(hip2_->hit());
    case Path::kHitTeredo:
      ensure_hip_over(true);
      return IpAddr(hip2_->hit());
    case Path::kLsiTeredo:
      ensure_hip_over(true);
      return IpAddr(*hip1_->lsi_for_peer(hip2_->hit()));
  }
  throw std::invalid_argument("PathLab: unknown path");
}

double PathLab::ping_rtt_ms(const IpAddr& dst, int count) {
  double mean = -1;
  icmp1_->ping(dst, count, sim::from_millis(200), 56,
               [&](const sim::Summary& rtts, int lost) {
                 if (lost == 0) mean = rtts.mean();
               });
  net_->loop().run();
  if (mean < 0) throw std::runtime_error("PathLab: ping lost packets");
  return mean;
}

double PathLab::iperf_mbps(const IpAddr& dst, sim::Duration duration) {
  const std::uint16_t port = next_iperf_port_++;
  iperf_server_ = std::make_unique<apps::IperfServer>(vm2_->node(),
                                                      tcp2_.get(), port);
  double mbps = -1;
  apps::IperfClient::run(vm1_->node(), tcp1_.get(), Endpoint{dst, port},
                         duration,
                         [&](const apps::IperfClient::Report& report) {
                           mbps = report.mbits_per_second;
                         });
  net_->loop().run();
  if (mbps < 0) throw std::runtime_error("PathLab: iperf failed");
  return mbps;
}

}  // namespace hipcloud::core
