#pragma once

#include <memory>
#include <vector>

#include "apps/reverse_proxy.hpp"
#include "apps/rubis.hpp"
#include "apps/workload.hpp"
#include "cloud/shard_fabric.hpp"
#include "core/secure_service.hpp"

namespace hipcloud::core {

/// Deployment knobs for the sharded (multi-rack, parallel-world) version
/// of the paper's Figure 1 service. Only kBasic and kHip are supported:
/// the sharded runs exist to push real HIP/ESP traffic through the
/// parallel simulator, and kBasic is their unsecured ablation baseline.
struct ShardedServiceConfig {
  SecurityMode mode = SecurityMode::kHip;
  HipAddressing hip_addressing = HipAddressing::kLsi;
  apps::RubisConfig dataset;
  hip::HipConfig hip;
  apps::ReverseProxy::HealthConfig proxy_health;
  /// Closed-loop virtual users per rack-local client farm.
  int clients_per_rack = 4;
  /// Measurement window of each farm (after its own warmup).
  sim::Duration duration = 2 * sim::kSecond;
  sim::Duration think_time = 0;
  sim::Duration client_warmup = sim::from_millis(200);
  std::uint64_t seed = 1;
  std::uint16_t frontend_port = 80;
  /// Web/db calibration, same meaning as DeploymentConfig.
  double web_request_cycles = 5.25e6;
  /// Client farm <-> rack gateway link.
  net::LinkConfig client_link{1e9, sim::from_micros(200),
                              sim::from_millis(100), 0.0, 1500};
  /// Proxy <-> rack-0 gateway link.
  net::LinkConfig proxy_link{10e9, sim::from_micros(150),
                             sim::from_millis(100), 0.0, 1500};
};

/// The RUBiS + reverse-proxy service stretched across a ShardedFabric:
///
///   * rack 0 is the gateway rack — the HAProxy-style proxy node hangs
///     off its gateway at 198.18.1.2 and fronts the whole service;
///   * racks 1 .. racks-2 each contribute their first VM as a RUBiS web
///     server (round-robin proxy backends);
///   * the last rack's first VM is the database;
///   * every rack also carries a client farm node (198.18.<100+r>.2)
///     whose closed-loop users hit the frontend through the rack mesh.
///
/// In kHip mode the proxy, web and db nodes run HIP daemons and address
/// each other by LSI (or HIT), so every proxy->web and web->db request
/// rides a BEET-ESP tunnel across the shard seams — real batched-crypto
/// traffic through the parallel worlds. All application state lives on
/// the owning rack's event loop; worker count never changes behaviour,
/// so the fabric's determinism hash stays byte-identical at any worker
/// count with this service running.
class ShardedService {
 public:
  ShardedService(cloud::ShardedFabric& fabric, ShardedServiceConfig config);

  /// Kick off HIP BEX pre-establishment (no-op in kBasic). Run the
  /// fabric afterwards to let the associations complete before
  /// measuring.
  void prepare();

  /// Schedule every rack's client farm. Farms start at each rack loop's
  /// current time; run the fabric past warmup+duration (plus drain
  /// slack) and then read report().
  void start_clients();

  /// Aggregate of all farms that completed, merged in rack order (so
  /// the aggregate itself is deterministic).
  apps::LoadReport report() const;

  net::Endpoint frontend() const;
  const ShardedServiceConfig& config() const { return config_; }
  apps::ReverseProxy& proxy() { return *proxy_; }
  std::size_t web_count() const { return web_vms_.size(); }
  cloud::Vm* web_vm(std::size_t i) { return web_vms_[i]; }
  /// Rack (= shard) hosting web server i — chaos runs schedule that
  /// VM's failure on this shard's loop.
  std::size_t web_rack(std::size_t i) const { return web_racks_[i]; }
  cloud::Vm* db_vm() { return db_vm_; }

  /// Aggregate ESP packets sent by all HIP daemons (kHip only).
  std::uint64_t total_esp_packets() const;

 private:
  net::Endpoint web_backend_endpoint(std::size_t i) const;
  net::Endpoint db_endpoint_for_web(std::size_t i) const;

  cloud::ShardedFabric& fabric_;
  ShardedServiceConfig config_;

  net::Node* proxy_node_ = nullptr;
  std::vector<net::Node*> client_nodes_;  // one per rack
  std::vector<cloud::Vm*> web_vms_;
  std::vector<std::size_t> web_racks_;
  cloud::Vm* db_vm_ = nullptr;
  std::size_t db_rack_ = 0;

  std::unique_ptr<net::TcpStack> proxy_tcp_;
  std::vector<std::unique_ptr<net::TcpStack>> web_tcp_;
  std::unique_ptr<net::TcpStack> db_tcp_;
  std::vector<std::unique_ptr<net::TcpStack>> client_tcp_;

  std::unique_ptr<hip::HipDaemon> proxy_hip_;
  std::vector<std::unique_ptr<hip::HipDaemon>> web_hips_;
  std::unique_ptr<hip::HipDaemon> db_hip_;

  std::unique_ptr<apps::DatabaseServer> db_server_;
  std::vector<std::unique_ptr<apps::RubisWebServer>> web_servers_;
  std::unique_ptr<apps::ReverseProxy> proxy_;

  std::vector<std::unique_ptr<apps::ClosedLoopClients>> farms_;
  // Per-rack completion slots: farm_reports_[r] / farm_done_[r] are
  // written only by rack r's own shard (the farm's completion callback
  // runs on that loop) and read after run() joins the workers — one
  // writer per slot, no seam crossing, hence owned rather than shared.
  std::vector<apps::LoadReport> farm_reports_;  // hipcheck:shard_owned
  std::vector<char> farm_done_;                 // hipcheck:shard_owned
};

}  // namespace hipcloud::core
