#include "core/testbed.hpp"

namespace hipcloud::core {

using net::IpAddr;
using net::Ipv4Addr;

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  net_ = std::make_unique<net::Network>(config_.seed);
  cloud_ = std::make_unique<cloud::Cloud>(*net_, config_.provider, 1);
  for (int h = 0; h < config_.cloud_hosts; ++h) cloud_->add_host();

  inet_ = net_->add_node("internet-core");
  inet_->set_forwarding(true);
  // The client farm node runs many virtual users but is not itself a
  // bottleneck (jmeter on a workstation).
  client_node_ = net_->add_node("clients", 50e9);
  // The paper's LB is "a high-performance server ... outside the cloud".
  lb_node_ = net_->add_node("loadbalancer", 16e9);

  const auto cl = net_->connect(client_node_, inet_, config_.client_wan);
  client_node_->add_address(cl.iface_a, Ipv4Addr(198, 18, 0, 2));
  inet_->add_address(cl.iface_b, Ipv4Addr(198, 18, 0, 1));
  client_node_->set_default_route(cl.iface_a);
  inet_->add_route(IpAddr(Ipv4Addr(198, 18, 0, 0)), 24, cl.iface_b);

  const auto ll = net_->connect(lb_node_, inet_, config_.lb_link);
  lb_node_->add_address(ll.iface_a, Ipv4Addr(198, 18, 1, 2));
  inet_->add_address(ll.iface_b, Ipv4Addr(198, 18, 1, 1));
  lb_node_->set_default_route(ll.iface_a);
  inet_->add_route(IpAddr(Ipv4Addr(198, 18, 1, 0)), 24, ll.iface_b);

  cloud_->attach_external(inet_, config_.provider.gateway_link);

  service_ = std::make_unique<SecureService>(*net_, *cloud_, lb_node_,
                                             config_.deployment);
  client_tcp_ = std::make_unique<net::TcpStack>(client_node_);

  // Pre-establish HIP associations before any measurement. With
  // keepalive enabled the daemons re-arm probe timers forever, so the
  // loop never drains — bound the warm-up run instead.
  service_->prepare();
  if (config_.deployment.hip.keepalive_interval > 0 &&
      config_.deployment.mode == SecurityMode::kHip) {
    net_->loop().run(net_->loop().now() + 15 * sim::kSecond);
  } else {
    net_->loop().run();
  }
}

apps::LoadReport Testbed::run_closed_loop(int concurrency,
                                          sim::Duration duration,
                                          sim::Duration think_time) {
  apps::ClosedLoopClients::Config cfg;
  cfg.concurrency = concurrency;
  cfg.duration = duration;
  cfg.think_time = think_time;
  cfg.target = service_->frontend();
  cfg.mix = config_.deployment.dataset;
  cfg.seed = config_.seed ^ static_cast<std::uint64_t>(concurrency) << 8;
  apps::ClosedLoopClients clients(client_node_, client_tcp_.get(), cfg);
  apps::LoadReport report;
  bool done = false;
  clients.start([&](const apps::LoadReport& r) {
    report = r;
    done = true;
    // The measurement is over; stop instead of draining so perpetual
    // timers (keepalives, health probes) can't keep the run alive.
    net_->loop().stop();
  });
  net_->loop().run();
  if (!done) report.duration_seconds = 0;  // defensive; should not happen
  return report;
}

apps::LoadReport Testbed::run_open_loop(double rate_rps,
                                        sim::Duration duration,
                                        const std::string& fixed_path) {
  apps::OpenLoopGenerator::Config cfg;
  cfg.rate_rps = rate_rps;
  cfg.duration = duration;
  cfg.fixed_path = fixed_path;
  cfg.poisson = true;  // realistic arrival jitter -> visible queueing
  cfg.target = service_->frontend();
  cfg.mix = config_.deployment.dataset;
  cfg.seed = config_.seed ^ 0xfeed;
  apps::OpenLoopGenerator gen(client_node_, client_tcp_.get(), cfg);
  apps::LoadReport report;
  bool done = false;
  gen.start([&](const apps::LoadReport& r) {
    report = r;
    done = true;
    net_->loop().stop();
  });
  net_->loop().run();
  if (!done) report.duration_seconds = 0;
  return report;
}

}  // namespace hipcloud::core
