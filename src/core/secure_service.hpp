#pragma once

#include <memory>
#include <vector>

#include "apps/reverse_proxy.hpp"
#include "apps/rubis.hpp"
#include "cloud/cloud.hpp"
#include "hip/daemon.hpp"

namespace hipcloud::core {

/// How intra-cloud hops are protected — the three scenarios of the
/// paper's evaluation.
enum class SecurityMode { kBasic, kHip, kSsl };
const char* mode_name(SecurityMode mode);

/// For the HIP mode: whether applications address peers by LSI (the
/// paper's configuration, with its extra translation cost) or by HIT.
enum class HipAddressing { kLsi, kHit };

struct DeploymentConfig {
  SecurityMode mode = SecurityMode::kHip;
  HipAddressing hip_addressing = HipAddressing::kLsi;
  int web_servers = 3;
  cloud::InstanceType web_type = cloud::InstanceType::micro();
  cloud::InstanceType db_type = cloud::InstanceType::large();
  bool db_query_cache = false;
  apps::RubisConfig dataset;
  hip::HipConfig hip;
  /// Frontend load-balancer failure masking (health checks + retry).
  apps::ReverseProxy::HealthConfig proxy_health;
  std::uint64_t seed = 1;
  std::uint16_t frontend_port = 80;

  /// --- calibration (see EXPERIMENTS.md) -------------------------------
  /// Web-tier cycles per dynamic request (RUBiS PHP-style page logic).
  double web_request_cycles = 5.25e6;
  /// Database cost model (cycles).
  double db_base_cycles = 2.0e6;
  double db_per_row_cycles = 20e3;
  double db_per_byte_cycles = 20.0;
  double db_cache_hit_cycles = 100e3;
};

/// The paper's Figure 1 deployment: a reverse HTTP proxy / load balancer
/// outside the cloud fronting `web_servers` RUBiS web VMs that share one
/// database VM, with every intra-cloud hop secured per `mode`:
///
///  * kBasic — plain TCP between all tiers (no security);
///  * kHip   — HIP daemons on the LB and every VM; the proxy reaches web
///             VMs by LSI/HIT and web VMs reach the DB the same way, so
///             all cloud traffic flows through BEET-ESP tunnels while
///             consumers stay HIP-oblivious (end-to-middle);
///  * kSsl   — TLS on both intra-cloud hops (the OpenVPN/stunnel-style
///             baseline the paper compares against).
///
/// The returned service is ready once `prepare()` has run to completion
/// (it pre-establishes HIP associations / warms nothing else).
class SecureService {
 public:
  SecureService(net::Network& net, cloud::Cloud& cloud, net::Node* lb_node,
                DeploymentConfig config);

  /// Kick off HIP BEX pre-establishment (no-op in other modes). Run the
  /// event loop afterwards to completion or until quiescent.
  void prepare();

  /// The consumer-facing endpoint on the load balancer.
  net::Endpoint frontend() const;

  const DeploymentConfig& config() const { return config_; }
  apps::ReverseProxy& proxy() { return *proxy_; }
  apps::DatabaseServer& database() { return *db_server_; }
  const std::vector<cloud::Vm*>& web_vms() const { return web_vms_; }
  cloud::Vm* db_vm() { return db_vm_; }
  hip::HipDaemon* lb_hip() { return lb_hip_.get(); }
  hip::HipDaemon* web_hip(std::size_t i) { return web_hips_.at(i).get(); }
  hip::HipDaemon* db_hip() { return db_hip_.get(); }

  /// Aggregate ESP packets seen by all HIP daemons (HIP mode only).
  std::uint64_t total_esp_packets() const;

 private:
  net::Endpoint web_backend_endpoint(std::size_t i) const;
  net::Endpoint db_endpoint_for_web(std::size_t i) const;

  net::Network& net_;
  cloud::Cloud& cloud_;
  net::Node* lb_node_;
  DeploymentConfig config_;

  std::vector<cloud::Vm*> web_vms_;
  cloud::Vm* db_vm_ = nullptr;

  // Per-node stacks (order matters: HIP daemons install their shim before
  // TCP stacks are used, which is fine either way; Teredo would need to
  // come after HIP).
  std::unique_ptr<net::TcpStack> lb_tcp_;
  std::vector<std::unique_ptr<net::TcpStack>> web_tcp_;
  std::unique_ptr<net::TcpStack> db_tcp_;

  std::unique_ptr<hip::HipDaemon> lb_hip_;
  std::vector<std::unique_ptr<hip::HipDaemon>> web_hips_;
  std::unique_ptr<hip::HipDaemon> db_hip_;

  // TLS PKI for the SSL scenario.
  std::unique_ptr<tls::CertificateAuthority> ca_;

  std::unique_ptr<apps::DatabaseServer> db_server_;
  std::vector<std::unique_ptr<apps::RubisWebServer>> web_servers_;
  std::unique_ptr<apps::ReverseProxy> proxy_;
};

}  // namespace hipcloud::core
