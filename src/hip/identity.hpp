#pragma once

#include <cstdint>

#include "crypto/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec_p256.hpp"
#include "crypto/rsa.hpp"
#include "net/address.hpp"

namespace hipcloud::hip {

/// Signature algorithm carried in a Host Identity. RSA is HIP's baseline;
/// ECDSA reflects RFC 6253 / the ECC-for-HIP work the paper cites as the
/// cheaper alternative.
enum class HiAlgorithm : std::uint8_t {
  kRsa = 5,    // IANA: RSA
  kEcdsa = 7,  // IANA: ECDSA
};

/// A Host Identity: the public/private keypair naming a host, plus the
/// derived Host Identity Tag (ORCHID IPv6, RFC 4843) and wire encoding.
class HostIdentity {
 public:
  /// Generate a fresh identity. For RSA, `rsa_bits` sizes the modulus
  /// (1024 matches the paper-era HIPL default).
  static HostIdentity generate(crypto::HmacDrbg& drbg, HiAlgorithm algo,
                               std::size_t rsa_bits = 1024);

  HiAlgorithm algorithm() const { return algo_; }

  /// Wire encoding of the public part: algo(1) | algo-specific key bytes.
  const crypto::Bytes& public_encoding() const { return public_encoding_; }

  /// The 128-bit Host Identity Tag with the ORCHID prefix (2001:10::/28).
  const net::Ipv6Addr& hit() const { return hit_; }

  /// Sign with the private key (PKCS#1-v1.5/SHA-256 or ECDSA/SHA-256).
  crypto::Bytes sign(crypto::BytesView message) const;

  /// Verify a signature against an encoded public HI.
  static bool verify(crypto::BytesView public_encoding,
                     crypto::BytesView message, crypto::BytesView signature);

  /// Derive the HIT for any encoded public HI (what a peer computes to
  /// check that a received HI matches the claimed HIT).
  static net::Ipv6Addr derive_hit(crypto::BytesView public_encoding);

  std::size_t rsa_bits() const;

 private:
  HostIdentity() = default;

  HiAlgorithm algo_ = HiAlgorithm::kRsa;
  crypto::RsaKeyPair rsa_;
  crypto::p256::KeyPair ec_;
  crypto::Bytes public_encoding_;
  net::Ipv6Addr hit_;
  // DRBG for ECDSA nonces, seeded at generation (deterministic per host).
  mutable crypto::HmacDrbg nonce_drbg_{crypto::Bytes{}};
};

}  // namespace hipcloud::hip
