#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "crypto/cost_model.hpp"
#include "crypto/dh.hpp"
#include "crypto/drbg.hpp"
#include "hip/esp.hpp"
#include "hip/identity.hpp"
#include "hip/keymat.hpp"
#include "hip/puzzle.hpp"
#include "hip/wire.hpp"
#include "net/node.hpp"

namespace hipcloud::hip {

struct HipConfig {
  EspSuite esp_suite = EspSuite::kAes128CtrSha256;
  crypto::DhGroup dh_group = crypto::DhGroup::kModp1536;
  /// Responder puzzle difficulty K (bits); 0 disables the puzzle.
  std::uint8_t puzzle_difficulty = 10;
  /// Raise K under I1 load (HIP's DoS defence, paper §IV-B): adds
  /// log2(r1_rate / adaptive_threshold_rps) bits, capped at +10.
  bool adaptive_puzzle = false;
  double adaptive_threshold_rps = 50.0;
  /// BEX retransmission (I1/I2 timer).
  sim::Duration bex_retry = sim::from_millis(500);
  int bex_max_retries = 5;
  /// Virtual-time costs charged to the node's CPU for crypto work.
  crypto::CostModel costs;
  /// Our own LSI (HIPL convention assigns 1.0.0.1 to self).
  net::Ipv4Addr local_lsi = net::Ipv4Addr(1, 0, 0, 1);
  /// Rekey the ESP SAs once the outbound SA has this few sequence numbers
  /// left (RFC 4303 forbids seq wrap; 0 disables proactive rekeying —
  /// exhaustion still forces one).
  std::uint64_t esp_rekey_threshold = 0x10000;
  /// How long the superseded inbound SA keeps decoding in-flight packets
  /// after a rekey before its SPI is retired.
  sim::Duration rekey_grace = sim::kSecond;
  /// Established-state keepalive: probe the peer when nothing authentic
  /// has been heard for this long (0 disables dead-peer detection).
  sim::Duration keepalive_interval = 0;
  /// Unanswered probes tolerated before the association is torn back to
  /// kUnassociated (traffic then re-triggers BEX).
  int keepalive_max_misses = 3;
};

/// Association state (RFC 5201 §4.4, abbreviated).
enum class AssocState {
  kUnassociated,
  kI1Sent,
  kI2Sent,
  kEstablished,
  kClosing,
  kFailed,
};

const char* assoc_state_name(AssocState s);

/// Legal transition table for the association state machine — the BEX
/// ladder (kUnassociated → I1 → R1 → I2 → R2 → kEstablished, with the
/// responder jumping kUnassociated → kEstablished at I2 since it is
/// stateless until then), plus the retry, failure, re-BEX/reset,
/// rekey/readdress (which stay within kEstablished) and teardown paths.
/// Every state change in HipDaemon funnels through this predicate under
/// HIPCLOUD_AUDIT; tests drive illegal edges through
/// HipDaemon::debug_force_state() and expect the audit to trip.
bool legal_assoc_transition(AssocState from, AssocState to);

/// The HIP daemon: one per host. Implements the layer-3.5 shim that the
/// paper deploys inside VMs — intercepting traffic addressed to HITs and
/// LSIs, authenticating peers with the Base Exchange and protecting data
/// in BEET-mode ESP tunnels. Also provides UPDATE-based mobility,
/// rendezvous relaying, and HIT-based access control (hosts.allow/deny).
class HipDaemon {
 public:
  HipDaemon(net::Node* node, HostIdentity identity, HipConfig config = {});

  // --- identity & addressing ---------------------------------------------
  const HostIdentity& identity() const { return identity_; }
  const net::Ipv6Addr& hit() const { return identity_.hit(); }
  net::Ipv4Addr local_lsi() const { return config_.local_lsi; }
  net::Node* node() { return node_; }

  /// Teach the daemon a peer's current locator (the "hip hosts file"; in
  /// deployment this comes from DNS HIP records). Also assigns an LSI.
  net::Ipv4Addr add_peer(const net::Ipv6Addr& peer_hit,
                         const net::IpAddr& locator);
  std::optional<net::Ipv6Addr> peer_for_lsi(net::Ipv4Addr lsi) const;
  std::optional<net::Ipv4Addr> lsi_for_peer(const net::Ipv6Addr& hit) const;

  // --- access control ------------------------------------------------------
  /// hosts.allow analogue: explicitly permit a HIT.
  void allow(const net::Ipv6Addr& hit) { allowed_.insert(hit); }
  /// hosts.deny analogue: explicitly refuse a HIT.
  void deny(const net::Ipv6Addr& hit) { denied_.insert(hit); }
  /// Policy for HITs in neither list (default: accept).
  void set_default_accept(bool accept) { default_accept_ = accept; }
  bool is_authorized(const net::Ipv6Addr& hit) const;

  // --- association management ---------------------------------------------
  /// Force a Base Exchange now (normally triggered lazily by traffic).
  void initiate(const net::Ipv6Addr& peer_hit);
  AssocState state(const net::Ipv6Addr& peer_hit) const;
  /// Tear down an association with CLOSE / CLOSE_ACK.
  void close_association(const net::Ipv6Addr& peer_hit);

  /// Fires when an association reaches ESTABLISHED (test/metric hook).
  using EstablishedFn =
      std::function<void(const net::Ipv6Addr& peer_hit, sim::Duration bex_latency)>;
  void on_established(EstablishedFn fn) { on_established_ = std::move(fn); }

  /// Fires when move_to() announces a new locator — the hook the paper's
  /// future-work dynamic-DNS support needs (update the host's A/HIP
  /// records so re-contact after simultaneous movement works, §VII).
  using LocatorChangeFn = std::function<void(const net::IpAddr& new_locator)>;
  void on_locator_change(LocatorChangeFn fn) {
    on_locator_change_ = std::move(fn);
  }

  // --- mobility (RFC 5206) --------------------------------------------------
  /// Announce a new locator to every established peer and switch our
  /// outbound SAs over once the peer echoes the nonce back.
  void move_to(const net::IpAddr& new_locator);

  // --- rendezvous (RFC 5204) -----------------------------------------------
  void enable_rvs_server() { rvs_server_ = true; }
  /// Register with a rendezvous server (association must be established
  /// or establishable; registration rides on a signed RVS_REGISTER).
  void register_with_rvs(const net::Ipv6Addr& rvs_hit);

  // --- observability ---------------------------------------------------------
  struct Stats {
    std::uint64_t bex_initiated = 0;
    std::uint64_t bex_completed = 0;
    std::uint64_t bex_failed = 0;
    std::uint64_t esp_packets_out = 0;
    std::uint64_t esp_packets_in = 0;
    std::uint64_t esp_bytes_out = 0;
    std::uint64_t esp_bytes_in = 0;
    std::uint64_t acl_rejects = 0;
    std::uint64_t auth_failures = 0;
    std::uint64_t updates_processed = 0;
    std::uint64_t r1_sent = 0;
    /// Outbound packets discarded because the pre-BEX pending queue was
    /// full, and packets thrown away when an association failed or was
    /// torn down with traffic still queued.
    std::uint64_t pending_dropped = 0;
    std::uint64_t pending_failed = 0;
    /// SA rollover before sequence exhaustion.
    std::uint64_t rekeys_initiated = 0;
    std::uint64_t rekeys_completed = 0;
    std::uint64_t sa_exhausted_drops = 0;
    /// Dead-peer detection.
    std::uint64_t keepalives_sent = 0;
    std::uint64_t peer_failures = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint8_t current_puzzle_difficulty() const;
  const HipConfig& config() const { return config_; }

  /// Test hook: jump the outbound ESP sequence counter for `peer_hit`
  /// towards 2^32 so exhaustion/rekey paths can be exercised without
  /// protecting billions of packets. Returns false if no established SA.
  bool seek_esp_seq(const net::Ipv6Addr& peer_hit, std::uint32_t seq);

  /// Test hook: force the association state machine through the same
  /// validated set_state() path the protocol handlers use. An illegal
  /// edge trips the HIPCLOUD_AUDIT transition check in audit builds
  /// (sim::CheckFailure); in normal builds the state is set as asked —
  /// which is exactly the class of silent corruption the audit layer
  /// exists to surface. Creates the association if missing.
  void debug_force_state(const net::Ipv6Addr& peer_hit, AssocState to);

 private:
  class Shim;
  friend class Shim;

  struct Association {
    net::Ipv6Addr peer_hit;
    net::IpAddr peer_locator;
    crypto::Bytes peer_hi;
    AssocState state = AssocState::kUnassociated;
    Keymat keymat;
    std::unique_ptr<EspSa> sa_out;
    std::unique_ptr<EspSa> sa_in;
    std::uint32_t spi_out = 0;  // peer's inbound SPI — we send with it
    std::uint32_t spi_in = 0;   // our inbound SPI
    std::deque<net::Packet> pending;
    int retries = 0;
    sim::EventHandle retry_timer;
    bool retry_armed = false;
    sim::Time bex_start = 0;
    // Mobility handshake state (separate counters per direction so both
    // ends can move independently).
    std::uint64_t update_seq_out = 0;
    std::uint64_t update_seq_in_seen = 0;
    std::uint64_t echo_nonce = 0;
    std::optional<net::IpAddr> locator_in_flight;
    // Rekey (SA rollover before 2^32 seq exhaustion). The superseded
    // inbound SA stays in old_sa_in for a grace period so packets
    // protected just before the switch still decode.
    std::uint32_t rekey_generation = 0;
    bool rekey_in_flight = false;
    std::uint32_t rekey_new_spi_in = 0;
    int rekey_retries = 0;
    sim::EventHandle rekey_timer;
    bool rekey_timer_armed = false;
    std::uint64_t last_rekey_seq = 0;
    std::unique_ptr<EspSa> old_sa_in;
    std::uint32_t old_spi_in = 0;
    sim::EventHandle grace_timer;
    bool grace_armed = false;
    // Keepalive / dead-peer detection.
    sim::Time last_heard = 0;
    sim::EventHandle keepalive_timer;
    bool keepalive_armed = false;
    int keepalive_misses = 0;
    std::uint64_t keepalive_nonce = 0;
    bool pending_warn_logged = false;
  };

  // Shim/datapath.
  bool shim_outbound(net::Packet& pkt);
  void esp_send(Association& assoc, net::Packet&& pkt);
  void on_esp_packet(net::Packet&& pkt);
  void on_hip_packet(net::Packet&& pkt);

  /// Coalescing ESP send queue. esp_send() stages the packet here and
  /// charges the CPU as before; the first per-packet completion callback
  /// that finds its job still unprotected flushes the *whole* queue
  /// through EspSa::protect_batch() — TCP bursts hand the SA every packet
  /// queued in the same event tick as one multi-buffer ICV pass. Each
  /// callback then pops exactly one job (FIFO, 1:1 with the CPU charges),
  /// so event order, virtual time, and the determinism hash are identical
  /// to the sequential path at any lane count.
  struct EspOutJob {
    net::Ipv6Addr peer_hit;
    std::uint8_t inner_proto = 0;
    std::uint8_t addr_mode = 0;
    crypto::Buffer buf;       // payload until protected, then wire bytes
    bool protected_ = false;  // set by flush (empty buf + true: exhausted)
    bool skipped = false;     // assoc vanished before the flush
  };
  void flush_esp_out_queue();

  /// Coalescing ESP receive queue — the unprotect mirror of the send
  /// queue above. on_esp_packet() stages the wire bytes here and charges
  /// the CPU exactly as the sequential path did; the first per-packet
  /// completion that finds its job still wrapped flushes the whole queue
  /// through EspSa::unprotect_batch() (grouped per inbound SA, queue
  /// order within each group, so replay-window updates land in the same
  /// order as sequential unprotect_packet() calls). Each completion then
  /// pops exactly one job FIFO — charge count and order are untouched,
  /// so the determinism hash is identical to the unbatched path.
  struct EspInJob {
    net::Ipv6Addr peer_hit;
    std::uint32_t spi = 0;
    std::size_t wire_size = 0;
    crypto::Buffer wire;  // consumed by the flush
    std::optional<EspSa::UnprotectedPacket> result;
    bool unprotected = false;  // flush ran (empty result: auth/replay drop)
    bool skipped = false;      // SA vanished before the flush
  };
  void flush_esp_in_queue();
  /// The inbound SA a wire packet with `spi` decodes against (the live
  /// SA, or the rekey grace-period SA), nullptr when neither matches.
  EspSa* resolve_in_sa(Association* assoc, std::uint32_t spi);

  // BEX.
  void send_i1(Association& assoc);
  void handle_i1(const HipMessage& msg, const net::Packet& pkt);
  void handle_r1(const HipMessage& msg, const net::Packet& pkt);
  void handle_i2(const HipMessage& msg, const net::Packet& pkt);
  void handle_r2(const HipMessage& msg, const net::Packet& pkt);
  void establish(Association& assoc, sim::Duration latency);
  void fail_association(Association& assoc);
  void arm_retry(Association& assoc);
  void cancel_retry(Association& assoc);

  // Mobility / teardown / rendezvous.
  void handle_update(const HipMessage& msg, const net::Packet& pkt);
  void handle_close(const HipMessage& msg);
  void handle_close_ack(const HipMessage& msg);
  void handle_rvs_register(const HipMessage& msg, const net::Packet& pkt);

  // Recovery: rekey, dead-peer detection, teardown.
  void start_rekey(Association& assoc);
  void send_rekey_update(Association& assoc);
  void retire_old_sa_in(Association& assoc);
  void arm_keepalive(Association& assoc);
  void reset_association(Association& assoc);
  void cancel_recovery_timers(Association& assoc);

  // Invariants (src/sim/check.hpp). Every state change funnels through
  // set_state, which audits the edge against legal_assoc_transition()
  // and the per-state structural invariants (established implies live
  // SAs, old-SA drain lifecycle, rekey flags).
  void set_state(Association& assoc, AssocState to);
  void audit_association(const Association& assoc) const;

  // Helpers.
  Association& assoc_for(const net::Ipv6Addr& peer_hit);
  Association* find_assoc(const net::Ipv6Addr& peer_hit);
  const Association* find_assoc(const net::Ipv6Addr& peer_hit) const;
  void send_control(const HipMessage& msg, const net::IpAddr& dst,
                    std::optional<net::IpAddr> src = std::nullopt);
  void charge(double cycles, std::function<void()> then);
  std::uint32_t fresh_spi();
  double sign_cycles() const;
  double verify_cycles(crypto::BytesView peer_hi) const;
  double dh_cycles() const;
  double esp_cycles(std::size_t bytes) const;
  void note_r1_sent();
  HipMessage build_r1(const net::Ipv6Addr& initiator_hit);

  net::Node* node_;
  HostIdentity identity_;
  HipConfig config_;
  crypto::HmacDrbg drbg_;
  crypto::DhKeyPair dh_;

  std::map<net::Ipv6Addr, Association> assocs_;
  std::map<std::uint32_t, net::Ipv6Addr> spi_to_peer_;
  std::map<net::Ipv4Addr, net::Ipv6Addr> lsi_to_hit_;
  std::map<net::Ipv6Addr, net::Ipv4Addr> hit_to_lsi_;
  std::uint8_t next_lsi_octet_ = 2;

  std::set<net::Ipv6Addr> allowed_;
  std::set<net::Ipv6Addr> denied_;
  bool default_accept_ = true;

  bool rvs_server_ = false;
  std::map<net::Ipv6Addr, net::IpAddr> rvs_registrations_;
  std::set<net::Ipv6Addr> pending_rvs_targets_;  // register once established

  std::uint64_t puzzle_i_;
  std::deque<sim::Time> recent_r1_times_;  // adaptive puzzle load window

  std::deque<EspOutJob> esp_out_queue_;
  std::deque<EspInJob> esp_in_queue_;

  Stats stats_;
  EstablishedFn on_established_;
  LocatorChangeFn on_locator_change_;
  // Locator add seen but not yet announced (the announce is deferred one
  // event so the caller can finish installing routes first).
  std::optional<net::IpAddr> readdress_pending_;
};

}  // namespace hipcloud::hip
