#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "crypto/aes.hpp"
#include "crypto/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha_mb.hpp"
#include "net/packet.hpp"

namespace hipcloud::hip {

/// ESP transform suites negotiated in BEX (HIP_CIPHER). NULL keeps
/// integrity protection only — the paper notes HIP minimally
/// authenticates and typically also encrypts; the A3 ablation compares
/// these.
enum class EspSuite : std::uint8_t {
  kNullSha256 = 1,
  kAes128CtrSha256 = 2,  // default
  kAes128CbcSha256 = 3,
};

std::size_t esp_overhead(EspSuite suite);
const char* esp_suite_name(EspSuite suite);

/// One direction of a BEET-mode ESP security association.
///
/// BEET ("bound end-to-end tunnel", RFC 5202) carries only the transport
/// payload plus a tiny trailer on the wire — the inner HIT/LSI addresses
/// are fixed per-SA and restored at the receiver, which is what makes it
/// cheaper than full tunnel mode. Wire format:
///   SPI(4) | SEQ(4) | IV(16) | ciphertext | ICV(12)
/// with ciphertext = ENC(proto(1) | addr_mode(1) | payload).
class EspSa {
 public:
  /// addr_mode values inside the protected header.
  static constexpr std::uint8_t kModeHit = 0;
  static constexpr std::uint8_t kModeLsi = 1;

  EspSa(std::uint32_t spi, EspSuite suite, crypto::BytesView enc_key,
        crypto::BytesView auth_key);

  std::uint32_t spi() const { return spi_; }
  EspSuite suite() const { return suite_; }

  /// Protect a transport payload for transmission. Sequence numbers
  /// increment per call. Once the 32-bit sequence space is spent the SA
  /// is exhausted: returns an empty buffer and sets exhausted() instead
  /// of wrapping to 0, which the peer's anti-replay window would reject
  /// forever (RFC 4303 forbids wrap; the daemon rekeys well before this).
  crypto::Bytes protect(std::uint8_t inner_proto, std::uint8_t addr_mode,
                        crypto::BytesView payload);

  /// Zero-copy variant: encapsulates in place in the payload's buffer —
  /// the ESP header and protected inner header go into the headroom,
  /// padding and ICV into the tailroom, and the payload bytes are
  /// encrypted where they sit. Wire bytes are identical to protect().
  /// Returns an empty buffer on exhaustion.
  crypto::Buffer protect_packet(std::uint8_t inner_proto,
                                std::uint8_t addr_mode,
                                crypto::Buffer payload);

  /// One unit of a protect_batch() call. `buf` holds the payload going in
  /// and the full wire packet coming out (empty if the SA exhausted
  /// before this job's sequence number was assigned).
  struct ProtectJob {
    std::uint8_t inner_proto = 0;
    std::uint8_t addr_mode = kModeHit;
    crypto::Buffer buf;
  };

  /// Batch variant of protect_packet(): headers, sequence numbers, IVs
  /// and encryption are applied per packet *in order* — the wire bytes
  /// are byte-identical to sequential protect_packet() calls — but the
  /// ICVs for the whole batch are computed in one multi-buffer HMAC pass
  /// (lane_width() packets per SIMD sweep). This is where the ESP send
  /// queue's per-tick packet bursts get their throughput.
  void protect_batch(std::span<ProtectJob> jobs);

  /// True once protect() has consumed the final sequence number. The SA
  /// can no longer send; only a rekey (fresh SA) recovers.
  bool exhausted() const { return exhausted_; }

  /// Sequence numbers left before exhaustion. (next_seq_ == 0 means the
  /// counter already wrapped; the next protect() will flag exhaustion.)
  std::uint64_t remaining_seq() const {
    if (exhausted_ || next_seq_ == 0) return 0;
    return 0x1'0000'0000ULL - next_seq_;
  }

  /// Test hook: jump the outbound sequence counter (e.g. to just below
  /// 2^32 - 1) without protecting billions of packets.
  void seek_seq(std::uint32_t seq) {
    next_seq_ = seq;
    exhausted_ = false;
    last_emitted_seq_ = seq == 0 ? 0xffffffffu : seq - 1;
  }

  /// Test hook for the audit-build regression suite: rewind the
  /// anti-replay high-water mark *without* the bookkeeping that
  /// legitimate paths do, simulating the class of replay-window
  /// regression HIPCLOUD_AUDIT exists to catch. The next unprotect()
  /// trips the window-monotonicity audit (audit builds only; in normal
  /// builds the SA just re-accepts a span of old sequence numbers).
  void debug_rewind_replay_window(std::uint32_t by) {
    highest_seq_ = by > highest_seq_ ? 0 : highest_seq_ - by;
  }

  struct Unprotected {
    std::uint8_t inner_proto;
    std::uint8_t addr_mode;
    crypto::Bytes payload;
    std::uint32_t seq;
  };

  /// Verify + decrypt + anti-replay-check an inbound ESP payload.
  /// Returns nullopt on authentication failure, replay, or malformed
  /// input. (Inbound SAs only; using one SA for both directions would
  /// desynchronize the replay window.)
  std::optional<Unprotected> unprotect(crypto::BytesView wire);

  struct UnprotectedPacket {
    std::uint8_t inner_proto;
    std::uint8_t addr_mode;
    crypto::Buffer payload;
    std::uint32_t seq;
  };

  /// Zero-copy variant of unprotect(): authenticates and decrypts in
  /// place, then strips the ESP header/trailer by shrinking the buffer
  /// window. Same acceptance behaviour and counters as unprotect().
  std::optional<UnprotectedPacket> unprotect_packet(crypto::Buffer wire);

  /// One unit of an unprotect_batch() call: `wire` is consumed, `result`
  /// mirrors what unprotect_packet() would have returned for it.
  struct UnprotectJob {
    crypto::Buffer wire;
    std::optional<UnprotectedPacket> result;
  };

  /// Batch variant of unprotect_packet(): expected ICVs for the whole
  /// batch come from one multi-buffer HMAC pass, then each packet runs
  /// the normal acceptance pipeline in order — auth failures, replay
  /// drops (including a window hit mid-batch), and counters behave
  /// exactly as sequential unprotect_packet() calls.
  void unprotect_batch(std::span<UnprotectJob> jobs);

  std::uint64_t replay_drops() const { return replay_drops_; }
  std::uint64_t auth_failures() const { return auth_failures_; }
  std::uint32_t next_seq() const { return next_seq_; }

 private:
  void compute_icv(crypto::BytesView spi_seq_iv_ct, std::uint8_t out[12]);
  bool replay_check_and_update(std::uint32_t seq);
  /// Everything protect_packet() does except the ICV: header, sequence
  /// number, IV, in-place encryption. Leaves kIcvSize reserved bytes at
  /// the tail for the caller (streaming or multi-buffer) to fill.
  crypto::Buffer protect_prepare(std::uint8_t inner_proto,
                                 std::uint8_t addr_mode,
                                 crypto::Buffer payload);
  /// The acceptance pipeline after the expected ICV is known: constant-
  /// time compare, replay window, decrypt, strip. Shared by the streaming
  /// and batch unprotect paths so counters/ordering can't diverge.
  std::optional<UnprotectedPacket> finish_unprotect(
      crypto::Buffer wire, const std::uint8_t expected_icv[12]);

  std::uint32_t spi_;
  EspSuite suite_;
  std::optional<crypto::Aes> cipher_;  // absent for NULL suite
  crypto::HmacSha256 hmac_;  // keyed once; reset per packet
  crypto::HmacSha256Mb hmac_mb_;  // same key; lanes for the batch paths
  std::uint32_t next_seq_ = 1;
  bool exhausted_ = false;
  std::uint64_t iv_counter_ = 1;

  // 64-entry sliding anti-replay window (RFC 4303 §3.4.3).
  std::uint32_t highest_seq_ = 0;
  std::uint64_t replay_window_ = 0;
  std::uint64_t replay_drops_ = 0;
  std::uint64_t auth_failures_ = 0;

  // Invariant shadows (src/sim/check.hpp). last_emitted_seq_ backs the
  // always-on send-monotonicity CHECK; audit_highest_seq_ is the
  // audit-build high-water shadow that catches a replay window moving
  // backwards between unprotect() calls.
  std::uint32_t last_emitted_seq_ = 0;
  std::uint32_t audit_highest_seq_ = 0;
};

}  // namespace hipcloud::hip
