#include "hip/identity.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace hipcloud::hip {

using crypto::Bytes;
using crypto::BytesView;

HostIdentity HostIdentity::generate(crypto::HmacDrbg& drbg, HiAlgorithm algo,
                                    std::size_t rsa_bits) {
  HostIdentity hi;
  hi.algo_ = algo;
  hi.public_encoding_.push_back(static_cast<std::uint8_t>(algo));
  if (algo == HiAlgorithm::kRsa) {
    hi.rsa_ = crypto::rsa_generate(drbg, rsa_bits);
    const Bytes pub = hi.rsa_.pub.encode();
    hi.public_encoding_.insert(hi.public_encoding_.end(), pub.begin(),
                               pub.end());
  } else {
    hi.ec_ = crypto::p256::generate(drbg);
    const Bytes pub = crypto::p256::encode_point(hi.ec_.public_point);
    hi.public_encoding_.insert(hi.public_encoding_.end(), pub.begin(),
                               pub.end());
  }
  hi.hit_ = derive_hit(hi.public_encoding_);
  hi.nonce_drbg_ = crypto::HmacDrbg(drbg.generate(32));
  return hi;
}

net::Ipv6Addr HostIdentity::derive_hit(BytesView public_encoding) {
  // RFC 4843 ORCHID: 28-bit prefix 2001:10::/28 followed by 100 bits of
  // hash output. HIPv1 (RFC 5201) uses SHA-1 as the ORCHID hash.
  const Bytes digest = crypto::sha1(public_encoding);
  std::array<std::uint8_t, 16> b{};
  b[0] = 0x20;
  b[1] = 0x01;
  b[2] = 0x00;
  b[3] = static_cast<std::uint8_t>(0x10 | (digest[0] & 0x0f));
  for (int i = 0; i < 12; ++i) b[4 + i] = digest[1 + i];
  return net::Ipv6Addr(b);
}

std::size_t HostIdentity::rsa_bits() const {
  if (algo_ != HiAlgorithm::kRsa) return 0;
  return rsa_.pub.n.bit_length();
}

Bytes HostIdentity::sign(BytesView message) const {
  if (algo_ == HiAlgorithm::kRsa) {
    return crypto::rsa_sign_pkcs1(rsa_.priv, message);
  }
  return crypto::p256::ecdsa_sign(ec_.private_scalar, nonce_drbg_, message)
      .encode();
}

bool HostIdentity::verify(BytesView public_encoding, BytesView message,
                          BytesView signature) {
  if (public_encoding.empty()) return false;
  try {
    const auto algo = static_cast<HiAlgorithm>(public_encoding[0]);
    if (algo == HiAlgorithm::kRsa) {
      const auto pub = crypto::RsaPublicKey::decode(public_encoding.subspan(1));
      return crypto::rsa_verify_pkcs1(pub, message, signature);
    }
    if (algo == HiAlgorithm::kEcdsa) {
      const auto point = crypto::p256::decode_point(public_encoding.subspan(1));
      return crypto::p256::ecdsa_verify(
          point, message, crypto::p256::Signature::decode(signature));
    }
  } catch (const std::runtime_error&) {
    return false;
  }
  return false;
}

}  // namespace hipcloud::hip
