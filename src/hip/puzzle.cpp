#include "hip/puzzle.hpp"

#include "crypto/sha256.hpp"

namespace hipcloud::hip {

namespace {

bool low_bits_zero(const crypto::Bytes& digest, int k) {
  // Check the lowest k bits of the digest (big-endian byte order: the
  // tail of the digest).
  int idx = static_cast<int>(digest.size()) - 1;
  while (k >= 8) {
    if (digest[idx--] != 0) return false;
    k -= 8;
  }
  if (k > 0) {
    const std::uint8_t mask = static_cast<std::uint8_t>((1u << k) - 1);
    if (digest[idx] & mask) return false;
  }
  return true;
}

crypto::Bytes puzzle_input(std::uint64_t i, const net::Ipv6Addr& hit_i,
                           const net::Ipv6Addr& hit_r, std::uint64_t j) {
  crypto::Bytes input;
  input.reserve(8 + 16 + 16 + 8);
  crypto::append_be(input, i, 8);
  input.insert(input.end(), hit_i.bytes().begin(), hit_i.bytes().end());
  input.insert(input.end(), hit_r.bytes().begin(), hit_r.bytes().end());
  crypto::append_be(input, j, 8);
  return input;
}

}  // namespace

Puzzle::Solution Puzzle::solve(const net::Ipv6Addr& initiator_hit,
                               const net::Ipv6Addr& responder_hit) const {
  Solution solution;
  if (difficulty_k == 0) {
    solution.attempts = 1;
    return solution;
  }
  for (std::uint64_t j = 0;; ++j) {
    ++solution.attempts;
    const auto digest = crypto::sha1(
        puzzle_input(random_i, initiator_hit, responder_hit, j));
    if (low_bits_zero(digest, difficulty_k)) {
      solution.j = j;
      return solution;
    }
  }
}

bool Puzzle::verify(const net::Ipv6Addr& initiator_hit,
                    const net::Ipv6Addr& responder_hit,
                    std::uint64_t j) const {
  if (difficulty_k == 0) return true;
  const auto digest =
      crypto::sha1(puzzle_input(random_i, initiator_hit, responder_hit, j));
  return low_bits_zero(digest, difficulty_k);
}

}  // namespace hipcloud::hip
