#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/bytes.hpp"
#include "net/address.hpp"

namespace hipcloud::hip {

/// HIP control message types (RFC 5201 §5.3 plus the registration
/// extension used by the rendezvous service).
enum class MsgType : std::uint8_t {
  kI1 = 1,
  kR1 = 2,
  kI2 = 3,
  kR2 = 4,
  kUpdate = 16,
  kNotify = 17,
  kClose = 18,
  kCloseAck = 19,
  kRvsRegister = 32,  // registration extension (RFC 5203, simplified)
  kRvsRegisterAck = 33,
};

/// TLV parameter types carried in HIP control messages. Numbering follows
/// RFC 5201 where a direct counterpart exists.
enum class ParamType : std::uint16_t {
  kEspInfo = 65,       // SPI the sender expects inbound ESP on
  kPuzzle = 257,       // K | I
  kSolution = 321,     // K | I | J
  kSeq = 385,          // update sequence number
  kAck = 449,          // acked update sequence number
  kDiffieHellman = 513,  // group id | public value
  kHipCipher = 579,    // chosen ESP suite id
  kEncrypted = 641,    // reserved for future use
  kHostId = 705,       // encoded public HI
  kEchoRequestSigned = 897,
  kEchoResponseSigned = 961,
  kLocator = 193,      // new locator for mobility updates
  kHmac = 61505,       // HMAC over the message (keyed with KEYMAT)
  kSignature = 61697,  // signature over the message
  kViaRvs = 65500,     // original locator, added by a rendezvous server
};

/// A HIP control message: fixed header (type, sender/receiver HIT) plus
/// an ordered list of TLV parameters. HMAC and SIGNATURE are computed
/// over the serialization with those two parameters excluded, matching
/// the spirit of RFC 5201's packet checksums.
class HipMessage {
 public:
  MsgType type = MsgType::kI1;
  net::Ipv6Addr sender_hit;
  net::Ipv6Addr receiver_hit;

  void set_param(ParamType param, crypto::Bytes value);
  bool has_param(ParamType param) const;
  /// Returns nullptr when absent.
  const crypto::Bytes* param(ParamType param) const;

  // Typed helpers for common parameters.
  void set_u64(ParamType param, std::uint64_t value);
  std::optional<std::uint64_t> u64(ParamType param) const;

  crypto::Bytes serialize() const;
  static HipMessage parse(crypto::BytesView wire);

  /// Serialization with HMAC and SIGNATURE parameters removed — the
  /// canonical bytes both of those protect.
  crypto::Bytes signed_view() const;

  /// Sign/MAC helpers.
  void attach_hmac(crypto::BytesView key);
  bool check_hmac(crypto::BytesView key) const;

  std::string describe() const;

 private:
  std::map<ParamType, crypto::Bytes> params_;
};

}  // namespace hipcloud::hip
