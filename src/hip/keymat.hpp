#pragma once

#include <cstdint>

#include "crypto/bytes.hpp"
#include "net/address.hpp"

namespace hipcloud::hip {

/// Keying material derived from the BEX Diffie-Hellman secret
/// (RFC 5201 §6.5): both ends expand Kij into directional ESP keys and
/// HIP HMAC keys, ordered by the numeric comparison of the two HITs so
/// initiator and responder agree on which key is whose.
struct Keymat {
  crypto::Bytes hip_hmac_out;  // keys our outbound control messages
  crypto::Bytes hip_hmac_in;   // verifies the peer's control messages
  crypto::Bytes esp_enc_out;
  crypto::Bytes esp_auth_out;
  crypto::Bytes esp_enc_in;
  crypto::Bytes esp_auth_in;

  /// Derive from the DH shared secret. `local_hit`/`peer_hit` orient the
  /// directional keys; both sides derive identical material with the
  /// roles swapped.
  static Keymat derive(crypto::BytesView dh_secret,
                       const net::Ipv6Addr& local_hit,
                       const net::Ipv6Addr& peer_hit);

  /// One-way ratchet of the four directional ESP keys to rekey
  /// generation `generation` (new key = HMAC(old key, label || gen)).
  /// My "out" keys are the peer's "in" keys, so both ends derive the
  /// same generation independently — no new DH exchange needed. The HIP
  /// HMAC keys are deliberately left alone: control messages from before
  /// and after the rollover must both verify.
  void ratchet_esp(std::uint32_t generation);
};

}  // namespace hipcloud::hip
