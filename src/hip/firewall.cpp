#include "hip/firewall.hpp"

#include "crypto/bytes.hpp"
#include "hip/wire.hpp"
#include "sim/log.hpp"

namespace hipcloud::hip {

using net::IpProto;
using net::Packet;

HipFirewall::HipFirewall(net::Node* node, bool default_accept)
    : node_(node), default_accept_(default_accept) {
  node_->set_forwarding(true);
  node_->set_forward_hook(
      [this](Packet& pkt, std::size_t) { return on_forward(pkt); });
}

HipFirewall::HitPair HipFirewall::canonical(const net::Ipv6Addr& a,
                                            const net::Ipv6Addr& b) {
  return a < b ? HitPair{a, b} : HitPair{b, a};
}

void HipFirewall::allow_pair(const net::Ipv6Addr& a, const net::Ipv6Addr& b) {
  allowed_pairs_.insert(canonical(a, b));
}

void HipFirewall::deny_pair(const net::Ipv6Addr& a, const net::Ipv6Addr& b) {
  denied_pairs_.insert(canonical(a, b));
}

// hipcheck:hot
bool HipFirewall::on_forward(Packet& pkt) {
  bool pass;
  switch (pkt.proto) {
    case IpProto::kHip:
      pass = handle_hip(pkt);
      break;
    case IpProto::kEsp: {
      if (pkt.payload.size() < 4) {
        pass = false;
        break;
      }
      const auto spi =
          static_cast<std::uint32_t>(crypto::read_be(pkt.payload, 0, 4));
      pass = allowed_spis_.count(spi) > 0 || default_accept_;
      break;
    }
    default:
      pass = default_accept_;
      break;
  }
  if (pass) {
    ++passed_;
  } else {
    ++dropped_;
    HIPCLOUD_LOG(sim::LogLevel::kDebug, node_->network().loop().now(),
                  "hipfw", node_->name() + " dropped " + pkt.describe());
  }
  return pass;
}

bool HipFirewall::handle_hip(const Packet& pkt) {
  HipMessage msg;
  try {
    msg = HipMessage::parse(pkt.payload);
  } catch (const std::runtime_error&) {
    return false;  // malformed control traffic never passes
  }
  const HitPair pair = canonical(msg.sender_hit, msg.receiver_hit);
  if (denied_pairs_.count(pair)) return false;
  if (!allowed_pairs_.count(pair) && !default_accept_) return false;

  // Learn the data-plane SPIs as they are negotiated: ESP_INFO carries
  // the SPI the *sender* of I2/R2 expects inbound traffic on.
  if (msg.type == MsgType::kI2 || msg.type == MsgType::kR2) {
    if (const auto* esp_info = msg.param(ParamType::kEspInfo);
        esp_info != nullptr && esp_info->size() == 5) {
      allowed_spis_.insert(
          static_cast<std::uint32_t>(crypto::read_be(*esp_info, 0, 4)));
    }
  }
  return true;
}

}  // namespace hipcloud::hip
