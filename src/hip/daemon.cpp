#include "hip/daemon.hpp"

#include <algorithm>
#include <string>

#include "sim/check.hpp"
#include "sim/log.hpp"

namespace hipcloud::hip {

using crypto::Bytes;
using crypto::BytesView;
using net::IpAddr;
using net::IpProto;
using net::Packet;

namespace {

constexpr std::size_t kMaxPendingPackets = 64;

// GCC 12's inliner fuses the v6 branch with the variant's smaller v4
// alternative and then reports spurious out-of-bounds reads from the
// 16-byte address array (-Warray-bounds / -Wstringop-overread depending
// on optimisation decisions); the access is guarded by is_v4().
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wstringop-overread"
Bytes encode_locator(const IpAddr& addr) {
  Bytes out;
  out.reserve(17);
  if (addr.is_v4()) {
    out.push_back(4);
    crypto::append_be(out, addr.v4().value(), 4);
  } else {
    out.push_back(6);
    out.insert(out.end(), addr.v6().bytes().begin(), addr.v6().bytes().end());
  }
  return out;
}
#pragma GCC diagnostic pop

std::optional<IpAddr> decode_locator(BytesView data) {
  if (data.empty()) return std::nullopt;
  if (data[0] == 4 && data.size() == 5) {
    return IpAddr(net::Ipv4Addr(
        static_cast<std::uint32_t>(crypto::read_be(data, 1, 4))));
  }
  if (data[0] == 6 && data.size() == 17) {
    return IpAddr(net::Ipv6Addr::from_bytes(data.subspan(1)));
  }
  return std::nullopt;
}

Bytes encode_puzzle(const Puzzle& puzzle) {
  Bytes out{puzzle.difficulty_k};
  crypto::append_be(out, puzzle.random_i, 8);
  return out;
}

std::optional<Puzzle> decode_puzzle(BytesView data) {
  if (data.size() != 9) return std::nullopt;
  Puzzle puzzle;
  puzzle.difficulty_k = data[0];
  puzzle.random_i = crypto::read_be(data, 1, 8);
  return puzzle;
}

}  // namespace

/// The L3 shim registered on the node: intercepts HIT/LSI destinations.
class HipDaemon::Shim : public net::L3Shim {
 public:
  explicit Shim(HipDaemon* daemon) : daemon_(daemon) {}

  bool outbound(Packet& pkt) override { return daemon_->shim_outbound(pkt); }
  bool inbound(Packet&) override { return false; }

  std::size_t path_overhead(const IpAddr& dst) const override {
    if (!dst.is_hit() && !dst.is_lsi()) return 0;
    std::size_t overhead = esp_overhead(daemon_->config_.esp_suite);
    // Resolve the peer to inspect the locator the tunnel actually uses.
    std::optional<net::Ipv6Addr> peer;
    if (dst.is_hit()) {
      peer = dst.v6();
    } else {
      peer = daemon_->peer_for_lsi(dst.v4());
    }
    if (peer) {
      const HipDaemon& daemon = *daemon_;
      if (const auto* assoc = daemon.find_assoc(*peer)) {
        // LSI destinations make TCP assume a 20-byte IPv4 header, but the
        // ESP packet travels under the locator's family.
        if (dst.is_lsi() && assoc->peer_locator.is_v6()) overhead += 20;
        // Teredo locators add the outer IPv4+UDP+tag encapsulation.
        if (assoc->peer_locator.is_teredo()) overhead += 29;
      }
    }
    return overhead;
  }

 private:
  HipDaemon* daemon_;
};

HipDaemon::HipDaemon(net::Node* node, HostIdentity identity, HipConfig config)
    : node_(node), identity_(std::move(identity)), config_(config),
      drbg_(crypto::HmacDrbg(
          crypto::concat({crypto::to_bytes(node->name()),
                          crypto::BytesView(identity_.hit().bytes().data(),
                                            16)}))),
      dh_(config.dh_group, drbg_) {
  puzzle_i_ = crypto::read_be(drbg_.generate(8), 0, 8);

  // Own the HIT and local LSI as virtual addresses.
  const std::size_t hit_iface = node_->add_virtual_interface();
  node_->add_address(hit_iface, identity_.hit());
  node_->add_address(hit_iface, config_.local_lsi);

  node_->add_shim(std::make_shared<Shim>(this));
  node_->register_protocol(IpProto::kEsp, [this](Packet&& pkt) {
    on_esp_packet(std::move(pkt));
  });
  node_->register_protocol(IpProto::kHip, [this](Packet&& pkt) {
    on_hip_packet(std::move(pkt));
  });

  // Locator-change detection: a new routable address on a link-backed
  // interface means the host moved (e.g. a migration landed) — announce
  // it to every established peer via the UPDATE exchange. Deferred one
  // event so the caller finishes installing routes for the new address
  // before the UPDATE tries to leave through them.
  node_->on_address_change(
      [this](const IpAddr& addr, std::size_t iface, bool added) {
        if (!added || addr.is_hit() || addr.is_lsi()) return;
        if (node_->link_at(iface) == nullptr) return;  // virtual iface
        const bool scheduled = readdress_pending_.has_value();
        readdress_pending_ = addr;
        if (scheduled) return;
        node_->network().loop().schedule(0, [this] {
          if (!readdress_pending_) return;
          const IpAddr locator = *readdress_pending_;
          readdress_pending_.reset();
          move_to(locator);
        });
      });
}

// ---------------------------------------------------------------------------
// Peer book-keeping

net::Ipv4Addr HipDaemon::add_peer(const net::Ipv6Addr& peer_hit,
                                  const IpAddr& locator) {
  Association& assoc = assoc_for(peer_hit);
  assoc.peer_locator = locator;
  return *lsi_for_peer(peer_hit);
}

HipDaemon::Association& HipDaemon::assoc_for(const net::Ipv6Addr& peer_hit) {
  auto it = assocs_.find(peer_hit);
  if (it == assocs_.end()) {
    it = assocs_.emplace(peer_hit, Association{}).first;
    it->second.peer_hit = peer_hit;
    // Assign an LSI for IPv4 applications.
    if (!hit_to_lsi_.count(peer_hit)) {
      const net::Ipv4Addr lsi(1, 0, 0, next_lsi_octet_++);
      hit_to_lsi_[peer_hit] = lsi;
      lsi_to_hit_[lsi] = peer_hit;
    }
  }
  return it->second;
}

HipDaemon::Association* HipDaemon::find_assoc(const net::Ipv6Addr& peer_hit) {
  const auto it = assocs_.find(peer_hit);
  return it == assocs_.end() ? nullptr : &it->second;
}

const HipDaemon::Association* HipDaemon::find_assoc(
    const net::Ipv6Addr& peer_hit) const {
  const auto it = assocs_.find(peer_hit);
  return it == assocs_.end() ? nullptr : &it->second;
}

bool HipDaemon::seek_esp_seq(const net::Ipv6Addr& peer_hit,
                             std::uint32_t seq) {
  Association* assoc = find_assoc(peer_hit);
  if (assoc == nullptr || !assoc->sa_out) return false;
  assoc->sa_out->seek_seq(seq);
  return true;
}

std::optional<net::Ipv6Addr> HipDaemon::peer_for_lsi(net::Ipv4Addr lsi) const {
  const auto it = lsi_to_hit_.find(lsi);
  if (it == lsi_to_hit_.end()) return std::nullopt;
  return it->second;
}

std::optional<net::Ipv4Addr> HipDaemon::lsi_for_peer(
    const net::Ipv6Addr& hit) const {
  const auto it = hit_to_lsi_.find(hit);
  if (it == hit_to_lsi_.end()) return std::nullopt;
  return it->second;
}

bool HipDaemon::is_authorized(const net::Ipv6Addr& hit) const {
  if (denied_.count(hit)) return false;
  if (allowed_.count(hit)) return true;
  return default_accept_;
}

AssocState HipDaemon::state(const net::Ipv6Addr& peer_hit) const {
  const auto it = assocs_.find(peer_hit);
  return it == assocs_.end() ? AssocState::kUnassociated : it->second.state;
}

// ---------------------------------------------------------------------------
// State-machine invariants (hipcheck)

const char* assoc_state_name(AssocState s) {
  switch (s) {
    case AssocState::kUnassociated:
      return "UNASSOCIATED";
    case AssocState::kI1Sent:
      return "I1-SENT";
    case AssocState::kI2Sent:
      return "I2-SENT";
    case AssocState::kEstablished:
      return "ESTABLISHED";
    case AssocState::kClosing:
      return "CLOSING";
    case AssocState::kFailed:
      return "FAILED";
  }
  return "?";
}

bool legal_assoc_transition(AssocState from, AssocState to) {
  switch (from) {
    case AssocState::kUnassociated:
      // Initiator starts the BEX; a responder (stateless until I2) jumps
      // straight to ESTABLISHED when a valid I2 arrives.
      return to == AssocState::kI1Sent || to == AssocState::kEstablished;
    case AssocState::kI1Sent:
      // Valid R1 advances the ladder; the retry timer restarts from I1;
      // signature/DH failure or retry exhaustion fails the association.
      // Simultaneous initiation (both sides sent I1, the I1s crossed in
      // flight): the peer's I2 can arrive while our own I1 is still
      // outstanding, and we establish as responder directly.
      return to == AssocState::kI1Sent || to == AssocState::kI2Sent ||
             to == AssocState::kEstablished || to == AssocState::kFailed;
    case AssocState::kI2Sent:
      // Valid R2 establishes; the retry timer restarts from I1 (the
      // responder is stateless until I2); retry exhaustion fails.
      return to == AssocState::kI1Sent || to == AssocState::kEstablished ||
             to == AssocState::kFailed;
    case AssocState::kEstablished:
      // Dead-peer reset / peer re-BEX tears back to UNASSOCIATED; local
      // CLOSE starts teardown. Rekey and readdress stay ESTABLISHED.
      return to == AssocState::kUnassociated || to == AssocState::kClosing;
    case AssocState::kClosing:
      // Traffic may legally re-open before the CLOSE_ACK lands (the ack
      // erases the association rather than transitioning it).
      return to == AssocState::kI1Sent;
    case AssocState::kFailed:
      // Fresh traffic retries the BEX.
      return to == AssocState::kI1Sent;
  }
  return false;
}

void HipDaemon::set_state(Association& assoc, AssocState to) {
  HIPCLOUD_AUDIT(legal_assoc_transition(assoc.state, to),
                 std::string("illegal HIP association transition ") +
                     assoc_state_name(assoc.state) + " -> " +
                     assoc_state_name(to) + " for peer " +
                     assoc.peer_hit.to_string());
  assoc.state = to;
  audit_association(assoc);
}

void HipDaemon::audit_association(const Association& assoc) const {
#ifdef HIPCLOUD_AUDIT_ENABLED
  if (assoc.state == AssocState::kEstablished) {
    HIPCLOUD_AUDIT(assoc.sa_out != nullptr && assoc.sa_in != nullptr,
                   "ESTABLISHED association without live SAs");
    HIPCLOUD_AUDIT(assoc.spi_in != 0 && assoc.spi_out != 0,
                   "ESTABLISHED association with unassigned SPIs");
    const auto it = spi_to_peer_.find(assoc.spi_in);
    HIPCLOUD_AUDIT(it != spi_to_peer_.end() && it->second == assoc.peer_hit,
                   "inbound SPI not routed to this association");
  } else {
    HIPCLOUD_AUDIT(!assoc.rekey_in_flight,
                   "rekey in flight outside ESTABLISHED");
  }
  // Old-SA drain lifecycle: the superseded inbound SA and its SPI are a
  // unit, and while one exists its grace (drain) timer must be armed —
  // otherwise the stale SPI would accept traffic forever.
  HIPCLOUD_AUDIT((assoc.old_sa_in != nullptr) == (assoc.old_spi_in != 0),
                 "old-SA/old-SPI pair out of sync");
  if (assoc.old_sa_in != nullptr) {
    HIPCLOUD_AUDIT(assoc.grace_armed, "draining old SA without grace timer");
    const auto it = spi_to_peer_.find(assoc.old_spi_in);
    HIPCLOUD_AUDIT(it != spi_to_peer_.end() && it->second == assoc.peer_hit,
                   "draining SPI not routed to this association");
  }
#else
  (void)assoc;
#endif
}

void HipDaemon::debug_force_state(const net::Ipv6Addr& peer_hit,
                                  AssocState to) {
  set_state(assoc_for(peer_hit), to);
}

// ---------------------------------------------------------------------------
// Cost helpers

void HipDaemon::charge(double cycles, std::function<void()> then) {
  node_->cpu().run(cycles, std::move(then));
}

double HipDaemon::sign_cycles() const {
  if (identity_.algorithm() == HiAlgorithm::kEcdsa) {
    return config_.costs.ecdsa_p256_sign_cycles;
  }
  return config_.costs.rsa_sign_cycles(identity_.rsa_bits());
}

double HipDaemon::verify_cycles(BytesView peer_hi) const {
  if (!peer_hi.empty() &&
      static_cast<HiAlgorithm>(peer_hi[0]) == HiAlgorithm::kEcdsa) {
    return config_.costs.ecdsa_p256_verify_cycles;
  }
  // Approximate modulus size from the encoding length.
  return config_.costs.rsa_verify_cycles(peer_hi.size() > 160 ? 2048 : 1024);
}

double HipDaemon::dh_cycles() const { return config_.costs.dh_modp1536_cycles; }

double HipDaemon::esp_cycles(std::size_t bytes) const {
  // NULL suite authenticates only — no AES pass.
  double per_byte = config_.costs.sha256_cycles_per_byte;
  if (config_.esp_suite != EspSuite::kNullSha256) {
    per_byte += config_.costs.aes_cycles_per_byte;
  }
  return config_.costs.packet_overhead_cycles +
         static_cast<double>(bytes) * per_byte;
}

std::uint32_t HipDaemon::fresh_spi() {
  for (;;) {
    const auto spi =
        static_cast<std::uint32_t>(crypto::read_be(drbg_.generate(4), 0, 4));
    if (spi != 0 && !spi_to_peer_.count(spi)) return spi;
  }
}

// ---------------------------------------------------------------------------
// Datapath

bool HipDaemon::shim_outbound(Packet& pkt) {
  if (!pkt.dst.is_hit() && !pkt.dst.is_lsi()) return false;
  if (node_->owns_address(pkt.dst)) return false;  // loopback to self

  net::Ipv6Addr peer_hit;
  if (pkt.dst.is_hit()) {
    peer_hit = pkt.dst.v6();
  } else {
    const auto mapped = peer_for_lsi(pkt.dst.v4());
    if (!mapped) {
      HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(),
                    "hip", node_->name() + ": no peer for LSI " +
                               pkt.dst.to_string());
      return true;  // consumed: unroutable LSI
    }
    peer_hit = *mapped;
  }

  Association& assoc = assoc_for(peer_hit);
  if (assoc.state == AssocState::kEstablished) {
    esp_send(assoc, std::move(pkt));
    return true;
  }
  if (assoc.pending.size() < kMaxPendingPackets) {
    assoc.pending.push_back(std::move(pkt));
  } else {
    ++stats_.pending_dropped;
    if (!assoc.pending_warn_logged) {
      assoc.pending_warn_logged = true;
      HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(),
                    "hip",
                    node_->name() + ": pending queue full for " +
                        peer_hit.to_string() + ", dropping outbound");
    }
  }
  if (assoc.state == AssocState::kUnassociated ||
      assoc.state == AssocState::kFailed) {
    initiate(peer_hit);
  }
  return true;
}

void HipDaemon::esp_send(Association& assoc, Packet&& pkt) {
  const std::uint8_t addr_mode =
      pkt.dst.is_lsi() ? EspSa::kModeLsi : EspSa::kModeHit;
  const double cycles =
      esp_cycles(pkt.payload.size()) +
      (addr_mode == EspSa::kModeLsi ? config_.costs.lsi_translation_cycles
                                    : config_.costs.hit_processing_cycles);
  // Stage the packet on the coalescing queue; the association object may
  // move (std::map is stable, but the assoc may be erased), so the job
  // re-finds it by HIT. The per-packet CPU charge is unchanged — only the
  // ICV computation is deferred into a batch at flush time.
  EspOutJob job;
  job.peer_hit = assoc.peer_hit;
  job.inner_proto = static_cast<std::uint8_t>(pkt.proto);
  job.addr_mode = addr_mode;
  job.buf = std::move(pkt.payload);
  esp_out_queue_.push_back(std::move(job));
  charge(cycles, [this]() {
    // CPU completions pop 1:1 and FIFO against the charges above, so the
    // front job is always this callback's packet.
    if (esp_out_queue_.empty()) return;
    if (!esp_out_queue_.front().protected_ && !esp_out_queue_.front().skipped) {
      // First completion of a burst: everything staged in the meantime
      // (the whole event tick's worth) gets its ICVs in one batch.
      flush_esp_out_queue();
    }
    EspOutJob done = std::move(esp_out_queue_.front());
    esp_out_queue_.pop_front();
    if (done.skipped) return;  // association went away before the flush
    Association* found = find_assoc(done.peer_hit);
    if (found == nullptr || found->state != AssocState::kEstablished) return;
    Packet out;
    out.dst = found->peer_locator;
    const auto src = node_->select_source(out.dst);
    if (!src) return;
    out.src = *src;
    out.proto = IpProto::kEsp;
    out.payload = std::move(done.buf);
    if (out.payload.empty()) {
      // Outbound SA exhausted its 32-bit sequence space. The packet is
      // lost (transport retransmits); force a rekey so the next ones
      // aren't.
      ++stats_.sa_exhausted_drops;
      start_rekey(*found);
      return;
    }
    out.stamp_l3_overhead();
    ++stats_.esp_packets_out;
    stats_.esp_bytes_out += out.payload.size();
    node_->send(std::move(out));
    if (config_.esp_rekey_threshold != 0 &&
        found->sa_out->remaining_seq() <= config_.esp_rekey_threshold) {
      start_rekey(*found);
    }
  });
}

void HipDaemon::flush_esp_out_queue() {
  // Protect every still-unprotected job, grouped per SA but in queue
  // order within each group — sequence numbers and IVs land exactly as
  // sequential protect_packet() calls would have assigned them.
  for (std::size_t i = 0; i < esp_out_queue_.size(); ++i) {
    EspOutJob& head = esp_out_queue_[i];
    if (head.protected_ || head.skipped) continue;
    Association* assoc = find_assoc(head.peer_hit);
    if (assoc == nullptr || assoc->state != AssocState::kEstablished ||
        assoc->sa_out == nullptr) {
      head.skipped = true;
      continue;
    }
    std::vector<EspSa::ProtectJob> batch;
    std::vector<std::size_t> positions;
    batch.reserve(esp_out_queue_.size() - i);
    positions.reserve(esp_out_queue_.size() - i);
    for (std::size_t j = i; j < esp_out_queue_.size(); ++j) {
      EspOutJob& job = esp_out_queue_[j];
      if (job.protected_ || job.skipped || job.peer_hit != head.peer_hit) {
        continue;
      }
      batch.push_back(
          {job.inner_proto, job.addr_mode, std::move(job.buf)});
      positions.push_back(j);
    }
    assoc->sa_out->protect_batch(batch);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      esp_out_queue_[positions[k]].buf = std::move(batch[k].buf);
      esp_out_queue_[positions[k]].protected_ = true;
    }
  }
}

EspSa* HipDaemon::resolve_in_sa(Association* assoc, std::uint32_t spi) {
  if (assoc == nullptr || assoc->sa_in == nullptr) return nullptr;
  // Dispatch by SPI: packets protected just before a rekey still carry
  // the superseded SPI and decode via the grace-period SA.
  if (spi == assoc->sa_in->spi()) return assoc->sa_in.get();
  if (assoc->old_sa_in != nullptr && spi == assoc->old_spi_in) {
    return assoc->old_sa_in.get();
  }
  return nullptr;
}

void HipDaemon::flush_esp_in_queue() {
  // Unwrap every still-wrapped job, grouped per resolved inbound SA but
  // in queue order within each group — queue order is charge-completion
  // order, so replay-window updates and drop decisions land exactly as
  // sequential unprotect_packet() calls would have made them.
  for (std::size_t i = 0; i < esp_in_queue_.size(); ++i) {
    EspInJob& head = esp_in_queue_[i];
    if (head.unprotected || head.skipped) continue;
    EspSa* head_sa = resolve_in_sa(find_assoc(head.peer_hit), head.spi);
    if (head_sa == nullptr) {
      head.skipped = true;
      continue;
    }
    std::vector<EspSa::UnprotectJob> batch;
    std::vector<std::size_t> positions;
    batch.reserve(esp_in_queue_.size() - i);
    positions.reserve(esp_in_queue_.size() - i);
    for (std::size_t j = i; j < esp_in_queue_.size(); ++j) {
      EspInJob& job = esp_in_queue_[j];
      if (job.unprotected || job.skipped) continue;
      if (j > i &&
          resolve_in_sa(find_assoc(job.peer_hit), job.spi) != head_sa) {
        continue;
      }
      batch.push_back({std::move(job.wire), std::nullopt});
      positions.push_back(j);
    }
    head_sa->unprotect_batch(batch);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      esp_in_queue_[positions[k]].result = std::move(batch[k].result);
      esp_in_queue_[positions[k]].unprotected = true;
    }
  }
}

void HipDaemon::on_esp_packet(Packet&& pkt) {
  if (pkt.payload.size() < 4) return;
  const auto spi =
      static_cast<std::uint32_t>(crypto::read_be(pkt.payload, 0, 4));
  const auto it = spi_to_peer_.find(spi);
  if (it == spi_to_peer_.end()) return;
  const net::Ipv6Addr peer_hit = it->second;
  const double cycles = esp_cycles(pkt.payload.size());
  // Stage on the receive coalescing queue; the per-packet CPU charge is
  // unchanged — only the ICV verification is deferred into a batch at
  // flush time, so a tick's worth of inbound datagrams shares one
  // multi-buffer HMAC pass.
  EspInJob job;
  job.peer_hit = peer_hit;
  job.spi = spi;
  job.wire_size = pkt.payload.size();
  job.wire = std::move(pkt.payload);
  esp_in_queue_.push_back(std::move(job));
  charge(cycles, [this]() {
    // CPU completions pop 1:1 and FIFO against the charges above, so the
    // front job is always this callback's packet.
    if (esp_in_queue_.empty()) return;
    if (!esp_in_queue_.front().unprotected && !esp_in_queue_.front().skipped) {
      flush_esp_in_queue();
    }
    EspInJob done = std::move(esp_in_queue_.front());
    esp_in_queue_.pop_front();
    if (done.skipped) return;
    Association* found = find_assoc(done.peer_hit);
    if (found == nullptr || found->sa_in == nullptr) return;
    if (!done.result) {
      ++stats_.auth_failures;
      return;
    }
    found->last_heard = node_->network().loop().now();
    ++stats_.esp_packets_in;
    stats_.esp_bytes_in += done.wire_size;

    Packet out;
    out.proto = static_cast<IpProto>(done.result->inner_proto);
    if (done.result->addr_mode == EspSa::kModeLsi) {
      // Charge the extra HIT<->LSI rewrite the paper blames for HIP's
      // deficit vs SSL.
      node_->cpu().charge(config_.costs.lsi_translation_cycles);
      out.src = *lsi_for_peer(done.peer_hit);
      out.dst = config_.local_lsi;
    } else {
      out.src = done.peer_hit;
      out.dst = identity_.hit();
    }
    out.payload = std::move(done.result->payload);
    out.stamp_l3_overhead();
    node_->deliver(std::move(out), 0);
  });
}

// ---------------------------------------------------------------------------
// Control plane

void HipDaemon::send_control(const HipMessage& msg, const IpAddr& dst,
                             std::optional<IpAddr> src) {
  Packet pkt;
  pkt.dst = dst;
  if (src) {
    pkt.src = *src;
  } else {
    const auto selected = node_->select_source(dst);
    if (!selected) {
      HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(),
                    "hip", node_->name() + ": no source for control to " +
                               dst.to_string());
      return;
    }
    pkt.src = *selected;
  }
  pkt.proto = IpProto::kHip;
  pkt.payload = msg.serialize();
  pkt.stamp_l3_overhead();
  HIPCLOUD_LOG(sim::LogLevel::kDebug, node_->network().loop().now(), "hip",
               node_->name() + " tx " + msg.describe());
  node_->send(std::move(pkt));
}

void HipDaemon::initiate(const net::Ipv6Addr& peer_hit) {
  Association& assoc = assoc_for(peer_hit);
  if (assoc.state == AssocState::kI1Sent ||
      assoc.state == AssocState::kI2Sent ||
      assoc.state == AssocState::kEstablished) {
    return;
  }
  if (assoc.peer_locator == IpAddr{}) {
    HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(),
                  "hip", node_->name() + ": no locator for " +
                             peer_hit.to_string());
    return;
  }
  set_state(assoc, AssocState::kI1Sent);
  assoc.retries = 0;
  assoc.bex_start = node_->network().loop().now();
  ++stats_.bex_initiated;
  send_i1(assoc);
}

void HipDaemon::send_i1(Association& assoc) {
  HipMessage i1;
  i1.type = MsgType::kI1;
  i1.sender_hit = identity_.hit();
  i1.receiver_hit = assoc.peer_hit;
  send_control(i1, assoc.peer_locator);
  arm_retry(assoc);
}

void HipDaemon::arm_retry(Association& assoc) {
  cancel_retry(assoc);
  const net::Ipv6Addr peer = assoc.peer_hit;
  assoc.retry_timer = node_->network().loop().schedule(
      config_.bex_retry, [this, peer] {
        Association* a = find_assoc(peer);
        if (a == nullptr) return;
        a->retry_armed = false;
        if (a->state != AssocState::kI1Sent &&
            a->state != AssocState::kI2Sent) {
          return;
        }
        if (++a->retries > config_.bex_max_retries) {
          fail_association(*a);
          return;
        }
        // Restart from I1; the responder is stateless until I2.
        set_state(*a, AssocState::kI1Sent);
        send_i1(*a);
      });
  assoc.retry_armed = true;
}

void HipDaemon::cancel_retry(Association& assoc) {
  if (assoc.retry_armed) {
    node_->network().loop().cancel(assoc.retry_timer);
    assoc.retry_armed = false;
  }
}

void HipDaemon::fail_association(Association& assoc) {
  set_state(assoc, AssocState::kFailed);
  if (!assoc.pending.empty()) {
    stats_.pending_failed += assoc.pending.size();
    HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(),
                  "hip",
                  node_->name() + ": dropping " +
                      std::to_string(assoc.pending.size()) +
                      " pending packets for " + assoc.peer_hit.to_string());
  }
  assoc.pending.clear();
  cancel_retry(assoc);
  ++stats_.bex_failed;
  HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(), "hip",
                node_->name() + ": BEX with " + assoc.peer_hit.to_string() +
                    " failed");
}

std::uint8_t HipDaemon::current_puzzle_difficulty() const {
  std::uint8_t k = config_.puzzle_difficulty;
  if (config_.adaptive_puzzle && !recent_r1_times_.empty()) {
    const double rate = static_cast<double>(recent_r1_times_.size());
    double extra = 0;
    double threshold = config_.adaptive_threshold_rps;
    while (rate > threshold && extra < 10) {
      threshold *= 2;
      ++extra;
    }
    k = static_cast<std::uint8_t>(std::min(30.0, k + extra));
  }
  return k;
}

void HipDaemon::note_r1_sent() {
  const sim::Time now = node_->network().loop().now();
  recent_r1_times_.push_back(now);
  while (!recent_r1_times_.empty() &&
         recent_r1_times_.front() < now - sim::kSecond) {
    recent_r1_times_.pop_front();
  }
  ++stats_.r1_sent;
}

HipMessage HipDaemon::build_r1(const net::Ipv6Addr& initiator_hit) {
  HipMessage r1;
  r1.type = MsgType::kR1;
  r1.sender_hit = identity_.hit();
  r1.receiver_hit = initiator_hit;
  Puzzle puzzle;
  puzzle.difficulty_k = current_puzzle_difficulty();
  puzzle.random_i = puzzle_i_;
  r1.set_param(ParamType::kPuzzle, encode_puzzle(puzzle));
  Bytes dh_param{static_cast<std::uint8_t>(config_.dh_group)};
  dh_param.insert(dh_param.end(), dh_.public_value().begin(),
                  dh_.public_value().end());
  r1.set_param(ParamType::kDiffieHellman, std::move(dh_param));
  r1.set_param(ParamType::kHipCipher,
               Bytes{static_cast<std::uint8_t>(config_.esp_suite)});
  r1.set_param(ParamType::kHostId, identity_.public_encoding());
  r1.set_param(ParamType::kSignature, identity_.sign(r1.signed_view()));
  return r1;
}

void HipDaemon::on_hip_packet(Packet&& pkt) {
  HipMessage msg;
  try {
    msg = HipMessage::parse(pkt.payload);
  } catch (const std::runtime_error&) {
    return;
  }
  HIPCLOUD_LOG(sim::LogLevel::kDebug, node_->network().loop().now(), "hip",
               node_->name() + " rx " + msg.describe());

  // Rendezvous relay: control message for someone we front.
  if (msg.receiver_hit != identity_.hit()) {
    if (rvs_server_ && msg.type == MsgType::kI1) {
      const auto it = rvs_registrations_.find(msg.receiver_hit);
      if (it != rvs_registrations_.end()) {
        Packet relayed = pkt;
        relayed.dst = it->second;
        relayed.ttl = 64;
        // The initiator's locator stays in pkt.src so the responder can
        // answer directly (RFC 5204 relay semantics).
        node_->send_raw(std::move(relayed));
        return;
      }
    }
    return;  // not for us, not relayable
  }

  switch (msg.type) {
    case MsgType::kI1:
      handle_i1(msg, pkt);
      break;
    case MsgType::kR1:
      handle_r1(msg, pkt);
      break;
    case MsgType::kI2:
      handle_i2(msg, pkt);
      break;
    case MsgType::kR2:
      handle_r2(msg, pkt);
      break;
    case MsgType::kUpdate:
      handle_update(msg, pkt);
      break;
    case MsgType::kClose:
      handle_close(msg);
      break;
    case MsgType::kCloseAck:
      handle_close_ack(msg);
      break;
    case MsgType::kRvsRegister:
      handle_rvs_register(msg, pkt);
      break;
    default:
      break;
  }
}

void HipDaemon::handle_i1(const HipMessage& msg, const Packet& pkt) {
  if (!is_authorized(msg.sender_hit)) {
    ++stats_.acl_rejects;
    return;
  }
  // Simultaneous BEX tie-break (RFC 5201 §4.4.2): the larger HIT stays
  // initiator; the smaller aborts its own exchange and responds.
  Association* existing = find_assoc(msg.sender_hit);
  if (existing != nullptr && existing->state == AssocState::kI1Sent &&
      identity_.hit() > msg.sender_hit) {
    return;  // we out-rank them; our exchange proceeds
  }
  // Stateless response: R1 is precomputed in real HIP deployments, so we
  // charge only light processing, not a signature (DoS resistance).
  note_r1_sent();
  const HipMessage r1 = build_r1(msg.sender_hit);
  charge(config_.costs.packet_overhead_cycles,
         [this, r1, src = pkt.src] { send_control(r1, src); });
}

void HipDaemon::handle_r1(const HipMessage& msg, const Packet& pkt) {
  Association* assoc = find_assoc(msg.sender_hit);
  if (assoc == nullptr || assoc->state != AssocState::kI1Sent) return;

  const Bytes* peer_hi = msg.param(ParamType::kHostId);
  const Bytes* dh_param = msg.param(ParamType::kDiffieHellman);
  const Bytes* puzzle_param = msg.param(ParamType::kPuzzle);
  const Bytes* signature = msg.param(ParamType::kSignature);
  if (peer_hi == nullptr || dh_param == nullptr || puzzle_param == nullptr ||
      signature == nullptr || dh_param->size() < 2) {
    return;
  }
  // HIT must be the hash of the offered HI — the identity check that
  // rules out impersonation.
  if (HostIdentity::derive_hit(*peer_hi) != msg.sender_hit) {
    ++stats_.auth_failures;
    return;
  }
  if (!is_authorized(msg.sender_hit)) {
    ++stats_.acl_rejects;
    return;
  }
  const auto puzzle = decode_puzzle(*puzzle_param);
  if (!puzzle) return;

  // Update locator to wherever R1 actually came from (rendezvous case).
  assoc->peer_locator = pkt.src;
  assoc->peer_hi = *peer_hi;
  cancel_retry(*assoc);

  // Verify R1 signature, solve the puzzle, run DH — all charged.
  const bool sig_ok =
      HostIdentity::verify(*peer_hi, msg.signed_view(), *signature);
  if (!sig_ok) {
    ++stats_.auth_failures;
    fail_association(*assoc);
    return;
  }
  const Puzzle::Solution solution =
      puzzle->solve(identity_.hit(), msg.sender_hit);
  Bytes dh_secret;
  try {
    dh_secret = dh_.compute_shared(BytesView(*dh_param).subspan(1));
  } catch (const std::runtime_error&) {
    fail_association(*assoc);
    return;
  }
  const double cycles =
      verify_cycles(*peer_hi) +
      static_cast<double>(solution.attempts) * config_.costs.puzzle_hash_cycles +
      dh_cycles() + sign_cycles();

  const net::Ipv6Addr peer_hit = msg.sender_hit;
  const Bytes puzzle_bytes = *puzzle_param;
  charge(cycles, [this, peer_hit, solution, dh_secret, puzzle_bytes] {
    Association* found = find_assoc(peer_hit);
    if (found == nullptr || found->state != AssocState::kI1Sent) return;
    found->keymat = Keymat::derive(dh_secret, identity_.hit(), peer_hit);
    found->spi_in = fresh_spi();
    spi_to_peer_[found->spi_in] = peer_hit;

    HipMessage i2;
    i2.type = MsgType::kI2;
    i2.sender_hit = identity_.hit();
    i2.receiver_hit = peer_hit;
    Bytes sol = puzzle_bytes;
    crypto::append_be(sol, solution.j, 8);
    i2.set_param(ParamType::kSolution, std::move(sol));
    Bytes dh_payload{static_cast<std::uint8_t>(config_.dh_group)};
    dh_payload.insert(dh_payload.end(), dh_.public_value().begin(),
                      dh_.public_value().end());
    i2.set_param(ParamType::kDiffieHellman, std::move(dh_payload));
    i2.set_param(ParamType::kHostId, identity_.public_encoding());
    Bytes esp_info;
    crypto::append_be(esp_info, found->spi_in, 4);
    esp_info.push_back(static_cast<std::uint8_t>(config_.esp_suite));
    i2.set_param(ParamType::kEspInfo, std::move(esp_info));
    i2.set_param(ParamType::kSignature, identity_.sign(i2.signed_view()));
    i2.attach_hmac(found->keymat.hip_hmac_out);

    set_state(*found, AssocState::kI2Sent);
    send_control(i2, found->peer_locator);
    arm_retry(*found);
  });
}

void HipDaemon::handle_i2(const HipMessage& msg, const Packet& pkt) {
  if (!is_authorized(msg.sender_hit)) {
    ++stats_.acl_rejects;
    return;
  }
  const Bytes* peer_hi = msg.param(ParamType::kHostId);
  const Bytes* dh_param = msg.param(ParamType::kDiffieHellman);
  const Bytes* solution = msg.param(ParamType::kSolution);
  const Bytes* signature = msg.param(ParamType::kSignature);
  const Bytes* esp_info = msg.param(ParamType::kEspInfo);
  if (peer_hi == nullptr || dh_param == nullptr || solution == nullptr ||
      signature == nullptr || esp_info == nullptr || dh_param->size() < 2 ||
      solution->size() != 17 || esp_info->size() != 5) {
    return;
  }
  if (HostIdentity::derive_hit(*peer_hi) != msg.sender_hit) {
    ++stats_.auth_failures;
    return;
  }
  // Puzzle check: one hash, cheap — done before the expensive work.
  const auto puzzle = decode_puzzle(BytesView(*solution).subspan(0, 9));
  const std::uint64_t j = crypto::read_be(*solution, 9, 8);
  if (!puzzle || puzzle->random_i != puzzle_i_ ||
      !puzzle->verify(msg.sender_hit, identity_.hit(), j)) {
    return;  // bogus solution: drop silently, costing us almost nothing
  }

  Bytes dh_secret;
  try {
    dh_secret = dh_.compute_shared(BytesView(*dh_param).subspan(1));
  } catch (const std::runtime_error&) {
    return;
  }
  const Keymat keymat =
      Keymat::derive(dh_secret, identity_.hit(), msg.sender_hit);
  if (!msg.check_hmac(keymat.hip_hmac_in)) {
    ++stats_.auth_failures;
    return;
  }
  if (!HostIdentity::verify(*peer_hi, msg.signed_view(), *signature)) {
    ++stats_.auth_failures;
    return;
  }

  const double cycles = dh_cycles() + verify_cycles(*peer_hi) + sign_cycles();
  const net::Ipv6Addr peer_hit = msg.sender_hit;
  const auto peer_spi =
      static_cast<std::uint32_t>(crypto::read_be(*esp_info, 0, 4));
  const auto suite = static_cast<EspSuite>((*esp_info)[4]);
  const Bytes hi_copy = *peer_hi;
  const IpAddr initiator_locator = pkt.src;
  charge(cycles, [this, peer_hit, peer_spi, suite, keymat, hi_copy,
                  initiator_locator] {
    Association& assoc = assoc_for(peer_hit);
    const bool duplicate_i2 = assoc.state == AssocState::kEstablished &&
                              assoc.spi_out == peer_spi;
    if (duplicate_i2) {
      // Same exchange, our R2 was lost: re-send R2 idempotently.
    } else {
      // Fresh exchange — including a re-BEX from a peer that tore down
      // its side (crash, dead-peer timeout) while we still held the old
      // association. Retire every stale SA/SPI before installing anew;
      // reusing the old inbound SA would reject the restarted peer's
      // low sequence numbers as replays.
      if (assoc.state == AssocState::kEstablished) {
        cancel_recovery_timers(assoc);
        if (assoc.sa_in) spi_to_peer_.erase(assoc.spi_in);
        if (assoc.old_sa_in) spi_to_peer_.erase(assoc.old_spi_in);
        assoc.old_sa_in.reset();
        assoc.old_spi_in = 0;
        assoc.rekey_generation = 0;
        assoc.rekey_in_flight = false;
        set_state(assoc, AssocState::kUnassociated);
      }
      assoc.peer_hi = hi_copy;
      assoc.peer_locator = initiator_locator;
      assoc.keymat = keymat;
      assoc.spi_out = peer_spi;
      assoc.spi_in = fresh_spi();
      spi_to_peer_[assoc.spi_in] = peer_hit;
      assoc.sa_out = std::make_unique<EspSa>(peer_spi, suite,
                                             keymat.esp_enc_out,
                                             keymat.esp_auth_out);
      assoc.sa_in = std::make_unique<EspSa>(assoc.spi_in, suite,
                                            keymat.esp_enc_in,
                                            keymat.esp_auth_in);
    }
    HipMessage r2;
    r2.type = MsgType::kR2;
    r2.sender_hit = identity_.hit();
    r2.receiver_hit = peer_hit;
    Bytes esp_info_out;
    crypto::append_be(esp_info_out, assoc.spi_in, 4);
    esp_info_out.push_back(static_cast<std::uint8_t>(assoc.sa_in->suite()));
    r2.set_param(ParamType::kEspInfo, std::move(esp_info_out));
    r2.set_param(ParamType::kSignature, identity_.sign(r2.signed_view()));
    r2.attach_hmac(assoc.keymat.hip_hmac_out);
    send_control(r2, assoc.peer_locator);

    if (assoc.state != AssocState::kEstablished) {
      establish(assoc, 0);  // responder-side latency tracked by initiator
    }
  });
}

void HipDaemon::handle_r2(const HipMessage& msg, const Packet& pkt) {
  Association* assoc = find_assoc(msg.sender_hit);
  if (assoc == nullptr || assoc->state != AssocState::kI2Sent) return;
  const Bytes* esp_info = msg.param(ParamType::kEspInfo);
  const Bytes* signature = msg.param(ParamType::kSignature);
  if (esp_info == nullptr || signature == nullptr || esp_info->size() != 5) {
    return;
  }
  if (!msg.check_hmac(assoc->keymat.hip_hmac_in)) {
    ++stats_.auth_failures;
    return;
  }
  if (!HostIdentity::verify(assoc->peer_hi, msg.signed_view(), *signature)) {
    ++stats_.auth_failures;
    return;
  }
  cancel_retry(*assoc);
  assoc->peer_locator = pkt.src;

  const net::Ipv6Addr peer_hit = msg.sender_hit;
  const auto peer_spi =
      static_cast<std::uint32_t>(crypto::read_be(*esp_info, 0, 4));
  const auto suite = static_cast<EspSuite>((*esp_info)[4]);
  charge(verify_cycles(assoc->peer_hi), [this, peer_hit, peer_spi, suite] {
    Association* found = find_assoc(peer_hit);
    if (found == nullptr || found->state != AssocState::kI2Sent) return;
    found->spi_out = peer_spi;
    found->sa_out = std::make_unique<EspSa>(
        peer_spi, suite, found->keymat.esp_enc_out, found->keymat.esp_auth_out);
    found->sa_in = std::make_unique<EspSa>(
        found->spi_in, suite, found->keymat.esp_enc_in,
        found->keymat.esp_auth_in);
    establish(*found,
              node_->network().loop().now() - found->bex_start);
  });
}

void HipDaemon::establish(Association& assoc, sim::Duration latency) {
  set_state(assoc, AssocState::kEstablished);
  assoc.retries = 0;
  assoc.last_heard = node_->network().loop().now();
  assoc.keepalive_misses = 0;
  if (!assoc.keepalive_armed) arm_keepalive(assoc);
  ++stats_.bex_completed;
  HIPCLOUD_LOG(sim::LogLevel::kInfo, node_->network().loop().now(), "hip",
                node_->name() + ": association with " +
                    assoc.peer_hit.to_string() + " established");
  if (on_established_) on_established_(assoc.peer_hit, latency);
  if (pending_rvs_targets_.erase(assoc.peer_hit) > 0) {
    register_with_rvs(assoc.peer_hit);
  }
  // Flush traffic that was waiting on the BEX.
  std::deque<Packet> pending;
  pending.swap(assoc.pending);
  for (auto& pkt : pending) esp_send(assoc, std::move(pkt));
}

// ---------------------------------------------------------------------------
// Mobility

void HipDaemon::move_to(const IpAddr& new_locator) {
  if (on_locator_change_) on_locator_change_(new_locator);
  for (auto& [peer_hit, assoc] : assocs_) {
    if (assoc.state != AssocState::kEstablished) continue;
    assoc.update_seq_out++;
    assoc.echo_nonce = crypto::read_be(drbg_.generate(8), 0, 8);
    assoc.locator_in_flight = new_locator;

    HipMessage update;
    update.type = MsgType::kUpdate;
    update.sender_hit = identity_.hit();
    update.receiver_hit = peer_hit;
    update.set_param(ParamType::kLocator, encode_locator(new_locator));
    update.set_u64(ParamType::kSeq, assoc.update_seq_out);
    update.set_u64(ParamType::kEchoRequestSigned, assoc.echo_nonce);
    update.set_param(ParamType::kSignature,
                     identity_.sign(update.signed_view()));
    update.attach_hmac(assoc.keymat.hip_hmac_out);
    // Sent from the new locator: the peer learns it from both the
    // LOCATOR parameter and the packet source.
    send_control(update, assoc.peer_locator, new_locator);
  }
}

void HipDaemon::handle_update(const HipMessage& msg, const Packet& pkt) {
  Association* assoc = find_assoc(msg.sender_hit);
  if (assoc == nullptr || assoc->state != AssocState::kEstablished) return;
  if (!msg.check_hmac(assoc->keymat.hip_hmac_in)) {
    ++stats_.auth_failures;
    return;
  }
  const Bytes* signature = msg.param(ParamType::kSignature);
  if (signature == nullptr ||
      !HostIdentity::verify(assoc->peer_hi, msg.signed_view(), *signature)) {
    ++stats_.auth_failures;
    return;
  }

  const net::Ipv6Addr peer_hit = msg.sender_hit;
  assoc->last_heard = node_->network().loop().now();

  const Bytes* esp_info = msg.param(ParamType::kEspInfo);
  const auto ack_seq = msg.u64(ParamType::kAck);

  // Rekey acknowledgement: the responder installed generation g+1 and
  // tells us its fresh inbound SPI. Install our side symmetrically.
  if (ack_seq && esp_info != nullptr && assoc->rekey_in_flight) {
    if (esp_info->size() != 5) return;
    const auto peer_spi =
        static_cast<std::uint32_t>(crypto::read_be(*esp_info, 0, 4));
    const auto suite = static_cast<EspSuite>((*esp_info)[4]);
    const std::uint32_t gen = assoc->rekey_generation + 1;
    assoc->keymat.ratchet_esp(gen);
    retire_old_sa_in(*assoc);
    assoc->spi_out = peer_spi;
    assoc->spi_in = assoc->rekey_new_spi_in;
    spi_to_peer_[assoc->spi_in] = peer_hit;
    assoc->sa_out = std::make_unique<EspSa>(peer_spi, suite,
                                            assoc->keymat.esp_enc_out,
                                            assoc->keymat.esp_auth_out);
    assoc->sa_in = std::make_unique<EspSa>(assoc->spi_in, suite,
                                           assoc->keymat.esp_enc_in,
                                           assoc->keymat.esp_auth_in);
    assoc->rekey_generation = gen;
    assoc->rekey_in_flight = false;
    if (assoc->rekey_timer_armed) {
      node_->network().loop().cancel(assoc->rekey_timer);
      assoc->rekey_timer_armed = false;
    }
    audit_association(*assoc);
    ++stats_.rekeys_completed;
    ++stats_.updates_processed;
    HIPCLOUD_LOG(sim::LogLevel::kInfo, node_->network().loop().now(),
                  "hip",
                  node_->name() + ": rekeyed with " + peer_hit.to_string() +
                      " (generation " + std::to_string(gen) + ")");
    return;
  }

  // Echo response: confirms our mobility UPDATE or answers a keepalive.
  if (const auto echoed = msg.u64(ParamType::kEchoResponseSigned)) {
    if (*echoed == assoc->echo_nonce && assoc->locator_in_flight) {
      assoc->locator_in_flight.reset();
      ++stats_.updates_processed;
    } else if (*echoed == assoc->keepalive_nonce) {
      assoc->keepalive_misses = 0;
    }
    return;
  }

  const Bytes* locator_param = msg.param(ParamType::kLocator);
  const auto seq = msg.u64(ParamType::kSeq);
  const auto nonce = msg.u64(ParamType::kEchoRequestSigned);

  // Rekey request (ESP_INFO + SEQ, no LOCATOR): peer wants generation
  // g+1. Both sides ratchet the ESP keys independently from the shared
  // keymat, so no new DH is needed — fresh SPIs, fresh replay windows.
  if (esp_info != nullptr && seq && locator_param == nullptr) {
    if (esp_info->size() != 5) return;
    if (*seq <= assoc->update_seq_in_seen) {
      // Retransmit of a rekey we already applied (our ack was lost):
      // re-acknowledge with the SPI installed back then.
      if (*seq == assoc->last_rekey_seq && assoc->sa_in != nullptr) {
        HipMessage re_ack;
        re_ack.type = MsgType::kUpdate;
        re_ack.sender_hit = identity_.hit();
        re_ack.receiver_hit = peer_hit;
        re_ack.set_u64(ParamType::kAck, *seq);
        Bytes info;
        crypto::append_be(info, assoc->spi_in, 4);
        info.push_back(static_cast<std::uint8_t>(assoc->sa_in->suite()));
        re_ack.set_param(ParamType::kEspInfo, std::move(info));
        re_ack.set_param(ParamType::kSignature,
                         identity_.sign(re_ack.signed_view()));
        re_ack.attach_hmac(assoc->keymat.hip_hmac_out);
        send_control(re_ack, assoc->peer_locator);
      }
      return;
    }
    if (assoc->rekey_in_flight) {
      // Simultaneous rekey: the larger HIT's exchange wins (mirrors the
      // BEX tie-break); the smaller side abandons its own attempt and
      // answers the peer's.
      if (identity_.hit() > peer_hit) return;
      assoc->rekey_in_flight = false;
      if (assoc->rekey_timer_armed) {
        node_->network().loop().cancel(assoc->rekey_timer);
        assoc->rekey_timer_armed = false;
      }
    }
    assoc->update_seq_in_seen = *seq;
    assoc->last_rekey_seq = *seq;
    const auto peer_spi =
        static_cast<std::uint32_t>(crypto::read_be(*esp_info, 0, 4));
    const auto suite = static_cast<EspSuite>((*esp_info)[4]);
    const std::uint32_t gen = assoc->rekey_generation + 1;
    assoc->keymat.ratchet_esp(gen);
    retire_old_sa_in(*assoc);
    assoc->spi_out = peer_spi;
    assoc->spi_in = fresh_spi();
    spi_to_peer_[assoc->spi_in] = peer_hit;
    assoc->sa_out = std::make_unique<EspSa>(peer_spi, suite,
                                            assoc->keymat.esp_enc_out,
                                            assoc->keymat.esp_auth_out);
    assoc->sa_in = std::make_unique<EspSa>(assoc->spi_in, suite,
                                           assoc->keymat.esp_enc_in,
                                           assoc->keymat.esp_auth_in);
    assoc->rekey_generation = gen;
    audit_association(*assoc);
    ++stats_.rekeys_completed;
    ++stats_.updates_processed;

    HipMessage rekey_ack;
    rekey_ack.type = MsgType::kUpdate;
    rekey_ack.sender_hit = identity_.hit();
    rekey_ack.receiver_hit = peer_hit;
    rekey_ack.set_u64(ParamType::kAck, *seq);
    Bytes info;
    crypto::append_be(info, assoc->spi_in, 4);
    info.push_back(static_cast<std::uint8_t>(suite));
    rekey_ack.set_param(ParamType::kEspInfo, std::move(info));
    rekey_ack.set_param(ParamType::kSignature,
                        identity_.sign(rekey_ack.signed_view()));
    rekey_ack.attach_hmac(assoc->keymat.hip_hmac_out);
    send_control(rekey_ack, assoc->peer_locator);
    return;
  }

  // Keepalive probe (bare ECHO_REQUEST): answer so the peer knows we are
  // alive; no state changes.
  if (locator_param == nullptr && !seq && nonce) {
    charge(sign_cycles(), [this, peer_hit, nonce = *nonce] {
      Association* found = find_assoc(peer_hit);
      if (found == nullptr) return;
      HipMessage pong;
      pong.type = MsgType::kUpdate;
      pong.sender_hit = identity_.hit();
      pong.receiver_hit = peer_hit;
      pong.set_u64(ParamType::kEchoResponseSigned, nonce);
      pong.set_param(ParamType::kSignature,
                     identity_.sign(pong.signed_view()));
      pong.attach_hmac(found->keymat.hip_hmac_out);
      send_control(pong, found->peer_locator);
    });
    return;
  }

  // Peer announces a new locator: verify, adopt, echo the nonce back
  // (the replay protection the paper describes for HIP mobility).
  if (locator_param == nullptr || !seq || !nonce) return;
  if (*seq <= assoc->update_seq_in_seen) return;  // stale or replayed
  const auto new_locator = decode_locator(*locator_param);
  if (!new_locator) return;

  assoc->update_seq_in_seen = *seq;
  assoc->peer_locator = *new_locator;
  ++stats_.updates_processed;

  charge(sign_cycles(), [this, peer_hit, nonce = *nonce, seq = *seq] {
    Association* found = find_assoc(peer_hit);
    if (found == nullptr) return;
    HipMessage ack;
    ack.type = MsgType::kUpdate;
    ack.sender_hit = identity_.hit();
    ack.receiver_hit = peer_hit;
    ack.set_u64(ParamType::kAck, seq);
    ack.set_u64(ParamType::kEchoResponseSigned, nonce);
    ack.set_param(ParamType::kSignature, identity_.sign(ack.signed_view()));
    ack.attach_hmac(found->keymat.hip_hmac_out);
    send_control(ack, found->peer_locator);
  });
  (void)pkt;
}

// ---------------------------------------------------------------------------
// Recovery: rekey, keepalive, dead-peer teardown

void HipDaemon::start_rekey(Association& assoc) {
  if (assoc.rekey_in_flight || assoc.state != AssocState::kEstablished) {
    return;
  }
  assoc.rekey_in_flight = true;
  assoc.rekey_retries = 0;
  assoc.rekey_new_spi_in = fresh_spi();
  ++assoc.update_seq_out;
  ++stats_.rekeys_initiated;
  send_rekey_update(assoc);
}

void HipDaemon::send_rekey_update(Association& assoc) {
  HipMessage update;
  update.type = MsgType::kUpdate;
  update.sender_hit = identity_.hit();
  update.receiver_hit = assoc.peer_hit;
  Bytes esp_info;
  crypto::append_be(esp_info, assoc.rekey_new_spi_in, 4);
  esp_info.push_back(static_cast<std::uint8_t>(config_.esp_suite));
  update.set_param(ParamType::kEspInfo, std::move(esp_info));
  update.set_u64(ParamType::kSeq, assoc.update_seq_out);
  update.set_param(ParamType::kSignature,
                   identity_.sign(update.signed_view()));
  update.attach_hmac(assoc.keymat.hip_hmac_out);
  send_control(update, assoc.peer_locator);

  const net::Ipv6Addr peer = assoc.peer_hit;
  if (assoc.rekey_timer_armed) {
    node_->network().loop().cancel(assoc.rekey_timer);
  }
  assoc.rekey_timer = node_->network().loop().schedule(
      config_.bex_retry, [this, peer] {
        Association* a = find_assoc(peer);
        if (a == nullptr) return;
        a->rekey_timer_armed = false;
        if (!a->rekey_in_flight) return;
        if (++a->rekey_retries > config_.bex_max_retries) {
          // Give up: the SA keeps running on its old keys (keepalive
          // handles a genuinely dead peer) and the next send below the
          // threshold retries the rollover.
          a->rekey_in_flight = false;
          return;
        }
        send_rekey_update(*a);
      });
  assoc.rekey_timer_armed = true;
}

void HipDaemon::retire_old_sa_in(Association& assoc) {
  if (assoc.old_sa_in != nullptr) {
    // Back-to-back rekeys: the previous generation's grace ends now.
    spi_to_peer_.erase(assoc.old_spi_in);
    if (assoc.grace_armed) {
      node_->network().loop().cancel(assoc.grace_timer);
      assoc.grace_armed = false;
    }
  }
  assoc.old_sa_in = std::move(assoc.sa_in);
  assoc.old_spi_in = assoc.spi_in;
  if (assoc.old_sa_in == nullptr) {
    // Nothing to drain; keep the old-SA/old-SPI pair in lockstep (the
    // audit_association invariant).
    assoc.old_spi_in = 0;
    return;
  }
  const net::Ipv6Addr peer = assoc.peer_hit;
  assoc.grace_timer =
      node_->network().loop().schedule(config_.rekey_grace, [this, peer] {
        Association* a = find_assoc(peer);
        if (a == nullptr) return;
        a->grace_armed = false;
        if (a->old_sa_in != nullptr) {
          spi_to_peer_.erase(a->old_spi_in);
          a->old_sa_in.reset();
          a->old_spi_in = 0;
        }
      });
  assoc.grace_armed = true;
}

void HipDaemon::arm_keepalive(Association& assoc) {
  if (config_.keepalive_interval <= 0) return;
  const net::Ipv6Addr peer = assoc.peer_hit;
  assoc.keepalive_timer = node_->network().loop().schedule(
      config_.keepalive_interval, [this, peer] {
        Association* a = find_assoc(peer);
        if (a == nullptr) return;
        a->keepalive_armed = false;
        if (a->state != AssocState::kEstablished) return;
        const sim::Time now = node_->network().loop().now();
        if (now - a->last_heard < config_.keepalive_interval) {
          // Data traffic is keeping the association demonstrably alive.
          a->keepalive_misses = 0;
          arm_keepalive(*a);
          return;
        }
        if (a->keepalive_misses >= config_.keepalive_max_misses) {
          ++stats_.peer_failures;
          HIPCLOUD_LOG(sim::LogLevel::kWarn, now, "hip",
                        node_->name() + ": peer " + peer.to_string() +
                            " declared dead after " +
                            std::to_string(a->keepalive_misses) +
                            " missed keepalives");
          reset_association(*a);
          return;
        }
        ++a->keepalive_misses;
        a->keepalive_nonce = crypto::read_be(drbg_.generate(8), 0, 8);
        HipMessage probe;
        probe.type = MsgType::kUpdate;
        probe.sender_hit = identity_.hit();
        probe.receiver_hit = peer;
        probe.set_u64(ParamType::kEchoRequestSigned, a->keepalive_nonce);
        probe.set_param(ParamType::kSignature,
                        identity_.sign(probe.signed_view()));
        probe.attach_hmac(a->keymat.hip_hmac_out);
        send_control(probe, a->peer_locator);
        ++stats_.keepalives_sent;
        arm_keepalive(*a);
      });
  assoc.keepalive_armed = true;
}

void HipDaemon::cancel_recovery_timers(Association& assoc) {
  auto& loop = node_->network().loop();
  if (assoc.rekey_timer_armed) {
    loop.cancel(assoc.rekey_timer);
    assoc.rekey_timer_armed = false;
  }
  if (assoc.grace_armed) {
    loop.cancel(assoc.grace_timer);
    assoc.grace_armed = false;
  }
  if (assoc.keepalive_armed) {
    loop.cancel(assoc.keepalive_timer);
    assoc.keepalive_armed = false;
  }
}

void HipDaemon::reset_association(Association& assoc) {
  cancel_retry(assoc);
  cancel_recovery_timers(assoc);
  if (assoc.sa_in != nullptr) spi_to_peer_.erase(assoc.spi_in);
  if (assoc.old_sa_in != nullptr) spi_to_peer_.erase(assoc.old_spi_in);
  assoc.sa_in.reset();
  assoc.sa_out.reset();
  assoc.old_sa_in.reset();
  assoc.spi_in = assoc.spi_out = assoc.old_spi_in = 0;
  assoc.rekey_in_flight = false;
  assoc.rekey_generation = 0;
  assoc.keepalive_misses = 0;
  assoc.locator_in_flight.reset();
  if (!assoc.pending.empty()) {
    stats_.pending_failed += assoc.pending.size();
    assoc.pending.clear();
  }
  // Peer locator and HI are kept: the next outbound packet re-triggers a
  // full BEX through shim_outbound, which is the recovery path.
  set_state(assoc, AssocState::kUnassociated);
}

// ---------------------------------------------------------------------------
// Teardown

void HipDaemon::close_association(const net::Ipv6Addr& peer_hit) {
  Association* assoc = find_assoc(peer_hit);
  if (assoc == nullptr || assoc->state != AssocState::kEstablished) return;
  set_state(*assoc, AssocState::kClosing);
  HipMessage close;
  close.type = MsgType::kClose;
  close.sender_hit = identity_.hit();
  close.receiver_hit = peer_hit;
  close.set_param(ParamType::kSignature, identity_.sign(close.signed_view()));
  close.attach_hmac(assoc->keymat.hip_hmac_out);
  send_control(close, assoc->peer_locator);
}

void HipDaemon::handle_close(const HipMessage& msg) {
  Association* assoc = find_assoc(msg.sender_hit);
  if (assoc == nullptr || assoc->sa_in == nullptr) return;
  if (!msg.check_hmac(assoc->keymat.hip_hmac_in)) {
    ++stats_.auth_failures;
    return;
  }
  HipMessage ack;
  ack.type = MsgType::kCloseAck;
  ack.sender_hit = identity_.hit();
  ack.receiver_hit = msg.sender_hit;
  ack.set_param(ParamType::kSignature, identity_.sign(ack.signed_view()));
  ack.attach_hmac(assoc->keymat.hip_hmac_out);
  send_control(ack, assoc->peer_locator);

  cancel_retry(*assoc);
  cancel_recovery_timers(*assoc);
  spi_to_peer_.erase(assoc->spi_in);
  if (assoc->old_sa_in != nullptr) spi_to_peer_.erase(assoc->old_spi_in);
  assocs_.erase(msg.sender_hit);
}

void HipDaemon::handle_close_ack(const HipMessage& msg) {
  Association* assoc = find_assoc(msg.sender_hit);
  if (assoc == nullptr || assoc->state != AssocState::kClosing) return;
  if (!msg.check_hmac(assoc->keymat.hip_hmac_in)) return;
  cancel_retry(*assoc);
  cancel_recovery_timers(*assoc);
  spi_to_peer_.erase(assoc->spi_in);
  if (assoc->old_sa_in != nullptr) spi_to_peer_.erase(assoc->old_spi_in);
  assocs_.erase(msg.sender_hit);
}

// ---------------------------------------------------------------------------
// Rendezvous

void HipDaemon::register_with_rvs(const net::Ipv6Addr& rvs_hit) {
  Association* assoc = find_assoc(rvs_hit);
  if (assoc == nullptr || assoc->state != AssocState::kEstablished) {
    // Establish first; establish() completes the registration.
    pending_rvs_targets_.insert(rvs_hit);
    initiate(rvs_hit);
    return;
  }
  HipMessage reg;
  reg.type = MsgType::kRvsRegister;
  reg.sender_hit = identity_.hit();
  reg.receiver_hit = rvs_hit;
  reg.set_param(ParamType::kSignature, identity_.sign(reg.signed_view()));
  reg.attach_hmac(assoc->keymat.hip_hmac_out);
  send_control(reg, assoc->peer_locator);
}

void HipDaemon::handle_rvs_register(const HipMessage& msg, const Packet& pkt) {
  if (!rvs_server_) return;
  Association* assoc = find_assoc(msg.sender_hit);
  if (assoc == nullptr || assoc->state != AssocState::kEstablished) return;
  if (!msg.check_hmac(assoc->keymat.hip_hmac_in)) {
    ++stats_.auth_failures;
    return;
  }
  rvs_registrations_[msg.sender_hit] = pkt.src;
  HipMessage ack;
  ack.type = MsgType::kRvsRegisterAck;
  ack.sender_hit = identity_.hit();
  ack.receiver_hit = msg.sender_hit;
  ack.attach_hmac(assoc->keymat.hip_hmac_out);
  send_control(ack, assoc->peer_locator);
}

}  // namespace hipcloud::hip
