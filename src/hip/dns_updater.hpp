#pragma once

#include <string>

#include "hip/daemon.hpp"
#include "net/dns.hpp"

namespace hipcloud::hip {

/// Automated DNS maintenance for a HIP host (the paper's §VII future
/// work): publishes the host's HIP record (HIT + HI) and A/AAAA locator
/// record under `name`, and keeps the locator records current whenever
/// the daemon announces a new locator (mobility / migration). Peers that
/// lost contact during simultaneous movement can then re-resolve the
/// name — the DNS-based re-contact alternative to a rendezvous server.
class DnsUpdater {
 public:
  DnsUpdater(HipDaemon* daemon, net::DnsServer* dns, std::string name)
      : daemon_(daemon), dns_(dns), name_(std::move(name)) {
    dns_->add_record(name_,
                     net::DnsRecord::hip(daemon_->hit(),
                                         daemon_->identity()
                                             .public_encoding()));
    publish_locator(*daemon_->node()->first_address(false));
    daemon_->on_locator_change(
        [this](const net::IpAddr& locator) { publish_locator(locator); });
  }

  const std::string& name() const { return name_; }

 private:
  void publish_locator(const net::IpAddr& locator) {
    if (locator.is_v4()) {
      dns_->remove_records(name_, net::DnsType::kA);
      dns_->add_record(name_, net::DnsRecord::a(locator.v4()));
    } else {
      dns_->remove_records(name_, net::DnsType::kAaaa);
      dns_->add_record(name_, net::DnsRecord::aaaa(locator.v6()));
    }
  }

  HipDaemon* daemon_;
  net::DnsServer* dns_;
  std::string name_;
};

}  // namespace hipcloud::hip
