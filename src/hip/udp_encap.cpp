#include "hip/udp_encap.hpp"

#include "net/wire_reader.hpp"
#include "sim/log.hpp"

namespace hipcloud::hip {

using crypto::Bytes;
using net::IpProto;
using net::Packet;

namespace {
// One-byte message tags.
constexpr std::uint8_t kTagHip = 0x01;
constexpr std::uint8_t kTagEsp = 0x02;
constexpr std::uint8_t kTagKeepalive = 0xff;
}  // namespace

/// Captures outbound HIP/ESP packets towards encapsulated locators.
class UdpEncap::Shim : public net::L3Shim {
 public:
  explicit Shim(UdpEncap* encap) : encap_(encap) {}

  bool outbound(Packet& pkt) override {
    if (pkt.proto != IpProto::kHip && pkt.proto != IpProto::kEsp) {
      return false;
    }
    if (!encap_->endpoints_.count(pkt.dst)) return false;
    encap_->send_encapsulated(std::move(pkt));
    return true;
  }

  bool inbound(Packet&) override { return false; }  // arrives via UDP

  std::size_t path_overhead(const net::IpAddr& dst) const override {
    // Conservative: when any tunnel is active, HIT/LSI flows may ride it.
    // (Resolving HIT -> locator would need the daemon; overestimating by
    // 29 bytes only shrinks the MSS slightly when no tunnel applies.)
    if (encap_->endpoints_.empty()) return 0;
    return dst.is_hit() || dst.is_lsi() ? kOverhead : 0;
  }

 private:
  UdpEncap* encap_;
};

UdpEncap::UdpEncap(net::Node* node, net::UdpStack* udp,
                   std::uint16_t local_port)
    : node_(node), udp_(udp), local_port_(local_port) {
  local_port_ = udp_->bind(local_port,
                           [this](const net::Endpoint& from,
                                  const net::IpAddr& local, crypto::Buffer data) {
                             on_datagram(from, local, std::move(data));
                           });
  node_->add_shim(std::make_shared<Shim>(this));
}

void UdpEncap::add_encap_peer(const net::IpAddr& locator,
                              std::uint16_t remote_port) {
  endpoints_.emplace(locator, net::Endpoint{locator, remote_port});
}

// hipcheck:hot
void UdpEncap::send_encapsulated(Packet&& pkt) {
  const auto it = endpoints_.find(pkt.dst);
  if (it == endpoints_.end()) return;
  // The one-byte tag goes into the buffer's headroom — no copy.
  *pkt.payload.prepend(1) = pkt.proto == IpProto::kHip ? kTagHip : kTagEsp;
  ++encapsulated_;
  udp_->send(local_port_, it->second, std::move(pkt.payload));
}

// hipcheck:hot
// hipcheck:wire_input
void UdpEncap::on_datagram(const net::Endpoint& from,
                           const net::IpAddr& local, crypto::Buffer data) {
  hipcloud::wire::Reader r(data.view());
  const auto tag = r.u8();
  if (!tag) return;
  // Learn/refresh the peer's observed endpoint: replies to this locator
  // must go to the NAT mapping we actually saw, not to port 10500 of an
  // unroutable private address.
  endpoints_[from.addr] = from;
  if (*tag == kTagKeepalive) return;
  if (*tag != kTagHip && *tag != kTagEsp) return;
  ++decapsulated_;
  Packet inner;
  inner.src = from.addr;  // outer source: where replies must be aimed
  inner.dst = local;
  inner.proto = *tag == kTagHip ? IpProto::kHip : IpProto::kEsp;
  data.pop_front(1);
  inner.payload = std::move(data);
  inner.stamp_l3_overhead();
  node_->deliver(std::move(inner), 0);
}

void UdpEncap::enable_keepalives(sim::Duration interval) {
  keepalive_interval_ = interval;
  send_keepalives();
}

void UdpEncap::send_keepalives() {
  if (keepalive_interval_ <= 0) return;
  for (const auto& [locator, endpoint] : endpoints_) {
    ++keepalives_sent_;
    udp_->send(local_port_, endpoint, Bytes{kTagKeepalive});
  }
  node_->network().loop().schedule(keepalive_interval_,
                                   [this] { send_keepalives(); });
}

}  // namespace hipcloud::hip
