#include "hip/wire.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "net/wire_reader.hpp"

namespace hipcloud::hip {

using crypto::append_be;
using crypto::Bytes;
using crypto::BytesView;
using crypto::read_be;

void HipMessage::set_param(ParamType param, Bytes value) {
  params_[param] = std::move(value);
}

bool HipMessage::has_param(ParamType param) const {
  return params_.count(param) > 0;
}

const Bytes* HipMessage::param(ParamType param) const {
  const auto it = params_.find(param);
  return it == params_.end() ? nullptr : &it->second;
}

void HipMessage::set_u64(ParamType param, std::uint64_t value) {
  Bytes v;
  append_be(v, value, 8);
  set_param(param, std::move(v));
}

std::optional<std::uint64_t> HipMessage::u64(ParamType param) const {
  const Bytes* v = this->param(param);
  if (v == nullptr || v->size() != 8) return std::nullopt;
  return read_be(*v, 0, 8);
}

namespace {
Bytes serialize_with_filter(const HipMessage& msg, MsgType type,
                            const net::Ipv6Addr& sender,
                            const net::Ipv6Addr& receiver,
                            const std::map<ParamType, Bytes>& params,
                            bool include_auth) {
  (void)msg;
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), sender.bytes().begin(), sender.bytes().end());
  out.insert(out.end(), receiver.bytes().begin(), receiver.bytes().end());
  for (const auto& [ptype, value] : params) {
    if (!include_auth &&
        (ptype == ParamType::kHmac || ptype == ParamType::kSignature)) {
      continue;
    }
    append_be(out, static_cast<std::uint16_t>(ptype), 2);
    append_be(out, value.size(), 2);
    out.insert(out.end(), value.begin(), value.end());
  }
  return out;
}
}  // namespace

Bytes HipMessage::serialize() const {
  return serialize_with_filter(*this, type, sender_hit, receiver_hit, params_,
                               /*include_auth=*/true);
}

Bytes HipMessage::signed_view() const {
  return serialize_with_filter(*this, type, sender_hit, receiver_hit, params_,
                               /*include_auth=*/false);
}

// hipcheck:wire_input
HipMessage HipMessage::parse(BytesView wire) {
  hipcloud::wire::Reader r(wire);
  const auto type = r.u8();
  const auto sender = r.bytes(16);
  const auto receiver = r.bytes(16);
  if (!type || !sender || !receiver) {
    throw std::runtime_error("HipMessage: truncated");
  }
  HipMessage msg;
  msg.type = static_cast<MsgType>(*type);
  msg.sender_hit = net::Ipv6Addr::from_bytes(*sender);
  msg.receiver_hit = net::Ipv6Addr::from_bytes(*receiver);
  while (r.remaining() > 0) {
    const auto ptype = r.u16be();
    const auto len = r.u16be();
    if (!ptype || !len) {
      throw std::runtime_error("HipMessage: truncated parameter header");
    }
    const auto value = r.bytes(*len);
    if (!value) {
      throw std::runtime_error("HipMessage: truncated parameter value");
    }
    msg.params_[static_cast<ParamType>(*ptype)].assign(value->begin(),
                                                       value->end());
  }
  return msg;
}

void HipMessage::attach_hmac(BytesView key) {
  set_param(ParamType::kHmac, crypto::hmac_sha256(key, signed_view()));
}

bool HipMessage::check_hmac(BytesView key) const {
  const Bytes* mac = param(ParamType::kHmac);
  if (mac == nullptr) return false;
  return crypto::ct_equal(*mac, crypto::hmac_sha256(key, signed_view()));
}

std::string HipMessage::describe() const {
  static const std::map<MsgType, const char*> names = {
      {MsgType::kI1, "I1"},         {MsgType::kR1, "R1"},
      {MsgType::kI2, "I2"},         {MsgType::kR2, "R2"},
      {MsgType::kUpdate, "UPDATE"}, {MsgType::kNotify, "NOTIFY"},
      {MsgType::kClose, "CLOSE"},   {MsgType::kCloseAck, "CLOSE_ACK"},
      {MsgType::kRvsRegister, "RVS_REG"},
      {MsgType::kRvsRegisterAck, "RVS_REG_ACK"}};
  const auto it = names.find(type);
  return std::string(it != names.end() ? it->second : "?") + " " +
         sender_hit.to_string() + " -> " + receiver_hit.to_string();
}

}  // namespace hipcloud::hip
