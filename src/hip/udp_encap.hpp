#pragma once

#include <map>

#include "net/node.hpp"
#include "net/udp.hpp"

namespace hipcloud::hip {

/// UDP port for HIP NAT traversal (the native-mode draft the paper cites
/// as [13] uses 10500).
constexpr std::uint16_t kHipNatPort = 10500;

/// Native HIP NAT traversal: UDP encapsulation of HIP control and ESP
/// data packets.
///
/// The paper fell back to Teredo "because the native support was not
/// available in any of the implementations yet" — this is that missing
/// native mode. Unlike Teredo there is no relay detour: once the NATted
/// initiator's first datagram reaches the responder, both directions flow
/// over the learned UDP endpoint pair directly.
///
/// Deployment: construct AFTER the HipDaemon (shims run in installation
/// order; this one must see the daemon's ESP/HIP output). The NATted side
/// calls `add_encap_peer` for the responder; the responder learns the
/// initiator's NAT mapping automatically from the first inbound datagram
/// and answers through it, exactly like real UDP-encapsulated IPsec.
class UdpEncap {
 public:
  UdpEncap(net::Node* node, net::UdpStack* udp,
           std::uint16_t local_port = kHipNatPort);

  /// Route HIP/ESP traffic towards this locator through the tunnel.
  void add_encap_peer(const net::IpAddr& locator,
                      std::uint16_t remote_port = kHipNatPort);

  /// Periodic empty datagrams to hold NAT bindings open (RFC-style
  /// keepalives; our simulated NAT never expires, so this is for
  /// protocol completeness and traffic accounting).
  void enable_keepalives(sim::Duration interval);

  /// Extra per-packet bytes the tunnel adds (outer IPv4 + UDP + tag).
  static constexpr std::size_t kOverhead = 29;

  std::uint64_t encapsulated() const { return encapsulated_; }
  std::uint64_t decapsulated() const { return decapsulated_; }
  std::uint64_t keepalives_sent() const { return keepalives_sent_; }

 private:
  class Shim;
  friend class Shim;

  void on_datagram(const net::Endpoint& from, const net::IpAddr& local,
                   crypto::Buffer data);
  void send_encapsulated(net::Packet&& pkt);
  void send_keepalives();

  net::Node* node_;
  net::UdpStack* udp_;
  std::uint16_t local_port_;
  /// Peer locator -> UDP endpoint to reach it (learned or configured).
  std::map<net::IpAddr, net::Endpoint> endpoints_;
  std::uint64_t encapsulated_ = 0;
  std::uint64_t decapsulated_ = 0;
  std::uint64_t keepalives_sent_ = 0;
  sim::Duration keepalive_interval_ = 0;
};

}  // namespace hipcloud::hip
