#pragma once

#include <map>
#include <set>

#include "net/node.hpp"

namespace hipcloud::hip {

/// HIP-aware middlebox firewall (Lindqvist et al., the paper's ref [30]).
///
/// Installed on a forwarding node (e.g. a hypervisor bridge, scenario II
/// of the paper's design analysis), it enforces cryptographic-identity
/// based packet filtering without terminating the tunnels:
///  * HIP control packets (proto 139) pass only when the (initiator HIT,
///    responder HIT) pair is authorized;
///  * the firewall learns ESP SPIs by watching ESP_INFO parameters in I2
///    and R2, then admits exactly those ESP flows;
///  * everything else follows `default_accept` (false = whitelist mode,
///    blocking all non-HIP traffic between tenants).
class HipFirewall {
 public:
  explicit HipFirewall(net::Node* node, bool default_accept = false);

  /// Allow associations between two HITs (order-insensitive).
  void allow_pair(const net::Ipv6Addr& a, const net::Ipv6Addr& b);
  void deny_pair(const net::Ipv6Addr& a, const net::Ipv6Addr& b);

  std::uint64_t passed() const { return passed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t learned_spis() const { return allowed_spis_.size(); }

 private:
  using HitPair = std::pair<net::Ipv6Addr, net::Ipv6Addr>;
  static HitPair canonical(const net::Ipv6Addr& a, const net::Ipv6Addr& b);

  bool on_forward(net::Packet& pkt);
  bool handle_hip(const net::Packet& pkt);

  net::Node* node_;
  bool default_accept_;
  std::set<HitPair> allowed_pairs_;
  std::set<HitPair> denied_pairs_;
  std::set<std::uint32_t> allowed_spis_;
  std::uint64_t passed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hipcloud::hip
