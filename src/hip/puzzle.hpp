#pragma once

#include <cstdint>

#include "crypto/bytes.hpp"
#include "net/address.hpp"

namespace hipcloud::hip {

/// The HIP computational puzzle (RFC 5201 §4.1.2): the responder sends a
/// random value I and difficulty K; the initiator must find J such that
/// the lowest K bits of SHA-1(I | HIT-I | HIT-R | J) are zero. Solving
/// costs ~2^K hashes; verification costs one. This is HIP's DoS defence —
/// a loaded responder raises K to slow initiators down.
struct Puzzle {
  std::uint8_t difficulty_k = 0;  // 0 disables the puzzle
  std::uint64_t random_i = 0;

  /// Brute-force a solution. Returns J and the number of attempts
  /// (callers charge attempts * puzzle_hash_cycles to the CPU model).
  struct Solution {
    std::uint64_t j = 0;
    std::uint64_t attempts = 0;
  };
  Solution solve(const net::Ipv6Addr& initiator_hit,
                 const net::Ipv6Addr& responder_hit) const;

  /// Single-hash check of a claimed solution.
  bool verify(const net::Ipv6Addr& initiator_hit,
              const net::Ipv6Addr& responder_hit, std::uint64_t j) const;

  /// Expected solving attempts at this difficulty.
  double expected_attempts() const {
    return static_cast<double>(1ULL << difficulty_k);
  }
};

}  // namespace hipcloud::hip
