#include "hip/esp.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace hipcloud::hip {

using crypto::Bytes;
using crypto::BytesView;

namespace {
constexpr std::size_t kIvSize = 16;
constexpr std::size_t kIcvSize = 12;
constexpr std::size_t kFixedHeader = 4 + 4 + kIvSize;  // SPI | SEQ | IV
}  // namespace

std::size_t esp_overhead(EspSuite suite) {
  // Fixed header + ICV + the 2-byte protected inner header, plus average
  // CBC padding where applicable.
  const std::size_t base = kFixedHeader + kIcvSize + 2;
  return suite == EspSuite::kAes128CbcSha256 ? base + 8 : base;
}

const char* esp_suite_name(EspSuite suite) {
  switch (suite) {
    case EspSuite::kNullSha256:
      return "NULL-SHA256";
    case EspSuite::kAes128CtrSha256:
      return "AES128-CTR-SHA256";
    case EspSuite::kAes128CbcSha256:
      return "AES128-CBC-SHA256";
  }
  return "?";
}

EspSa::EspSa(std::uint32_t spi, EspSuite suite, BytesView enc_key,
             BytesView auth_key)
    : spi_(spi), suite_(suite),
      auth_key_(auth_key.begin(), auth_key.end()) {
  if (suite != EspSuite::kNullSha256) {
    if (enc_key.size() < 16) {
      throw std::invalid_argument("EspSa: encryption key too short");
    }
    cipher_.emplace(enc_key.subspan(0, 16));
  }
}

Bytes EspSa::compute_icv(BytesView spi_seq_iv_ct) const {
  Bytes mac = crypto::hmac_sha256(auth_key_, spi_seq_iv_ct);
  mac.resize(kIcvSize);
  return mac;
}

Bytes EspSa::protect(std::uint8_t inner_proto, std::uint8_t addr_mode,
                     BytesView payload) {
  Bytes plaintext;
  plaintext.reserve(2 + payload.size());
  plaintext.push_back(inner_proto);
  plaintext.push_back(addr_mode);
  plaintext.insert(plaintext.end(), payload.begin(), payload.end());

  // Deterministic per-SA IV counter (safe for CTR as it never repeats
  // under one key; fine for CBC in the simulator's threat model).
  Bytes iv(kIvSize, 0);
  crypto::append_be(iv, spi_, 4);
  crypto::append_be(iv, iv_counter_++, 8);
  iv.erase(iv.begin(), iv.begin() + 12);  // keep trailing 16 bytes
  iv.resize(kIvSize, 0);

  Bytes ciphertext;
  switch (suite_) {
    case EspSuite::kNullSha256:
      ciphertext = std::move(plaintext);
      break;
    case EspSuite::kAes128CtrSha256:
      ciphertext = crypto::aes_ctr(*cipher_, BytesView(iv).subspan(0, 12),
                                   static_cast<std::uint32_t>(
                                       crypto::read_be(iv, 12, 4)),
                                   plaintext);
      break;
    case EspSuite::kAes128CbcSha256:
      ciphertext = crypto::aes_cbc_encrypt(*cipher_, iv, plaintext);
      break;
  }

  Bytes wire;
  wire.reserve(kFixedHeader + ciphertext.size() + kIcvSize);
  crypto::append_be(wire, spi_, 4);
  crypto::append_be(wire, next_seq_++, 4);
  wire.insert(wire.end(), iv.begin(), iv.end());
  wire.insert(wire.end(), ciphertext.begin(), ciphertext.end());
  const Bytes icv = compute_icv(wire);
  wire.insert(wire.end(), icv.begin(), icv.end());
  return wire;
}

bool EspSa::replay_check_and_update(std::uint32_t seq) {
  if (seq == 0) return false;
  if (seq > highest_seq_) {
    const std::uint32_t shift = seq - highest_seq_;
    replay_window_ = shift >= 64 ? 0 : replay_window_ << shift;
    replay_window_ |= 1;  // bit 0 = highest seq seen
    highest_seq_ = seq;
    return true;
  }
  const std::uint32_t offset = highest_seq_ - seq;
  if (offset >= 64) return false;  // too old
  const std::uint64_t bit = 1ULL << offset;
  if (replay_window_ & bit) return false;  // duplicate
  replay_window_ |= bit;
  return true;
}

std::optional<EspSa::Unprotected> EspSa::unprotect(BytesView wire) {
  if (wire.size() < kFixedHeader + kIcvSize) return std::nullopt;
  const auto spi = static_cast<std::uint32_t>(crypto::read_be(wire, 0, 4));
  if (spi != spi_) return std::nullopt;
  const auto seq = static_cast<std::uint32_t>(crypto::read_be(wire, 4, 4));

  const BytesView authed = wire.subspan(0, wire.size() - kIcvSize);
  const BytesView icv = wire.subspan(wire.size() - kIcvSize);
  if (!crypto::ct_equal(icv, compute_icv(authed))) {
    ++auth_failures_;
    return std::nullopt;
  }
  if (!replay_check_and_update(seq)) {
    ++replay_drops_;
    return std::nullopt;
  }

  const BytesView iv = wire.subspan(8, kIvSize);
  const BytesView ciphertext =
      wire.subspan(kFixedHeader, wire.size() - kFixedHeader - kIcvSize);
  Bytes plaintext;
  try {
    switch (suite_) {
      case EspSuite::kNullSha256:
        plaintext.assign(ciphertext.begin(), ciphertext.end());
        break;
      case EspSuite::kAes128CtrSha256:
        plaintext = crypto::aes_ctr(
            *cipher_, iv.subspan(0, 12),
            static_cast<std::uint32_t>(crypto::read_be(iv, 12, 4)),
            ciphertext);
        break;
      case EspSuite::kAes128CbcSha256:
        plaintext = crypto::aes_cbc_decrypt(*cipher_, iv, ciphertext);
        break;
    }
  } catch (const std::runtime_error&) {
    ++auth_failures_;
    return std::nullopt;
  }
  if (plaintext.size() < 2) return std::nullopt;

  Unprotected out;
  out.inner_proto = plaintext[0];
  out.addr_mode = plaintext[1];
  out.payload.assign(plaintext.begin() + 2, plaintext.end());
  out.seq = seq;
  return out;
}

}  // namespace hipcloud::hip
