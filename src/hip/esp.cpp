#include "hip/esp.hpp"

#include <cstring>
#include <stdexcept>

#include "sim/check.hpp"

namespace hipcloud::hip {

using crypto::Bytes;
using crypto::BytesView;

namespace {
constexpr std::size_t kIvSize = 16;
constexpr std::size_t kIcvSize = 12;
constexpr std::size_t kFixedHeader = 4 + 4 + kIvSize;  // SPI | SEQ | IV

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}
}  // namespace

std::size_t esp_overhead(EspSuite suite) {
  // Fixed header + ICV + the 2-byte protected inner header, plus average
  // CBC padding where applicable.
  const std::size_t base = kFixedHeader + kIcvSize + 2;
  return suite == EspSuite::kAes128CbcSha256 ? base + 8 : base;
}

const char* esp_suite_name(EspSuite suite) {
  switch (suite) {
    case EspSuite::kNullSha256:
      return "NULL-SHA256";
    case EspSuite::kAes128CtrSha256:
      return "AES128-CTR-SHA256";
    case EspSuite::kAes128CbcSha256:
      return "AES128-CBC-SHA256";
  }
  return "?";
}

EspSa::EspSa(std::uint32_t spi, EspSuite suite, BytesView enc_key,
             BytesView auth_key)
    : spi_(spi), suite_(suite), hmac_(auth_key), hmac_mb_(auth_key) {
  if (suite != EspSuite::kNullSha256) {
    if (enc_key.size() < 16) {
      throw std::invalid_argument("EspSa: encryption key too short");
    }
    cipher_.emplace(enc_key.subspan(0, 16));
  }
}

void EspSa::compute_icv(BytesView spi_seq_iv_ct, std::uint8_t out[12]) {
  std::uint8_t mac[crypto::HmacSha256::kDigestSize];
  hmac_.reset();
  hmac_.update(spi_seq_iv_ct);
  hmac_.finish(mac);
  std::memcpy(out, mac, kIcvSize);
}

// hipcheck:hot
crypto::Buffer EspSa::protect_prepare(std::uint8_t inner_proto,
                                      std::uint8_t addr_mode,
                                      crypto::Buffer payload) {
  // In-place datapath: the ESP header and the 2-byte protected inner
  // header go into the payload buffer's headroom, CBC padding and the ICV
  // into its tailroom, and the payload is encrypted where it sits. When
  // the transport layer reserved enough room (TcpStack::transmit does),
  // the whole protect step touches zero allocations. (The seed
  // implementation made ~5 heap allocations per packet via
  // plaintext/ciphertext/icv temporaries; this is the hot loop behind the
  // paper's Fig. 2 ESP cost.)
  // Exhaustion is latched: once set it can only be cleared by replacing
  // the SA (rekey) or the seek_seq() test hook, and the counter must be
  // parked on the wrapped value while latched.
  HIPCLOUD_AUDIT(!exhausted_ || next_seq_ == 0,
                 "exhausted SA with live sequence counter");
  if (exhausted_) return {};
  if (next_seq_ == 0) {
    // 2^32 - 1 was the last valid sequence number. Wrapping to 0 would
    // blackhole the SA permanently (seq 0 is always rejected by the
    // peer's replay check), so refuse instead and let the caller rekey.
    exhausted_ = true;
    return {};
  }
  const std::size_t pt_len = 2 + payload.size();
  const std::size_t ct_len = suite_ == EspSuite::kAes128CbcSha256
                                 ? crypto::aes_cbc_padded_len(pt_len)
                                 : pt_len;
  payload.prepend(kFixedHeader + 2);
  payload.append((ct_len - pt_len) + kIcvSize);
  std::uint8_t* p = payload.data();
  store_be32(p, spi_);
  const std::uint32_t emitted_seq = next_seq_++;
  // No sequence number ever reaches the wire out of order, repeated, or
  // after exhaustion — the invariant RFC 4303's anti-replay contract and
  // the daemon's rekey logic both stand on. seek_seq() (the test hook)
  // moves the shadow along with the counter.
  HIPCLOUD_CHECK(emitted_seq == last_emitted_seq_ + 1,
                 "ESP outbound sequence not monotone");
  last_emitted_seq_ = emitted_seq;
  store_be32(p + 4, emitted_seq);

  // Deterministic per-SA IV: zero(4) | SPI(4) | counter(8) — never repeats
  // under one key (safe for CTR; fine for CBC in the simulator's threat
  // model).
  std::uint8_t* iv = p + 8;
  std::memset(iv, 0, 4);
  store_be32(iv + 4, spi_);
  store_be64(iv + 8, iv_counter_++);

  std::uint8_t* ct = p + kFixedHeader;
  ct[0] = inner_proto;
  ct[1] = addr_mode;
  switch (suite_) {
    case EspSuite::kNullSha256:
      break;
    case EspSuite::kAes128CtrSha256:
      // Counter block = IV[0..12) | IV[12..16) as the initial counter.
      cipher_->ctr_xor(iv, static_cast<std::uint32_t>(crypto::read_be(
                               BytesView(iv, kIvSize), 12, 4)),
                       ct, pt_len);
      break;
    case EspSuite::kAes128CbcSha256:
      crypto::aes_cbc_encrypt_inplace(*cipher_, iv, ct, pt_len);
      break;
  }

  return payload;
}

// hipcheck:hot
crypto::Buffer EspSa::protect_packet(std::uint8_t inner_proto,
                                     std::uint8_t addr_mode,
                                     crypto::Buffer payload) {
  crypto::Buffer wire =
      protect_prepare(inner_proto, addr_mode, std::move(payload));
  if (wire.empty()) return wire;
  std::uint8_t* p = wire.data();
  compute_icv(BytesView(p, wire.size() - kIcvSize),
              p + wire.size() - kIcvSize);
  return wire;
}

// hipcheck:hot
void EspSa::protect_batch(std::span<ProtectJob> jobs) {
  // Per-packet state (sequence numbers, IVs, encryption) is applied in
  // job order, so the wire bytes match sequential protect_packet() calls
  // exactly; only the ICVs are deferred and computed lanes-at-a-time.
  // Chunked so the MAC staging stays on the stack at any batch size.
  constexpr std::size_t kChunk = 2 * crypto::shamb::kMaxLanes;
  std::size_t at = 0;
  while (at < jobs.size()) {
    const std::size_t n = std::min(kChunk, jobs.size() - at);
    crypto::HmacSha256Mb::Job macs[kChunk];
    std::uint8_t tags[kChunk][crypto::HmacSha256Mb::kDigestSize];
    std::size_t nmac = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ProtectJob& job = jobs[at + i];
      job.buf = protect_prepare(job.inner_proto, job.addr_mode,
                                std::move(job.buf));
      if (job.buf.empty()) continue;  // exhausted mid-batch
      macs[nmac] = {job.buf.data(), job.buf.size() - kIcvSize, tags[nmac]};
      ++nmac;
    }
    hmac_mb_.compute(macs, nmac);
    nmac = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ProtectJob& job = jobs[at + i];
      if (job.buf.empty()) continue;
      std::memcpy(job.buf.data() + job.buf.size() - kIcvSize, tags[nmac],
                  kIcvSize);
      ++nmac;
    }
    at += n;
  }
}

Bytes EspSa::protect(std::uint8_t inner_proto, std::uint8_t addr_mode,
                     BytesView payload) {
  // Copying wrapper over the in-place path so the wire format has a
  // single source of truth (the golden vectors pin it). The staging
  // buffer reserves exactly the room protect_packet() needs, so the
  // wrapper costs two allocations total (staging + returned Bytes).
  return Bytes(protect_packet(
      inner_proto, addr_mode,
      crypto::Buffer(payload, kFixedHeader + 2,
                     kIcvSize + crypto::Aes::kBlockSize)));
}

bool EspSa::replay_check_and_update(std::uint32_t seq) {
  // Replay-window monotonicity: the high-water mark only ever advances,
  // and only this function advances it. A mismatch against the shadow
  // means some other code path (or a regression like the
  // debug_rewind_replay_window() hook simulates) moved the window
  // backwards — at which point a span of already-accepted sequence
  // numbers would be accepted again.
  HIPCLOUD_AUDIT(highest_seq_ == audit_highest_seq_,
                 "ESP anti-replay window regressed");
  if (seq == 0) return false;
  if (seq > highest_seq_) {
    const std::uint32_t shift = seq - highest_seq_;
    replay_window_ = shift >= 64 ? 0 : replay_window_ << shift;
    replay_window_ |= 1;  // bit 0 = highest seq seen
    highest_seq_ = seq;
#ifdef HIPCLOUD_AUDIT_ENABLED
    audit_highest_seq_ = seq;
#endif
    return true;
  }
  const std::uint32_t offset = highest_seq_ - seq;
  if (offset >= 64) return false;  // too old
  const std::uint64_t bit = 1ULL << offset;
  if (replay_window_ & bit) return false;  // duplicate
  replay_window_ |= bit;
  return true;
}

// hipcheck:hot
std::optional<EspSa::UnprotectedPacket> EspSa::unprotect_packet(
    crypto::Buffer wire) {
  // Zero-copy decrypt: authenticate over the buffer's view, decrypt the
  // ciphertext region where it sits, then strip header/trailer with O(1)
  // window arithmetic. The payload bytes are never copied.
  const BytesView v = wire.view();
  if (v.size() < kFixedHeader + kIcvSize) return std::nullopt;
  const auto spi = static_cast<std::uint32_t>(crypto::read_be(v, 0, 4));
  if (spi != spi_) return std::nullopt;

  std::uint8_t expected_icv[kIcvSize];
  compute_icv(v.subspan(0, v.size() - kIcvSize), expected_icv);
  return finish_unprotect(std::move(wire), expected_icv);
}

// hipcheck:hot
void EspSa::unprotect_batch(std::span<UnprotectJob> jobs) {
  // Expected ICVs are pure functions of the wire bytes, so hoisting them
  // into one multi-buffer pass cannot change acceptance decisions; the
  // stateful pipeline (replay window, counters) then runs per packet in
  // job order, exactly as sequential unprotect_packet() calls would.
  constexpr std::size_t kChunk = 2 * crypto::shamb::kMaxLanes;
  std::size_t at = 0;
  while (at < jobs.size()) {
    const std::size_t n = std::min(kChunk, jobs.size() - at);
    crypto::HmacSha256Mb::Job macs[kChunk];
    std::uint8_t tags[kChunk][crypto::HmacSha256Mb::kDigestSize];
    bool eligible[kChunk];
    std::size_t nmac = 0;
    for (std::size_t i = 0; i < n; ++i) {
      UnprotectJob& job = jobs[at + i];
      const BytesView v = job.wire.view();
      eligible[i] =
          v.size() >= kFixedHeader + kIcvSize &&
          static_cast<std::uint32_t>(crypto::read_be(v, 0, 4)) == spi_;
      if (!eligible[i]) continue;
      macs[nmac] = {v.data(), v.size() - kIcvSize, tags[nmac]};
      ++nmac;
    }
    hmac_mb_.compute(macs, nmac);
    nmac = 0;
    for (std::size_t i = 0; i < n; ++i) {
      UnprotectJob& job = jobs[at + i];
      if (!eligible[i]) {
        job.result = std::nullopt;
        continue;
      }
      job.result = finish_unprotect(std::move(job.wire), tags[nmac]);
      ++nmac;
    }
    at += n;
  }
}

// hipcheck:hot
std::optional<EspSa::UnprotectedPacket> EspSa::finish_unprotect(
    crypto::Buffer wire, const std::uint8_t expected_icv[kIcvSize]) {
  const BytesView v = wire.view();
  const auto seq = static_cast<std::uint32_t>(crypto::read_be(v, 4, 4));
  if (!crypto::ct_equal(v.subspan(v.size() - kIcvSize),
                        BytesView(expected_icv, kIcvSize))) {
    ++auth_failures_;
    return std::nullopt;
  }
  if (!replay_check_and_update(seq)) {
    ++replay_drops_;
    return std::nullopt;
  }

  std::uint8_t* p = wire.data();
  const std::uint8_t* iv = p + 8;
  std::uint8_t* ct = p + kFixedHeader;
  const std::size_t ct_len = wire.size() - kFixedHeader - kIcvSize;
  std::size_t pt_len = ct_len;
  try {
    switch (suite_) {
      case EspSuite::kNullSha256:
        break;
      case EspSuite::kAes128CtrSha256:
        cipher_->ctr_xor(iv, static_cast<std::uint32_t>(crypto::read_be(
                                 BytesView(iv, kIvSize), 12, 4)),
                         ct, ct_len);
        break;
      case EspSuite::kAes128CbcSha256:
        pt_len = crypto::aes_cbc_decrypt_inplace(*cipher_, iv, ct, ct_len);
        break;
    }
  } catch (const std::runtime_error&) {
    ++auth_failures_;
    return std::nullopt;
  }
  if (pt_len < 2) return std::nullopt;

  UnprotectedPacket out;
  out.inner_proto = ct[0];
  out.addr_mode = ct[1];
  out.seq = seq;
  wire.pop_back(kIcvSize + (ct_len - pt_len));
  wire.pop_front(kFixedHeader + 2);
  out.payload = std::move(wire);
  return out;
}

std::optional<EspSa::Unprotected> EspSa::unprotect(BytesView wire) {
  // Copying wrapper over the in-place path (cold call sites and tests).
  auto r = unprotect_packet(crypto::Buffer(wire));
  if (!r) return std::nullopt;
  Unprotected out;
  out.inner_proto = r->inner_proto;
  out.addr_mode = r->addr_mode;
  out.payload = Bytes(r->payload);
  out.seq = r->seq;
  return out;
}

}  // namespace hipcloud::hip
