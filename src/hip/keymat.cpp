#include "hip/keymat.hpp"

#include "crypto/hmac.hpp"

namespace hipcloud::hip {

using crypto::Bytes;
using crypto::BytesView;

Keymat Keymat::derive(BytesView dh_secret, const net::Ipv6Addr& local_hit,
                      const net::Ipv6Addr& peer_hit) {
  // Salt the extraction with the sorted HIT pair so the key block is
  // bound to this association.
  const bool local_is_smaller = local_hit < peer_hit;
  const net::Ipv6Addr& lo = local_is_smaller ? local_hit : peer_hit;
  const net::Ipv6Addr& hi = local_is_smaller ? peer_hit : local_hit;
  Bytes salt(lo.bytes().begin(), lo.bytes().end());
  salt.insert(salt.end(), hi.bytes().begin(), hi.bytes().end());

  const Bytes prk = crypto::hkdf_extract(salt, dh_secret);
  // Layout: [hmac_lo | hmac_hi | enc_lo | auth_lo | enc_hi | auth_hi]
  // where "lo" keys protect traffic sent by the numerically smaller HIT.
  const Bytes block =
      crypto::hkdf_expand(prk, crypto::to_bytes("hip keymat"), 6 * 32);
  auto slice = [&block](std::size_t idx) {
    return Bytes(block.begin() + static_cast<long>(idx * 32),
                 block.begin() + static_cast<long>((idx + 1) * 32));
  };

  Keymat keymat;
  if (local_is_smaller) {
    keymat.hip_hmac_out = slice(0);
    keymat.hip_hmac_in = slice(1);
    keymat.esp_enc_out = slice(2);
    keymat.esp_auth_out = slice(3);
    keymat.esp_enc_in = slice(4);
    keymat.esp_auth_in = slice(5);
  } else {
    keymat.hip_hmac_out = slice(1);
    keymat.hip_hmac_in = slice(0);
    keymat.esp_enc_out = slice(4);
    keymat.esp_auth_out = slice(5);
    keymat.esp_enc_in = slice(2);
    keymat.esp_auth_in = slice(3);
  }
  return keymat;
}

void Keymat::ratchet_esp(std::uint32_t generation) {
  Bytes label = crypto::to_bytes("esp rekey");
  crypto::append_be(label, generation, 4);
  const auto step = [&label](Bytes& key) {
    key = crypto::hmac_sha256(key, label);
  };
  step(esp_enc_out);
  step(esp_auth_out);
  step(esp_enc_in);
  step(esp_auth_in);
}

}  // namespace hipcloud::hip
