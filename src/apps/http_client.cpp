#include "apps/http_client.hpp"

#include "sim/log.hpp"

namespace hipcloud::apps {

HttpClient::HttpClient(net::Node* node, net::TcpStack* tcp,
                       TransportConfig transport)
    : node_(node), tcp_(tcp), transport_(std::move(transport)) {}

void HttpClient::request(const net::Endpoint& dst, HttpRequest req,
                         ResponseFn done) {
  req.headers["connection"] = "keep-alive";
  const std::uint64_t wid = next_waiting_id_++;
  pools_[dst].waiting.push_back(
      Waiting{std::move(req), std::move(done), wid});
  // Queue-time timeout: covers requests stuck behind a connection that
  // never establishes. Once issued, the per-issue timer takes over and
  // this becomes a no-op (the id is gone from the queue).
  node_->network().loop().schedule(timeout_, [this, dst, wid] {
    const auto pit = pools_.find(dst);
    if (pit == pools_.end()) return;
    auto& waiting = pit->second.waiting;
    for (auto it = waiting.begin(); it != waiting.end(); ++it) {
      if (it->id == wid) {
        auto expired = std::move(it->done);
        waiting.erase(it);
        ++failures_;
        expired(std::nullopt, timeout_);
        return;
      }
    }
  });
  dispatch(dst);
}

void HttpClient::dispatch(const net::Endpoint& dst) {
  Pool& pool = pools_[dst];
  while (!pool.waiting.empty()) {
    // Find an idle connected connection.
    std::uint64_t chosen = 0;
    for (auto& [id, conn] : pool.conns) {
      if (!conn->busy && conn->connected && !conn->dead) {
        chosen = id;
        break;
      }
    }
    if (chosen == 0) {
      // Any connection still handshaking will pick work up when ready.
      bool pending_conn = false;
      for (auto& [id, conn] : pool.conns) {
        if (!conn->connected && !conn->dead) {
          pending_conn = true;
          break;
        }
      }
      if (pool.conns.size() >= max_conns_) return;
      if (pending_conn && pool.conns.size() >= pool.waiting.size()) return;

      // Open a new connection.
      const std::uint64_t id = next_conn_id_++;
      auto conn = std::make_shared<Conn>();
      std::shared_ptr<net::TcpConnection> tcp_conn;
      try {
        tcp_conn = tcp_->connect(dst);
      } catch (const std::runtime_error&) {
        // No route/source: fail one waiting request.
        Waiting w = std::move(pool.waiting.front());
        pool.waiting.pop_front();
        ++failures_;
        w.done(std::nullopt, 0);
        continue;
      }
      conn->stream = make_client_stream(std::move(tcp_conn), node_,
                                        transport_);
      pool.conns[id] = conn;
      conn->stream->on_ready([this, dst, id] {
        const auto pit = pools_.find(dst);
        if (pit == pools_.end()) return;
        const auto cit = pit->second.conns.find(id);
        if (cit == pit->second.conns.end()) return;
        cit->second->connected = true;
        dispatch(dst);
      });
      conn->stream->on_data([this, dst, id](crypto::Bytes chunk) {
        const auto pit = pools_.find(dst);
        if (pit == pools_.end()) return;
        const auto cit = pit->second.conns.find(id);
        if (cit == pit->second.conns.end()) return;
        auto& c = *cit->second;
        c.parser.feed(chunk);
        if (c.parser.error()) {
          c.dead = true;
          finish(dst, id, std::nullopt);
          return;
        }
        if (auto resp = c.parser.next_response()) {
          finish(dst, id, std::move(resp));
        }
      });
      conn->stream->on_close([this, dst, id] {
        const auto pit = pools_.find(dst);
        if (pit == pools_.end()) return;
        const auto cit = pit->second.conns.find(id);
        if (cit == pit->second.conns.end()) return;
        cit->second->dead = true;
        if (cit->second->busy) {
          finish(dst, id, std::nullopt);
          return;
        }
        const bool was_connecting = !cit->second->connected;
        pit->second.conns.erase(cit);
        // A connection that died before establishing means the target is
        // unreachable: fail one waiting request instead of retrying
        // forever.
        if (was_connecting && !pit->second.waiting.empty()) {
          Waiting w = std::move(pit->second.waiting.front());
          pit->second.waiting.pop_front();
          ++failures_;
          w.done(std::nullopt, 0);
          dispatch(dst);
        }
      });
      return;  // wait for on_ready to dispatch
    }

    Waiting w = std::move(pool.waiting.front());
    pool.waiting.pop_front();
    issue(dst, chosen, std::move(w.req), std::move(w.done));
  }
}

void HttpClient::issue(const net::Endpoint& dst, std::uint64_t conn_id,
                       HttpRequest req, ResponseFn done) {
  Pool& pool = pools_[dst];
  auto conn = pool.conns.at(conn_id);
  conn->busy = true;
  conn->done = std::move(done);
  conn->issued_at = node_->network().loop().now();
  conn->timeout_timer =
      node_->network().loop().schedule(timeout_, [this, dst, conn_id] {
        const auto pit = pools_.find(dst);
        if (pit == pools_.end()) return;
        const auto cit = pit->second.conns.find(conn_id);
        if (cit == pit->second.conns.end() || !cit->second->busy) return;
        cit->second->timer_armed = false;
        cit->second->dead = true;
        cit->second->stream->close();
        finish(dst, conn_id, std::nullopt);
      });
  conn->timer_armed = true;
  ++requests_sent_;
  conn->stream->send(req.serialize());
}

void HttpClient::finish(const net::Endpoint& dst, std::uint64_t conn_id,
                        std::optional<HttpResponse> resp) {
  Pool& pool = pools_[dst];
  const auto cit = pool.conns.find(conn_id);
  if (cit == pool.conns.end()) return;
  auto conn = cit->second;
  if (!conn->busy) return;
  conn->busy = false;
  if (conn->timer_armed) {
    node_->network().loop().cancel(conn->timeout_timer);
    conn->timer_armed = false;
  }
  const sim::Duration latency =
      node_->network().loop().now() - conn->issued_at;
  auto done = std::move(conn->done);
  conn->done = nullptr;
  if (!resp) ++failures_;
  if (conn->dead) pool.conns.erase(conn_id);
  if (done) done(std::move(resp), latency);
  dispatch(dst);
}

}  // namespace hipcloud::apps
