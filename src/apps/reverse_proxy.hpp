#pragma once

#include <vector>

#include "apps/http_client.hpp"
#include "apps/http_server.hpp"

namespace hipcloud::apps {

/// HAProxy-style reverse HTTP proxy / load balancer.
///
/// This is the keystone of the paper's end-to-middle deployment: the
/// front side faces consumers with plain HTTP or HTTPS (no HIP required
/// on clients), while the back side addresses the web-server VMs by HIT
/// or LSI so the proxy's HIP daemon protects everything entering the
/// cloud. Round-robin balancing matches the paper's HAProxy
/// configuration.
class ReverseProxy {
 public:
  enum class Balance { kRoundRobin, kLeastOutstanding };

  ReverseProxy(net::Node* node, net::TcpStack* tcp, std::uint16_t port,
               TransportConfig front, TransportConfig back,
               std::vector<net::Endpoint> backends,
               Balance balance = Balance::kRoundRobin);

  std::uint64_t relayed() const { return relayed_; }
  std::uint64_t errors() const { return errors_; }
  const std::vector<net::Endpoint>& backends() const { return backends_; }
  /// Requests currently in flight towards each backend (index-aligned).
  const std::vector<int>& outstanding() const { return outstanding_; }
  /// Total requests dispatched to each backend (index-aligned).
  const std::vector<std::uint64_t>& dispatched() const { return dispatched_; }

 private:
  std::size_t pick_backend();

  HttpServer server_;
  HttpClient client_;
  std::vector<net::Endpoint> backends_;
  Balance balance_;
  std::size_t rr_next_ = 0;
  std::vector<int> outstanding_;
  std::vector<std::uint64_t> dispatched_;
  std::uint64_t relayed_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace hipcloud::apps
