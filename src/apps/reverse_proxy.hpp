#pragma once

#include <string>
#include <vector>

#include "apps/http_client.hpp"
#include "apps/http_server.hpp"

namespace hipcloud::apps {

/// HAProxy-flavoured failure masking for ReverseProxy. (Namespace-scope
/// rather than nested so it can be a defaulted constructor argument —
/// a nested aggregate's member initializers are not parsed early enough
/// for that.)
struct ProxyHealthConfig {
  /// Consecutive upstream failures that eject a backend from rotation
  /// (HAProxy `fall`).
  int max_failures = 3;
  /// How often an ejected backend is re-probed (`inter` for DOWN
  /// servers).
  sim::Duration reprobe_interval = 2 * sim::kSecond;
  /// Path the health probe GETs.
  std::string probe_path = "/";
  /// Idempotent (GET) redispatches to an alternate backend after an
  /// upstream failure; 0 disables retry.
  int retry_limit = 1;
  /// Delay before each redispatch.
  sim::Duration retry_backoff = sim::from_millis(50);
  /// Per-request upstream timeout (`timeout server`).
  sim::Duration upstream_timeout = 10 * sim::kSecond;
};

/// HAProxy-style reverse HTTP proxy / load balancer.
///
/// This is the keystone of the paper's end-to-middle deployment: the
/// front side faces consumers with plain HTTP or HTTPS (no HIP required
/// on clients), while the back side addresses the web-server VMs by HIT
/// or LSI so the proxy's HIP daemon protects everything entering the
/// cloud. Round-robin balancing matches the paper's HAProxy
/// configuration; health checks and idempotent-retry mirror HAProxy's
/// `check`/`redispatch` options so a crashed backend is masked from
/// clients instead of surfacing as 502s.
class ReverseProxy {
 public:
  enum class Balance { kRoundRobin, kLeastOutstanding };

  using HealthConfig = ProxyHealthConfig;

  ReverseProxy(net::Node* node, net::TcpStack* tcp, std::uint16_t port,
               TransportConfig front, TransportConfig back,
               std::vector<net::Endpoint> backends,
               Balance balance = Balance::kRoundRobin,
               HealthConfig health = {});

  std::uint64_t relayed() const { return relayed_; }
  std::uint64_t errors() const { return errors_; }
  const std::vector<net::Endpoint>& backends() const { return backends_; }
  /// Requests currently in flight towards each backend (index-aligned).
  const std::vector<int>& outstanding() const { return outstanding_; }
  /// Total requests dispatched to each backend (index-aligned).
  const std::vector<std::uint64_t>& dispatched() const { return dispatched_; }

  /// Health state (index-aligned with backends()).
  bool healthy(std::size_t idx) const { return healthy_[idx] != 0; }
  std::uint64_t ejections() const { return ejections_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t revivals() const { return revivals_; }
  std::uint64_t retries() const { return retries_; }

 private:
  std::size_t pick_backend();
  void dispatch(HttpRequest req, HttpServer::RespondFn respond, int attempt);
  void note_failure(std::size_t idx);
  void eject(std::size_t idx);
  void probe(std::size_t idx);

  net::Node* node_;
  HttpServer server_;
  HttpClient client_;
  std::vector<net::Endpoint> backends_;
  Balance balance_;
  HealthConfig health_;
  std::size_t rr_next_ = 0;
  std::vector<int> outstanding_;
  std::vector<std::uint64_t> dispatched_;
  std::vector<char> healthy_;
  std::vector<int> consec_failures_;
  std::uint64_t relayed_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t ejections_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t revivals_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace hipcloud::apps
