#include "apps/http.hpp"

#include <algorithm>
#include <charconv>

namespace hipcloud::apps {

using crypto::Bytes;
using crypto::BytesView;

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

void append_str(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

Bytes HttpRequest::serialize() const {
  Bytes out;
  append_str(out, method);
  append_str(out, " ");
  append_str(out, path);
  append_str(out, " HTTP/1.1\r\n");
  auto hdrs = headers;
  hdrs["content-length"] = std::to_string(body.size());
  for (const auto& [name, value] : hdrs) {
    append_str(out, name);
    append_str(out, ": ");
    append_str(out, value);
    append_str(out, "\r\n");
  }
  append_str(out, "\r\n");
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::string HttpRequest::path_only() const {
  const auto q = path.find('?');
  return q == std::string::npos ? path : path.substr(0, q);
}

std::optional<std::string> HttpRequest::query_param(
    const std::string& name) const {
  const auto q = path.find('?');
  if (q == std::string::npos) return std::nullopt;
  std::string query = path.substr(q + 1);
  std::size_t pos = 0;
  while (pos <= query.size()) {
    const auto amp = query.find('&', pos);
    const std::string pair =
        query.substr(pos, amp == std::string::npos ? amp : amp - pos);
    const auto eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == name) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return std::nullopt;
}

Bytes HttpResponse::serialize() const {
  Bytes out;
  append_str(out, "HTTP/1.1 ");
  append_str(out, std::to_string(status));
  append_str(out, " ");
  append_str(out, status_text(status));
  append_str(out, "\r\n");
  auto hdrs = headers;
  hdrs["content-length"] = std::to_string(body.size());
  for (const auto& [name, value] : hdrs) {
    append_str(out, name);
    append_str(out, ": ");
    append_str(out, value);
    append_str(out, "\r\n");
  }
  append_str(out, "\r\n");
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

HttpResponse HttpResponse::make(int status, Bytes body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

void HttpParser::feed(BytesView chunk) {
  if (error_) return;
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  while (try_parse()) {
  }
}

bool HttpParser::try_parse() {
  // Find the end of the header block.
  static const char* kSep = "\r\n\r\n";
  const auto it = std::search(buf_.begin(), buf_.end(), kSep, kSep + 4);
  if (it == buf_.end()) {
    if (buf_.size() > 64 * 1024) error_ = true;  // header flood guard
    return false;
  }
  const std::size_t header_len =
      static_cast<std::size_t>(it - buf_.begin()) + 4;
  const std::string head(buf_.begin(), buf_.begin() + header_len - 4);

  // Split head into lines.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    const auto eol = head.find("\r\n", pos);
    lines.push_back(head.substr(pos, eol == std::string::npos ? eol
                                                              : eol - pos));
    if (eol == std::string::npos) break;
    pos = eol + 2;
  }
  if (lines.empty()) {
    error_ = true;
    return false;
  }

  std::map<std::string, std::string> headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto colon = lines[i].find(':');
    if (colon == std::string::npos) {
      error_ = true;
      return false;
    }
    std::string value = lines[i].substr(colon + 1);
    const auto start = value.find_first_not_of(' ');
    value = start == std::string::npos ? "" : value.substr(start);
    headers[to_lower(lines[i].substr(0, colon))] = value;
  }

  std::size_t content_length = 0;
  if (const auto cl = headers.find("content-length"); cl != headers.end()) {
    const auto& s = cl->second;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), content_length);
    if (ec != std::errc() || ptr != s.data() + s.size()) {
      error_ = true;
      return false;
    }
  }
  if (buf_.size() < header_len + content_length) return false;  // need body

  Bytes body(buf_.begin() + static_cast<long>(header_len),
             buf_.begin() + static_cast<long>(header_len + content_length));
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<long>(header_len + content_length));

  // Parse the start line.
  const std::string& start_line = lines[0];
  if (kind_ == Kind::kRequest) {
    const auto sp1 = start_line.find(' ');
    const auto sp2 = start_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      error_ = true;
      return false;
    }
    HttpRequest req;
    req.method = start_line.substr(0, sp1);
    req.path = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.headers = std::move(headers);
    req.body = std::move(body);
    requests_.push_back(std::move(req));
  } else {
    const auto sp1 = start_line.find(' ');
    if (sp1 == std::string::npos) {
      error_ = true;
      return false;
    }
    HttpResponse resp;
    resp.status = std::atoi(start_line.c_str() + sp1 + 1);
    resp.headers = std::move(headers);
    resp.body = std::move(body);
    responses_.push_back(std::move(resp));
  }
  return true;
}

std::optional<HttpRequest> HttpParser::next_request() {
  if (requests_.empty()) return std::nullopt;
  HttpRequest req = std::move(requests_.front());
  requests_.erase(requests_.begin());
  return req;
}

std::optional<HttpResponse> HttpParser::next_response() {
  if (responses_.empty()) return std::nullopt;
  HttpResponse resp = std::move(responses_.front());
  responses_.erase(responses_.begin());
  return resp;
}

}  // namespace hipcloud::apps
