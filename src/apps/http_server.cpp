#include "apps/http_server.hpp"

#include "sim/log.hpp"

namespace hipcloud::apps {

HttpServer::HttpServer(net::Node* node, net::TcpStack* tcp,
                       std::uint16_t port, TransportConfig transport)
    : node_(node), transport_(std::move(transport)) {
  tcp->listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    on_accept(std::move(conn));
  });
}

void HttpServer::on_accept(std::shared_ptr<net::TcpConnection> conn) {
  const std::uint64_t id = next_id_++;
  auto session = std::make_shared<Session>();
  session->stream = make_server_stream(std::move(conn), node_, transport_);
  sessions_[id] = session;

  session->stream->on_data([this, id](crypto::Bytes chunk) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    it->second->parser.feed(chunk);
    if (it->second->parser.error()) {
      it->second->stream->close();
      sessions_.erase(it);
      return;
    }
    pump(id);
  });
  session->stream->on_close([this, id] {
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      it->second->closed = true;
      if (!it->second->busy) sessions_.erase(it);
    }
  });
}

void HttpServer::pump(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  auto session = it->second;
  if (session->busy || session->closed) return;
  auto request = session->parser.next_request();
  if (!request) return;
  session->busy = true;

  // Charge request-processing CPU, then hand to the handler.
  node_->cpu().run(request_cycles_, [this, id, session,
                                     req = std::move(*request)] {
    if (session->closed) {
      session->busy = false;
      sessions_.erase(id);
      return;
    }
    auto respond = [this, id, session](HttpResponse resp) {
      if (session->closed) {
        session->busy = false;
        sessions_.erase(id);
        return;
      }
      session->stream->send(resp.serialize());
      ++requests_served_;
      session->busy = false;
      pump(id);  // next pipelined request, if any
    };
    if (handler_) {
      handler_(req, std::move(respond));
    } else {
      respond(HttpResponse::make(404, crypto::to_bytes("no handler")));
    }
  });
}

}  // namespace hipcloud::apps
