#pragma once

#include "apps/database.hpp"
#include "apps/http_server.hpp"
#include "sim/random.hpp"

namespace hipcloud::apps {

/// Shape of the synthetic RUBiS-like auction dataset.
struct RubisConfig {
  std::size_t items = 2000;
  std::size_t users = 500;
  std::size_t bids = 5000;
  std::size_t item_bytes = 2048;
  std::size_t user_bytes = 512;
  std::size_t bid_bytes = 256;
  /// Drop POST /bid from the request mix (its 10% bucket falls through
  /// to /user). Failover drills use this: only idempotent requests are
  /// redispatched after an upstream failure (HAProxy `redispatch`
  /// semantics), so a mix with writes cannot promise zero client-visible
  /// errors across an outage.
  bool read_only = false;
};

/// Bulk-load the auction tables into a DatabaseServer.
void load_rubis_dataset(DatabaseServer& db, const RubisConfig& config);

/// The web tier of the auction service: an HttpServer whose handler maps
/// RUBiS-style endpoints onto database queries, mirroring the paper's
/// "lightweight web servers connected to a high-performance database
/// server" tier. Endpoints:
///   /home           static page, no DB
///   /browse?page=N  item listing (RANGE query)
///   /item?id=N      item details + seller (two GETs)
///   /bids?item=N    bid history (RANGE)
///   /user?id=N      user profile (GET)
///   /bid (POST)     place a bid (PUT)
class RubisWebServer {
 public:
  RubisWebServer(net::Node* node, net::TcpStack* tcp, std::uint16_t port,
                 TransportConfig front, net::Endpoint db,
                 TransportConfig db_transport, RubisConfig config = {});

  std::uint64_t requests_served() const { return server_.requests_served(); }
  std::uint64_t db_failures() const { return db_.failures(); }

  /// CPU cycles per request for the dynamic-page logic (PHP-style
  /// templating in the original RUBiS) — the web tier's dominant cost.
  void set_request_cycles(double cycles) {
    server_.set_request_cycles(cycles);
  }

 private:
  void handle(const HttpRequest& req, HttpServer::RespondFn respond);
  static crypto::Bytes render(const std::string& title, const DbResult& rows,
                              std::size_t min_size);

  HttpServer server_;
  DbClient db_;
  RubisConfig config_;
  std::uint64_t next_bid_id_ = 1000000;
};

/// Generates the paper's workload: random RUBiS requests with a
/// browse-heavy mix (the read-dominated profile RUBiS models after ebay).
class RubisRequestMix {
 public:
  RubisRequestMix(RubisConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  HttpRequest next();

 private:
  RubisConfig config_;
  sim::Xoshiro256 rng_;
};

}  // namespace hipcloud::apps
