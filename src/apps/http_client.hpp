#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "apps/http.hpp"
#include "apps/stream.hpp"

namespace hipcloud::apps {

/// HTTP/1.1 client with per-destination keep-alive connection pooling
/// (one outstanding request per connection, new connections opened on
/// demand up to a cap — jmeter/HAProxy-style behaviour).
class HttpClient {
 public:
  /// Response or nullopt on timeout/connection failure, plus the request
  /// latency (issue -> response).
  using ResponseFn =
      std::function<void(std::optional<HttpResponse>, sim::Duration)>;

  HttpClient(net::Node* node, net::TcpStack* tcp,
             TransportConfig transport = {});

  void request(const net::Endpoint& dst, HttpRequest req, ResponseFn done);

  void set_timeout(sim::Duration timeout) { timeout_ = timeout; }
  void set_max_connections_per_endpoint(std::size_t n) { max_conns_ = n; }

  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t failures() const { return failures_; }

 private:
  struct Conn {
    std::unique_ptr<Stream> stream;
    HttpParser parser{HttpParser::Kind::kResponse};
    bool connected = false;
    bool busy = false;
    bool dead = false;
    // In-flight request state.
    ResponseFn done;
    sim::Time issued_at = 0;
    sim::EventHandle timeout_timer;
    bool timer_armed = false;
  };
  struct Waiting {
    HttpRequest req;
    ResponseFn done;
    std::uint64_t id;
  };
  struct Pool {
    std::map<std::uint64_t, std::shared_ptr<Conn>> conns;
    std::deque<Waiting> waiting;
  };

  void dispatch(const net::Endpoint& dst);
  void issue(const net::Endpoint& dst, std::uint64_t conn_id,
             HttpRequest req, ResponseFn done);
  void finish(const net::Endpoint& dst, std::uint64_t conn_id,
              std::optional<HttpResponse> resp);

  net::Node* node_;
  net::TcpStack* tcp_;
  TransportConfig transport_;
  sim::Duration timeout_ = 30 * sim::kSecond;
  std::size_t max_conns_ = 64;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_waiting_id_ = 1;
  std::map<net::Endpoint, Pool> pools_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace hipcloud::apps
