#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "apps/http.hpp"
#include "apps/stream.hpp"

namespace hipcloud::apps {

/// Lightweight HTTP/1.1 server with keep-alive, serving one request at a
/// time per connection (matching the thttpd-class servers the paper's
/// web tier used). Handlers respond asynchronously, which lets them
/// query the database tier first.
class HttpServer {
 public:
  using RespondFn = std::function<void(HttpResponse)>;
  using Handler = std::function<void(const HttpRequest&, RespondFn)>;

  HttpServer(net::Node* node, net::TcpStack* tcp, std::uint16_t port,
             TransportConfig transport = {});

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// CPU cycles charged per request before the handler runs (parsing,
  /// dispatch, templating). Default approximates a small PHP-less
  /// dynamic endpoint.
  void set_request_cycles(double cycles) { request_cycles_ = cycles; }

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t active_connections() const { return sessions_.size(); }

 private:
  struct Session {
    std::unique_ptr<Stream> stream;
    HttpParser parser{HttpParser::Kind::kRequest};
    bool busy = false;   // a request is being handled
    bool closed = false;
  };

  void on_accept(std::shared_ptr<net::TcpConnection> conn);
  void pump(std::uint64_t id);

  net::Node* node_;
  TransportConfig transport_;
  Handler handler_;
  double request_cycles_ = 60e3;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t requests_served_ = 0;
};

}  // namespace hipcloud::apps
