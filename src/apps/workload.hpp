#pragma once

#include <functional>
#include <memory>

#include "apps/http_client.hpp"
#include "apps/rubis.hpp"
#include "sim/stats.hpp"

namespace hipcloud::apps {

/// Result of a load-generation run.
struct LoadReport {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  double duration_seconds = 0;
  sim::Summary latency_ms;

  double throughput_rps() const {
    return duration_seconds > 0
               ? static_cast<double>(completed) / duration_seconds
               : 0;
  }
};

/// jmeter-style closed-loop load: N virtual users, each issuing the next
/// request as soon as (think time after) the previous response arrives.
/// Requests come from a RubisRequestMix unless a fixed path is set.
class ClosedLoopClients {
 public:
  struct Config {
    int concurrency = 10;
    sim::Duration think_time = 0;
    sim::Duration duration = 30 * sim::kSecond;
    /// Ignore results during this initial window (ramp-up).
    sim::Duration warmup = 2 * sim::kSecond;
    net::Endpoint target;
    TransportConfig transport;
    RubisConfig mix;
    std::uint64_t seed = 1;
    /// When non-empty, every request GETs this fixed path instead of the
    /// RUBiS mix (used by the httperf-style comparisons).
    std::string fixed_path;
  };

  using DoneFn = std::function<void(const LoadReport&)>;

  ClosedLoopClients(net::Node* node, net::TcpStack* tcp, Config config);

  void start(DoneFn done);

 private:
  void user_loop(int user);
  HttpRequest next_request();

  net::Node* node_;
  Config config_;
  HttpClient client_;
  RubisRequestMix mix_;
  sim::Xoshiro256 rng_;
  LoadReport report_;
  sim::Time started_at_ = 0;
  sim::Time deadline_ = 0;
  int active_users_ = 0;
  DoneFn done_;
};

/// httperf-style open-loop generator: requests at a fixed rate regardless
/// of completions, measuring response times.
class OpenLoopGenerator {
 public:
  struct Config {
    double rate_rps = 120.0;  // the paper's httperf rate
    sim::Duration duration = 30 * sim::kSecond;
    sim::Duration warmup = 2 * sim::kSecond;
    net::Endpoint target;
    TransportConfig transport;
    RubisConfig mix;
    std::uint64_t seed = 1;
    std::string fixed_path;
    /// Poisson arrivals when true; evenly spaced (httperf default) when
    /// false.
    bool poisson = false;
  };

  using DoneFn = std::function<void(const LoadReport&)>;

  OpenLoopGenerator(net::Node* node, net::TcpStack* tcp, Config config);

  void start(DoneFn done);

 private:
  void schedule_next(sim::Time when);
  HttpRequest next_request();

  net::Node* node_;
  Config config_;
  HttpClient client_;
  RubisRequestMix mix_;
  sim::Xoshiro256 rng_;
  LoadReport report_;
  sim::Time started_at_ = 0;
  sim::Time deadline_ = 0;
  std::uint64_t outstanding_ = 0;
  bool generating_ = false;
  DoneFn done_;
};

/// iperf-style bulk TCP throughput measurement.
class IperfServer {
 public:
  IperfServer(net::Node* node, net::TcpStack* tcp, std::uint16_t port);

  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  std::uint64_t bytes_received_ = 0;
  std::vector<std::shared_ptr<net::TcpConnection>> conns_;
};

class IperfClient {
 public:
  struct Report {
    double mbits_per_second = 0;
    std::uint64_t bytes_sent = 0;
  };
  using DoneFn = std::function<void(const Report&)>;

  /// Stream data to `dst` for `duration`, then report goodput measured at
  /// the sender (acked bytes / time), like iperf's sender-side report.
  static void run(net::Node* node, net::TcpStack* tcp,
                  const net::Endpoint& dst, sim::Duration duration,
                  DoneFn done);
};

}  // namespace hipcloud::apps
