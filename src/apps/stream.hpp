#pragma once

#include <functional>
#include <memory>

#include "net/tcp.hpp"
#include "tls/tls.hpp"

namespace hipcloud::apps {

/// Transport-agnostic byte stream: the same application code runs over
/// plain TCP (the paper's "basic" scenario and the HIP scenario, where
/// security lives below at layer 3.5) or over TLS (the "SSL" scenario).
class Stream {
 public:
  using ReadyFn = std::function<void()>;
  using DataFn = std::function<void(crypto::Bytes)>;
  using CloseFn = std::function<void()>;

  virtual ~Stream() = default;

  virtual void send(crypto::Bytes data) = 0;
  virtual void close() = 0;
  virtual bool ready() const = 0;
  virtual void on_ready(ReadyFn fn) = 0;
  virtual void on_data(DataFn fn) = 0;
  virtual void on_close(CloseFn fn) = 0;
};

/// How to secure a hop. `kPlain` covers both the basic scenario and HIP
/// (with HIP, protection happens in the HIP daemon under the socket API —
/// exactly the transparency the paper advertises).
struct TransportConfig {
  enum class Kind { kPlain, kTls };
  Kind kind = Kind::kPlain;
  tls::TlsConfig tls;
  std::uint64_t tls_seed = 1;
};

/// Wrap an outgoing TCP connection according to the transport config.
std::unique_ptr<Stream> make_client_stream(
    std::shared_ptr<net::TcpConnection> conn, net::Node* node,
    const TransportConfig& config);

/// Wrap an accepted TCP connection according to the transport config.
std::unique_ptr<Stream> make_server_stream(
    std::shared_ptr<net::TcpConnection> conn, net::Node* node,
    const TransportConfig& config);

}  // namespace hipcloud::apps
