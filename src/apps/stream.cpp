#include "apps/stream.hpp"

namespace hipcloud::apps {

namespace {

class TcpStream final : public Stream {
 public:
  explicit TcpStream(std::shared_ptr<net::TcpConnection> conn)
      : conn_(std::move(conn)) {}

  void send(crypto::Bytes data) override { conn_->send(std::move(data)); }
  void close() override { conn_->close(); }
  bool ready() const override { return conn_->established(); }
  void on_ready(ReadyFn fn) override {
    if (conn_->established()) {
      fn();
    } else {
      conn_->on_connect(std::move(fn));
    }
  }
  void on_data(DataFn fn) override { conn_->on_data(std::move(fn)); }
  void on_close(CloseFn fn) override { conn_->on_close(std::move(fn)); }

 private:
  std::shared_ptr<net::TcpConnection> conn_;
};

class TlsStream final : public Stream {
 public:
  TlsStream(std::shared_ptr<net::TcpConnection> conn, net::Node* node,
            const TransportConfig& config, bool is_client) {
    session_ = is_client
                   ? tls::TlsSession::client(std::move(conn), node,
                                             config.tls, config.tls_seed)
                   : tls::TlsSession::server(std::move(conn), node,
                                             config.tls, config.tls_seed);
  }

  void send(crypto::Bytes data) override { session_->send(std::move(data)); }
  void close() override { session_->close(); }
  bool ready() const override { return session_->established(); }
  void on_ready(ReadyFn fn) override {
    if (session_->established()) {
      fn();
    } else {
      session_->on_established(std::move(fn));
    }
  }
  void on_data(DataFn fn) override { session_->on_data(std::move(fn)); }
  void on_close(CloseFn fn) override { session_->on_close(std::move(fn)); }

 private:
  std::shared_ptr<tls::TlsSession> session_;
};

}  // namespace

std::unique_ptr<Stream> make_client_stream(
    std::shared_ptr<net::TcpConnection> conn, net::Node* node,
    const TransportConfig& config) {
  if (config.kind == TransportConfig::Kind::kPlain) {
    return std::make_unique<TcpStream>(std::move(conn));
  }
  return std::make_unique<TlsStream>(std::move(conn), node, config,
                                     /*is_client=*/true);
}

std::unique_ptr<Stream> make_server_stream(
    std::shared_ptr<net::TcpConnection> conn, net::Node* node,
    const TransportConfig& config) {
  if (config.kind == TransportConfig::Kind::kPlain) {
    return std::make_unique<TcpStream>(std::move(conn));
  }
  return std::make_unique<TlsStream>(std::move(conn), node, config,
                                     /*is_client=*/false);
}

}  // namespace hipcloud::apps
