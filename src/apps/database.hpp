#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "apps/stream.hpp"

namespace hipcloud::apps {

/// Result of a database query: rows of (id, payload).
struct DbResult {
  bool ok = true;
  std::vector<std::pair<std::uint64_t, crypto::Bytes>> rows;

  crypto::Bytes serialize() const;
  static std::optional<DbResult> parse(crypto::BytesView wire);
};

struct DbConfig {
  /// MySQL-style query cache: identical SELECTs served from memory. The
  /// paper enables this only for the httperf response-time experiment.
  bool query_cache = false;
  /// Cost model (cycles): parse/plan/execute baseline per query, per row
  /// touched, per byte shipped, and the cheap cache-hit path.
  double base_cycles = 150e3;
  double per_row_cycles = 1800;
  double per_byte_cycles = 3.0;
  double cache_hit_cycles = 25e3;
  TransportConfig transport;
};

/// The database server ("MySQL 5.1 on an m1.large" in the paper's
/// setup). Speaks a tiny SQL-ish text protocol over length-prefixed
/// frames:
///   GET <table> <id>
///   RANGE <table> <lo> <hi>      (rows with lo <= id < hi)
///   PUT <table> <id> <size>      (synthetic payload of `size` bytes)
///   COUNT <table>
class DatabaseServer {
 public:
  DatabaseServer(net::Node* node, net::TcpStack* tcp, std::uint16_t port,
                 DbConfig config = {});

  /// Bulk-load a synthetic row (dataset setup; no cost charged).
  void load_row(const std::string& table, std::uint64_t id,
                std::size_t payload_size);
  std::size_t table_size(const std::string& table) const;

  std::uint64_t queries_executed() const { return queries_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct Session {
    std::unique_ptr<Stream> stream;
    crypto::Bytes buf;
    bool busy = false;
    std::deque<std::string> pending;
    bool closed = false;
  };

  void on_accept(std::shared_ptr<net::TcpConnection> conn);
  void pump(std::uint64_t id);
  /// Executes the query, returns the result and its cost in cycles.
  std::pair<DbResult, double> execute(const std::string& query);

  net::Node* node_;
  DbConfig config_;
  std::map<std::string, std::map<std::uint64_t, crypto::Bytes>> tables_;
  std::map<std::string, crypto::Bytes> cache_;  // query -> serialized result
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t queries_ = 0;
  std::uint64_t cache_hits_ = 0;
};

/// Client side: pooled connections, one outstanding query per connection.
class DbClient {
 public:
  using ResultFn = std::function<void(std::optional<DbResult>, sim::Duration)>;

  DbClient(net::Node* node, net::TcpStack* tcp, net::Endpoint server,
           TransportConfig transport = {});

  void query(const std::string& q, ResultFn done);

  std::uint64_t failures() const { return failures_; }

 private:
  struct Conn {
    std::unique_ptr<Stream> stream;
    crypto::Bytes buf;
    bool connected = false;
    bool busy = false;
    bool dead = false;
    ResultFn done;
    sim::Time issued_at = 0;
  };

  void dispatch();
  void finish(std::uint64_t conn_id, std::optional<DbResult> result);

  net::Node* node_;
  net::TcpStack* tcp_;
  net::Endpoint server_;
  TransportConfig transport_;
  std::size_t max_conns_ = 16;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::deque<std::pair<std::string, ResultFn>> waiting_;
  std::uint64_t failures_ = 0;
};

}  // namespace hipcloud::apps
