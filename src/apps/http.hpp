#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/bytes.hpp"

namespace hipcloud::apps {

/// HTTP/1.1 request. Header names are stored lowercase.
struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::map<std::string, std::string> headers;
  crypto::Bytes body;

  crypto::Bytes serialize() const;

  /// Value of a query parameter in the path ("/item?id=7" -> "7").
  std::optional<std::string> query_param(const std::string& name) const;
  /// Path portion before '?'.
  std::string path_only() const;
};

/// HTTP/1.1 response.
struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  crypto::Bytes body;

  crypto::Bytes serialize() const;
  static HttpResponse make(int status, crypto::Bytes body);
};

/// Incremental parser for a stream of HTTP messages (requests or
/// responses, chosen by `kind`). Feed arbitrary chunks; complete messages
/// pop out. Framing is Content-Length based (no chunked encoding — the
/// simulated services always set it).
class HttpParser {
 public:
  enum class Kind { kRequest, kResponse };

  explicit HttpParser(Kind kind) : kind_(kind) {}

  void feed(crypto::BytesView chunk);

  /// Pop the next complete request (kRequest parsers only).
  std::optional<HttpRequest> next_request();
  /// Pop the next complete response (kResponse parsers only).
  std::optional<HttpResponse> next_response();

  /// True when malformed input was encountered; the stream should be
  /// closed.
  bool error() const { return error_; }

 private:
  bool try_parse();

  Kind kind_;
  crypto::Bytes buf_;
  std::vector<HttpRequest> requests_;
  std::vector<HttpResponse> responses_;
  bool error_ = false;
};

}  // namespace hipcloud::apps
