#include "apps/reverse_proxy.hpp"

#include <algorithm>
#include <stdexcept>

namespace hipcloud::apps {

ReverseProxy::ReverseProxy(net::Node* node, net::TcpStack* tcp,
                           std::uint16_t port, TransportConfig front,
                           TransportConfig back,
                           std::vector<net::Endpoint> backends,
                           Balance balance)
    : server_(node, tcp, port, std::move(front)),
      client_(node, tcp, std::move(back)), backends_(std::move(backends)),
      balance_(balance), outstanding_(backends_.size(), 0),
      dispatched_(backends_.size(), 0) {
  if (backends_.empty()) {
    throw std::invalid_argument("ReverseProxy: no backends");
  }
  // Proxying is cheap per request compared to a dynamic endpoint.
  server_.set_request_cycles(25e3);
  // Fail towards the client well before the client's own timeout
  // (HAProxy-style server timeout).
  client_.set_timeout(10 * sim::kSecond);
  server_.set_handler(
      [this](const HttpRequest& req, HttpServer::RespondFn respond) {
        const std::size_t idx = pick_backend();
        ++outstanding_[idx];
        ++dispatched_[idx];
        client_.request(
            backends_[idx], req,
            [this, idx, respond = std::move(respond)](
                std::optional<HttpResponse> resp, sim::Duration) {
              --outstanding_[idx];
              if (resp) {
                ++relayed_;
                respond(std::move(*resp));
              } else {
                ++errors_;
                respond(HttpResponse::make(
                    502, crypto::to_bytes("upstream failure")));
              }
            });
      });
}

std::size_t ReverseProxy::pick_backend() {
  if (balance_ == Balance::kRoundRobin) {
    const std::size_t idx = rr_next_ % backends_.size();
    ++rr_next_;
    return idx;
  }
  return static_cast<std::size_t>(
      std::min_element(outstanding_.begin(), outstanding_.end()) -
      outstanding_.begin());
}

}  // namespace hipcloud::apps
