#include "apps/reverse_proxy.hpp"

#include <stdexcept>
#include <utility>

#include "sim/log.hpp"

namespace hipcloud::apps {

ReverseProxy::ReverseProxy(net::Node* node, net::TcpStack* tcp,
                           std::uint16_t port, TransportConfig front,
                           TransportConfig back,
                           std::vector<net::Endpoint> backends,
                           Balance balance, HealthConfig health)
    : node_(node), server_(node, tcp, port, std::move(front)),
      client_(node, tcp, std::move(back)), backends_(std::move(backends)),
      balance_(balance), health_(std::move(health)),
      outstanding_(backends_.size(), 0), dispatched_(backends_.size(), 0),
      healthy_(backends_.size(), 1), consec_failures_(backends_.size(), 0) {
  if (backends_.empty()) {
    throw std::invalid_argument("ReverseProxy: no backends");
  }
  // Proxying is cheap per request compared to a dynamic endpoint.
  server_.set_request_cycles(25e3);
  // Fail towards the client well before the client's own timeout
  // (HAProxy-style server timeout).
  client_.set_timeout(health_.upstream_timeout);
  server_.set_handler(
      [this](const HttpRequest& req, HttpServer::RespondFn respond) {
        dispatch(req, std::move(respond), 0);
      });
}

std::size_t ReverseProxy::pick_backend() {
  const std::size_t n = backends_.size();
  const std::size_t start = rr_next_++ % n;
  if (balance_ == Balance::kRoundRobin) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (start + k) % n;
      if (healthy_[idx]) return idx;
    }
    return start;  // everything ejected: fail open rather than refuse
  }
  // Least-outstanding. Scanning from a rotating start index and keeping
  // only strict improvements makes ties rotate across backends; scanning
  // always from 0 (std::min_element) pinned every tie — in particular
  // the all-zeros state at startup and after idle — to backend 0.
  bool found = false;
  std::size_t best = start;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (start + k) % n;
    if (!healthy_[idx]) continue;
    if (!found || outstanding_[idx] < outstanding_[best]) {
      best = idx;
      found = true;
    }
  }
  return best;
}

void ReverseProxy::dispatch(HttpRequest req, HttpServer::RespondFn respond,
                            int attempt) {
  const std::size_t idx = pick_backend();
  ++outstanding_[idx];
  ++dispatched_[idx];
  client_.request(
      backends_[idx], req,
      [this, idx, req, attempt, respond = std::move(respond)](
          std::optional<HttpResponse> resp, sim::Duration) mutable {
        --outstanding_[idx];
        if (resp) {
          consec_failures_[idx] = 0;
          ++relayed_;
          respond(std::move(*resp));
          return;
        }
        note_failure(idx);
        // Redispatch idempotent requests once the backoff elapses; a
        // different backend is preferred automatically because the
        // failed one is either ejected or deprioritised by rotation.
        if (req.method == "GET" && attempt < health_.retry_limit) {
          ++retries_;
          node_->network().loop().schedule(
              health_.retry_backoff,
              [this, req = std::move(req), attempt,
               respond = std::move(respond)]() mutable {
                dispatch(std::move(req), std::move(respond), attempt + 1);
              });
          return;
        }
        ++errors_;
        respond(
            HttpResponse::make(502, crypto::to_bytes("upstream failure")));
      });
}

void ReverseProxy::note_failure(std::size_t idx) {
  ++consec_failures_[idx];
  if (healthy_[idx] && consec_failures_[idx] >= health_.max_failures) {
    eject(idx);
  }
}

void ReverseProxy::eject(std::size_t idx) {
  healthy_[idx] = 0;
  ++ejections_;
  HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(), "proxy",
               node_->name() + ": backend " + std::to_string(idx) +
                   " ejected after " +
                   std::to_string(consec_failures_[idx]) +
                   " consecutive failures");
  node_->network().loop().schedule(health_.reprobe_interval,
                                   [this, idx] { probe(idx); });
}

void ReverseProxy::probe(std::size_t idx) {
  if (healthy_[idx]) return;
  ++probes_sent_;
  HttpRequest req;
  req.path = health_.probe_path;
  client_.request(
      backends_[idx], std::move(req),
      [this, idx](std::optional<HttpResponse> resp, sim::Duration) {
        if (resp && resp->status < 500) {
          healthy_[idx] = 1;
          consec_failures_[idx] = 0;
          ++revivals_;
          HIPCLOUD_LOG(sim::LogLevel::kInfo,
                       node_->network().loop().now(), "proxy",
                       node_->name() + ": backend " +
                           std::to_string(idx) + " back in rotation");
          return;
        }
        node_->network().loop().schedule(health_.reprobe_interval,
                                         [this, idx] { probe(idx); });
      });
}

}  // namespace hipcloud::apps
