#include "apps/database.hpp"

#include <sstream>

#include "net/wire_reader.hpp"
#include "sim/log.hpp"

namespace hipcloud::apps {

using crypto::Bytes;
using crypto::BytesView;

namespace {

/// Frame: length(4) | payload. Returns complete frames from buf.
std::optional<Bytes> pop_frame(Bytes& buf) {
  if (buf.size() < 4) return std::nullopt;
  const auto len = static_cast<std::size_t>(crypto::read_be(buf, 0, 4));
  if (buf.size() < 4 + len) return std::nullopt;
  Bytes frame(buf.begin() + 4, buf.begin() + 4 + static_cast<long>(len));
  buf.erase(buf.begin(), buf.begin() + 4 + static_cast<long>(len));
  return frame;
}

Bytes frame(BytesView payload) {
  Bytes out;
  crypto::append_be(out, payload.size(), 4);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Deterministic synthetic row payload.
Bytes synthetic_row(const std::string& table, std::uint64_t id,
                    std::size_t size) {
  Bytes row(size);
  std::uint64_t x = id * 0x9e3779b97f4a7c15ULL + table.size();
  for (auto& b : row) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return row;
}

}  // namespace

Bytes DbResult::serialize() const {
  Bytes out;
  out.push_back(ok ? 1 : 0);
  crypto::append_be(out, rows.size(), 4);
  for (const auto& [id, payload] : rows) {
    crypto::append_be(out, id, 8);
    crypto::append_be(out, payload.size(), 4);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

// hipcheck:wire_input
std::optional<DbResult> DbResult::parse(BytesView wire) {
  hipcloud::wire::Reader r(wire);
  const auto ok = r.u8();
  const auto count = r.u32be();
  if (!ok || !count) return std::nullopt;
  DbResult result;
  result.ok = *ok == 1;
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto id_hi = r.u32be();
    const auto id_lo = r.u32be();
    const auto len = r.u32be();
    if (!id_hi || !id_lo || !len) return std::nullopt;
    const auto payload = r.bytes(*len);
    if (!payload) return std::nullopt;
    result.rows.emplace_back(
        (static_cast<std::uint64_t>(*id_hi) << 32) | *id_lo,
        Bytes(payload->begin(), payload->end()));
  }
  return result;
}

DatabaseServer::DatabaseServer(net::Node* node, net::TcpStack* tcp,
                               std::uint16_t port, DbConfig config)
    : node_(node), config_(std::move(config)) {
  tcp->listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    on_accept(std::move(conn));
  });
}

void DatabaseServer::load_row(const std::string& table, std::uint64_t id,
                              std::size_t payload_size) {
  tables_[table][id] = synthetic_row(table, id, payload_size);
}

std::size_t DatabaseServer::table_size(const std::string& table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.size();
}

void DatabaseServer::on_accept(std::shared_ptr<net::TcpConnection> conn) {
  const std::uint64_t id = next_id_++;
  auto session = std::make_shared<Session>();
  session->stream =
      make_server_stream(std::move(conn), node_, config_.transport);
  sessions_[id] = session;
  session->stream->on_data([this, id](Bytes chunk) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    auto& s = *it->second;
    s.buf.insert(s.buf.end(), chunk.begin(), chunk.end());
    while (auto f = pop_frame(s.buf)) {
      s.pending.emplace_back(f->begin(), f->end());
    }
    pump(id);
  });
  session->stream->on_close([this, id] {
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      it->second->closed = true;
      if (!it->second->busy) sessions_.erase(it);
    }
  });
}

void DatabaseServer::pump(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  auto session = it->second;
  if (session->busy || session->closed || session->pending.empty()) return;
  const std::string query = std::move(session->pending.front());
  session->pending.pop_front();
  session->busy = true;

  auto [result, cycles] = execute(query);
  node_->cpu().run(cycles, [this, id, session, r = std::move(result)] {
    session->busy = false;
    if (session->closed) {
      sessions_.erase(id);
      return;
    }
    session->stream->send(frame(r.serialize()));
    pump(id);
  });
}

std::pair<DbResult, double> DatabaseServer::execute(const std::string& query) {
  ++queries_;
  // Query cache lookup for read statements.
  const bool is_read = query.rfind("GET", 0) == 0 ||
                       query.rfind("RANGE", 0) == 0 ||
                       query.rfind("COUNT", 0) == 0;
  if (config_.query_cache && is_read) {
    const auto hit = cache_.find(query);
    if (hit != cache_.end()) {
      ++cache_hits_;
      auto result = DbResult::parse(hit->second);
      return {result ? std::move(*result) : DbResult{false, {}},
              config_.cache_hit_cycles};
    }
  }

  std::istringstream in(query);
  std::string op, table;
  in >> op >> table;
  DbResult result;
  double cycles = config_.base_cycles;

  if (op == "GET") {
    std::uint64_t id = 0;
    in >> id;
    const auto tit = tables_.find(table);
    if (tit != tables_.end()) {
      const auto rit = tit->second.find(id);
      if (rit != tit->second.end()) {
        result.rows.emplace_back(rit->first, rit->second);
      }
    }
    cycles += config_.per_row_cycles;
  } else if (op == "RANGE") {
    std::uint64_t lo = 0, hi = 0;
    in >> lo >> hi;
    const auto tit = tables_.find(table);
    if (tit != tables_.end()) {
      for (auto rit = tit->second.lower_bound(lo);
           rit != tit->second.end() && rit->first < hi; ++rit) {
        result.rows.emplace_back(rit->first, rit->second);
      }
    }
    cycles += config_.per_row_cycles * static_cast<double>(result.rows.size() + 1);
  } else if (op == "PUT") {
    std::uint64_t id = 0;
    std::size_t size = 0;
    in >> id >> size;
    tables_[table][id] = synthetic_row(table, id, size);
    cycles += 2 * config_.per_row_cycles;  // index update + write
    // Writes invalidate cached reads touching this table.
    if (config_.query_cache) {
      std::erase_if(cache_, [&table](const auto& kv) {
        return kv.first.find(table) != std::string::npos;
      });
    }
  } else if (op == "COUNT") {
    result.rows.emplace_back(table_size(table), Bytes{});
    cycles += config_.per_row_cycles;
  } else {
    result.ok = false;
  }

  std::size_t bytes_out = 0;
  for (const auto& [rid, payload] : result.rows) bytes_out += payload.size();
  cycles += config_.per_byte_cycles * static_cast<double>(bytes_out);

  if (config_.query_cache && is_read && result.ok) {
    cache_[query] = result.serialize();
  }
  return {std::move(result), cycles};
}

// ---------------------------------------------------------------------------
// DbClient

DbClient::DbClient(net::Node* node, net::TcpStack* tcp, net::Endpoint server,
                   TransportConfig transport)
    : node_(node), tcp_(tcp), server_(std::move(server)),
      transport_(std::move(transport)) {}

void DbClient::query(const std::string& q, ResultFn done) {
  waiting_.emplace_back(q, std::move(done));
  dispatch();
}

void DbClient::dispatch() {
  while (!waiting_.empty()) {
    std::uint64_t chosen = 0;
    for (auto& [id, conn] : conns_) {
      if (conn->connected && !conn->busy && !conn->dead) {
        chosen = id;
        break;
      }
    }
    if (chosen == 0) {
      bool pending_conn = false;
      for (auto& [id, conn] : conns_) {
        if (!conn->connected && !conn->dead) pending_conn = true;
      }
      if (conns_.size() >= max_conns_) return;
      if (pending_conn && conns_.size() >= waiting_.size()) return;
      const std::uint64_t id = next_conn_id_++;
      auto conn = std::make_shared<Conn>();
      std::shared_ptr<net::TcpConnection> tcp_conn;
      try {
        tcp_conn = tcp_->connect(server_);
      } catch (const std::runtime_error&) {
        auto [q, done] = std::move(waiting_.front());
        waiting_.pop_front();
        ++failures_;
        done(std::nullopt, 0);
        continue;
      }
      conn->stream = make_client_stream(std::move(tcp_conn), node_, transport_);
      conns_[id] = conn;
      conn->stream->on_ready([this, id] {
        const auto it = conns_.find(id);
        if (it == conns_.end()) return;
        it->second->connected = true;
        dispatch();
      });
      conn->stream->on_data([this, id](Bytes chunk) {
        const auto it = conns_.find(id);
        if (it == conns_.end()) return;
        auto& c = *it->second;
        c.buf.insert(c.buf.end(), chunk.begin(), chunk.end());
        if (auto f = pop_frame(c.buf)) {
          finish(id, DbResult::parse(*f));
        }
      });
      conn->stream->on_close([this, id] {
        const auto it = conns_.find(id);
        if (it == conns_.end()) return;
        it->second->dead = true;
        if (it->second->busy) {
          finish(id, std::nullopt);
          return;
        }
        const bool was_connecting = !it->second->connected;
        conns_.erase(it);
        if (was_connecting && !waiting_.empty()) {
          auto [q, done] = std::move(waiting_.front());
          waiting_.pop_front();
          ++failures_;
          done(std::nullopt, 0);
          dispatch();
        }
      });
      return;
    }
    auto conn = conns_.at(chosen);
    auto [q, done] = std::move(waiting_.front());
    waiting_.pop_front();
    conn->busy = true;
    conn->done = std::move(done);
    conn->issued_at = node_->network().loop().now();
    conn->stream->send(frame(crypto::to_bytes(q)));
  }
}

void DbClient::finish(std::uint64_t conn_id, std::optional<DbResult> result) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || !it->second->busy) return;
  auto conn = it->second;
  conn->busy = false;
  const sim::Duration latency =
      node_->network().loop().now() - conn->issued_at;
  auto done = std::move(conn->done);
  conn->done = nullptr;
  if (!result) ++failures_;
  if (conn->dead) conns_.erase(conn_id);
  if (done) done(std::move(result), latency);
  dispatch();
}

}  // namespace hipcloud::apps
