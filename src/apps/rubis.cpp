#include "apps/rubis.hpp"

namespace hipcloud::apps {

using crypto::Bytes;

void load_rubis_dataset(DatabaseServer& db, const RubisConfig& config) {
  for (std::size_t i = 0; i < config.items; ++i) {
    db.load_row("items", i, config.item_bytes);
  }
  for (std::size_t u = 0; u < config.users; ++u) {
    db.load_row("users", u, config.user_bytes);
  }
  for (std::size_t b = 0; b < config.bids; ++b) {
    db.load_row("bids", b, config.bid_bytes);
  }
}

RubisWebServer::RubisWebServer(net::Node* node, net::TcpStack* tcp,
                               std::uint16_t port, TransportConfig front,
                               net::Endpoint db, TransportConfig db_transport,
                               RubisConfig config)
    : server_(node, tcp, port, std::move(front)),
      db_(node, tcp, std::move(db), std::move(db_transport)),
      config_(config) {
  server_.set_handler([this](const HttpRequest& req,
                             HttpServer::RespondFn respond) {
    handle(req, std::move(respond));
  });
}

Bytes RubisWebServer::render(const std::string& title, const DbResult& rows,
                             std::size_t min_size) {
  // "Template rendering": page header, one fragment per row, padding to a
  // realistic page size.
  Bytes page = crypto::to_bytes("<html><head><title>" + title +
                                "</title></head><body>");
  for (const auto& [id, payload] : rows.rows) {
    const Bytes fragment = crypto::to_bytes(
        "<div class=\"row\" id=\"" + std::to_string(id) + "\">");
    page.insert(page.end(), fragment.begin(), fragment.end());
    // Embed a slice of the row payload as page content.
    const std::size_t take = std::min<std::size_t>(payload.size(), 512);
    page.insert(page.end(), payload.begin(),
                payload.begin() + static_cast<long>(take));
    const Bytes closing = crypto::to_bytes("</div>");
    page.insert(page.end(), closing.begin(), closing.end());
  }
  const Bytes footer = crypto::to_bytes("</body></html>");
  page.insert(page.end(), footer.begin(), footer.end());
  if (page.size() < min_size) page.resize(min_size, ' ');
  return page;
}

void RubisWebServer::handle(const HttpRequest& req,
                            HttpServer::RespondFn respond) {
  const std::string path = req.path_only();
  auto respond_with = [respond, path](const char* title,
                                      std::optional<DbResult> rows,
                                      std::size_t min_size) {
    if (!rows || !rows->ok) {
      respond(HttpResponse::make(500, crypto::to_bytes("db error")));
      return;
    }
    respond(HttpResponse::make(200, render(title, *rows, min_size)));
  };

  if (path == "/home") {
    respond(HttpResponse::make(
        200, render("RUBiS - auction site", DbResult{}, 1500)));
    return;
  }
  if (path == "/browse") {
    const auto page = req.query_param("page");
    const std::uint64_t p = page ? std::stoull(*page) : 0;
    const std::uint64_t lo = (p * 20) % std::max<std::size_t>(config_.items, 1);
    db_.query("RANGE items " + std::to_string(lo) + " " +
                  std::to_string(lo + 20),
              [respond_with](std::optional<DbResult> rows, sim::Duration) {
                respond_with("Browse items", std::move(rows), 4000);
              });
    return;
  }
  if (path == "/item") {
    const auto id = req.query_param("id");
    if (!id) {
      respond(HttpResponse::make(400, crypto::to_bytes("missing id")));
      return;
    }
    // Item lookup, then seller lookup — the classic two-query page.
    db_.query(
        "GET items " + *id,
        [this, respond, respond_with](std::optional<DbResult> item,
                                      sim::Duration) {
          if (!item || !item->ok || item->rows.empty()) {
            respond(HttpResponse::make(404, crypto::to_bytes("no such item")));
            return;
          }
          const std::uint64_t seller =
              item->rows[0].first % std::max<std::size_t>(config_.users, 1);
          auto combined = std::make_shared<DbResult>(std::move(*item));
          db_.query("GET users " + std::to_string(seller),
                    [respond_with, combined](std::optional<DbResult> user,
                                             sim::Duration) {
                      if (user && user->ok) {
                        for (auto& row : user->rows) {
                          combined->rows.push_back(std::move(row));
                        }
                      }
                      respond_with("Item details", *combined, 2500);
                    });
        });
    return;
  }
  if (path == "/bids") {
    const auto item = req.query_param("item");
    const std::uint64_t base =
        item ? std::stoull(*item) * 2 % std::max<std::size_t>(config_.bids, 1)
             : 0;
    db_.query("RANGE bids " + std::to_string(base) + " " +
                  std::to_string(base + 10),
              [respond_with](std::optional<DbResult> rows, sim::Duration) {
                respond_with("Bid history", std::move(rows), 2000);
              });
    return;
  }
  if (path == "/user") {
    const auto id = req.query_param("id");
    db_.query("GET users " + (id ? *id : "0"),
              [respond_with](std::optional<DbResult> rows, sim::Duration) {
                respond_with("User profile", std::move(rows), 1200);
              });
    return;
  }
  if (path == "/bid" && req.method == "POST") {
    const std::uint64_t bid_id = next_bid_id_++;
    db_.query("PUT bids " + std::to_string(bid_id) + " " +
                  std::to_string(config_.bid_bytes),
              [respond](std::optional<DbResult> result, sim::Duration) {
                if (!result || !result->ok) {
                  respond(HttpResponse::make(500,
                                             crypto::to_bytes("bid failed")));
                  return;
                }
                respond(HttpResponse::make(
                    200, crypto::to_bytes("<html>bid accepted</html>")));
              });
    return;
  }
  respond(HttpResponse::make(404, crypto::to_bytes("not found")));
}

HttpRequest RubisRequestMix::next() {
  HttpRequest req;
  const double roll = rng_.uniform();
  if (roll < 0.10) {
    req.path = "/home";
  } else if (roll < 0.40) {
    req.path = "/browse?page=" +
               std::to_string(rng_.below(std::max<std::size_t>(
                   config_.items / 20, 1)));
  } else if (roll < 0.65) {
    req.path = "/item?id=" + std::to_string(rng_.below(config_.items));
  } else if (roll < 0.80) {
    req.path = "/bids?item=" + std::to_string(rng_.below(config_.items));
  } else if (roll < 0.90 || config_.read_only) {
    req.path = "/user?id=" + std::to_string(rng_.below(config_.users));
  } else {
    req.method = "POST";
    req.path = "/bid";
    req.body = crypto::to_bytes("item=1&amount=42");
  }
  return req;
}

}  // namespace hipcloud::apps
