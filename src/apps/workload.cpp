#include "apps/workload.hpp"

namespace hipcloud::apps {

// ---------------------------------------------------------------------------
// ClosedLoopClients

ClosedLoopClients::ClosedLoopClients(net::Node* node, net::TcpStack* tcp,
                                     Config config)
    : node_(node), config_(config), client_(node, tcp, config.transport),
      mix_(config.mix, config.seed), rng_(config.seed ^ 0x9e37) {
  client_.set_max_connections_per_endpoint(
      static_cast<std::size_t>(config_.concurrency) + 4);
}

HttpRequest ClosedLoopClients::next_request() {
  if (!config_.fixed_path.empty()) {
    HttpRequest req;
    req.path = config_.fixed_path;
    return req;
  }
  return mix_.next();
}

void ClosedLoopClients::start(DoneFn done) {
  done_ = std::move(done);
  auto& loop = node_->network().loop();
  started_at_ = loop.now();
  deadline_ = started_at_ + config_.duration;
  active_users_ = config_.concurrency;
  for (int user = 0; user < config_.concurrency; ++user) {
    // Stagger user start slightly to avoid a synchronized burst.
    loop.schedule(static_cast<sim::Duration>(user) * sim::kMillisecond,
                  [this, user] { user_loop(user); });
  }
}

void ClosedLoopClients::user_loop(int user) {
  auto& loop = node_->network().loop();
  if (loop.now() >= deadline_) {
    if (--active_users_ == 0 && done_) {
      report_.duration_seconds =
          sim::to_seconds(deadline_ - started_at_ - config_.warmup);
      done_(report_);
    }
    return;
  }
  client_.request(
      config_.target, next_request(),
      [this, user](std::optional<HttpResponse> resp, sim::Duration latency) {
        auto& evloop = node_->network().loop();
        const bool counted = evloop.now() >= started_at_ + config_.warmup;
        if (counted) {
          if (resp && resp->status == 200) {
            ++report_.completed;
            report_.latency_ms.add(sim::to_millis(latency));
          } else {
            ++report_.errors;
          }
        }
        if (config_.think_time > 0) {
          evloop.schedule(config_.think_time,
                          [this, user] { user_loop(user); });
        } else {
          user_loop(user);
        }
      });
}

// ---------------------------------------------------------------------------
// OpenLoopGenerator

OpenLoopGenerator::OpenLoopGenerator(net::Node* node, net::TcpStack* tcp,
                                     Config config)
    : node_(node), config_(config), client_(node, tcp, config.transport),
      mix_(config.mix, config.seed), rng_(config.seed ^ 0x517c) {
  client_.set_max_connections_per_endpoint(512);
}

HttpRequest OpenLoopGenerator::next_request() {
  if (!config_.fixed_path.empty()) {
    HttpRequest req;
    req.path = config_.fixed_path;
    return req;
  }
  return mix_.next();
}

void OpenLoopGenerator::start(DoneFn done) {
  done_ = std::move(done);
  auto& loop = node_->network().loop();
  started_at_ = loop.now();
  deadline_ = started_at_ + config_.duration;
  generating_ = true;
  schedule_next(started_at_);
}

void OpenLoopGenerator::schedule_next(sim::Time when) {
  auto& loop = node_->network().loop();
  if (when >= deadline_) {
    generating_ = false;
    if (outstanding_ == 0 && done_) {
      report_.duration_seconds =
          sim::to_seconds(deadline_ - started_at_ - config_.warmup);
      done_(report_);
    }
    return;
  }
  loop.schedule_at(when, [this, when] {
    ++outstanding_;
    client_.request(
        config_.target, next_request(),
        [this](std::optional<HttpResponse> resp, sim::Duration latency) {
          --outstanding_;
          const bool counted =
              node_->network().loop().now() >= started_at_ + config_.warmup;
          if (counted) {
            if (resp && resp->status == 200) {
              ++report_.completed;
              report_.latency_ms.add(sim::to_millis(latency));
            } else {
              ++report_.errors;
            }
          }
          if (!generating_ && outstanding_ == 0 && done_) {
            report_.duration_seconds =
                sim::to_seconds(deadline_ - started_at_ - config_.warmup);
            auto done = std::move(done_);
            done_ = nullptr;
            done(report_);
          }
        });
    sim::Duration gap;
    if (config_.poisson) {
      gap = static_cast<sim::Duration>(
          rng_.exponential(1.0 / config_.rate_rps) *
          static_cast<double>(sim::kSecond));
    } else {
      gap = static_cast<sim::Duration>(static_cast<double>(sim::kSecond) /
                                       config_.rate_rps);
    }
    schedule_next(when + std::max<sim::Duration>(gap, 1));
  });
}

// ---------------------------------------------------------------------------
// Iperf

IperfServer::IperfServer(net::Node* node, net::TcpStack* tcp,
                         std::uint16_t port) {
  (void)node;
  tcp->listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data(
        [this](crypto::Bytes data) { bytes_received_ += data.size(); });
    conns_.push_back(std::move(conn));
  });
}

void IperfClient::run(net::Node* node, net::TcpStack* tcp,
                      const net::Endpoint& dst, sim::Duration duration,
                      DoneFn done) {
  auto conn = tcp->connect(dst);
  auto& loop = node->network().loop();
  const sim::Time deadline = loop.now() + duration;
  const sim::Time start = loop.now();

  // Feed the connection in chunks, keeping a bounded send queue — the
  // way iperf keeps the socket buffer full without unbounded memory. The
  // feeder is a self-contained copyable object that re-schedules a copy
  // of itself each tick (no self-capturing shared function, which would
  // be a reference cycle pinning the connection forever).
  constexpr std::size_t kChunk = 128 * 1024;
  constexpr std::size_t kQueueCap = 512 * 1024;
  struct Feeder {
    std::shared_ptr<net::TcpConnection> conn;
    sim::EventLoop* loop;
    sim::Time deadline;
    sim::Time start;
    DoneFn done;

    void operator()() const {
      if (loop->now() >= deadline) {
        const std::uint64_t acked = conn->bytes_acked();
        Report report;
        report.bytes_sent = acked;
        report.mbits_per_second = static_cast<double>(acked) * 8.0 /
                                  sim::to_seconds(loop->now() - start) / 1e6;
        conn->close();
        if (done) done(report);
        return;
      }
      if (conn->established() && conn->send_queue_bytes() < kQueueCap) {
        conn->send(crypto::Bytes(kChunk, 0x49));  // 'I'
      }
      loop->schedule(sim::kMillisecond, *this);
    }
  };
  const Feeder feeder{conn, &loop, deadline, start, std::move(done)};
  if (conn->established()) {
    feeder();
  } else {
    conn->on_connect([feeder] { feeder(); });
    // Also arm a watchdog in case the connection never comes up.
    loop.schedule(duration, [conn, done = feeder.done, &loop, deadline] {
      if (!conn->established() && loop.now() >= deadline) {
        Report report;
        if (done) done(report);
      }
    });
  }
}

}  // namespace hipcloud::apps
