#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/cpu.hpp"
#include "sim/random.hpp"

namespace hipcloud::net {

class Network;

/// Layer-3.5 shim hook — the interposition point HIP uses. Outbound
/// packets pass through every shim before routing; a shim that returns
/// true has consumed the packet (it will re-inject transformed traffic
/// itself). Inbound works symmetrically before protocol demux.
class L3Shim {
 public:
  virtual ~L3Shim() = default;

  /// Outbound interception; called with the original (inner) packet.
  virtual bool outbound(Packet& pkt) = 0;

  /// Inbound interception; called before protocol handlers.
  virtual bool inbound(Packet& pkt) = 0;

  /// Extra per-packet bytes the shim will add on the path to `dst`
  /// (0 when the shim does not apply). TCP subtracts this from its MSS.
  virtual std::size_t path_overhead(const IpAddr& dst) const = 0;
};

/// A host, router, middlebox or VM in the simulated network.
///
/// Composition over inheritance: behaviour is attached via protocol
/// handlers, shims and the forward hook rather than subclassing, so a
/// node can be turned into a NAT, a router or a HIP host dynamically —
/// mirroring how the paper deploys HIP incrementally onto existing VMs.
class Node {
 public:
  using ProtoHandler = std::function<void(Packet&&)>;
  /// Return false to drop instead of forwarding; may rewrite the packet.
  using ForwardHook = std::function<bool(Packet&, std::size_t in_iface)>;

  /// Observer for address add/remove on link-backed or virtual
  /// interfaces. HIP subscribes to this to detect "the VM just got a new
  /// locator" (migration landed) and kick off the UPDATE readdressing
  /// exchange without the test having to call move_to() by hand.
  using AddressChangeFn =
      std::function<void(const IpAddr& addr, std::size_t iface, bool added)>;

  Node(Network& net, std::string name, double cpu_cycles_per_second);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  Network& network() { return net_; }
  sim::CpuScheduler& cpu() { return cpu_; }

  /// --- interfaces & addressing -------------------------------------
  std::size_t attach_link(Link* link);
  void add_address(std::size_t iface, const IpAddr& addr);
  /// Remove one address from an interface (no-op when absent).
  void remove_address(std::size_t iface, const IpAddr& addr);
  /// Drop all routes through an interface (used when a link goes down,
  /// e.g. the source side of a VM migration).
  void remove_routes_via(std::size_t iface);
  /// Drop routes matching exactly this prefix/length.
  void remove_route(const IpAddr& prefix, int prefix_len);
  bool owns_address(const IpAddr& addr) const;
  /// First address of the given family on any interface.
  std::optional<IpAddr> first_address(bool v6) const;
  /// Source-address selection for a destination: same family, and the
  /// same "kind" (HIT, LSI, Teredo or plain) when available, so HIT->HIT
  /// flows naturally carry HIT sources.
  std::optional<IpAddr> select_source(const IpAddr& dst) const;
  /// Create an address-only virtual interface (no link) — used for HITs,
  /// LSIs and Teredo addresses.
  std::size_t add_virtual_interface() { return attach_link(nullptr); }
  std::size_t interface_count() const { return ifaces_.size(); }
  Link* link_at(std::size_t iface) const { return ifaces_[iface].link; }

  void on_address_change(AddressChangeFn fn) {
    addr_observers_.push_back(std::move(fn));
  }

  /// --- fault injection -------------------------------------------------
  /// A crashed node loses everything in flight: sends are dropped on the
  /// floor and deliveries are discarded before any handler or shim runs.
  /// Restarting (set_down(false)) keeps addresses, routes and protocol
  /// state — the transport/HIP layers above decide what survived.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// --- routing -------------------------------------------------------
  /// Longest-prefix-match table. `prefix_len` counts bits; v4 and v6
  /// routes live in the same table but only match their own family.
  void add_route(const IpAddr& prefix, int prefix_len, std::size_t iface,
                 std::optional<IpAddr> gateway = std::nullopt);
  void set_default_route(std::size_t iface,
                         std::optional<IpAddr> gateway = std::nullopt);
  void set_forwarding(bool enabled) { forwarding_ = enabled; }

  /// --- data path -------------------------------------------------------
  /// Send a locally-originated packet (runs shims, then routes).
  void send(Packet pkt);
  /// Route and transmit without shim processing (used by shims to emit
  /// their transformed packets).
  void send_raw(Packet pkt);
  /// Called by Link on packet arrival.
  void deliver(Packet&& pkt, std::size_t in_iface);

  /// --- extension points ------------------------------------------------
  void register_protocol(IpProto proto, ProtoHandler handler);
  void add_shim(std::shared_ptr<L3Shim> shim);
  void set_forward_hook(ForwardHook hook) { forward_hook_ = std::move(hook); }

  /// Total extra bytes all shims would add towards `dst`.
  std::size_t path_overhead(const IpAddr& dst) const;

  /// --- counters ---------------------------------------------------------
  std::uint64_t sent_packets() const { return sent_packets_; }
  std::uint64_t received_packets() const { return received_packets_; }
  std::uint64_t forwarded_packets() const { return forwarded_packets_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }

 private:
  struct Interface {
    Link* link = nullptr;
    std::vector<IpAddr> addrs;
  };
  struct Route {
    IpAddr prefix;
    int prefix_len;
    std::size_t iface;
    std::optional<IpAddr> gateway;
  };

  const Route* lookup_route(const IpAddr& dst) const;
  void local_deliver(Packet&& pkt);

  Network& net_;
  std::string name_;
  sim::CpuScheduler cpu_;
  std::vector<Interface> ifaces_;
  std::vector<Route> routes_;
  std::map<IpProto, ProtoHandler> proto_handlers_;
  std::vector<std::shared_ptr<L3Shim>> shims_;
  ForwardHook forward_hook_;
  std::vector<AddressChangeFn> addr_observers_;
  bool forwarding_ = false;
  bool down_ = false;
  std::uint64_t sent_packets_ = 0;
  std::uint64_t received_packets_ = 0;
  std::uint64_t forwarded_packets_ = 0;
  std::uint64_t dropped_no_route_ = 0;
};

/// The simulated world: owns the event loop, nodes, links and the
/// deterministic RNG used for loss decisions.
class Network {
 public:
  explicit Network(std::uint64_t seed = 1);

  sim::EventLoop& loop() { return loop_; }
  sim::Xoshiro256& rng() { return rng_; }
  /// Per-world payload buffer pool used by the packet pipeline.
  crypto::BufferPool& buffer_pool() { return pool_; }
  /// Per-world perf counters (owned by the event loop).
  sim::PerfCounters& perf() { return loop_.perf(); }

  /// Create a node. `cpu_cycles_per_second` sizes its CpuScheduler;
  /// infrastructure nodes default to a fast core so they never bottleneck.
  Node* add_node(std::string name, double cpu_cycles_per_second = 100e9);

  /// Connect two nodes; returns the link and the interface indices
  /// assigned on each side.
  struct Attachment {
    Link* link;
    std::size_t iface_a;
    std::size_t iface_b;
  };
  Attachment connect(Node* a, Node* b, const LinkConfig& config);

  Node* find(const std::string& name) const;

 private:
  // Declared before the loop: pending events may hold pooled payload
  // buffers whose destructors return blocks to the pool, so the pool must
  // be destroyed after the loop (members destruct in reverse order).
  crypto::BufferPool pool_;
  sim::EventLoop loop_;
  sim::Xoshiro256 rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace hipcloud::net
