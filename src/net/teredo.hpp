#pragma once

#include <functional>
#include <map>
#include <memory>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/udp.hpp"

namespace hipcloud::net {

constexpr std::uint16_t kTeredoPort = 3544;

/// Build a Teredo address (RFC 4380 §4) from the server IPv4 and the
/// client's NAT-observed public endpoint. Port and address are stored
/// obfuscated (bit-inverted) exactly as the RFC specifies.
Ipv6Addr make_teredo_address(Ipv4Addr server, Ipv4Addr mapped_addr,
                             std::uint16_t mapped_port);

/// Extract the obfuscated mapped endpoint back out of a Teredo address.
Endpoint teredo_mapped_endpoint(const Ipv6Addr& addr);

/// Combined Teredo server + relay. Clients qualify against it to learn
/// their mapped endpoint; IPv6 packets between Teredo clients are relayed
/// through it (modelling the detour that gives Teredo the worst RTT in
/// the paper's Figure 3).
class TeredoServer {
 public:
  TeredoServer(Node* node, UdpStack* udp);

  Node* node() { return node_; }

 private:
  void on_datagram(const Endpoint& from, const IpAddr& local,
                   crypto::Buffer data);

  Node* node_;
  UdpStack* udp_;
};

/// Teredo client: qualifies against the server, installs the resulting
/// 2001:0::/32 address on the node and registers an L3 shim that tunnels
/// IPv6-to-Teredo traffic in UDP/IPv4 via the relay.
class TeredoClient {
 public:
  using QualifiedFn = std::function<void(const Ipv6Addr& teredo_addr)>;

  TeredoClient(Node* node, UdpStack* udp, Endpoint server);

  /// Start qualification; `done` fires with the assigned address.
  void qualify(QualifiedFn done);

  bool qualified() const { return qualified_; }
  const Ipv6Addr& address() const { return address_; }

  /// Per-packet overhead the tunnel adds: outer IPv4(20) + UDP(8) and the
  /// inner full IPv6 header(40) replacing the structured-L3 accounting.
  static constexpr std::size_t kTunnelOverhead = 28;

 private:
  class Shim;

  void on_datagram(const Endpoint& from, const IpAddr& local,
                   crypto::Buffer data);
  void send_tunnelled(Packet&& pkt);

  Node* node_;
  UdpStack* udp_;
  Endpoint server_;
  std::uint16_t local_port_ = 0;
  bool qualified_ = false;
  Ipv6Addr address_;
  QualifiedFn pending_done_;
};

}  // namespace hipcloud::net
