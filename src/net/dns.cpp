#include "net/dns.hpp"

#include <stdexcept>

#include "net/wire_reader.hpp"

namespace hipcloud::net {

using crypto::append_be;
using crypto::Bytes;
using crypto::BytesView;
using crypto::read_be;

DnsRecord DnsRecord::a(Ipv4Addr addr) {
  Bytes data;
  append_be(data, addr.value(), 4);
  return DnsRecord{DnsType::kA, std::move(data)};
}

DnsRecord DnsRecord::aaaa(const Ipv6Addr& addr) {
  return DnsRecord{DnsType::kAaaa,
                   Bytes(addr.bytes().begin(), addr.bytes().end())};
}

DnsRecord DnsRecord::hip(const Ipv6Addr& hit, BytesView host_identity) {
  Bytes data(hit.bytes().begin(), hit.bytes().end());
  data.insert(data.end(), host_identity.begin(), host_identity.end());
  return DnsRecord{DnsType::kHip, std::move(data)};
}

Ipv4Addr DnsRecord::as_a() const {
  if (type != DnsType::kA || data.size() != 4) {
    throw std::runtime_error("DnsRecord: not an A record");
  }
  return Ipv4Addr(static_cast<std::uint32_t>(read_be(data, 0, 4)));
}

Ipv6Addr DnsRecord::as_aaaa() const {
  if (type != DnsType::kAaaa || data.size() != 16) {
    throw std::runtime_error("DnsRecord: not an AAAA record");
  }
  return Ipv6Addr::from_bytes(data);
}

Ipv6Addr DnsRecord::hip_hit() const {
  if (type != DnsType::kHip || data.size() < 16) {
    throw std::runtime_error("DnsRecord: not a HIP record");
  }
  return Ipv6Addr::from_bytes(BytesView(data).subspan(0, 16));
}

Bytes DnsRecord::hip_host_identity() const {
  if (type != DnsType::kHip || data.size() < 16) {
    throw std::runtime_error("DnsRecord: not a HIP record");
  }
  return Bytes(data.begin() + 16, data.end());
}

// Wire format (simulator-simple, not RFC 1035):
//   query:    id(2) | type(1) | name_len(2) | name
//   response: id(2) | count(1) | { type(1) | len(2) | data }*
namespace {
Bytes encode_query(std::uint16_t id, DnsType type, const std::string& name) {
  Bytes out;
  append_be(out, id, 2);
  out.push_back(static_cast<std::uint8_t>(type));
  append_be(out, name.size(), 2);
  out.insert(out.end(), name.begin(), name.end());
  return out;
}
}  // namespace

DnsServer::DnsServer(Node* node, UdpStack* udp) : node_(node), udp_(udp) {
  udp_->bind(kDnsPort,
             [this](const Endpoint& from, const IpAddr&, Bytes data) {
               on_query(from, std::move(data));
             });
}

void DnsServer::add_record(const std::string& name, DnsRecord record) {
  zone_[name].push_back(std::move(record));
}

void DnsServer::remove_records(const std::string& name, DnsType type) {
  const auto it = zone_.find(name);
  if (it == zone_.end()) return;
  std::erase_if(it->second,
                [type](const DnsRecord& r) { return r.type == type; });
}

std::size_t DnsServer::record_count() const {
  std::size_t n = 0;
  for (const auto& [name, records] : zone_) n += records.size();
  return n;
}

// hipcheck:wire_input
void DnsServer::on_query(const Endpoint& from, Bytes data) {
  wire::Reader r(data);
  const auto id = r.u16be();
  const auto raw_type = r.u8();
  const auto name_len = r.u16be();
  if (!id || !raw_type || !name_len) return;
  const auto name_bytes = r.bytes(*name_len);
  if (!name_bytes) return;
  const auto type = static_cast<DnsType>(*raw_type);
  const std::string name(name_bytes->begin(), name_bytes->end());

  Bytes reply;
  append_be(reply, *id, 2);
  std::uint8_t count = 0;
  Bytes records;
  const auto it = zone_.find(name);
  if (it != zone_.end()) {
    for (const auto& record : it->second) {
      if (record.type != type) continue;
      records.push_back(static_cast<std::uint8_t>(record.type));
      append_be(records, record.data.size(), 2);
      records.insert(records.end(), record.data.begin(), record.data.end());
      ++count;
    }
  }
  reply.push_back(count);
  reply.insert(reply.end(), records.begin(), records.end());
  udp_->send(kDnsPort, from, std::move(reply));
}

DnsResolver::DnsResolver(Node* node, UdpStack* udp, Endpoint server)
    : node_(node), udp_(udp), server_(std::move(server)) {
  port_ = udp_->bind(0, [this](const Endpoint&, const IpAddr&, Bytes data) {
    on_response(std::move(data));
  });
}

void DnsResolver::query(const std::string& name, DnsType type, ResultFn done) {
  const std::uint16_t id = next_id_++;
  auto& loop = node_->network().loop();
  Pending pending;
  pending.done = std::move(done);
  pending.timeout = loop.schedule(2 * sim::kSecond, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto done_fn = std::move(it->second.done);
    pending_.erase(it);
    done_fn({});
  });
  pending_.emplace(id, std::move(pending));
  udp_->send(port_, server_, encode_query(id, type, name));
}

// hipcheck:wire_input
void DnsResolver::on_response(Bytes data) {
  wire::Reader r(data);
  const auto id = r.u16be();
  const auto count = r.u8();
  if (!id || !count) return;
  const auto it = pending_.find(*id);
  if (it == pending_.end()) return;
  node_->network().loop().cancel(it->second.timeout);
  auto done = std::move(it->second.done);
  pending_.erase(it);

  std::vector<DnsRecord> records;
  for (unsigned i = 0; i < *count; ++i) {
    const auto rtype = r.u8();
    if (!rtype) break;
    const auto len = r.u16be();
    if (!len) break;
    const auto rdata = r.bytes(*len);
    if (!rdata) break;
    DnsRecord record;
    record.type = static_cast<DnsType>(*rtype);
    record.data.assign(rdata->begin(), rdata->end());
    records.push_back(std::move(record));
  }
  done(std::move(records));
}

}  // namespace hipcloud::net
