#pragma once

#include <cstdint>
#include <map>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace hipcloud::net {

/// Classic NAPT middlebox with endpoint-independent ("full cone")
/// mappings — the NAT behaviour Teredo requires for direct client-to-
/// client paths. Installs a forward hook on the node; the node must have
/// forwarding enabled and exactly identified inside/outside interfaces.
///
/// Translates TCP and UDP by port and ICMP echo by identifier. Mappings
/// never expire within a scenario (scenarios run for seconds, real NAT
/// bindings live minutes).
///
/// IMPORTANT: `public_ip` must NOT be added as one of the node's own
/// interface addresses — inbound translation happens on the forwarding
/// path, and a packet addressed to an owned address would be delivered
/// locally instead. Upstream routers simply route `public_ip/32` at the
/// NAT node.
class Nat {
 public:
  Nat(Node* node, std::size_t inside_iface, std::size_t outside_iface,
      Ipv4Addr public_ip);

  Ipv4Addr public_ip() const { return public_ip_; }
  std::size_t active_mappings() const { return by_inside_.size(); }

 private:
  struct Key {
    IpProto proto;
    std::uint32_t addr;  // inside host (outbound) — keyed on v4 value
    std::uint16_t port;
    auto operator<=>(const Key&) const = default;
  };

  bool on_forward(Packet& pkt, std::size_t in_iface);
  bool translate_outbound(Packet& pkt);
  bool translate_inbound(Packet& pkt);
  std::uint16_t allocate_port(IpProto proto);

  Node* node_;
  std::size_t inside_iface_;
  std::size_t outside_iface_;
  Ipv4Addr public_ip_;
  std::uint16_t next_port_ = 1024;
  std::map<Key, std::uint16_t> by_inside_;  // inside (proto,ip,port) -> public port
  struct InsideEndpoint {
    Ipv4Addr addr;
    std::uint16_t port;
  };
  std::map<Key, InsideEndpoint> by_outside_;  // (proto,pub ip,pub port) -> inside
};

}  // namespace hipcloud::net
